// The paper's running example (Sections 4-5) on the synthetic Yahoo-Movies
// database: map into MyMovieInfo(name, director, producer, location) from a
// 43-relation source the user never has to look at.
//
//   $ ./examples/movie_mapping [num_movies]
#include <cstdlib>
#include <iostream>

#include "common/stopwatch.h"
#include "core/sample_search.h"
#include "core/session.h"
#include "datagen/movie_gen.h"
#include "datagen/workload.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "query/sql.h"
#include "text/fulltext_engine.h"

using mweaver::Stopwatch;

int main(int argc, char** argv) {
  mweaver::datagen::YahooMoviesConfig config;
  if (argc > 1) config.num_movies = std::strtoul(argv[1], nullptr, 10);

  Stopwatch watch;
  mweaver::storage::Database db = mweaver::datagen::MakeYahooMovies(config);
  std::cout << "source database: " << db.num_relations() << " relations, "
            << db.TotalAttributes() << " attributes, " << db.TotalRows()
            << " rows (built in " << watch.ElapsedMillis() << " ms)\n";

  watch.Restart();
  mweaver::text::FullTextEngine engine(&db,
                                       mweaver::text::MatchPolicy::Substring());
  mweaver::graph::SchemaGraph schema_graph(&db);
  std::cout << "full-text engine: " << engine.num_indexed_attributes()
            << " indexed attributes (" << watch.ElapsedMillis() << " ms)\n\n";

  // The user wants MyMovieInfo(name, director, producer, location). Pull a
  // real joined row out of the instance to play the part of the user's
  // knowledge (a movie with its director, producing company and location).
  auto goal = mweaver::datagen::BuildChainMapping(
      db, {"person", "direct", "movie", "produce", "company"},
      {{1, 0, "name"}, {0, 2, "title"}, {2, 4, "name"}});
  if (!goal.ok()) {
    std::cerr << goal.status() << "\n";
    return 1;
  }
  // Extend with location via filmedin.
  mweaver::query::PathExecutor executor(&engine);
  auto full = mweaver::datagen::BuildChainMapping(
      db, {"person", "direct", "movie", "produce", "company"}, {});
  mweaver::core::MappingPath mapping = *goal;
  {
    // Attach location: movie vertex is index 2 on the chain.
    const auto loc_rel = db.FindRelation("location");
    const auto filmedin_rel = db.FindRelation("filmedin");
    mweaver::storage::ForeignKeyId fk_movie = -1, fk_loc = -1;
    for (size_t i = 0; i < db.foreign_keys().size(); ++i) {
      const auto& fk = db.foreign_keys()[i];
      if (fk.from_relation == filmedin_rel && fk.to_relation ==
          db.FindRelation("movie")) {
        fk_movie = static_cast<mweaver::storage::ForeignKeyId>(i);
      }
      if (fk.from_relation == filmedin_rel && fk.to_relation == loc_rel) {
        fk_loc = static_cast<mweaver::storage::ForeignKeyId>(i);
      }
    }
    const auto v_fi = mapping.AddVertex(filmedin_rel, 2, fk_movie, true);
    const auto v_loc = mapping.AddVertex(loc_rel, v_fi, fk_loc, false);
    mapping.AddProjection(3, v_loc,
                          db.relation(loc_rel).schema().FindAttribute("loc"));
  }

  auto target = executor.EvaluateTarget(mapping, 500);
  if (!target.ok() || target->empty()) {
    std::cerr << "could not materialize a sample row\n";
    return 1;
  }
  const std::vector<std::string>& row = target->front();
  std::cout << "the user knows, e.g.: movie \"" << row[0]
            << "\" directed by " << row[1] << ", produced by " << row[2]
            << ", filmed in " << row[3] << "\n\n";

  // Sample search from that single row (the paper's Example 2).
  watch.Restart();
  auto result = mweaver::core::SampleSearch(engine, schema_graph, row);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "sample search: " << result->candidates.size()
            << " valid candidate mappings in " << watch.ElapsedMillis()
            << " ms\n";
  const auto& stats = result->stats;
  std::cout << "  occurrences=" << stats.num_occurrences
            << " pairwise_mappings=" << stats.pairwise.num_mappings
            << " valid_pairwise=" << stats.pairwise.num_valid_mappings
            << " tuple_paths=" << stats.weave.total_tuple_paths << "\n";
  std::cout << "  tuple paths per level:";
  for (size_t level = 2; level < stats.weave.tuple_paths_per_level.size();
       ++level) {
    std::cout << " L" << level << "="
              << stats.weave.tuple_paths_per_level[level];
  }
  std::cout << "\n\n  top candidates:\n";
  for (size_t i = 0; i < result->candidates.size() && i < 5; ++i) {
    std::cout << "  " << i + 1 << ". "
              << result->candidates[i].mapping.ToString(db) << "  (score "
              << result->candidates[i].score << ", support "
              << result->candidates[i].support << ")\n";
  }

  // Interactive refinement with a second row, as in Example 7.
  mweaver::core::Session session(&engine, &schema_graph,
                                 {"name", "director", "producer",
                                  "location"});
  for (size_t c = 0; c < 4; ++c) {
    auto st = session.Input(0, c, row[c]);
    if (!st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
  }
  std::cout << "\nsession after first row: " << session.candidates().size()
            << " candidates\n";
  size_t extra_row = 1;
  for (const auto& next : *target) {
    if (session.converged() ||
        session.state() == mweaver::core::SessionState::kNoMapping) {
      break;
    }
    if (&next == &target->front()) continue;
    for (size_t c = 0; c < 4 && !session.converged(); ++c) {
      auto st = session.Input(extra_row, c, next[c]);
      if (!st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
    }
    std::cout << "after row " << extra_row + 1 << ": "
              << session.candidates().size() << " candidates\n";
    ++extra_row;
  }

  if (session.converged()) {
    std::cout << "\nconverged to:\n  "
              << session.best().mapping.ToString(db) << "\n\n"
              << mweaver::query::ToSql(db, session.best().mapping,
                                       {{0, "name"},
                                        {1, "director"},
                                        {2, "producer"},
                                        {3, "location"}})
            << "\n";
  } else {
    std::cout << "\n(ran out of distinct sample rows before convergence — "
                 "state: "
              << SessionStateName(session.state()) << ")\n";
  }
  return 0;
}
