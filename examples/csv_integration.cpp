// CSV integration: build a source database from CSV files on disk, declare
// foreign keys, and derive a mapping from samples — the "map your own
// files" workflow a downstream user of this library would follow.
//
// The example writes a small orders/customers/products dataset to a temp
// directory, loads it back, and weaves a mapping for a target
// OrderReport(customer, product, city) spreadsheet.
//
//   $ ./examples/csv_integration [dir]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/session.h"
#include "graph/schema_graph.h"
#include "query/sql.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "text/fulltext_engine.h"

namespace {

namespace fs = std::filesystem;
using mweaver::storage::Database;
using mweaver::storage::LoadCsvRelation;
using mweaver::storage::Relation;

void WriteFile(const fs::path& path, const char* content) {
  std::ofstream out(path);
  out << content;
}

// A small commerce dataset: customers place orders for products.
void WriteSampleCsvs(const fs::path& dir) {
  WriteFile(dir / "customers.csv",
            "customer_id,customer_name,city\n"
            "1,Acme Tooling,Detroit\n"
            "2,Borealis Labs,Oslo\n"
            "3,Cascade Outfitters,Portland\n"
            "4,Delta Shipping,Rotterdam\n");
  WriteFile(dir / "products.csv",
            "product_id,product_name,category\n"
            "10,Torque Wrench,tools\n"
            "11,Field Microscope,instruments\n"
            "12,Rain Shell,apparel\n"
            "13,Cargo Strap,logistics\n");
  WriteFile(dir / "orders.csv",
            "order_id,customer_id,product_id,quantity\n"
            "100,1,10,5\n"
            "101,2,11,1\n"
            "102,3,12,8\n"
            "103,4,13,40\n"
            "104,1,13,2\n"
            "105,2,12,3\n");
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path dir = argc > 1 ? fs::path(argv[1])
                                : fs::temp_directory_path() /
                                      "mweaver_csv_example";
  fs::create_directories(dir);
  WriteSampleCsvs(dir);
  std::cout << "sample CSVs in " << dir << "\n";

  // Load each CSV as a relation. LoadCsvRelation types every column as a
  // searchable string; joins work on string equality of the key columns.
  Database db("commerce");
  for (const char* name : {"customers", "products", "orders"}) {
    auto rel = LoadCsvRelation((dir / (std::string(name) + ".csv")).string(),
                               name);
    if (!rel.ok()) {
      std::cerr << rel.status() << "\n";
      return 1;
    }
    auto added = db.AddRelation(rel->schema());
    if (!added.ok()) {
      std::cerr << added.status() << "\n";
      return 1;
    }
    Relation* dest = db.mutable_relation(*added);
    for (const auto& row : rel->rows()) dest->AppendUnchecked(row);
  }
  // Declare the foreign keys the CSVs imply.
  db.AddForeignKey("orders", "customer_id", "customers", "customer_id")
      .ValueOrDie();
  db.AddForeignKey("orders", "product_id", "products", "product_id")
      .ValueOrDie();
  if (auto st = db.CheckReferentialIntegrity(); !st.ok()) {
    std::cerr << "CSV data is inconsistent: " << st << "\n";
    return 1;
  }

  const mweaver::text::FullTextEngine engine(
      &db, mweaver::text::MatchPolicy::Substring());
  const mweaver::graph::SchemaGraph schema_graph(&db);

  // Target: OrderReport(customer, product, city). The user types two rows
  // of values they remember from their own data.
  mweaver::core::Session session(&engine, &schema_graph,
                                 {"customer", "product", "city"});
  auto type = [&](size_t row, size_t col, const char* value) {
    auto status = session.Input(row, col, value);
    if (!status.ok()) {
      std::cerr << status << "\n";
      std::exit(1);
    }
  };
  type(0, 0, "Acme Tooling");
  type(0, 1, "Torque Wrench");
  type(0, 2, "Detroit");
  std::cout << "after first row: " << session.candidates().size()
            << " candidate mapping(s)\n";
  type(1, 0, "Borealis Labs");
  type(1, 1, "Field Microscope");
  std::cout << "after second row: " << session.candidates().size()
            << " candidate mapping(s), state="
            << SessionStateName(session.state()) << "\n";

  if (!session.candidates().empty()) {
    std::cout << "\nbest mapping:\n  "
              << session.candidates().front().mapping.ToString(db) << "\n\n"
              << mweaver::query::ToSql(
                     db, session.candidates().front().mapping,
                     {{0, "customer"}, {1, "product"}, {2, "city"}})
              << "\n";
  }
  return 0;
}
