// Interactive MWeaver: a terminal version of the paper's spreadsheet UI
// (Figure 4) over the synthetic Yahoo-Movies database. Type samples into
// cells, watch the candidate list narrow, and get SQL when it converges.
//
//   $ ./examples/interactive_weaver [num_movies]
//
// Commands:
//   <row> <col> <value...>   set a cell (0-based row/col; row 0 first)
//   peek                     show a random row of the source 'movie' table
//   suggest <prefix>         auto-complete a value from the source instance
//   hint                     rows that would discriminate the candidates
//   show                     show the spreadsheet and candidate mappings
//   sql                      print SQL for the best candidate
//   reset                    start over
//   quit
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "core/session.h"
#include "text/autocomplete.h"
#include "datagen/movie_gen.h"
#include "graph/schema_graph.h"
#include "query/sql.h"
#include "text/fulltext_engine.h"

namespace {

using mweaver::core::Session;
using mweaver::core::SessionState;

void ShowState(const Session& session, const mweaver::storage::Database& db) {
  std::cout << "\n  ";
  for (const std::string& name : session.column_names()) {
    std::cout << "[" << name << "] ";
  }
  std::cout << "\n";
  for (size_t r = 0; r < std::max<size_t>(session.num_rows(), 1); ++r) {
    std::cout << "  ";
    for (size_t c = 0; c < session.num_columns(); ++c) {
      const std::string& cell = session.cell(r, c);
      std::cout << (cell.empty() ? "·" : cell) << " | ";
    }
    std::cout << "\n";
  }
  std::cout << "\nstate: " << SessionStateName(session.state()) << ", "
            << session.candidates().size() << " candidate mapping(s)\n";
  size_t shown = 0;
  for (const auto& candidate : session.candidates()) {
    if (++shown > 5) {
      std::cout << "  ... and " << session.candidates().size() - 5
                << " more\n";
      break;
    }
    std::cout << "  " << shown << ". " << candidate.mapping.ToString(db)
              << "  (score " << candidate.score << ", support "
              << candidate.support << ")\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  mweaver::datagen::YahooMoviesConfig config;
  if (argc > 1) config.num_movies = std::strtoul(argv[1], nullptr, 10);
  const mweaver::storage::Database db =
      mweaver::datagen::MakeYahooMovies(config);
  const mweaver::text::FullTextEngine engine(
      &db, mweaver::text::MatchPolicy::Substring());
  const mweaver::graph::SchemaGraph schema_graph(&db);
  mweaver::Rng rng(std::random_device{}());

  std::cout << "MWeaver interactive session over a synthetic Yahoo-Movies "
               "database\n(" << db.num_relations() << " relations, "
            << db.TotalRows() << " rows).\n"
            << "Target: MyMovieInfo(name, director, producer, location).\n"
            << "Fill row 0 completely to trigger sample search; 'peek' "
               "shows real source values; 'quit' exits.\n";

  const mweaver::text::ValueDictionary dictionary(&db);
  Session session(&engine, &schema_graph,
                  {"name", "director", "producer", "location"});
  session.set_reject_irrelevant_samples(true);
  std::string line;
  while (std::cout << "\nmweaver> " && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "show") {
      ShowState(session, db);
      continue;
    }
    if (cmd == "reset") {
      session.Reset();
      std::cout << "cleared.\n";
      continue;
    }
    if (cmd == "peek") {
      const auto& movies = db.relation(db.FindRelation("movie"));
      const auto row = static_cast<mweaver::storage::RowId>(
          rng.Index(movies.num_rows()));
      std::cout << "movie: title=\"" << movies.at(row, 1).ToDisplayString()
                << "\" release_date=" << movies.at(row, 3).ToDisplayString()
                << "\n(directors/producers/locations join via direct/"
                   "produce/filmedin)\n";
      continue;
    }
    if (cmd == "suggest") {
      std::string prefix;
      std::getline(in, prefix);
      prefix = mweaver::Trim(prefix);
      const auto suggestions = dictionary.Suggest(prefix);
      if (suggestions.empty()) {
        std::cout << "no source value starts with \"" << prefix << "\"\n";
      } else {
        for (const std::string& s : suggestions) std::cout << "  " << s
                                                           << "\n";
      }
      continue;
    }
    if (cmd == "hint") {
      auto hints = session.SuggestRows();
      if (!hints.ok()) {
        std::cout << "error: " << hints.status() << "\n";
      } else if (hints->empty()) {
        std::cout << "nothing to discriminate (type the first row, or the "
                     "session already converged).\n";
      } else {
        std::cout << "typing any of these rows narrows the candidates:\n";
        for (const auto& hint : *hints) {
          std::cout << "  ";
          for (const std::string& v : hint.row) std::cout << v << " | ";
          std::cout << " (kept: " << hint.supporting_candidates << "/"
                    << hint.total_candidates << ")\n";
        }
      }
      continue;
    }
    if (cmd == "sql") {
      if (session.candidates().empty()) {
        std::cout << "no candidates yet.\n";
      } else {
        std::map<int, std::string> names;
        for (size_t c = 0; c < session.num_columns(); ++c) {
          names[static_cast<int>(c)] = session.column_names()[c];
        }
        std::cout << mweaver::query::ToSql(
                         db, session.candidates().front().mapping, names)
                  << "\n";
      }
      continue;
    }
    // Otherwise: "<row> <col> <value...>".
    size_t row = 0, col = 0;
    std::istringstream cell_in(line);
    if (!(cell_in >> row >> col)) {
      std::cout << "commands: <row> <col> <value> | peek | show | sql | "
                   "reset | quit\n";
      continue;
    }
    std::string value;
    std::getline(cell_in, value);
    value = mweaver::Trim(value);
    const mweaver::Status status = session.Input(row, col, value);
    if (!status.ok()) {
      std::cout << "error: " << status << "\n";
      continue;
    }
    if (session.last_input_rejected()) {
      std::cout << "warning: \"" << value << "\" contradicts every current "
                << "candidate mapping — ignored. ('suggest " << value
                << "' finds close source values.)\n";
      continue;
    }
    ShowState(session, db);
    if (session.converged()) {
      std::cout << "\nconverged! 'sql' prints the mapping.\n";
    }
  }
  return 0;
}
