// Quickstart: build a tiny movie database, type two rows of target samples,
// and watch MWeaver converge on the mapping — then print it as SQL.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/session.h"
#include "graph/schema_graph.h"
#include "query/sql.h"
#include "storage/database.h"
#include "text/fulltext_engine.h"

namespace {

using mweaver::storage::AttributeSchema;
using mweaver::storage::Database;
using mweaver::storage::Relation;
using mweaver::storage::RelationSchema;
using mweaver::storage::Row;
using mweaver::storage::Value;
using mweaver::storage::ValueType;

AttributeSchema Id(const char* name) {
  return {name, ValueType::kInt64, /*searchable=*/false};
}
AttributeSchema Str(const char* name) {
  return {name, ValueType::kString, /*searchable=*/true};
}

// The paper's Figure 2 source schema: movies and people connected by both
// Director and Writer link tables — the classic join-path ambiguity.
Database MakeExampleDb() {
  Database db("example");
  db.AddRelation(RelationSchema("movie", {Id("mid"), Str("title")}))
      .ValueOrDie();
  db.AddRelation(RelationSchema("person", {Id("pid"), Str("name")}))
      .ValueOrDie();
  db.AddRelation(RelationSchema("director", {Id("mid"), Id("pid")}))
      .ValueOrDie();
  db.AddRelation(RelationSchema("writer", {Id("mid"), Id("pid")}))
      .ValueOrDie();
  db.AddForeignKey("director", "mid", "movie", "mid").ValueOrDie();
  db.AddForeignKey("director", "pid", "person", "pid").ValueOrDie();
  db.AddForeignKey("writer", "mid", "movie", "mid").ValueOrDie();
  db.AddForeignKey("writer", "pid", "person", "pid").ValueOrDie();

  auto add = [&](const char* rel, Row row) {
    db.mutable_relation(db.FindRelation(rel))->AppendUnchecked(std::move(row));
  };
  // movies
  add("movie", {Value(int64_t{0}), Value("Avatar")});
  add("movie", {Value(int64_t{1}), Value("Harry Potter")});
  add("movie", {Value(int64_t{2}), Value("Big Fish")});
  // people
  add("person", {Value(int64_t{0}), Value("James Cameron")});
  add("person", {Value(int64_t{1}), Value("David Yates")});
  add("person", {Value(int64_t{2}), Value("J. K. Rowling")});
  add("person", {Value(int64_t{3}), Value("Tim Burton")});
  add("person", {Value(int64_t{4}), Value("John August")});
  // who directed what
  add("director", {Value(int64_t{0}), Value(int64_t{0})});  // Cameron
  add("director", {Value(int64_t{1}), Value(int64_t{1})});  // Yates
  add("director", {Value(int64_t{2}), Value(int64_t{3})});  // Burton
  // who wrote what
  add("writer", {Value(int64_t{0}), Value(int64_t{0})});  // Cameron
  add("writer", {Value(int64_t{1}), Value(int64_t{2})});  // Rowling
  add("writer", {Value(int64_t{2}), Value(int64_t{4})});  // August
  return db;
}

}  // namespace

int main() {
  Database db = MakeExampleDb();
  mweaver::text::FullTextEngine engine(&db,
                                       mweaver::text::MatchPolicy::Substring());
  mweaver::graph::SchemaGraph schema_graph(&db);

  // The target the user has in mind: MyMovieInfo(Name, Director).
  mweaver::core::Session session(&engine, &schema_graph,
                                 {"Name", "Director"});

  auto type = [&](size_t row, size_t col, const char* text) {
    auto status = session.Input(row, col, text);
    if (!status.ok()) {
      std::cerr << "input failed: " << status << "\n";
      std::exit(1);
    }
    std::cout << "typed (" << row << "," << col << ") = \"" << text
              << "\"  ->  " << session.candidates().size()
              << " candidate mapping(s), state="
              << SessionStateName(session.state()) << "\n";
  };

  std::cout << "== First row: Avatar was directed by James Cameron ==\n";
  type(0, 0, "Avatar");
  type(0, 1, "James Cameron");
  // Cameron both wrote and directed Avatar, so Director and Writer join
  // paths both survive. Show the ambiguity:
  for (const auto& candidate : session.candidates()) {
    std::cout << "  candidate: " << candidate.mapping.ToString(db)
              << "  (score " << candidate.score << ")\n";
  }

  std::cout << "== Second row: Harry Potter / David Yates settles it ==\n";
  type(1, 0, "Harry Potter");
  type(1, 1, "David Yates");

  if (!session.converged()) {
    std::cerr << "expected convergence!\n";
    return 1;
  }
  const auto& best = session.best();
  std::cout << "\nConverged mapping: " << best.mapping.ToString(db) << "\n\n";
  std::cout << mweaver::query::ToSql(
                   db, best.mapping,
                   {{0, "Name"}, {1, "Director"}})
            << "\n";
  return 0;
}
