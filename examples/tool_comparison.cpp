// Drives all four mapping approaches on the same task over the synthetic
// Yahoo-Movies source — the programmatic version of the paper's comparison:
//   1. MWeaver sample search (TPW) from one sample row,
//   2. the naive candidate-network baseline (same answer, brute force),
//   3. Eirene-style fitting from a fully-specified data example,
//   4. the InfoSphere-style match-driven flow (correspondences + join
//      disambiguation),
// and prints the executor's EXPLAIN plan for the winning mapping.
//
//   $ ./examples/tool_comparison [num_movies]
#include <cstdlib>
#include <iostream>
#include <set>

#include "baselines/eirene.h"
#include "baselines/matchdriven.h"
#include "baselines/naive_search.h"
#include "common/stopwatch.h"
#include "core/sample_search.h"
#include "datagen/movie_gen.h"
#include "datagen/workload.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "text/fulltext_engine.h"

using namespace mweaver;

int main(int argc, char** argv) {
  datagen::YahooMoviesConfig config;
  config.num_movies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const storage::Database db = datagen::MakeYahooMovies(config);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  const graph::SchemaGraph schema_graph(&db);
  query::PathExecutor executor(&engine);

  // The task: the Figure-11(a) study mapping.
  auto task = datagen::MakeYahooStudyTask(db);
  if (!task.ok()) {
    std::cerr << task.status() << "\n";
    return 1;
  }
  auto target = executor.EvaluateTarget(task->mapping, 200);
  if (!target.ok() || target->empty()) {
    std::cerr << "no target rows\n";
    return 1;
  }
  const std::vector<std::string>& row = target->front();
  std::cout << "task: map (Movie, ReleaseDate, ProductionCompany, Director)"
            << "\nknown row: " << row[0] << " | " << row[1] << " | "
            << row[2] << " | " << row[3] << "\n\n";

  // --- 1. MWeaver --------------------------------------------------------
  Stopwatch watch;
  auto tpw = core::SampleSearch(engine, schema_graph, row);
  if (!tpw.ok()) {
    std::cerr << tpw.status() << "\n";
    return 1;
  }
  std::cout << "[MWeaver/TPW]      " << tpw->candidates.size()
            << " candidates in " << watch.ElapsedMillis() << " ms ("
            << tpw->stats.weave.total_tuple_paths << " tuple paths woven)\n";

  // --- 2. Naive baseline --------------------------------------------------
  watch.Restart();
  baselines::NaiveOptions naive_options;
  naive_options.enumeration.max_candidates = 200'000;
  baselines::NaiveStats naive_stats;
  auto naive = baselines::NaiveSampleSearch(engine, schema_graph, row,
                                            naive_options, &naive_stats);
  if (naive.ok()) {
    std::cout << "[naive baseline]   " << naive->size() << " candidates in "
              << watch.ElapsedMillis() << " ms ("
              << naive_stats.enumeration.num_candidates
              << " candidate networks validated)\n";
  } else {
    std::cout << "[naive baseline]   exhausted its memory budget after "
              << naive_stats.enumeration.num_candidates << " candidates ("
              << watch.ElapsedMillis() << " ms)\n";
  }

  // --- 3. Eirene-style fitting --------------------------------------------
  watch.Restart();
  query::ExecOptions one;
  one.max_results = 1;
  auto goal_paths = executor.Execute(task->mapping, {}, one);
  if (!goal_paths.ok() || goal_paths->empty()) {
    std::cerr << "no tuple path for the goal\n";
    return 1;
  }
  baselines::DataExample example;
  {
    const core::TuplePath& tp = goal_paths->front();
    std::set<std::pair<storage::RelationId, storage::RowId>> seen;
    for (size_t v = 0; v < tp.num_vertices(); ++v) {
      const auto key = std::make_pair(
          tp.vertex(static_cast<core::VertexId>(v)).relation,
          tp.row(static_cast<core::VertexId>(v)));
      if (seen.insert(key).second) example.source_tuples.push_back(key);
    }
    example.target_tuple = tp.ProjectTargetValues(db);
  }
  baselines::EireneFitter fitter(&db);
  auto fitted = fitter.Fit({example});
  if (!fitted.ok()) {
    std::cerr << fitted.status() << "\n";
    return 1;
  }
  std::cout << "[Eirene fitting]   " << fitted->size()
            << " mapping(s) fit a " << example.source_tuples.size()
            << "-tuple example in " << watch.ElapsedMillis() << " ms\n";

  // --- 4. Match-driven ----------------------------------------------------
  watch.Restart();
  baselines::MatchDrivenMapper mapper(&engine, &schema_graph);
  const auto proposals = mapper.ProposeCorrespondences(task->column_names);
  std::vector<baselines::Correspondence> confirmed;
  for (size_t col = 0; col < task->column_names.size(); ++col) {
    const core::Projection* p =
        task->mapping.FindProjection(static_cast<int>(col));
    confirmed.push_back(baselines::Correspondence{
        static_cast<int>(col),
        text::AttributeRef{task->mapping.vertex(p->vertex).relation,
                           p->attribute},
        1.0});
  }
  auto alternatives = mapper.EnumerateMappings(confirmed);
  if (!alternatives.ok()) {
    std::cerr << alternatives.status() << "\n";
    return 1;
  }
  size_t goal_rank = alternatives->size();
  for (size_t i = 0; i < alternatives->size(); ++i) {
    if ((*alternatives)[i].Canonical() == task->mapping.Canonical()) {
      goal_rank = i;
      break;
    }
  }
  std::cout << "[match-driven]     proposed " << proposals[0].size()
            << " correspondences/column; the goal is join alternative #"
            << goal_rank + 1 << " of " << alternatives->size() << " ("
            << watch.ElapsedMillis() << " ms)\n\n";

  // --- the winning mapping's plan ----------------------------------------
  query::SampleMap samples;
  for (size_t i = 0; i < row.size(); ++i) {
    samples.emplace(static_cast<int>(i), row[i]);
  }
  auto plan = executor.Explain(task->mapping, samples);
  if (plan.ok()) std::cout << *plan;
  return 0;
}
