// mapping_server: demo of the concurrent service layer. Publishes the
// Figure-2 movie database to one or more catalog tenants, spins up a
// MappingService over the catalog, and drives several concurrent "users"
// through it — each opens a session on its tenant, types sample rows
// keystroke by keystroke, and converges on the Director join path — then
// prints the service metrics snapshot (request outcomes, latency
// histogram percentiles, queue high-water, cache hit rate) plus the
// per-tenant rollups.
//
//   $ ./examples/mapping_server [num_users] [--tenants=N] [--shards=N]
//
// --shards=N publishes every tenant as N row-hash shards
// (catalog::CatalogOptions::shard_count); searches fan out across the
// shard bundle and return byte-identical results for any N.
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "catalog/catalog.h"
#include "service/mapping_service.h"
#include "storage/database.h"

namespace {

using mweaver::storage::AttributeSchema;
using mweaver::storage::Database;
using mweaver::storage::RelationSchema;
using mweaver::storage::Row;
using mweaver::storage::Value;
using mweaver::storage::ValueType;

AttributeSchema Id(const char* name) {
  return {name, ValueType::kInt64, /*searchable=*/false};
}
AttributeSchema Str(const char* name) {
  return {name, ValueType::kString, /*searchable=*/true};
}

// Same Figure-2 source as the quickstart: movie/person joined through
// both director and writer link tables.
Database MakeExampleDb() {
  Database db("example");
  db.AddRelation(RelationSchema("movie", {Id("mid"), Str("title")}))
      .ValueOrDie();
  db.AddRelation(RelationSchema("person", {Id("pid"), Str("name")}))
      .ValueOrDie();
  db.AddRelation(RelationSchema("director", {Id("mid"), Id("pid")}))
      .ValueOrDie();
  db.AddRelation(RelationSchema("writer", {Id("mid"), Id("pid")}))
      .ValueOrDie();
  db.AddForeignKey("director", "mid", "movie", "mid").ValueOrDie();
  db.AddForeignKey("director", "pid", "person", "pid").ValueOrDie();
  db.AddForeignKey("writer", "mid", "movie", "mid").ValueOrDie();
  db.AddForeignKey("writer", "pid", "person", "pid").ValueOrDie();

  auto add = [&](const char* rel, Row row) {
    db.mutable_relation(db.FindRelation(rel))->AppendUnchecked(std::move(row));
  };
  add("movie", {Value(int64_t{0}), Value("Avatar")});
  add("movie", {Value(int64_t{1}), Value("Harry Potter")});
  add("movie", {Value(int64_t{2}), Value("Big Fish")});
  add("person", {Value(int64_t{0}), Value("James Cameron")});
  add("person", {Value(int64_t{1}), Value("David Yates")});
  add("person", {Value(int64_t{2}), Value("J. K. Rowling")});
  add("person", {Value(int64_t{3}), Value("Tim Burton")});
  add("person", {Value(int64_t{4}), Value("John August")});
  add("director", {Value(int64_t{0}), Value(int64_t{0})});
  add("director", {Value(int64_t{1}), Value(int64_t{1})});
  add("director", {Value(int64_t{2}), Value(int64_t{3})});
  add("writer", {Value(int64_t{0}), Value(int64_t{0})});
  add("writer", {Value(int64_t{1}), Value(int64_t{2})});
  add("writer", {Value(int64_t{2}), Value(int64_t{4})});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mweaver;
  size_t num_users = 6;
  size_t num_tenants = 1;
  size_t num_shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tenants=", 10) == 0) {
      num_tenants = std::strtoul(argv[i] + 10, nullptr, 10);
      if (num_tenants == 0) num_tenants = 1;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      num_shards = std::strtoul(argv[i] + 9, nullptr, 10);
      if (num_shards == 0) num_shards = 1;
    } else {
      num_users = std::strtoul(argv[i], nullptr, 10);
    }
  }

  // Each tenant serves its own snapshot of the example source. Tenant "0"
  // doubles as the default tenant so `--tenants=1` exercises the plain
  // single-tenant path.
  catalog::CatalogOptions catalog_options;
  catalog_options.shard_count = static_cast<uint32_t>(num_shards);
  catalog::Catalog cat(catalog_options);
  std::vector<std::string> tenants;
  for (size_t t = 0; t < num_tenants; ++t) {
    tenants.push_back(num_tenants == 1
                          ? std::string(service::kDefaultTenant)
                          : "tenant-" + std::to_string(t));
    auto published = cat.Publish(tenants.back(), MakeExampleDb());
    if (!published.ok()) {
      std::cerr << "publish: " << published.status() << "\n";
      return 1;
    }
  }

  service::ServiceOptions options;
  options.num_workers = 4;
  options.max_queue_depth = 32;
  options.cache_capacity = 64;
  service::MappingService svc(&cat, options);

  std::cout << "mapping_server: " << num_users << " concurrent users over "
            << num_tenants << " tenant(s) x " << num_shards
            << " shard(s), " << options.num_workers
            << " workers, queue depth " << options.max_queue_depth
            << "\n\n";

  std::atomic<size_t> converged{0};
  std::atomic<size_t> cache_hits_seen{0};
  std::vector<std::thread> users;
  for (size_t u = 0; u < num_users; ++u) {
    users.emplace_back([&, u]() {
      // Users are dealt round-robin over the tenants; sessions pin their
      // tenant's snapshot at creation.
      auto created =
          svc.CreateSession(tenants[u % tenants.size()],
                            {"Name", "Director"});
      if (!created.ok()) {
        std::cerr << "user " << u << ": " << created.status() << "\n";
        return;
      }
      const std::vector<std::tuple<size_t, size_t, const char*>> keystrokes{
          {0, 0, "Avatar"},
          {0, 1, "James Cameron"},
          {1, 0, "Harry Potter"},
          {1, 1, "David Yates"},
      };
      service::RequestResult last;
      for (const auto& [row, col, value] : keystrokes) {
        service::InputRequest request;
        request.session_id = *created;
        request.row = row;
        request.col = col;
        request.value = value;
        last = svc.Call(request);
        while (last.outcome == service::RequestOutcome::kOverloaded) {
          std::this_thread::yield();  // closed-loop backoff on backpressure
          last = svc.Call(request);
        }
        if (!last.status.ok()) {
          std::cerr << "user " << u << ": " << last.status << "\n";
          return;
        }
        if (last.cache_hit) cache_hits_seen.fetch_add(1);
      }
      if (last.state == core::SessionState::kConverged) {
        converged.fetch_add(1);
      }
      (void)svc.CloseSession(*created);
    });
  }
  for (std::thread& user : users) user.join();

  const service::MetricsSnapshot metrics = svc.SnapshotMetrics();
  std::cout << "users converged:  " << converged.load() << "/" << num_users
            << "\n";
  std::cout << "metrics:          " << metrics.ToString() << "\n";
  std::cout << "metrics (json):   " << svc.SnapshotMetricsJson() << "\n";
  std::cout << "per-tenant (json): " << svc.PerTenantMetricsJson() << "\n";
  std::cout << "open sessions:    " << svc.sessions().size() << "\n";

  if (converged.load() != num_users) {
    std::cerr << "expected every user to converge\n";
    return 1;
  }
  // Every user types the identical first row, so whenever a tenant hosts
  // at least two users, all but that tenant's first search should be
  // answered from the result cache (keys are tenant-scoped: users on
  // DIFFERENT tenants never share entries).
  if (num_users > num_tenants && metrics.cache_hits == 0) {
    std::cerr << "expected cache hits on repeated first rows\n";
    return 1;
  }
  return 0;
}
