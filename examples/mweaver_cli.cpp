// mweaver_cli: sample-driven schema mapping over *your own* database.
//
//   $ ./examples/mweaver_cli <db.mwdb> <col1> [col2 ...]
//   $ ./examples/mweaver_cli --demo   # writes and uses a demo dump
//
// Loads a database from the mweaverdb dump format (storage/dump.h; see
// csv_integration.cpp for assembling one from CSV files), opens an
// interactive session with the given target columns, and weaves mappings
// from the samples you type. Same commands as interactive_weaver:
//   <row> <col> <value...> | suggest <prefix> | hint | show | sql | reset
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/session.h"
#include "datagen/movie_gen.h"
#include "graph/schema_graph.h"
#include "query/sql.h"
#include "storage/dump.h"
#include "text/autocomplete.h"
#include "text/fulltext_engine.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <db.mwdb> <col1> [col2 ...]\n"
            << "       " << argv0 << " --demo\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> columns;
  if (argc >= 2 && std::string(argv[1]) == "--demo") {
    // Self-contained demo: dump a small synthetic source and use it.
    mweaver::datagen::YahooMoviesConfig config;
    config.num_movies = 60;
    const auto demo = mweaver::datagen::MakeYahooMovies(config);
    path = "/tmp/mweaver_demo.mwdb";
    if (auto st = mweaver::storage::DumpDatabaseToFile(demo, path);
        !st.ok()) {
      std::cerr << st << "\n";
      return 1;
    }
    columns = {"name", "director", "producer"};
    std::cout << "demo database written to " << path << "\n";
  } else if (argc >= 3) {
    path = argv[1];
    for (int i = 2; i < argc; ++i) columns.emplace_back(argv[i]);
  } else {
    return Usage(argv[0]);
  }

  auto db = mweaver::storage::LoadDatabaseFromFile(path);
  if (!db.ok()) {
    std::cerr << "cannot load database: " << db.status() << "\n";
    return 1;
  }
  std::cout << "loaded '" << db->name() << "': " << db->num_relations()
            << " relations, " << db->TotalAttributes() << " attributes, "
            << db->TotalRows() << " rows\n";
  if (auto st = db->CheckReferentialIntegrity(); !st.ok()) {
    std::cerr << "warning: " << st << "\n";
  }

  const mweaver::text::FullTextEngine engine(
      &*db, mweaver::text::MatchPolicy::Substring().WithNumeric());
  const mweaver::graph::SchemaGraph schema_graph(&*db);
  const mweaver::text::ValueDictionary dictionary(&*db);
  mweaver::core::Session session(&engine, &schema_graph, columns);
  session.set_reject_irrelevant_samples(true);

  std::cout << "target:";
  for (const std::string& c : columns) std::cout << " [" << c << "]";
  std::cout << "\nfill row 0 completely to search; 'quit' exits.\n";

  std::string line;
  while (std::cout << "mweaver> " && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "reset") {
      session.Reset();
      continue;
    }
    if (cmd == "suggest") {
      std::string prefix;
      std::getline(in, prefix);
      for (const std::string& s :
           dictionary.Suggest(mweaver::Trim(prefix))) {
        std::cout << "  " << s << "\n";
      }
      continue;
    }
    if (cmd == "hint") {
      auto hints = session.SuggestRows();
      if (hints.ok()) {
        for (const auto& hint : *hints) {
          std::cout << "  ";
          for (const std::string& v : hint.row) std::cout << v << " | ";
          std::cout << "(kept " << hint.supporting_candidates << "/"
                    << hint.total_candidates << ")\n";
        }
      }
      continue;
    }
    if (cmd == "show" || cmd == "sql") {
      std::cout << session.candidates().size() << " candidate(s), state="
                << SessionStateName(session.state()) << "\n";
      size_t shown = 0;
      for (const auto& candidate : session.candidates()) {
        if (++shown > 5) break;
        std::cout << "  " << shown << ". "
                  << candidate.mapping.ToString(*db) << "\n";
      }
      if (cmd == "sql" && !session.candidates().empty()) {
        std::map<int, std::string> names;
        for (size_t c = 0; c < columns.size(); ++c) {
          names[static_cast<int>(c)] = columns[c];
        }
        std::cout << mweaver::query::ToSql(
                         *db, session.candidates().front().mapping, names)
                  << "\n";
      }
      continue;
    }
    size_t row = 0, col = 0;
    std::istringstream cell_in(line);
    if (!(cell_in >> row >> col)) {
      std::cout << "commands: <row> <col> <value> | suggest <prefix> | "
                   "hint | show | sql | reset | quit\n";
      continue;
    }
    std::string value;
    std::getline(cell_in, value);
    const mweaver::Status status =
        session.Input(row, col, mweaver::Trim(value));
    if (!status.ok()) {
      std::cout << "error: " << status << "\n";
      continue;
    }
    if (session.last_input_rejected()) {
      std::cout << "warning: sample contradicts every candidate — ignored\n";
      continue;
    }
    std::cout << session.candidates().size() << " candidate(s), state="
              << SessionStateName(session.state()) << "\n";
    if (session.converged()) {
      std::cout << "converged: " << session.best().mapping.ToString(*db)
                << "\n";
    }
  }
  return 0;
}
