// PathExecutor: evaluates mapping paths against the source instance.
//
// This is the engine behind three paper operations:
//  * pairwise tuple-path creation (Section 4.5.3): "translate the mapping
//    into an approximate search query ... execute it in the source database";
//  * pruning by mapping structure (Section 5): emptiness checks of keyword-
//    constrained candidate mappings;
//  * materializing M(DS) target rows (used by the workload generator, the
//    Eirene baseline and the naive baseline's validation step).
//
// Execution strategy: start from the most selective keyword-constrained
// vertex and enumerate tuple assignments by following foreign-key hash
// indexes along the tree's edges — never scanning unrelated tuples.
//
// Normal form: two neighbors of the same vertex joined via the same foreign
// key and orientation must be assigned *distinct* tuples. Assignments
// violating this collapse to a structurally smaller mapping path (the two
// occurrences are the same tuple), which is exactly what TPW's Weave merges
// into one vertex; enforcing it here keeps the executor's notion of
// validity aligned with the tuple paths TPW constructs, for both the
// pairwise step and the naive baseline's validation queries.
#ifndef MWEAVER_QUERY_EXECUTOR_H_
#define MWEAVER_QUERY_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/execution_context.h"
#include "core/mapping_path.h"
#include "core/tuple_path.h"
#include "text/fulltext_engine.h"

namespace mweaver::query {

/// \brief Keyword constraints: target column -> user sample. Columns absent
/// from the map are unconstrained.
using SampleMap = std::map<int, std::string>;

struct ExecOptions {
  /// Stop after this many tuple paths (0 = unlimited).
  size_t max_results = 0;
  /// Stop as soon as one result is found (emptiness / validity checks).
  bool stop_at_first = false;
};

/// \brief Evaluates mapping paths over a full-text-indexed database.
class PathExecutor {
 public:
  /// \brief `engine` must outlive the executor.
  explicit PathExecutor(const text::FullTextEngine* engine);

  const text::FullTextEngine& engine() const { return *engine_; }

  /// \brief All tuple paths instantiating `mapping` whose projected cells
  /// noisily contain the given samples. Fails only on malformed mappings
  /// (e.g. a projection for a column with no vertex). When `ctx` is given,
  /// the enumeration polls its deadline/cancel token and returns the
  /// results found so far on a stop.
  Result<std::vector<core::TuplePath>> Execute(
      const core::MappingPath& mapping, const SampleMap& samples,
      const ExecOptions& options = {},
      core::ExecutionContext* ctx = nullptr) const;

  /// \brief True iff at least one supporting tuple path exists. A stopped
  /// `ctx` reports false for support not yet found.
  Result<bool> HasSupport(const core::MappingPath& mapping,
                          const SampleMap& samples,
                          core::ExecutionContext* ctx = nullptr) const;

  /// \brief Human-readable EXPLAIN of the evaluation plan: start-vertex
  /// choice (most selective constraint), index-join order, candidate-set
  /// sizes, and distinctness guards.
  Result<std::string> Explain(const core::MappingPath& mapping,
                              const SampleMap& samples = {}) const;

  /// \brief Distinct projected target rows of M(DS) (display strings ordered
  /// by target column), up to `max_rows` tuple paths enumerated (0 =
  /// unlimited).
  Result<std::vector<std::vector<std::string>>> EvaluateTarget(
      const core::MappingPath& mapping, size_t max_rows = 0,
      core::ExecutionContext* ctx = nullptr) const;

 private:
  const text::FullTextEngine* engine_;
};

}  // namespace mweaver::query

#endif  // MWEAVER_QUERY_EXECUTOR_H_
