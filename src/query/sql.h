// SQL rendering of mapping paths: the executable transformation handed to
// the user when the interaction converges ("a mapping path is equivalent to
// a schema mapping in that it can be translated to a SQL query", §4.4).
#ifndef MWEAVER_QUERY_SQL_H_
#define MWEAVER_QUERY_SQL_H_

#include <map>
#include <string>
#include <vector>

#include "core/mapping_path.h"
#include "storage/database.h"

namespace mweaver::query {

/// \brief Renders `mapping` as a SELECT over `db`.
///
/// `target_columns` names the output columns by target index (missing
/// entries fall back to "col<i>"). Projected attributes become the SELECT
/// list; the relation path becomes the FROM/JOIN clauses with one alias per
/// vertex (t0, t1, ...); optional `samples` become LIKE predicates mirroring
/// the approximate-search constraints.
std::string ToSql(const storage::Database& db,
                  const core::MappingPath& mapping,
                  const std::map<int, std::string>& target_columns = {},
                  const std::map<int, std::string>& samples = {});

}  // namespace mweaver::query

#endif  // MWEAVER_QUERY_SQL_H_
