#include "query/executor.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/path_internal.h"

namespace mweaver::query {

namespace {

using core::MappingPath;
using core::PathVertex;
using core::Projection;
using core::TuplePath;
using core::VertexId;
using core::kNoVertex;
using core::internal::AdjEdge;
using core::internal::BuildAdjacency;

// Per-vertex keyword constraints gathered from the projections that have a
// sample: (attribute, sample) pairs.
struct VertexConstraint {
  std::vector<std::pair<storage::AttributeId, std::string>> predicates;
  // Sorted row ids satisfying every predicate; only meaningful when
  // !predicates.empty().
  std::vector<storage::RowId> rows;
};

// One step of the traversal order: assign `vertex`, whose candidate rows
// come from joining `from` via `fk`.
struct Step {
  VertexId vertex;
  VertexId from;                       // kNoVertex for the start vertex
  storage::AttributeId vertex_attr;    // join attr on `vertex`'s side
  storage::AttributeId from_attr;      // join attr on `from`'s side
  // Earlier-assigned vertices that are neighbors of `from` via the same FK
  // and orientation as `vertex`: their rows must differ from `vertex`'s
  // (see the normal-form note in executor.h).
  std::vector<VertexId> distinct_from;
};

bool SortedContains(const std::vector<storage::RowId>& sorted,
                    storage::RowId row) {
  return std::binary_search(sorted.begin(), sorted.end(), row);
}

// The complete evaluation plan for one mapping + constraint set.
struct Plan {
  std::vector<VertexConstraint> constraints;  // per mapping vertex
  VertexId start = 0;
  std::vector<Step> steps;  // empty iff a constraint set is empty
  bool provably_empty = false;
};

// Plan construction shared by Execute and Explain: gather per-vertex
// constraint row sets, pick the most selective start vertex, and lay out
// the BFS join order with the normal-form distinctness lists. `counters`
// (may be null) accumulates the keyword probes' statistics.
Result<Plan> BuildPlan(const text::FullTextEngine& engine,
                       const MappingPath& mapping, const SampleMap& samples,
                       text::ProbeCounters* counters) {
  const storage::Database& db = engine.db();
  const size_t n = mapping.num_vertices();
  if (n == 0) {
    return Status::InvalidArgument("empty mapping path");
  }
  for (const Projection& p : mapping.projections()) {
    if (p.vertex < 0 || static_cast<size_t>(p.vertex) >= n) {
      return Status::InvalidArgument(
          StrFormat("projection for column %d references vertex %d of a "
                    "%zu-vertex path",
                    p.target_column, p.vertex, n));
    }
  }

  Plan plan;
  // 1. Gather per-vertex keyword constraints and their verified row sets.
  plan.constraints.resize(n);
  for (const Projection& p : mapping.projections()) {
    auto it = samples.find(p.target_column);
    if (it == samples.end() || it->second.empty()) continue;
    plan.constraints[static_cast<size_t>(p.vertex)].predicates.emplace_back(
        p.attribute, it->second);
  }
  for (size_t v = 0; v < n; ++v) {
    VertexConstraint& c = plan.constraints[v];
    if (c.predicates.empty()) continue;
    const storage::RelationId rel =
        mapping.vertex(static_cast<VertexId>(v)).relation;
    bool first = true;
    for (const auto& [attr, sample] : c.predicates) {
      const text::RowSet rows =
          engine.MatchingRows(text::AttributeRef{rel, attr}, sample, counters);
      if (first) {
        c.rows = *rows;
        first = false;
      } else {
        std::vector<storage::RowId> merged;
        std::set_intersection(c.rows.begin(), c.rows.end(), rows->begin(),
                              rows->end(), std::back_inserter(merged));
        c.rows = std::move(merged);
      }
      if (c.rows.empty()) {
        plan.provably_empty = true;
        return plan;
      }
    }
  }

  // 2. Pick the start vertex: the constrained vertex with the fewest
  // candidates, falling back to vertex 0 for unconstrained queries.
  size_t best = SIZE_MAX;
  for (size_t v = 0; v < n; ++v) {
    if (!plan.constraints[v].predicates.empty() &&
        plan.constraints[v].rows.size() < best) {
      best = plan.constraints[v].rows.size();
      plan.start = static_cast<VertexId>(v);
    }
  }

  // 3. Traversal order: BFS from the start so each step joins to an
  // already-assigned vertex.
  const auto adj = BuildAdjacency(mapping.vertices());
  // assign_order[v] = position of v in `steps` (SIZE_MAX = unassigned).
  std::vector<size_t> assign_order(n, SIZE_MAX);
  assign_order[static_cast<size_t>(plan.start)] = 0;
  plan.steps.push_back(Step{plan.start, kNoVertex,
                            storage::kInvalidAttribute,
                            storage::kInvalidAttribute, {}});
  std::vector<VertexId> frontier{plan.start};
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (const AdjEdge& e : adj[static_cast<size_t>(u)]) {
        if (assign_order[static_cast<size_t>(e.neighbor)] != SIZE_MAX) {
          continue;
        }
        const storage::ForeignKey& fk =
            db.foreign_keys()[static_cast<size_t>(e.fk)];
        const storage::AttributeId v_attr =
            e.neighbor_is_from_side ? fk.from_attribute : fk.to_attribute;
        const storage::AttributeId u_attr =
            e.neighbor_is_from_side ? fk.to_attribute : fk.from_attribute;
        Step step{e.neighbor, u, v_attr, u_attr, {}};
        // Normal form: the new vertex must differ from every already-
        // assigned neighbor of `u` reached via the same FK/orientation.
        for (const AdjEdge& other : adj[static_cast<size_t>(u)]) {
          if (other.neighbor != e.neighbor && other.fk == e.fk &&
              other.neighbor_is_from_side == e.neighbor_is_from_side &&
              assign_order[static_cast<size_t>(other.neighbor)] !=
                  SIZE_MAX) {
            step.distinct_from.push_back(other.neighbor);
          }
        }
        assign_order[static_cast<size_t>(e.neighbor)] = plan.steps.size();
        plan.steps.push_back(std::move(step));
        next.push_back(e.neighbor);
      }
    }
    frontier = std::move(next);
  }
  MW_CHECK_EQ(plan.steps.size(), n) << "mapping path is not connected";
  return plan;
}

}  // namespace

PathExecutor::PathExecutor(const text::FullTextEngine* engine)
    : engine_(engine) {
  MW_CHECK(engine != nullptr);
}

Result<std::vector<core::TuplePath>> PathExecutor::Execute(
    const core::MappingPath& mapping, const SampleMap& samples,
    const ExecOptions& options, core::ExecutionContext* ctx) const {
  const storage::Database& db = engine_->db();
  const size_t n = mapping.num_vertices();
  MW_ASSIGN_OR_RETURN(
      Plan plan,
      BuildPlan(*engine_, mapping, samples,
                ctx != nullptr ? &ctx->probe_counters() : nullptr));
  if (plan.provably_empty) return std::vector<core::TuplePath>{};
  const std::vector<VertexConstraint>& constraints = plan.constraints;
  const std::vector<Step>& steps = plan.steps;

  // 4. Depth-first enumeration of row assignments along the steps.
  std::vector<core::TuplePath> results;
  std::vector<storage::RowId> assignment(n, -1);

  // Builds a TuplePath mirroring the mapping's own rooted structure, so
  // projections transfer vertex-for-vertex.
  auto emit = [&]() {
    TuplePath tp = TuplePath::SingleVertex(mapping.vertex(0).relation,
                                           assignment[0]);
    for (size_t v = 1; v < n; ++v) {
      const PathVertex& pv = mapping.vertex(static_cast<VertexId>(v));
      tp.AddVertex(pv.relation, assignment[v], pv.parent, pv.fk_to_parent,
                   pv.is_from_side);
    }
    for (const Projection& p : mapping.projections()) {
      double score = 1.0;
      auto it = samples.find(p.target_column);
      if (it != samples.end() && !it->second.empty()) {
        const storage::RelationId rel = mapping.vertex(p.vertex).relation;
        score = engine_->RowMatchScore(
            text::AttributeRef{rel, p.attribute},
            assignment[static_cast<size_t>(p.vertex)], it->second);
      }
      tp.AddProjection(p.target_column, p.vertex, p.attribute, score);
    }
    results.push_back(std::move(tp));
  };

  bool done = false;
  std::function<void(size_t)> enumerate = [&](size_t step_index) {
    if (done) return;
    // One poll per enumeration node bounds the overrun to a single
    // assignment's fan-out; ShouldStop throttles the actual clock reads.
    if (ctx != nullptr && ctx->ShouldStop()) {
      done = true;
      return;
    }
    if (step_index == steps.size()) {
      emit();
      if (options.stop_at_first ||
          (options.max_results > 0 && results.size() >= options.max_results)) {
        done = true;
      }
      return;
    }
    const Step& step = steps[step_index];
    const size_t v = static_cast<size_t>(step.vertex);
    const storage::Relation& rel =
        db.relation(mapping.vertex(step.vertex).relation);

    if (step.from == kNoVertex) {
      // Start vertex: iterate its constrained candidates, or every row.
      if (!constraints[v].predicates.empty()) {
        for (storage::RowId row : constraints[v].rows) {
          assignment[v] = row;
          enumerate(step_index + 1);
          if (done) return;
        }
      } else {
        for (size_t r = 0; r < rel.num_rows(); ++r) {
          if (rel.is_deleted(static_cast<storage::RowId>(r))) continue;
          assignment[v] = static_cast<storage::RowId>(r);
          enumerate(step_index + 1);
          if (done) return;
        }
      }
      return;
    }

    const storage::Relation& from_rel =
        db.relation(mapping.vertex(step.from).relation);
    const storage::Value& join_value = from_rel.at(
        assignment[static_cast<size_t>(step.from)], step.from_attr);
    if (join_value.is_null()) return;  // inner join: NULL never matches
    const std::vector<storage::RowId>& joined =
        rel.IndexOn(step.vertex_attr).Lookup(join_value);
    for (storage::RowId row : joined) {
      if (!constraints[v].predicates.empty() &&
          !SortedContains(constraints[v].rows, row)) {
        continue;
      }
      bool duplicate_sibling = false;
      for (VertexId w : step.distinct_from) {
        if (assignment[static_cast<size_t>(w)] == row) {
          duplicate_sibling = true;
          break;
        }
      }
      if (duplicate_sibling) continue;
      assignment[v] = row;
      enumerate(step_index + 1);
      if (done) return;
    }
  };
  enumerate(0);
  return results;
}

Result<std::string> PathExecutor::Explain(const core::MappingPath& mapping,
                                          const SampleMap& samples) const {
  const storage::Database& db = engine_->db();
  MW_ASSIGN_OR_RETURN(Plan plan,
                      BuildPlan(*engine_, mapping, samples, nullptr));
  std::string out = "plan for " + mapping.ToString(db) + "\n";
  if (plan.provably_empty) {
    out += "  provably empty: a keyword constraint matches no rows\n";
    return out;
  }
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const Step& step = plan.steps[i];
    const storage::Relation& rel =
        db.relation(mapping.vertex(step.vertex).relation);
    const VertexConstraint& c =
        plan.constraints[static_cast<size_t>(step.vertex)];
    out += StrFormat("  %zu. ", i + 1);
    if (step.from == kNoVertex) {
      out += "scan " + rel.name();
      if (c.predicates.empty()) {
        out += StrFormat(" (%zu rows)", rel.num_rows());
      } else {
        out += StrFormat(" via full-text candidates (%zu rows)",
                         c.rows.size());
      }
    } else {
      const storage::Relation& from_rel =
          db.relation(mapping.vertex(step.from).relation);
      out += StrFormat(
          "index join %s.%s = %s.%s", rel.name().c_str(),
          rel.schema().attribute(step.vertex_attr).name.c_str(),
          from_rel.name().c_str(),
          from_rel.schema().attribute(step.from_attr).name.c_str());
      if (!c.predicates.empty()) {
        out += StrFormat(" ∩ full-text candidates (%zu rows)",
                         c.rows.size());
      }
      if (!step.distinct_from.empty()) {
        out += StrFormat(" [distinct from %zu sibling(s)]",
                         step.distinct_from.size());
      }
    }
    out += "\n";
  }
  return out;
}

Result<bool> PathExecutor::HasSupport(const core::MappingPath& mapping,
                                      const SampleMap& samples,
                                      core::ExecutionContext* ctx) const {
  ExecOptions options;
  options.stop_at_first = true;
  MW_ASSIGN_OR_RETURN(std::vector<core::TuplePath> paths,
                      Execute(mapping, samples, options, ctx));
  return !paths.empty();
}

Result<std::vector<std::vector<std::string>>> PathExecutor::EvaluateTarget(
    const core::MappingPath& mapping, size_t max_rows,
    core::ExecutionContext* ctx) const {
  ExecOptions options;
  options.max_results = max_rows;
  MW_ASSIGN_OR_RETURN(std::vector<core::TuplePath> paths,
                      Execute(mapping, SampleMap{}, options, ctx));
  std::set<std::vector<std::string>> distinct;
  for (const core::TuplePath& tp : paths) {
    distinct.insert(tp.ProjectTargetValues(engine_->db()));
  }
  return std::vector<std::vector<std::string>>(distinct.begin(),
                                               distinct.end());
}

}  // namespace mweaver::query
