#include "query/sql.h"

#include "common/string_util.h"

namespace mweaver::query {

namespace {

std::string Escaped(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\'') out += '\'';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToSql(const storage::Database& db,
                  const core::MappingPath& mapping,
                  const std::map<int, std::string>& target_columns,
                  const std::map<int, std::string>& samples) {
  using core::Projection;
  using core::VertexId;

  auto alias = [](VertexId v) { return "t" + std::to_string(v); };

  std::vector<std::string> select_items;
  for (const Projection& p : mapping.projections()) {
    const storage::Relation& rel =
        db.relation(mapping.vertex(p.vertex).relation);
    std::string out_name = "col" + std::to_string(p.target_column);
    auto it = target_columns.find(p.target_column);
    if (it != target_columns.end()) out_name = it->second;
    select_items.push_back(
        alias(p.vertex) + "." + rel.schema().attribute(p.attribute).name +
        " AS " + out_name);
  }

  std::string sql = "SELECT DISTINCT " + Join(select_items, ", ");
  const storage::Relation& root = db.relation(mapping.vertex(0).relation);
  sql += "\nFROM " + root.name() + " AS " + alias(0);
  for (size_t v = 1; v < mapping.num_vertices(); ++v) {
    const core::PathVertex& pv = mapping.vertex(static_cast<VertexId>(v));
    const storage::Relation& rel = db.relation(pv.relation);
    const storage::ForeignKey& fk =
        db.foreign_keys()[static_cast<size_t>(pv.fk_to_parent)];
    const storage::AttributeId my_attr =
        pv.is_from_side ? fk.from_attribute : fk.to_attribute;
    const storage::AttributeId parent_attr =
        pv.is_from_side ? fk.to_attribute : fk.from_attribute;
    const storage::Relation& parent_rel =
        db.relation(mapping.vertex(pv.parent).relation);
    sql += StrFormat(
        "\nJOIN %s AS %s ON %s.%s = %s.%s", rel.name().c_str(),
        alias(static_cast<VertexId>(v)).c_str(),
        alias(static_cast<VertexId>(v)).c_str(),
        rel.schema().attribute(my_attr).name.c_str(),
        alias(pv.parent).c_str(),
        parent_rel.schema().attribute(parent_attr).name.c_str());
  }

  std::vector<std::string> predicates;
  for (const Projection& p : mapping.projections()) {
    auto it = samples.find(p.target_column);
    if (it == samples.end() || it->second.empty()) continue;
    const storage::Relation& rel =
        db.relation(mapping.vertex(p.vertex).relation);
    predicates.push_back(
        alias(p.vertex) + "." + rel.schema().attribute(p.attribute).name +
        " LIKE '%" + Escaped(it->second) + "%'");
  }
  if (!predicates.empty()) {
    sql += "\nWHERE " + Join(predicates, " AND ");
  }
  sql += ";";
  return sql;
}

}  // namespace mweaver::query
