#include "service/metrics.h"

#include "common/string_util.h"

namespace mweaver::service {

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kOverloaded:
      return "overloaded";
    case RequestOutcome::kTruncated:
      return "truncated";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

double MetricsSnapshot::CacheHitRate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                static_cast<double>(total);
}

double MetricsSnapshot::TextMemoHitRate() const {
  return text_probes == 0 ? 0.0 : static_cast<double>(text_memo_hits) /
                                      static_cast<double>(text_probes);
}

namespace {

double PercentileOfBuckets(const std::vector<uint64_t>& buckets, double p) {
  uint64_t total = 0;
  for (uint64_t count : buckets) total += count;
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      return ServiceMetrics::BucketUpperMs(i);
    }
  }
  return ServiceMetrics::BucketUpperMs(buckets.size() - 1);
}

}  // namespace

double MetricsSnapshot::ApproxLatencyPercentileMs(double p) const {
  return PercentileOfBuckets(latency_buckets, p);
}

double MetricsSnapshot::ApproxStageLatencyPercentileMs(
    core::SearchStage stage, double p) const {
  const size_t s = static_cast<size_t>(stage);
  if (s >= stage_latency_buckets.size()) return 0.0;
  return PercentileOfBuckets(stage_latency_buckets[s], p);
}

std::string MetricsSnapshot::ToString() const {
  std::string out = StrFormat(
      "requests: %llu ok, %llu truncated, %llu degraded, %llu failed, "
      "%llu overloaded | retries: %llu | "
      "cache: %llu hits / %llu misses (%.1f%%) | queue high-water: %llu | "
      "latency p50/p95/p99 <= %.2f/%.2f/%.2f ms",
      static_cast<unsigned long long>(requests_ok),
      static_cast<unsigned long long>(requests_truncated),
      static_cast<unsigned long long>(requests_degraded),
      static_cast<unsigned long long>(requests_failed),
      static_cast<unsigned long long>(requests_overloaded),
      static_cast<unsigned long long>(search_retries),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), CacheHitRate() * 100.0,
      static_cast<unsigned long long>(queue_high_water),
      ApproxLatencyPercentileMs(0.50), ApproxLatencyPercentileMs(0.95),
      ApproxLatencyPercentileMs(0.99));
  if (updates_ok + updates_failed > 0) {
    out += StrFormat(
        " | updates: %llu ok, %llu failed (+%llu/-%llu rows)",
        static_cast<unsigned long long>(updates_ok),
        static_cast<unsigned long long>(updates_failed),
        static_cast<unsigned long long>(update_rows_inserted),
        static_cast<unsigned long long>(update_rows_deleted));
  }
  for (size_t s = 0; s < stage_latency_buckets.size(); ++s) {
    uint64_t total = 0;
    for (uint64_t count : stage_latency_buckets[s]) total += count;
    if (total == 0) continue;
    const core::SearchStage stage = static_cast<core::SearchStage>(s);
    out += StrFormat(" | %s p50/p95 <= %.2f/%.2f ms",
                     core::SearchStageName(stage),
                     ApproxStageLatencyPercentileMs(stage, 0.50),
                     ApproxStageLatencyPercentileMs(stage, 0.95));
    if (s < stage_worker_peaks.size() && stage_worker_peaks[s] > 1) {
      out += StrFormat(" (w%llu)",
                       static_cast<unsigned long long>(stage_worker_peaks[s]));
    }
  }
  if (text_probes > 0) {
    out += StrFormat(
        " | text probes: %llu (memo %llu/%llu, %.1f%% hit; cand %llu; "
        "scan %llu; allrows %llu)",
        static_cast<unsigned long long>(text_probes),
        static_cast<unsigned long long>(text_memo_hits),
        static_cast<unsigned long long>(text_memo_misses),
        TextMemoHitRate() * 100.0,
        static_cast<unsigned long long>(text_candidates_examined),
        static_cast<unsigned long long>(text_scan_fallbacks),
        static_cast<unsigned long long>(text_all_rows_fallbacks));
  }
  return out;
}

namespace {

uint64_t SaturatingSub(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }

void AppendJsonKey(std::string* out, const char* key, bool* first) {
  if (!*first) *out += ',';
  *first = false;
  *out += '"';
  *out += key;
  *out += "\":";
}

void AppendJsonUInt(std::string* out, const char* key, uint64_t value,
                    bool* first) {
  AppendJsonKey(out, key, first);
  *out += StrFormat("%llu", static_cast<unsigned long long>(value));
}

void AppendJsonDouble(std::string* out, const char* key, double value,
                      bool* first) {
  AppendJsonKey(out, key, first);
  *out += StrFormat("%.6g", value);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendJsonUInt(&out, "requests_ok", requests_ok, &first);
  AppendJsonUInt(&out, "requests_degraded", requests_degraded, &first);
  AppendJsonUInt(&out, "requests_overloaded", requests_overloaded, &first);
  AppendJsonUInt(&out, "requests_truncated", requests_truncated, &first);
  AppendJsonUInt(&out, "requests_failed", requests_failed, &first);
  AppendJsonUInt(&out, "search_retries", search_retries, &first);
  AppendJsonUInt(&out, "updates_ok", updates_ok, &first);
  AppendJsonUInt(&out, "updates_failed", updates_failed, &first);
  AppendJsonUInt(&out, "update_rows_inserted", update_rows_inserted, &first);
  AppendJsonUInt(&out, "update_rows_deleted", update_rows_deleted, &first);
  AppendJsonUInt(&out, "cache_hits", cache_hits, &first);
  AppendJsonUInt(&out, "cache_misses", cache_misses, &first);
  AppendJsonDouble(&out, "cache_hit_rate", CacheHitRate(), &first);
  AppendJsonUInt(&out, "queue_high_water", queue_high_water, &first);
  AppendJsonDouble(&out, "approx_latency_p50_ms",
                   ApproxLatencyPercentileMs(0.50), &first);
  AppendJsonDouble(&out, "approx_latency_p95_ms",
                   ApproxLatencyPercentileMs(0.95), &first);
  AppendJsonDouble(&out, "approx_latency_p99_ms",
                   ApproxLatencyPercentileMs(0.99), &first);
  AppendJsonUInt(&out, "text_probes", text_probes, &first);
  AppendJsonUInt(&out, "text_memo_hits", text_memo_hits, &first);
  AppendJsonUInt(&out, "text_memo_misses", text_memo_misses, &first);
  AppendJsonUInt(&out, "text_candidates_examined", text_candidates_examined,
                 &first);
  AppendJsonUInt(&out, "text_scan_fallbacks", text_scan_fallbacks, &first);
  AppendJsonUInt(&out, "text_all_rows_fallbacks", text_all_rows_fallbacks,
                 &first);

  AppendJsonKey(&out, "stages", &first);
  out += '{';
  bool first_stage = true;
  for (size_t s = 0; s < stage_latency_buckets.size(); ++s) {
    uint64_t total = 0;
    for (uint64_t count : stage_latency_buckets[s]) total += count;
    if (total == 0) continue;
    const auto stage = static_cast<core::SearchStage>(s);
    if (!first_stage) out += ',';
    first_stage = false;
    out += '"';
    out += core::SearchStageName(stage);
    out += "\":{";
    bool first_field = true;
    AppendJsonUInt(&out, "recorded", total, &first_field);
    AppendJsonDouble(&out, "p50_ms",
                     ApproxStageLatencyPercentileMs(stage, 0.50),
                     &first_field);
    AppendJsonDouble(&out, "p95_ms",
                     ApproxStageLatencyPercentileMs(stage, 0.95),
                     &first_field);
    if (s < stage_worker_peaks.size()) {
      AppendJsonUInt(&out, "worker_peak", stage_worker_peaks[s],
                     &first_field);
    }
    out += '}';
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  delta.requests_ok = SaturatingSub(requests_ok, earlier.requests_ok);
  delta.requests_overloaded =
      SaturatingSub(requests_overloaded, earlier.requests_overloaded);
  delta.requests_truncated =
      SaturatingSub(requests_truncated, earlier.requests_truncated);
  delta.requests_degraded =
      SaturatingSub(requests_degraded, earlier.requests_degraded);
  delta.requests_failed =
      SaturatingSub(requests_failed, earlier.requests_failed);
  delta.cache_hits = SaturatingSub(cache_hits, earlier.cache_hits);
  delta.cache_misses = SaturatingSub(cache_misses, earlier.cache_misses);
  delta.search_retries = SaturatingSub(search_retries, earlier.search_retries);
  delta.updates_ok = SaturatingSub(updates_ok, earlier.updates_ok);
  delta.updates_failed = SaturatingSub(updates_failed, earlier.updates_failed);
  delta.update_rows_inserted =
      SaturatingSub(update_rows_inserted, earlier.update_rows_inserted);
  delta.update_rows_deleted =
      SaturatingSub(update_rows_deleted, earlier.update_rows_deleted);
  delta.text_probes = SaturatingSub(text_probes, earlier.text_probes);
  delta.text_memo_hits = SaturatingSub(text_memo_hits, earlier.text_memo_hits);
  delta.text_memo_misses =
      SaturatingSub(text_memo_misses, earlier.text_memo_misses);
  delta.text_candidates_examined = SaturatingSub(
      text_candidates_examined, earlier.text_candidates_examined);
  delta.text_scan_fallbacks =
      SaturatingSub(text_scan_fallbacks, earlier.text_scan_fallbacks);
  delta.text_all_rows_fallbacks =
      SaturatingSub(text_all_rows_fallbacks, earlier.text_all_rows_fallbacks);
  // queue_high_water, latency/stage buckets and worker peaks keep this
  // snapshot's values (see header).
  return delta;
}

double ServiceMetrics::BucketUpperMs(size_t i) {
  if (i + 1 >= kNumBuckets) return 1e18;  // +inf bucket
  return 0.25 * static_cast<double>(uint64_t{1} << i);
}

void ServiceMetrics::RecordRequest(RequestOutcome outcome, double latency_ms) {
  switch (outcome) {
    case RequestOutcome::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestOutcome::kOverloaded:
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      return;  // rejected at admission: no latency to record
    case RequestOutcome::kTruncated:
      truncated_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestOutcome::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestOutcome::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  size_t bucket = 0;
  while (bucket + 1 < kNumBuckets && latency_ms > BucketUpperMs(bucket)) {
    ++bucket;
  }
  latency_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordQueueDepth(size_t depth) {
  uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void ServiceMetrics::RecordCacheLookup(bool hit) {
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordSearchRetry() {
  search_retries_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordUpdate(bool ok, uint64_t rows_inserted,
                                  uint64_t rows_deleted) {
  if (!ok) {
    updates_failed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  updates_ok_.fetch_add(1, std::memory_order_relaxed);
  update_rows_inserted_.fetch_add(rows_inserted, std::memory_order_relaxed);
  update_rows_deleted_.fetch_add(rows_deleted, std::memory_order_relaxed);
}

namespace {

void MaxInto(std::atomic<uint64_t>& peak, uint64_t value) {
  uint64_t seen = peak.load(std::memory_order_relaxed);
  while (value > seen && !peak.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void ServiceMetrics::RecordSearchTrace(const core::ExecutionTrace& trace) {
  for (size_t s = 0; s < core::kNumSearchStages; ++s) {
    if (static_cast<core::SearchStage>(s) == core::SearchStage::kPrune) {
      continue;  // interactive-path stage: RecordPruneTrace owns it
    }
    const double ms = trace.stages[s].wall_ms;
    size_t bucket = 0;
    while (bucket + 1 < kNumBuckets && ms > BucketUpperMs(bucket)) {
      ++bucket;
    }
    stage_buckets_[s][bucket].fetch_add(1, std::memory_order_relaxed);
    MaxInto(stage_worker_peaks_[s], trace.stages[s].workers);
  }
  const text::ProbeStats& probes = trace.text_probes;
  text_probes_.fetch_add(probes.probes, std::memory_order_relaxed);
  text_memo_hits_.fetch_add(probes.memo_hits, std::memory_order_relaxed);
  text_memo_misses_.fetch_add(probes.memo_misses, std::memory_order_relaxed);
  text_candidates_examined_.fetch_add(probes.candidates_examined,
                                      std::memory_order_relaxed);
  text_scan_fallbacks_.fetch_add(probes.scan_fallbacks,
                                 std::memory_order_relaxed);
  text_all_rows_fallbacks_.fetch_add(probes.all_rows_fallbacks,
                                     std::memory_order_relaxed);
}

void ServiceMetrics::RecordPruneTrace(const core::ExecutionTrace& trace) {
  constexpr size_t kPruneIdx = static_cast<size_t>(core::SearchStage::kPrune);
  const double ms = trace.stages[kPruneIdx].wall_ms;
  size_t bucket = 0;
  while (bucket + 1 < kNumBuckets && ms > BucketUpperMs(bucket)) {
    ++bucket;
  }
  stage_buckets_[kPruneIdx][bucket].fetch_add(1, std::memory_order_relaxed);
  MaxInto(stage_worker_peaks_[kPruneIdx], trace.stages[kPruneIdx].workers);
  const text::ProbeStats& probes = trace.text_probes;
  text_probes_.fetch_add(probes.probes, std::memory_order_relaxed);
  text_memo_hits_.fetch_add(probes.memo_hits, std::memory_order_relaxed);
  text_memo_misses_.fetch_add(probes.memo_misses, std::memory_order_relaxed);
  text_candidates_examined_.fetch_add(probes.candidates_examined,
                                      std::memory_order_relaxed);
  text_scan_fallbacks_.fetch_add(probes.scan_fallbacks,
                                 std::memory_order_relaxed);
  text_all_rows_fallbacks_.fetch_add(probes.all_rows_fallbacks,
                                     std::memory_order_relaxed);
}

std::string ServiceMetrics::SnapshotJson() const {
  return Snapshot().ToJson();
}

void ServiceMetrics::ResetHistograms() {
  for (auto& bucket : latency_buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  for (auto& stage : stage_buckets_) {
    for (auto& bucket : stage) bucket.store(0, std::memory_order_relaxed);
  }
  for (auto& peak : stage_worker_peaks_) {
    peak.store(0, std::memory_order_relaxed);
  }
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot snap;
  snap.requests_ok = ok_.load(std::memory_order_relaxed);
  snap.requests_overloaded = overloaded_.load(std::memory_order_relaxed);
  snap.requests_truncated = truncated_.load(std::memory_order_relaxed);
  snap.requests_degraded = degraded_.load(std::memory_order_relaxed);
  snap.requests_failed = failed_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  snap.search_retries = search_retries_.load(std::memory_order_relaxed);
  snap.updates_ok = updates_ok_.load(std::memory_order_relaxed);
  snap.updates_failed = updates_failed_.load(std::memory_order_relaxed);
  snap.update_rows_inserted =
      update_rows_inserted_.load(std::memory_order_relaxed);
  snap.update_rows_deleted =
      update_rows_deleted_.load(std::memory_order_relaxed);
  snap.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  snap.latency_buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.latency_buckets[i] = latency_buckets_[i].load(
        std::memory_order_relaxed);
  }
  snap.stage_latency_buckets.assign(core::kNumSearchStages,
                                    std::vector<uint64_t>(kNumBuckets, 0));
  snap.stage_worker_peaks.resize(core::kNumSearchStages);
  for (size_t s = 0; s < core::kNumSearchStages; ++s) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.stage_latency_buckets[s][i] =
          stage_buckets_[s][i].load(std::memory_order_relaxed);
    }
    snap.stage_worker_peaks[s] =
        stage_worker_peaks_[s].load(std::memory_order_relaxed);
  }
  snap.text_probes = text_probes_.load(std::memory_order_relaxed);
  snap.text_memo_hits = text_memo_hits_.load(std::memory_order_relaxed);
  snap.text_memo_misses = text_memo_misses_.load(std::memory_order_relaxed);
  snap.text_candidates_examined =
      text_candidates_examined_.load(std::memory_order_relaxed);
  snap.text_scan_fallbacks =
      text_scan_fallbacks_.load(std::memory_order_relaxed);
  snap.text_all_rows_fallbacks =
      text_all_rows_fallbacks_.load(std::memory_order_relaxed);
  return snap;
}

std::shared_ptr<TenantMetricsRegistry::Counters>
TenantMetricsRegistry::ForTenant(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), std::make_shared<Counters>())
             .first;
  }
  return it->second;
}

void TenantMetricsRegistry::RecordRequest(std::string_view tenant,
                                          RequestOutcome outcome) {
  const auto counters = ForTenant(tenant);
  counters->by_outcome[static_cast<size_t>(outcome)].fetch_add(
      1, std::memory_order_relaxed);
}

std::map<std::string, TenantMetricsSnapshot>
TenantMetricsRegistry::Snapshot() const {
  // Copy the (name -> counters) pairs under the lock, read the atomics
  // outside it.
  std::map<std::string, std::shared_ptr<Counters>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.insert(tenants_.begin(), tenants_.end());
  }
  std::map<std::string, TenantMetricsSnapshot> out;
  for (const auto& [name, counters] : live) {
    TenantMetricsSnapshot snap;
    const auto outcome = [&](RequestOutcome o) {
      return counters->by_outcome[static_cast<size_t>(o)].load(
          std::memory_order_relaxed);
    };
    snap.requests_ok = outcome(RequestOutcome::kOk);
    snap.requests_overloaded = outcome(RequestOutcome::kOverloaded);
    snap.requests_truncated = outcome(RequestOutcome::kTruncated);
    snap.requests_degraded = outcome(RequestOutcome::kDegraded);
    snap.requests_failed = outcome(RequestOutcome::kFailed);
    snap.cache_hits = counters->cache_hits.load(std::memory_order_relaxed);
    snap.cache_misses =
        counters->cache_misses.load(std::memory_order_relaxed);
    snap.sessions_created =
        counters->sessions_created.load(std::memory_order_relaxed);
    snap.share_rejections =
        counters->share_rejections.load(std::memory_order_relaxed);
    snap.updates_ok = counters->updates_ok.load(std::memory_order_relaxed);
    snap.updates_failed =
        counters->updates_failed.load(std::memory_order_relaxed);
    snap.update_shards_touched =
        counters->update_shards_touched.load(std::memory_order_relaxed);
    out.emplace(name, snap);
  }
  return out;
}

namespace {

// Tenant names are caller-chosen strings: escape the JSON specials so a
// quote or backslash in a name cannot corrupt the document.
void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

std::string TenantMetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first_tenant = true;
  for (const auto& [name, snap] : Snapshot()) {
    if (!first_tenant) out += ',';
    first_tenant = false;
    AppendJsonString(&out, name);
    out += ":{";
    bool first = true;
    AppendJsonUInt(&out, "requests_ok", snap.requests_ok, &first);
    AppendJsonUInt(&out, "requests_degraded", snap.requests_degraded,
                   &first);
    AppendJsonUInt(&out, "requests_overloaded", snap.requests_overloaded,
                   &first);
    AppendJsonUInt(&out, "requests_truncated", snap.requests_truncated,
                   &first);
    AppendJsonUInt(&out, "requests_failed", snap.requests_failed, &first);
    AppendJsonUInt(&out, "share_rejections", snap.share_rejections, &first);
    AppendJsonUInt(&out, "updates_ok", snap.updates_ok, &first);
    AppendJsonUInt(&out, "updates_failed", snap.updates_failed, &first);
    AppendJsonUInt(&out, "update_shards_touched", snap.update_shards_touched,
                   &first);
    AppendJsonUInt(&out, "cache_hits", snap.cache_hits, &first);
    AppendJsonUInt(&out, "cache_misses", snap.cache_misses, &first);
    AppendJsonUInt(&out, "sessions_created", snap.sessions_created, &first);
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace mweaver::service
