// MappingService: the concurrent front-end multiplexing many interactive
// mapping sessions over a multi-tenant catalog of immutable snapshots.
//
//   clients --> bounded FIFO queue --> common::ThreadPool workers
//                     |                     |
//                 kOverloaded          SessionManager (per-session mutex,
//               (explicit, never        each session pins one Snapshot)
//                blocking; global           |
//                AND per-tenant)       ResultCache (first-row searches,
//                                       keys scoped by tenant + epoch)
//
// Tenancy: every session is created against one tenant of the catalog and
// pins that tenant's current snapshot for its whole lifetime — bulk loads
// publishing new epochs never change what an open session sees. Requests
// are attributed to the tenant of their session: per-tenant metric
// rollups, and a per-tenant admission share so one hot tenant cannot
// occupy the whole queue and starve the rest.
//
// Backpressure: admission is non-blocking. When the queue is full — or
// the request's tenant already holds its share of it — Enqueue() returns
// ResourceExhausted immediately ("kOverloaded") so the client can back
// off — a closed-loop client retries, an interactive UI greys out the
// spreadsheet — instead of piling latency onto the queue.
//
// Deadlines: each request carries a wall-clock budget measured from
// admission (queue wait counts — a request that waited out its budget is
// answered immediately). The worker arms the deadline on the session's
// ExecutionContext, and every stage of the core pipeline polls its
// ShouldStop(): the client gets a prompt partial result with
// SearchStats::truncated set rather than a stalled worker.
#ifndef MWEAVER_SERVICE_MAPPING_SERVICE_H_
#define MWEAVER_SERVICE_MAPPING_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/tenant_writer.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/options.h"
#include "core/session.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/session_manager.h"

namespace mweaver::service {

/// \brief The tenant single-tenant callers land on: CreateSession without
/// a tenant name targets it (the catalog must have it published).
inline constexpr std::string_view kDefaultTenant = "default";

struct ServiceOptions {
  /// Dedicated worker threads processing requests.
  size_t num_workers = 4;
  /// Admission bound: Enqueue() returns kOverloaded beyond this many
  /// queued-but-unstarted requests.
  size_t max_queue_depth = 256;
  /// Per-tenant admission share: one tenant may occupy at most
  /// ceil-to-1(max_tenant_queue_share * max_queue_depth) queued slots;
  /// beyond that its requests are rejected kOverloaded even though the
  /// queue has room, keeping headroom for every other tenant. 1.0
  /// effectively disables the share (the global bound still applies).
  double max_tenant_queue_share = 0.5;
  /// LRU capacity of the first-row search cache (0 disables it). The
  /// cache is shared across tenants; keys are tenant+epoch scoped so
  /// entries can never leak between tenants or across republishes.
  size_t cache_capacity = 128;
  /// Deadline applied to requests that don't carry their own (0 = none).
  std::chrono::milliseconds default_deadline{0};
  /// Worker threads for the parallel stages inside each search/pruning
  /// pass (core::SearchOptions::num_threads). 0 = leave the per-session
  /// options as the client passed them; > 0 overrides at CreateSession.
  /// Results are deterministic regardless of the value, so the override
  /// never changes cached-vs-fresh answers (num_threads is excluded from
  /// the cache fingerprint). Search workers come from ThreadPool::Shared,
  /// not the service's request workers.
  size_t search_parallelism = 0;
  SessionManagerOptions sessions;
};

/// \brief One spreadsheet keystroke routed through the service:
/// Input(row, col, value) on an open session.
struct InputRequest {
  SessionId session_id = 0;
  size_t row = 0;
  size_t col = 0;
  std::string value;
  /// Wall-clock budget from admission; 0 = use the service default. A
  /// negative budget is already expired at admission — the request is
  /// answered immediately with a truncated result (deterministic load
  /// shedding, also exercised by tests).
  std::chrono::milliseconds deadline{0};
};

/// \brief A streaming update batch routed through the service: the same
/// bounded queue, per-tenant admission share, deadline and retry treatment
/// as searches, so update traffic cannot starve search traffic (or vice
/// versa) by bypassing backpressure.
struct UpdateRequest {
  std::string tenant;
  catalog::UpdateBatch batch;
  /// Wall-clock budget from admission; 0 = use the service default. An
  /// update whose budget expires while still queued is NOT applied and is
  /// answered kTruncated with an Unavailable status (safe to retry: the
  /// batch never started).
  std::chrono::milliseconds deadline{0};
};

/// \brief What the client gets back.
struct RequestResult {
  /// Request-level status: kOverloaded admission failures surface as
  /// ResourceExhausted, unknown sessions as NotFound, session-model
  /// violations (bad column, first-row re-entry) as their Input() status.
  Status status;
  RequestOutcome outcome = RequestOutcome::kFailed;
  core::SessionState state = core::SessionState::kAwaitingFirstRow;
  size_t num_candidates = 0;
  /// The search was cut short (deadline or tuple-path caps).
  bool truncated = false;
  /// The first-row search was answered from the result cache.
  bool cache_hit = false;
  /// The request succeeded only after the service retried a transient
  /// (Unavailable) failure. Reported as kDegraded unless the retry was
  /// also truncated (truncation wins: the client must know the result is
  /// partial).
  bool degraded = false;
  /// Admission-to-completion latency (queue wait included).
  double latency_ms = 0.0;

  /// Update requests only: the minor epoch the batch installed and the row
  /// ids assigned to the batch's inserts (in order) — zero/empty for
  /// searches and for failed updates.
  uint64_t update_minor_epoch = 0;
  std::vector<storage::RowId> inserted_rows;
};

/// \brief The concurrent mapping service. All public methods are
/// thread-safe.
class MappingService {
 public:
  /// \brief `catalog` must outlive the service. The service does not own
  /// the catalog: ingestion (Catalog::Publish) runs beside it, and several
  /// services could front one catalog.
  explicit MappingService(catalog::Catalog* catalog,
                          ServiceOptions options = {});

  /// \brief Stops accepting work, then fails every still-queued request
  /// with Internal("service shutting down") before joining the workers.
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// \brief Opens a session on `tenant`, pinning the tenant's CURRENT
  /// snapshot for the session's whole lifetime (registry-level call, not
  /// queued: creation is cheap and must not contend with search traffic
  /// for workers). NotFound when the tenant has never been published (or
  /// was evicted).
  Result<SessionId> CreateSession(std::string_view tenant,
                                  std::vector<std::string> column_names,
                                  core::SearchOptions search_options = {});

  /// \brief Single-tenant convenience: CreateSession on kDefaultTenant.
  Result<SessionId> CreateSession(std::vector<std::string> column_names,
                                  core::SearchOptions search_options = {}) {
    return CreateSession(kDefaultTenant, std::move(column_names),
                         search_options);
  }

  /// \brief Closes a session explicitly (idle ones expire via TTL).
  Status CloseSession(SessionId id);

  /// \brief Submits a request. Returns immediately: OK when admitted
  /// (`done` fires exactly once, on a worker thread), ResourceExhausted
  /// when the queue — or the session's tenant share of it — is full
  /// (`done` never fires).
  Status Enqueue(InputRequest request,
                 std::function<void(RequestResult)> done);

  /// \brief Synchronous convenience: Enqueue + wait. Overload is reported
  /// in the returned RequestResult (status ResourceExhausted, outcome
  /// kOverloaded).
  RequestResult Call(InputRequest request);

  /// \brief Submits a streaming update batch through the same admission
  /// path as searches (global queue bound, per-tenant share, kOverloaded
  /// backpressure). `done` fires exactly once on a worker thread; a
  /// transient (Unavailable) failure — injected or real — is retried once
  /// and reported kDegraded on success. The batch is atomic either way:
  /// on any failure the tenant keeps serving its current snapshot.
  Status EnqueueUpdate(UpdateRequest request,
                       std::function<void(RequestResult)> done);

  /// \brief Synchronous convenience: EnqueueUpdate + wait.
  RequestResult ApplyUpdate(UpdateRequest request);

  /// \brief Runs an idle-session sweep; returns sessions reclaimed.
  size_t EvictIdleSessions() { return sessions_.EvictIdle(); }

  /// \brief Runs the catalog's cold-tenant sweep and drops the evicted
  /// tenants' result-cache entries; returns tenants reclaimed. Sessions
  /// still pinning an evicted tenant's snapshot keep serving from it.
  size_t EvictIdleTenants();

  catalog::Catalog& catalog() { return *catalog_; }
  SessionManager& sessions() { return sessions_; }
  const ResultCache& cache() const { return cache_; }
  ResultCache& mutable_cache() { return cache_; }
  MetricsSnapshot SnapshotMetrics() const { return metrics_.Snapshot(); }
  /// \brief The metrics snapshot as a JSON object (export hook for the
  /// workload runner, examples, and monitoring).
  std::string SnapshotMetricsJson() const { return metrics_.SnapshotJson(); }
  /// \brief Per-tenant rollups as `{"<tenant>": {...}, ...}` (embedded
  /// beside the global metrics in BENCH_*.json and mapping_server output).
  std::string PerTenantMetricsJson() const {
    return tenant_metrics_.ToJson();
  }
  std::map<std::string, TenantMetricsSnapshot> PerTenantMetrics() const {
    return tenant_metrics_.Snapshot();
  }
  /// \brief Starts a fresh latency-histogram interval (scalar counters
  /// stay monotonic; see ServiceMetrics::ResetHistograms).
  void ResetMetricsHistograms() { metrics_.ResetHistograms(); }
  const ServiceOptions& options() const { return options_; }
  /// \brief The per-tenant queued-slot cap derived from the options.
  size_t TenantQueueCap() const;

 private:
  struct QueuedRequest {
    InputRequest request;
    /// Set for update requests; Process() dispatches on it. The shared
    /// queue is deliberate: updates and searches compete for the same
    /// bounded slots and workers, so neither class dodges backpressure.
    bool is_update = false;
    UpdateRequest update;
    std::function<void(RequestResult)> done;
    /// Tenant of the request's session at admission (empty when the
    /// session id is unknown — Process() then reports NotFound; such
    /// requests count toward the global bound but no tenant share).
    std::string tenant;
    core::SearchClock::time_point admitted;
    core::SearchClock::time_point deadline;  // max() = none
  };

  /// Shared admission: bounds, tenant share, queue push. Used by Enqueue
  /// and EnqueueUpdate once the QueuedRequest is assembled.
  Status Admit(QueuedRequest queued);
  /// Pops and processes one queued request (runs on a pool worker).
  void DrainOne();
  RequestResult Process(const QueuedRequest& queued);
  RequestResult ProcessUpdate(const QueuedRequest& queued);
  /// The caching first-row search bound to one session's pinned snapshot:
  /// keys carry the snapshot's tenant + epoch, per-tenant cache counters
  /// bump alongside the global ones.
  core::Session::SearchFn MakeCachingSearchFn(catalog::SnapshotPtr snapshot);

  catalog::Catalog* const catalog_;
  const ServiceOptions options_;

  SessionManager sessions_;
  catalog::TenantWriter writer_;
  ResultCache cache_;
  ServiceMetrics metrics_;
  TenantMetricsRegistry tenant_metrics_;

  std::mutex queue_mu_;
  std::deque<QueuedRequest> queue_;
  /// Queued-but-unstarted requests per tenant (admission shares); entries
  /// are erased at zero so dropped tenants don't accumulate.
  std::map<std::string, size_t, std::less<>> tenant_queued_;
  bool shutdown_ = false;

  // Last: workers must start after (and be joined before) everything they
  // touch.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mweaver::service

#endif  // MWEAVER_SERVICE_MAPPING_SERVICE_H_
