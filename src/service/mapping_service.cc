#include "service/mapping_service.h"

#include <future>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/sample_search.h"

namespace mweaver::service {

MappingService::MappingService(const text::FullTextEngine* engine,
                               const graph::SchemaGraph* schema_graph,
                               ServiceOptions options)
    : engine_(engine),
      schema_graph_(schema_graph),
      options_(options),
      sessions_(engine, schema_graph, options.sessions),
      cache_(options.cache_capacity),
      pool_(std::make_unique<ThreadPool>(options.num_workers)) {}

MappingService::~MappingService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  // Joining the pool first guarantees no worker is mid-DrainOne when the
  // leftover queue is failed below (the pool discards unstarted drain
  // tokens; their requests are exactly the leftovers).
  pool_.reset();
  std::deque<QueuedRequest> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftovers.swap(queue_);
  }
  for (QueuedRequest& queued : leftovers) {
    RequestResult result;
    result.status = Status::Internal("service shutting down");
    result.outcome = RequestOutcome::kFailed;
    metrics_.RecordRequest(result.outcome, 0.0);
    if (queued.done) queued.done(std::move(result));
  }
}

namespace {
// Whether the most recent first-row search on THIS worker thread was a
// cache hit. The caching hook runs synchronously inside Session::Input on
// the worker, so the flag connects the hook's verdict to the Process()
// frame above it without widening core::Session's API.
thread_local bool tls_last_search_was_cache_hit = false;
}  // namespace

core::Session::SearchFn MappingService::MakeCachingSearchFn() {
  // The wrapper runs inside Session::RunSearch, i.e. under the session's
  // mutex on a worker thread. The cache has its own lock, so concurrent
  // sessions share results safely.
  return [this](const std::vector<std::string>& first_row,
                const core::SearchOptions& opts, core::ExecutionContext& ctx)
             -> Result<core::SearchResult> {
    const std::string key = ResultCache::MakeKey(first_row, opts);
    if (std::optional<core::SearchResult> hit = cache_.Lookup(key)) {
      metrics_.RecordCacheLookup(/*hit=*/true);
      tls_last_search_was_cache_hit = true;
      return std::move(*hit);
    }
    metrics_.RecordCacheLookup(/*hit=*/false);
    // Chaos site: the backend flaking at search dispatch. Injects an
    // Unavailable status, which Process() absorbs with one retry.
    MW_FAILPOINT_RETURN_NOT_OK("service.search.transient");
    MW_ASSIGN_OR_RETURN(
        core::SearchResult result,
        core::SampleSearch(*engine_, *schema_graph_, first_row, opts, ctx));
    metrics_.RecordSearchTrace(result.stats.trace);
    cache_.Insert(key, result);  // rejects truncated results itself
    return result;
  };
}

Result<SessionId> MappingService::CreateSession(
    std::vector<std::string> column_names,
    core::SearchOptions search_options) {
  if (options_.search_parallelism > 0) {
    search_options.num_threads = options_.search_parallelism;
  }
  return sessions_.Create(std::move(column_names), search_options,
                          MakeCachingSearchFn());
}

Status MappingService::CloseSession(SessionId id) {
  return sessions_.Close(id);
}

Status MappingService::Enqueue(InputRequest request,
                               std::function<void(RequestResult)> done) {
  const auto now = core::SearchClock::now();
  const std::chrono::milliseconds budget =
      request.deadline.count() != 0 ? request.deadline
                                    : options_.default_deadline;
  QueuedRequest queued;
  queued.request = std::move(request);
  queued.done = std::move(done);
  queued.admitted = now;
  queued.deadline = budget.count() != 0
                        ? now + budget
                        : core::SearchClock::time_point::max();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    // Chaos site: forced admission rejection — the client sees the same
    // kOverloaded backpressure a genuinely full queue produces.
    if (MW_FAILPOINT_TRIGGERED("service.queue.admit") ||
        queue_.size() >= options_.max_queue_depth) {
      metrics_.RecordRequest(RequestOutcome::kOverloaded, 0.0);
      return Status::ResourceExhausted(
          "request queue full; back off and retry");
    }
    queue_.push_back(std::move(queued));
    metrics_.RecordQueueDepth(queue_.size());
  }
  pool_->Submit([this]() { DrainOne(); });
  return Status::OK();
}

RequestResult MappingService::Call(InputRequest request) {
  std::promise<RequestResult> promise;
  std::future<RequestResult> future = promise.get_future();
  Status admitted = Enqueue(std::move(request), [&](RequestResult result) {
    promise.set_value(std::move(result));
  });
  if (!admitted.ok()) {
    RequestResult rejected;
    rejected.status = std::move(admitted);
    rejected.outcome = rejected.status.IsResourceExhausted()
                           ? RequestOutcome::kOverloaded
                           : RequestOutcome::kFailed;
    return rejected;
  }
  return future.get();
}

void MappingService::DrainOne() {
  // Chaos site: a worker stalling between dequeue token and dispatch
  // (scheduler hiccup, page fault storm) — eats into request deadlines.
  (void)MW_FAILPOINT_FIRE("service.worker.dispatch");
  QueuedRequest queued;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // Every Submit pairs with exactly one queued request, and the pool
    // never runs a drain token it discarded at shutdown.
    MW_CHECK(!queue_.empty());
    queued = std::move(queue_.front());
    queue_.pop_front();
  }
  RequestResult result = Process(queued);
  metrics_.RecordRequest(result.outcome, result.latency_ms);
  if (queued.done) queued.done(std::move(result));
}

RequestResult MappingService::Process(const QueuedRequest& queued) {
  RequestResult result;
  const auto finish = [&](RequestOutcome outcome, Status status) {
    result.outcome = outcome;
    result.status = std::move(status);
    result.latency_ms =
        std::chrono::duration<double, std::milli>(core::SearchClock::now() -
                                                  queued.admitted)
            .count();
    return result;
  };

  // A request that waited out its whole budget in the queue is answered
  // immediately — running the search would only waste the worker on an
  // answer the client has given up on.
  if (core::SearchClock::now() >= queued.deadline) {
    result.truncated = true;
    return finish(RequestOutcome::kTruncated, Status::OK());
  }

  auto attempt = [&]() -> Status {
    tls_last_search_was_cache_hit = false;
    Status status = sessions_.WithSession(
        queued.request.session_id, [&](core::Session& session) {
          const bool was_awaiting =
              session.state() == core::SessionState::kAwaitingFirstRow;
          // Arm the per-request deadline on the session's execution context
          // (options stay immutable — the cache keys on their fingerprint).
          session.context().set_deadline(queued.deadline);
          Status input = session.Input(queued.request.row, queued.request.col,
                                       queued.request.value);
          session.context().clear_deadline();
          result.state = session.state();
          result.num_candidates = session.candidates().size();
          // `truncated` describes THIS request: only the input that fired
          // the first-row search can be cut short by the deadline (stats
          // persist on the session afterwards, so don't re-report them for
          // later pruning inputs).
          const bool search_ran_now =
              was_awaiting &&
              session.state() != core::SessionState::kAwaitingFirstRow;
          result.truncated =
              search_ran_now && session.search_stats().truncated;
          // A non-empty below-first-row input on a searched session ran a
          // pruning pass: fold its trace (kPrune latency, worker fan-out,
          // probe counters) into the metrics. Empty values clear cells
          // without pruning — the context still holds a stale trace then.
          if (input.ok() && !was_awaiting && !queued.request.value.empty()) {
            metrics_.RecordPruneTrace(session.context().trace());
          }
          return input;
        });
    result.cache_hit = tls_last_search_was_cache_hit;
    return status;
  };

  Status status = attempt();
  // Graceful degradation: a transient (Unavailable) failure gets exactly
  // one retry. A failed search leaves the session in kAwaitingFirstRow
  // with its grid intact, so replaying the same Input is idempotent; a
  // second Unavailable is reported as the failure it is.
  if (status.IsUnavailable() &&
      core::SearchClock::now() < queued.deadline) {
    metrics_.RecordSearchRetry();
    result.truncated = false;
    status = attempt();
    if (status.ok()) result.degraded = true;
  }
  if (!status.ok()) {
    return finish(RequestOutcome::kFailed, std::move(status));
  }
  // Truncation wins over degradation: the client must know the result is
  // partial before caring how it got there.
  return finish(result.truncated  ? RequestOutcome::kTruncated
                : result.degraded ? RequestOutcome::kDegraded
                                  : RequestOutcome::kOk,
                Status::OK());
}

}  // namespace mweaver::service
