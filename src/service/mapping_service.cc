#include "service/mapping_service.h"

#include <algorithm>
#include <future>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/sample_search.h"

namespace mweaver::service {

MappingService::MappingService(catalog::Catalog* catalog,
                               ServiceOptions options)
    : catalog_(catalog),
      options_(options),
      sessions_(options.sessions),
      writer_(catalog),
      cache_(options.cache_capacity),
      pool_(std::make_unique<ThreadPool>(options.num_workers)) {
  MW_CHECK(catalog != nullptr);
}

MappingService::~MappingService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shutdown_ = true;
  }
  // Joining the pool first guarantees no worker is mid-DrainOne when the
  // leftover queue is failed below (the pool discards unstarted drain
  // tokens; their requests are exactly the leftovers).
  pool_.reset();
  std::deque<QueuedRequest> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftovers.swap(queue_);
    tenant_queued_.clear();
  }
  for (QueuedRequest& queued : leftovers) {
    RequestResult result;
    result.status = Status::Internal("service shutting down");
    result.outcome = RequestOutcome::kFailed;
    metrics_.RecordRequest(result.outcome, 0.0);
    if (!queued.tenant.empty()) {
      tenant_metrics_.RecordRequest(queued.tenant, result.outcome);
    }
    if (queued.done) queued.done(std::move(result));
  }
}

size_t MappingService::TenantQueueCap() const {
  const double share = std::clamp(options_.max_tenant_queue_share, 0.0, 1.0);
  const auto cap =
      static_cast<size_t>(share * static_cast<double>(options_.max_queue_depth));
  return std::max<size_t>(1, cap);
}

namespace {
// Whether the most recent first-row search on THIS worker thread was a
// cache hit. The caching hook runs synchronously inside Session::Input on
// the worker, so the flag connects the hook's verdict to the Process()
// frame above it without widening core::Session's API.
thread_local bool tls_last_search_was_cache_hit = false;
}  // namespace

core::Session::SearchFn MappingService::MakeCachingSearchFn(
    catalog::SnapshotPtr snapshot) {
  // The wrapper runs inside Session::RunSearch, i.e. under the session's
  // mutex on a worker thread. The cache has its own lock, so concurrent
  // sessions share results safely — across sessions of the SAME tenant
  // and epoch only, because both are baked into the key.
  //
  // The lambda holds its own snapshot pin: even if the session entry were
  // torn down mid-call, the engine/graph it searches stay alive.
  // Resolve the counters AND the cache-key prefix before the capture list:
  // the `snapshot` init-capture moves the parameter, so touching it in a
  // later initializer would read a moved-from pointer. Freezing the prefix
  // here — at pin time — makes it impossible for a request admitted under
  // this serving state to be keyed with a later epoch/minor: the snapshot
  // is immutable and the prefix is literally a captured constant.
  auto tenant_counters = tenant_metrics_.ForTenant(snapshot->tenant());
  std::string key_prefix = ResultCache::MakeKeyPrefix(
      snapshot->tenant(), snapshot->epoch(), snapshot->minor_epoch(),
      snapshot->shard_count());
  return [this, snapshot = std::move(snapshot),
          tenant_counters = std::move(tenant_counters),
          key_prefix = std::move(key_prefix)](
             const std::vector<std::string>& first_row,
             const core::SearchOptions& opts, core::ExecutionContext& ctx)
             -> Result<core::SearchResult> {
    const std::string key =
        ResultCache::MakeKeyWithPrefix(key_prefix, first_row, opts);
    if (std::optional<core::SearchResult> hit = cache_.Lookup(key)) {
      metrics_.RecordCacheLookup(/*hit=*/true);
      tenant_counters->cache_hits.fetch_add(1, std::memory_order_relaxed);
      tls_last_search_was_cache_hit = true;
      return std::move(*hit);
    }
    metrics_.RecordCacheLookup(/*hit=*/false);
    tenant_counters->cache_misses.fetch_add(1, std::memory_order_relaxed);
    // Chaos site: the backend flaking at search dispatch. Injects an
    // Unavailable status, which Process() absorbs with one retry.
    MW_FAILPOINT_RETURN_NOT_OK("service.search.transient");
    MW_ASSIGN_OR_RETURN(core::SearchResult result,
                        core::SampleSearch(snapshot->engine(),
                                           snapshot->graph(), first_row,
                                           opts, ctx));
    metrics_.RecordSearchTrace(result.stats.trace);
    cache_.Insert(key, result);  // rejects truncated results itself
    return result;
  };
}

Result<SessionId> MappingService::CreateSession(
    std::string_view tenant, std::vector<std::string> column_names,
    core::SearchOptions search_options) {
  // Pin the tenant's current snapshot NOW: everything this session ever
  // searches — and every cache key it produces — is this epoch, no matter
  // how many publishes land while the session is open.
  MW_ASSIGN_OR_RETURN(catalog::SnapshotPtr snapshot, catalog_->Pin(tenant));
  if (options_.search_parallelism > 0) {
    search_options.num_threads = options_.search_parallelism;
  }
  auto search_fn = MakeCachingSearchFn(snapshot);
  MW_ASSIGN_OR_RETURN(
      SessionId id,
      sessions_.Create(std::move(snapshot), std::move(column_names),
                       search_options, std::move(search_fn)));
  tenant_metrics_.ForTenant(tenant)->sessions_created.fetch_add(
      1, std::memory_order_relaxed);
  return id;
}

Status MappingService::CloseSession(SessionId id) {
  return sessions_.Close(id);
}

Status MappingService::Enqueue(InputRequest request,
                               std::function<void(RequestResult)> done) {
  const auto now = core::SearchClock::now();
  const std::chrono::milliseconds budget =
      request.deadline.count() != 0 ? request.deadline
                                    : options_.default_deadline;
  QueuedRequest queued;
  // Resolve the session's tenant before taking the queue lock (it's a
  // registry lookup with its own mutex). Unknown session: leave the
  // tenant empty and let the worker report NotFound — admission order
  // must not depend on registry races.
  if (Result<catalog::SnapshotPtr> pinned =
          sessions_.SnapshotOf(request.session_id);
      pinned.ok()) {
    queued.tenant = (*pinned)->tenant();
  }
  queued.request = std::move(request);
  queued.done = std::move(done);
  queued.admitted = now;
  queued.deadline = budget.count() != 0
                        ? now + budget
                        : core::SearchClock::time_point::max();
  return Admit(std::move(queued));
}

Status MappingService::EnqueueUpdate(UpdateRequest request,
                                     std::function<void(RequestResult)> done) {
  const auto now = core::SearchClock::now();
  const std::chrono::milliseconds budget =
      request.deadline.count() != 0 ? request.deadline
                                    : options_.default_deadline;
  QueuedRequest queued;
  queued.is_update = true;
  queued.tenant = request.tenant;
  queued.update = std::move(request);
  queued.done = std::move(done);
  queued.admitted = now;
  queued.deadline = budget.count() != 0
                        ? now + budget
                        : core::SearchClock::time_point::max();
  return Admit(std::move(queued));
}

RequestResult MappingService::ApplyUpdate(UpdateRequest request) {
  std::promise<RequestResult> promise;
  std::future<RequestResult> future = promise.get_future();
  Status admitted =
      EnqueueUpdate(std::move(request), [&](RequestResult result) {
        promise.set_value(std::move(result));
      });
  if (!admitted.ok()) {
    RequestResult rejected;
    rejected.status = std::move(admitted);
    rejected.outcome = rejected.status.IsResourceExhausted()
                           ? RequestOutcome::kOverloaded
                           : RequestOutcome::kFailed;
    return rejected;
  }
  return future.get();
}

Status MappingService::Admit(QueuedRequest queued) {
  const size_t tenant_cap = TenantQueueCap();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    // Chaos site: forced admission rejection — the client sees the same
    // kOverloaded backpressure a genuinely full queue produces.
    if (MW_FAILPOINT_TRIGGERED("service.queue.admit") ||
        queue_.size() >= options_.max_queue_depth) {
      metrics_.RecordRequest(RequestOutcome::kOverloaded, 0.0);
      if (!queued.tenant.empty()) {
        tenant_metrics_.RecordRequest(queued.tenant,
                                      RequestOutcome::kOverloaded);
      }
      return Status::ResourceExhausted(
          "request queue full; back off and retry");
    }
    if (!queued.tenant.empty()) {
      auto it = tenant_queued_.find(queued.tenant);
      const size_t tenant_depth = it == tenant_queued_.end() ? 0 : it->second;
      if (tenant_depth >= tenant_cap) {
        // The queue has room but this tenant already owns its share of it:
        // reject so other tenants keep getting admitted. Recorded both as
        // a plain overload (the client-visible truth) and as a
        // share_rejection (the operator-visible cause).
        const auto counters = tenant_metrics_.ForTenant(queued.tenant);
        counters->share_rejections.fetch_add(1, std::memory_order_relaxed);
        counters->by_outcome[static_cast<size_t>(
                                 RequestOutcome::kOverloaded)]
            .fetch_add(1, std::memory_order_relaxed);
        metrics_.RecordRequest(RequestOutcome::kOverloaded, 0.0);
        return Status::ResourceExhausted(
            "tenant queue share exhausted; back off and retry");
      }
      if (it == tenant_queued_.end()) {
        tenant_queued_.emplace(queued.tenant, 1);
      } else {
        ++it->second;
      }
    }
    queue_.push_back(std::move(queued));
    metrics_.RecordQueueDepth(queue_.size());
  }
  pool_->Submit([this]() { DrainOne(); });
  return Status::OK();
}

RequestResult MappingService::Call(InputRequest request) {
  std::promise<RequestResult> promise;
  std::future<RequestResult> future = promise.get_future();
  Status admitted = Enqueue(std::move(request), [&](RequestResult result) {
    promise.set_value(std::move(result));
  });
  if (!admitted.ok()) {
    RequestResult rejected;
    rejected.status = std::move(admitted);
    rejected.outcome = rejected.status.IsResourceExhausted()
                           ? RequestOutcome::kOverloaded
                           : RequestOutcome::kFailed;
    return rejected;
  }
  return future.get();
}

size_t MappingService::EvictIdleTenants() {
  // The catalog reports exactly who it evicted and at which epoch, and the
  // cache purge is bounded by that epoch: a republish of the same tenant
  // name racing this sweep owns a strictly newer epoch (catalog-wide
  // monotonic counter), so its fresh entries survive. The old
  // diff-the-listing approach purged by name alone and would eat them.
  const std::vector<catalog::Catalog::EvictedTenant> evicted =
      catalog_->EvictIdle();
  for (const catalog::Catalog::EvictedTenant& tenant : evicted) {
    cache_.EvictTenantEntries(tenant.name, tenant.epoch);
  }
  return evicted.size();
}

void MappingService::DrainOne() {
  // Chaos site: a worker stalling between dequeue token and dispatch
  // (scheduler hiccup, page fault storm) — eats into request deadlines.
  (void)MW_FAILPOINT_FIRE("service.worker.dispatch");
  QueuedRequest queued;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // Every Submit pairs with exactly one queued request, and the pool
    // never runs a drain token it discarded at shutdown.
    MW_CHECK(!queue_.empty());
    queued = std::move(queue_.front());
    queue_.pop_front();
    if (!queued.tenant.empty()) {
      auto it = tenant_queued_.find(queued.tenant);
      MW_CHECK(it != tenant_queued_.end() && it->second > 0);
      if (--it->second == 0) tenant_queued_.erase(it);
    }
  }
  RequestResult result =
      queued.is_update ? ProcessUpdate(queued) : Process(queued);
  metrics_.RecordRequest(result.outcome, result.latency_ms);
  if (!queued.tenant.empty()) {
    tenant_metrics_.RecordRequest(queued.tenant, result.outcome);
  }
  if (queued.done) queued.done(std::move(result));
}

RequestResult MappingService::ProcessUpdate(const QueuedRequest& queued) {
  RequestResult result;
  const auto record = [&](bool ok, uint64_t inserted, uint64_t deleted) {
    metrics_.RecordUpdate(ok, inserted, deleted);
    const auto counters = tenant_metrics_.ForTenant(queued.tenant);
    (ok ? counters->updates_ok : counters->updates_failed)
        .fetch_add(1, std::memory_order_relaxed);
  };
  const auto finish = [&](RequestOutcome outcome, Status status) {
    result.outcome = outcome;
    result.status = std::move(status);
    result.latency_ms =
        std::chrono::duration<double, std::milli>(core::SearchClock::now() -
                                                  queued.admitted)
            .count();
    return result;
  };

  // An update that waited out its budget in the queue is NOT applied: the
  // status says so explicitly (unlike a search, where "truncated" means a
  // partial answer, an un-applied batch must be unambiguous — and it is
  // safe to resubmit, since nothing started).
  if (core::SearchClock::now() >= queued.deadline) {
    result.truncated = true;
    record(/*ok=*/false, 0, 0);
    return finish(RequestOutcome::kTruncated,
                  Status::Unavailable(
                      "update deadline expired in queue; batch not applied"));
  }

  Result<catalog::UpdateResult> applied =
      writer_.Apply(queued.update.tenant, queued.update.batch);
  // Same graceful degradation as searches: one retry on a transient
  // (Unavailable) failure. Apply is atomic — a failed attempt left no
  // trace — so the replay is safe; the retry shares the search counter
  // since it reports the same backend-flaking signal.
  if (!applied.ok() && applied.status().IsUnavailable() &&
      core::SearchClock::now() < queued.deadline) {
    metrics_.RecordSearchRetry();
    applied = writer_.Apply(queued.update.tenant, queued.update.batch);
    if (applied.ok()) result.degraded = true;
  }
  if (!applied.ok()) {
    record(/*ok=*/false, 0, 0);
    return finish(RequestOutcome::kFailed, applied.status());
  }
  const catalog::UpdateResult& update = applied.ValueOrDie();
  result.update_minor_epoch = update.snapshot->minor_epoch();
  result.inserted_rows = update.inserted_rows;
  record(/*ok=*/true, update.rows_inserted, update.rows_deleted);
  tenant_metrics_.ForTenant(queued.tenant)
      ->update_shards_touched.fetch_add(update.shards_touched,
                                        std::memory_order_relaxed);
  return finish(result.degraded ? RequestOutcome::kDegraded
                                : RequestOutcome::kOk,
                Status::OK());
}

RequestResult MappingService::Process(const QueuedRequest& queued) {
  RequestResult result;
  const auto finish = [&](RequestOutcome outcome, Status status) {
    result.outcome = outcome;
    result.status = std::move(status);
    result.latency_ms =
        std::chrono::duration<double, std::milli>(core::SearchClock::now() -
                                                  queued.admitted)
            .count();
    return result;
  };

  // A request that waited out its whole budget in the queue is answered
  // immediately — running the search would only waste the worker on an
  // answer the client has given up on.
  if (core::SearchClock::now() >= queued.deadline) {
    result.truncated = true;
    return finish(RequestOutcome::kTruncated, Status::OK());
  }

  auto attempt = [&]() -> Status {
    tls_last_search_was_cache_hit = false;
    Status status = sessions_.WithSession(
        queued.request.session_id, [&](core::Session& session) {
          const bool was_awaiting =
              session.state() == core::SessionState::kAwaitingFirstRow;
          // Arm the per-request deadline on the session's execution context
          // (options stay immutable — the cache keys on their fingerprint).
          session.context().set_deadline(queued.deadline);
          Status input = session.Input(queued.request.row, queued.request.col,
                                       queued.request.value);
          session.context().clear_deadline();
          result.state = session.state();
          result.num_candidates = session.candidates().size();
          // `truncated` describes THIS request: only the input that fired
          // the first-row search can be cut short by the deadline (stats
          // persist on the session afterwards, so don't re-report them for
          // later pruning inputs).
          const bool search_ran_now =
              was_awaiting &&
              session.state() != core::SessionState::kAwaitingFirstRow;
          result.truncated =
              search_ran_now && session.search_stats().truncated;
          // A non-empty below-first-row input on a searched session ran a
          // pruning pass: fold its trace (kPrune latency, worker fan-out,
          // probe counters) into the metrics. Empty values clear cells
          // without pruning — the context still holds a stale trace then.
          if (input.ok() && !was_awaiting && !queued.request.value.empty()) {
            metrics_.RecordPruneTrace(session.context().trace());
          }
          return input;
        });
    result.cache_hit = tls_last_search_was_cache_hit;
    return status;
  };

  Status status = attempt();
  // Graceful degradation: a transient (Unavailable) failure gets exactly
  // one retry. A failed search leaves the session in kAwaitingFirstRow
  // with its grid intact, so replaying the same Input is idempotent; a
  // second Unavailable is reported as the failure it is.
  if (status.IsUnavailable() &&
      core::SearchClock::now() < queued.deadline) {
    metrics_.RecordSearchRetry();
    result.truncated = false;
    status = attempt();
    if (status.ok()) result.degraded = true;
  }
  if (!status.ok()) {
    return finish(RequestOutcome::kFailed, std::move(status));
  }
  // Truncation wins over degradation: the client must know the result is
  // partial before caring how it got there.
  return finish(result.truncated  ? RequestOutcome::kTruncated
                : result.degraded ? RequestOutcome::kDegraded
                                  : RequestOutcome::kOk,
                Status::OK());
}

}  // namespace mweaver::service
