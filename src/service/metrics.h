// ServiceMetrics: lock-free counters the mapping service updates on every
// request, snapshotable for benches and monitoring. All mutators are safe
// to call concurrently from any worker thread.
#ifndef MWEAVER_SERVICE_METRICS_H_
#define MWEAVER_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/execution_context.h"

namespace mweaver::service {

/// \brief How a request left the service.
enum class RequestOutcome {
  /// Processed to completion (the session may still report NoMapping —
  /// that is a mapping-design outcome, not a service failure).
  kOk = 0,
  /// Rejected at admission: the bounded queue was full (backpressure).
  kOverloaded,
  /// Processed, but the deadline (or a tuple-path cap) cut the search
  /// short; the result is partial.
  kTruncated,
  /// Processed to completion, but only after the service retried a
  /// transient (Unavailable) failure. The answer is complete and correct;
  /// the flag tells operators the backend is flaking.
  kDegraded,
  /// The session rejected the request (bad column, unknown session, ...).
  kFailed,
};

const char* RequestOutcomeName(RequestOutcome outcome);

/// \brief A point-in-time copy of the service counters.
struct MetricsSnapshot {
  uint64_t requests_ok = 0;
  uint64_t requests_overloaded = 0;
  uint64_t requests_truncated = 0;
  uint64_t requests_degraded = 0;
  uint64_t requests_failed = 0;

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  /// Transient search failures the service absorbed by retrying. One
  /// retried-then-successful request bumps this once and lands in
  /// requests_degraded (or requests_truncated if the retry was cut short).
  uint64_t search_retries = 0;

  /// Streaming update batches that installed a new minor epoch / that
  /// failed (injected faults, superseded bases, validation errors).
  /// Updates also land in the requests_* outcome counters above — these
  /// tell update traffic apart from search traffic.
  uint64_t updates_ok = 0;
  uint64_t updates_failed = 0;
  /// Rows applied by successful update batches.
  uint64_t update_rows_inserted = 0;
  uint64_t update_rows_deleted = 0;

  /// Deepest the request queue ever got (admission-time depth).
  uint64_t queue_high_water = 0;

  /// latency_buckets[i] counts completed requests with latency <=
  /// ServiceMetrics::BucketUpperMs(i) (the last bucket is unbounded).
  /// Queue wait is included; overloaded requests are not recorded.
  std::vector<uint64_t> latency_buckets;

  /// stage_latency_buckets[s][i]: same bucket scheme, per TPW pipeline
  /// stage (s indexes core::SearchStage). The search stages are recorded
  /// per uncached search from its ExecutionTrace; the kPrune stage per
  /// interactive pruning pass (RecordPruneTrace). Cache hits contribute
  /// nothing.
  std::vector<std::vector<uint64_t>> stage_latency_buckets;

  /// stage_worker_peaks[s]: the most worker contexts stage s ever fanned
  /// out over in one recorded trace (0 = the stage never ran a parallel
  /// region; serial runs report at most 1 work item per worker slot).
  std::vector<uint64_t> stage_worker_peaks;

  /// Approximate-keyword-lookup counters summed over every recorded search
  /// trace: per-attribute probes, probe-memo hits/misses, candidate tokens
  /// the text indexes examined, and scan / all-rows fallbacks.
  uint64_t text_probes = 0;
  uint64_t text_memo_hits = 0;
  uint64_t text_memo_misses = 0;
  uint64_t text_candidates_examined = 0;
  uint64_t text_scan_fallbacks = 0;
  uint64_t text_all_rows_fallbacks = 0;

  /// Memo hits / probes; 0 when no probe ran.
  double TextMemoHitRate() const;

  uint64_t TotalRequests() const {
    return requests_ok + requests_overloaded + requests_truncated +
           requests_degraded + requests_failed;
  }
  uint64_t CompletedRequests() const {
    return requests_ok + requests_truncated + requests_degraded +
           requests_failed;
  }
  /// Hits / (hits + misses); 0 when the cache was never consulted.
  double CacheHitRate() const;
  /// Histogram-estimated latency percentile in ms (p in [0,1]); returns
  /// the bucket upper bound containing the p-quantile, 0 with no data.
  double ApproxLatencyPercentileMs(double p) const;
  /// Same, over one pipeline stage's histogram.
  double ApproxStageLatencyPercentileMs(core::SearchStage stage,
                                        double p) const;

  std::string ToString() const;

  /// \brief The snapshot as one JSON object (counters, cache/text rates,
  /// approximate latency percentiles, per-stage percentiles + worker
  /// peaks). This is what the workload runner embeds in BENCH_*.json and
  /// examples/mapping_server prints — external tooling reads metrics
  /// without friending service internals. Schema in DESIGN.md §11.
  std::string ToJson() const;

  /// \brief Counter-wise difference against an `earlier` snapshot of the
  /// same service: monotonic counters subtract (saturating at 0 in case
  /// histograms were reset in between); histogram buckets, worker peaks
  /// and the queue high-water keep THIS snapshot's values — with
  /// ServiceMetrics::ResetHistograms() at interval starts they already
  /// describe just the interval.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;
};

/// \brief The live counters. One instance per MappingService.
class ServiceMetrics {
 public:
  /// 16 power-of-two buckets: <=0.25ms, <=0.5ms, ... <=4096ms, +inf.
  static constexpr size_t kNumBuckets = 16;
  static double BucketUpperMs(size_t i);

  void RecordRequest(RequestOutcome outcome, double latency_ms);
  void RecordQueueDepth(size_t depth);
  void RecordCacheLookup(bool hit);
  /// \brief Counts one absorbed transient search failure (retry issued).
  void RecordSearchRetry();
  /// \brief Counts one streaming update batch; `rows_inserted` /
  /// `rows_deleted` are only accumulated when `ok`.
  void RecordUpdate(bool ok, uint64_t rows_inserted, uint64_t rows_deleted);
  /// \brief Folds one search's per-stage trace into the per-stage latency
  /// histograms and worker peaks. The kPrune stage is skipped — sample
  /// search never runs it, and folding its empty span would fill the prune
  /// histogram with zeroes.
  void RecordSearchTrace(const core::ExecutionTrace& trace);

  /// \brief Folds one interactive pruning pass's trace: the kPrune latency
  /// bucket, its worker peak, and the pass's text-probe counters. The
  /// search-stage histograms are left untouched (a pruning context carries
  /// no search spans).
  void RecordPruneTrace(const core::ExecutionTrace& trace);

  MetricsSnapshot Snapshot() const;

  /// \brief Snapshot().ToJson() — the export hook for benches/monitoring.
  std::string SnapshotJson() const;

  /// \brief Zeroes the request/stage latency histograms and the per-stage
  /// worker peaks, starting a fresh measurement interval (the workload
  /// runner calls this at phase boundaries). Scalar counters stay
  /// monotonic — interval values come from MetricsSnapshot::Delta().
  /// Concurrent recording during a reset is safe but the affected events
  /// may land in either interval.
  void ResetHistograms();

 private:
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> overloaded_{0};
  std::atomic<uint64_t> truncated_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> search_retries_{0};
  std::atomic<uint64_t> updates_ok_{0};
  std::atomic<uint64_t> updates_failed_{0};
  std::atomic<uint64_t> update_rows_inserted_{0};
  std::atomic<uint64_t> update_rows_deleted_{0};
  std::atomic<uint64_t> queue_high_water_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> latency_buckets_{};
  std::array<std::array<std::atomic<uint64_t>, kNumBuckets>,
             core::kNumSearchStages>
      stage_buckets_{};
  std::array<std::atomic<uint64_t>, core::kNumSearchStages>
      stage_worker_peaks_{};
  // Text-layer probe counters folded from each search's trace.
  std::atomic<uint64_t> text_probes_{0};
  std::atomic<uint64_t> text_memo_hits_{0};
  std::atomic<uint64_t> text_memo_misses_{0};
  std::atomic<uint64_t> text_candidates_examined_{0};
  std::atomic<uint64_t> text_scan_fallbacks_{0};
  std::atomic<uint64_t> text_all_rows_fallbacks_{0};
};

/// \brief A point-in-time copy of one tenant's rollup counters.
struct TenantMetricsSnapshot {
  uint64_t requests_ok = 0;
  uint64_t requests_overloaded = 0;
  uint64_t requests_truncated = 0;
  uint64_t requests_degraded = 0;
  uint64_t requests_failed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t sessions_created = 0;
  /// Admissions refused by the per-tenant queue share specifically (these
  /// are also counted in requests_overloaded — this tells a hot tenant's
  /// overload apart from a globally full queue).
  uint64_t share_rejections = 0;
  /// Streaming update batches applied to / failed against this tenant.
  uint64_t updates_ok = 0;
  uint64_t updates_failed = 0;
  /// Shards delta-cloned by this tenant's successful update batches,
  /// summed (1 per batch for an unsharded tenant). Divided by updates_ok
  /// this reads out how narrowly the shard hash scopes the average batch —
  /// the whole point of intra-tenant sharding.
  uint64_t update_shards_touched = 0;

  uint64_t TotalRequests() const {
    return requests_ok + requests_overloaded + requests_truncated +
           requests_degraded + requests_failed;
  }
};

/// \brief Per-tenant rollups the service keys by the tenant a request's
/// session is pinned to. The global ServiceMetrics stay the fleet-wide
/// truth (histograms live only there); this registry answers "which tenant
/// is hot / degraded / starving the cache" for ops and benches.
class TenantMetricsRegistry {
 public:
  /// \brief One tenant's live counters. Handed out as a shared_ptr so hot
  /// paths (the per-session caching search fn) bump atomics without
  /// re-taking the registry lock — and so counters survive a concurrent
  /// tenant eviction until the last session drops them.
  struct Counters {
    std::array<std::atomic<uint64_t>, 5> by_outcome{};  // RequestOutcome
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> sessions_created{0};
    std::atomic<uint64_t> share_rejections{0};
    std::atomic<uint64_t> updates_ok{0};
    std::atomic<uint64_t> updates_failed{0};
    std::atomic<uint64_t> update_shards_touched{0};
  };

  /// \brief Finds or creates the tenant's counters.
  std::shared_ptr<Counters> ForTenant(std::string_view tenant);

  /// \brief Convenience: ForTenant + one outcome bump.
  void RecordRequest(std::string_view tenant, RequestOutcome outcome);

  /// \brief Name-ordered snapshot of every tenant seen so far.
  std::map<std::string, TenantMetricsSnapshot> Snapshot() const;

  /// \brief `{"<tenant>": {"requests_ok": ..., ...}, ...}` — the
  /// per-tenant block embedded in BENCH_*.json and mapping_server output.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Counters>, std::less<>> tenants_;
};

}  // namespace mweaver::service

#endif  // MWEAVER_SERVICE_METRICS_H_
