// SessionManager: owns many named core::Sessions over one shared immutable
// source (FullTextEngine + SchemaGraph). Sessions are identified by ids
// from a monotonically increasing space (never reused, so a stale client
// can never alias a newer user's session), serialized individually by a
// per-session mutex, and evicted after an idle TTL.
#ifndef MWEAVER_SERVICE_SESSION_MANAGER_H_
#define MWEAVER_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/session.h"
#include "graph/schema_graph.h"
#include "text/fulltext_engine.h"

namespace mweaver::service {

using SessionId = uint64_t;

struct SessionManagerOptions {
  /// Sessions untouched for this long are reclaimed by EvictIdle().
  std::chrono::milliseconds idle_ttl{std::chrono::minutes(10)};
  /// Create() fails with ResourceExhausted beyond this many live sessions.
  size_t max_sessions = 4096;
};

/// \brief Concurrent registry of interactive mapping sessions.
///
/// Locking: a registry mutex guards the id map; each session has its own
/// mutex serializing its Inputs (the interaction model is inherently
/// sequential per user, but different users run in parallel). WithSession
/// drops the registry lock before running the callback, so a slow search
/// in one session never blocks lookups or other sessions.
class SessionManager {
 public:
  /// \brief `engine` and `schema_graph` must outlive the manager.
  SessionManager(const text::FullTextEngine* engine,
                 const graph::SchemaGraph* schema_graph,
                 SessionManagerOptions options = {});

  /// \brief Creates a session for `column_names`, returning its id.
  /// `search_fn` (optional) overrides the first-row search — the service
  /// installs its caching wrapper here.
  Result<SessionId> Create(std::vector<std::string> column_names,
                           core::SearchOptions search_options = {},
                           core::Session::SearchFn search_fn = nullptr);

  /// \brief Removes the session. In-flight WithSession calls holding it
  /// finish normally; later lookups return NotFound.
  Status Close(SessionId id);

  /// \brief Runs `fn` with exclusive access to the session and refreshes
  /// its idle clock. Returns NotFound for unknown/closed/evicted ids.
  Status WithSession(SessionId id,
                     const std::function<Status(core::Session&)>& fn);

  /// \brief Evicts every session idle longer than the TTL; returns how
  /// many were reclaimed. Sessions currently executing a request are
  /// skipped (their idle clock refreshes on completion anyway).
  size_t EvictIdle();

  /// \brief Live session count.
  size_t size() const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    Entry(const text::FullTextEngine* engine,
          const graph::SchemaGraph* schema_graph,
          std::vector<std::string> column_names,
          core::SearchOptions search_options)
        : session(engine, schema_graph, std::move(column_names),
                  search_options) {}

    std::mutex mu;          // serializes access to `session` and `closed`
    core::Session session;
    bool closed = false;    // set by Close/EvictIdle; guards the zombie
                            // window between map erase and entry release
    /// steady_clock nanos of the last WithSession completion (atomic so
    /// EvictIdle can read it without taking the session mutex).
    std::atomic<int64_t> last_used_ns{0};
  };

  static int64_t NowNs();

  const text::FullTextEngine* engine_;
  const graph::SchemaGraph* schema_graph_;
  const SessionManagerOptions options_;

  mutable std::mutex mu_;  // guards sessions_ only
  std::map<SessionId, std::shared_ptr<Entry>> sessions_;
  std::atomic<SessionId> next_id_{1};
};

}  // namespace mweaver::service

#endif  // MWEAVER_SERVICE_SESSION_MANAGER_H_
