// SessionManager: owns many named core::Sessions, each pinned to one
// immutable catalog::Snapshot (database + FullTextEngine + SchemaGraph at
// a fixed epoch) for its whole lifetime. Sessions are identified by ids
// from a monotonically increasing space (never reused, so a stale client
// can never alias a newer user's session), serialized individually by a
// per-session mutex, and evicted after an idle TTL.
//
// The pin is the multi-tenant contract: a session created against epoch N
// of its tenant keeps searching epoch N byte-for-byte even while bulk
// loads publish N+1, N+2, ... — the snapshot only dies when the last
// session (or in-flight request) holding it drops its SnapshotPtr.
#ifndef MWEAVER_SERVICE_SESSION_MANAGER_H_
#define MWEAVER_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/snapshot.h"
#include "common/result.h"
#include "core/session.h"

namespace mweaver::service {

using SessionId = uint64_t;

struct SessionManagerOptions {
  /// Sessions untouched for this long are reclaimed by EvictIdle().
  std::chrono::milliseconds idle_ttl{std::chrono::minutes(10)};
  /// Create() fails with ResourceExhausted beyond this many live sessions.
  size_t max_sessions = 4096;
};

/// \brief Concurrent registry of interactive mapping sessions.
///
/// Locking: a registry mutex guards the id map; each session has its own
/// mutex serializing its Inputs (the interaction model is inherently
/// sequential per user, but different users run in parallel). WithSession
/// drops the registry lock before running the callback, so a slow search
/// in one session never blocks lookups or other sessions.
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});

  /// \brief Creates a session for `column_names` over `snapshot`,
  /// returning its id. The session holds the snapshot pin until it is
  /// closed or evicted — later publishes to the same tenant never change
  /// what this session searches. `search_fn` (optional) overrides the
  /// first-row search — the service installs its caching wrapper here.
  Result<SessionId> Create(catalog::SnapshotPtr snapshot,
                           std::vector<std::string> column_names,
                           core::SearchOptions search_options = {},
                           core::Session::SearchFn search_fn = nullptr);

  /// \brief Removes the session. In-flight WithSession calls holding it
  /// finish normally; later lookups return NotFound.
  Status Close(SessionId id);

  /// \brief Runs `fn` with exclusive access to the session and refreshes
  /// its idle clock. Returns NotFound for unknown/closed/evicted ids.
  Status WithSession(SessionId id,
                     const std::function<Status(core::Session&)>& fn);

  /// \brief The snapshot the session is pinned to (tenant name and epoch
  /// ride along on it). NotFound for unknown/closed ids. Cheap: one map
  /// lookup plus a shared_ptr copy — the admission path calls this per
  /// request to attribute it to a tenant.
  Result<catalog::SnapshotPtr> SnapshotOf(SessionId id) const;

  /// \brief Evicts every session idle longer than the TTL; returns how
  /// many were reclaimed. Sessions currently executing a request are
  /// skipped (their idle clock refreshes on completion anyway).
  size_t EvictIdle();

  /// \brief Live session count.
  size_t size() const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    Entry(catalog::SnapshotPtr snap, std::vector<std::string> column_names,
          core::SearchOptions search_options)
        : snapshot(std::move(snap)),
          session(&snapshot->engine(), &snapshot->graph(),
                  std::move(column_names), search_options) {}

    /// Declared before `session`: the session's engine/graph pointers
    /// point INTO the snapshot, so the pin must outlive (construct before,
    /// destruct after) the session.
    const catalog::SnapshotPtr snapshot;
    std::mutex mu;          // serializes access to `session` and `closed`
    core::Session session;
    bool closed = false;    // set by Close/EvictIdle; guards the zombie
                            // window between map erase and entry release
    /// steady_clock nanos of the last WithSession completion (atomic so
    /// EvictIdle can read it without taking the session mutex).
    std::atomic<int64_t> last_used_ns{0};
  };

  static int64_t NowNs();

  const SessionManagerOptions options_;

  mutable std::mutex mu_;  // guards sessions_ only
  std::map<SessionId, std::shared_ptr<Entry>> sessions_;
  std::atomic<SessionId> next_id_{1};
};

}  // namespace mweaver::service

#endif  // MWEAVER_SERVICE_SESSION_MANAGER_H_
