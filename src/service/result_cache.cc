#include "service/result_cache.h"

#include <cstdlib>
#include <limits>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mweaver::service {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

// Tripwire: whoever adds a field to SearchOptions must decide whether it
// affects the result set, update SearchOptions::Fingerprint() accordingly,
// and re-bless the size here. Guarded to 64-bit targets where the layout
// (int + 2 double + 4 size_t, 8-byte aligned) is stable.
#if defined(__x86_64__) || defined(__aarch64__)
static_assert(sizeof(core::SearchOptions) == 56,
              "SearchOptions layout changed: audit Fingerprint() so the "
              "result cache keys on every result-affecting field, then "
              "update this assert");
#endif

namespace {
// `t=<len>:<name>;` — the length prefix makes the tenant segment
// self-delimiting, so a tenant named "a;e=7" cannot forge another
// tenant/epoch's key space.
std::string TenantPrefix(std::string_view tenant) {
  std::string prefix = StrFormat("t=%zu:", tenant.size());
  prefix.append(tenant.data(), tenant.size());
  prefix += ';';
  return prefix;
}
}  // namespace

std::string ResultCache::MakeKeyPrefix(std::string_view tenant,
                                       uint64_t epoch, uint64_t minor_epoch,
                                       uint32_t shards) {
  // Tenant + (epoch, minor epoch) + shard topology scope the prefix to one
  // serving state — publish, streaming update, or reshard.
  return TenantPrefix(tenant) +
         StrFormat("e=%llu.%llu;s=%u;",
                   static_cast<unsigned long long>(epoch),
                   static_cast<unsigned long long>(minor_epoch),
                   static_cast<unsigned>(shards));
}

std::string ResultCache::MakeKeyWithPrefix(
    std::string_view prefix, const std::vector<std::string>& first_row,
    const core::SearchOptions& options) {
  // The options fingerprint covers everything else that can change the
  // result set (canonically defined next to the options themselves).
  std::string key(prefix);
  key += StrFormat("m=%zu;", first_row.size());
  key += options.Fingerprint();
  key += '|';
  for (const std::string& sample : first_row) {
    key += ToLower(sample);
    key += '\x1f';  // unit separator: never produced by user keystrokes
  }
  return key;
}

std::string ResultCache::MakeKey(std::string_view tenant, uint64_t epoch,
                                 uint64_t minor_epoch, uint32_t shards,
                                 const std::vector<std::string>& first_row,
                                 const core::SearchOptions& options) {
  return MakeKeyWithPrefix(MakeKeyPrefix(tenant, epoch, minor_epoch, shards),
                           first_row, options);
}

size_t ResultCache::EvictTenantEntries(std::string_view tenant) {
  return EvictTenantEntries(tenant, std::numeric_limits<uint64_t>::max());
}

size_t ResultCache::EvictTenantEntries(std::string_view tenant,
                                       uint64_t max_epoch) {
  const std::string prefix = TenantPrefix(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  size_t evicted = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      ++it;
      continue;
    }
    // The epoch segment follows the self-delimiting tenant prefix as
    // "e=<epoch>.<minor>;". Entries from a newer epoch — a republish that
    // raced the eviction sweep — are kept.
    const char* seg = it->first.c_str() + prefix.size();
    uint64_t entry_epoch = 0;
    if (seg[0] == 'e' && seg[1] == '=') {
      entry_epoch = std::strtoull(seg + 2, nullptr, 10);
    }
    if (entry_epoch > max_epoch) {
      ++it;
      continue;
    }
    index_.erase(it->first);
    it = lru_.erase(it);
    ++evicted;
  }
  return evicted;
}

std::optional<core::SearchResult> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Insert(const std::string& key, core::SearchResult result) {
  if (capacity_ == 0) return;
  if (result.stats.truncated) return;  // never replay partial results
  // Chaos site: a dropped result-cache insert; like the probe memo, losing
  // one only forces recomputation on the next identical request.
  if (MW_FAILPOINT_TRIGGERED("service.result_cache.insert")) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace mweaver::service
