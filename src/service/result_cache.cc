#include "service/result_cache.h"

#include "common/string_util.h"

namespace mweaver::service {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::string ResultCache::MakeKey(const std::vector<std::string>& first_row,
                                 const core::SearchOptions& options) {
  // Options fingerprint: everything that can change the result set.
  std::string key = StrFormat(
      "m=%zu;pmnj=%d;w=%.6f/%.6f;caps=%zu/%zu;keep=%zu|",
      first_row.size(), options.pmnj, options.matching_weight,
      options.complexity_weight, options.max_tuple_paths_per_mapping,
      options.max_total_tuple_paths,
      options.retained_tuple_paths_per_mapping);
  for (const std::string& sample : first_row) {
    key += ToLower(sample);
    key += '\x1f';  // unit separator: never produced by user keystrokes
  }
  return key;
}

std::optional<core::SearchResult> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Insert(const std::string& key, core::SearchResult result) {
  if (capacity_ == 0) return;
  if (result.stats.truncated) return;  // never replay partial results
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace mweaver::service
