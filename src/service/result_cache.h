// ResultCache: an LRU cache over first-row sample searches. Interactive
// traffic is heavily repetitive — many users map the same popular entities
// against the same source — so identical first rows across sessions can
// skip the TPW pipeline entirely.
//
// Cache key (see DESIGN.md "Service layer"): the tenant (length-prefixed,
// so a crafted tenant name can never splice into the rest of the key) and
// the snapshot EPOCH the session is pinned to, the target-column count, a
// fingerprint of every search option that affects the result set (PMNJ,
// ranking weights, tuple-path caps — NOT num_threads or the deadline,
// which change timing but never the converged output), and the
// NORMALIZED first-row samples (ASCII-lowercased; sound because every
// match mode compares case-insensitively — but NOT trimmed, since the
// engine matches samples verbatim and a stray space changes the result).
//
// Tenant + epoch are load-bearing: two tenants may host different
// databases under identical queries, and one tenant's republish changes
// its answers — the epoch (catalog-wide monotonic, never reused) makes
// every publish a new key space, so stale entries can never be served,
// only aged out by LRU. Truncated results are never inserted: a partial
// candidate list must not be replayed to a client with a looser deadline.
#ifndef MWEAVER_SERVICE_RESULT_CACHE_H_
#define MWEAVER_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/options.h"
#include "core/sample_search.h"

namespace mweaver::service {

/// \brief Thread-safe LRU cache from normalized first rows to complete
/// SearchResults.
class ResultCache {
 public:
  /// \brief Keeps at most `capacity` entries (0 disables caching: every
  /// Lookup misses and Insert is a no-op).
  explicit ResultCache(size_t capacity);

  /// \brief Builds the canonical cache key for a first row searched on
  /// `tenant`'s snapshot at `epoch`.`minor_epoch` under `options`. The
  /// minor epoch extends the publish-epoch scoping to streaming updates:
  /// every installed update batch moves the tenant to a new key space, so
  /// results computed before the update can never be replayed after it
  /// (base snapshots are minor 0, matching keys minted before streaming
  /// existed). `shards` is the snapshot's shard topology: results are
  /// byte-identical across shard counts, but keying on the topology keeps
  /// the fingerprint an honest function of the serving configuration (a
  /// reshard republish already lands on a new epoch anyway).
  static std::string MakeKey(std::string_view tenant, uint64_t epoch,
                             uint64_t minor_epoch, uint32_t shards,
                             const std::vector<std::string>& first_row,
                             const core::SearchOptions& options);

  /// \brief The pin-time half of MakeKey: every key segment derived from
  /// the pinned snapshot (tenant, epoch, minor epoch, shard topology).
  /// Sessions compute this once when they pin, so a request admitted under
  /// one serving state can never be keyed with a later one — the
  /// fingerprint is captured at pin time by construction.
  static std::string MakeKeyPrefix(std::string_view tenant, uint64_t epoch,
                                   uint64_t minor_epoch, uint32_t shards);

  /// \brief The per-request half of MakeKey: appends the target-column
  /// count, options fingerprint and normalized samples to a pin-time
  /// prefix. MakeKey == MakeKeyWithPrefix(MakeKeyPrefix(...), ...).
  static std::string MakeKeyWithPrefix(
      std::string_view prefix, const std::vector<std::string>& first_row,
      const core::SearchOptions& options);

  /// \brief Drops every entry belonging to `tenant` (any epoch); returns
  /// how many were removed. Used when a tenant is dropped —
  /// correctness never depends on this (epochs are never reused), it just
  /// stops dead entries from squatting LRU capacity.
  size_t EvictTenantEntries(std::string_view tenant);

  /// \brief Drops `tenant`'s entries whose epoch is <= `max_epoch` only.
  /// This is the eviction-safe variant: an eviction sweep that raced a
  /// republish of the same tenant name must not purge the fresh epoch's
  /// entries, and the republish's epoch is strictly greater than the
  /// evicted one (catalog-wide monotonic counter).
  size_t EvictTenantEntries(std::string_view tenant, uint64_t max_epoch);

  /// \brief Returns a copy of the cached result and refreshes its
  /// recency, or nullopt on a miss.
  std::optional<core::SearchResult> Lookup(const std::string& key);

  /// \brief Inserts (or refreshes) `result` under `key`, evicting the
  /// least-recently-used entry beyond capacity. Truncated results are
  /// rejected (see file comment).
  void Insert(const std::string& key, core::SearchResult result);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using Entry = std::pair<std::string, core::SearchResult>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mweaver::service

#endif  // MWEAVER_SERVICE_RESULT_CACHE_H_
