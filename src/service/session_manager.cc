#include "service/session_manager.h"

#include "common/string_util.h"

namespace mweaver::service {

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(options) {}

int64_t SessionManager::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<SessionId> SessionManager::Create(
    catalog::SnapshotPtr snapshot, std::vector<std::string> column_names,
    core::SearchOptions search_options, core::Session::SearchFn search_fn) {
  if (snapshot == nullptr) {
    return Status::InvalidArgument("a session needs a snapshot to pin");
  }
  if (column_names.empty()) {
    return Status::InvalidArgument("a session needs at least 1 column");
  }
  auto entry = std::make_shared<Entry>(std::move(snapshot),
                                       std::move(column_names),
                                       search_options);
  if (search_fn) entry->session.set_search_fn(std::move(search_fn));
  entry->last_used_ns.store(NowNs(), std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::ResourceExhausted(
        StrFormat("session limit reached (%zu live sessions)",
                  sessions_.size()));
  }
  const SessionId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  sessions_.emplace(id, std::move(entry));
  return id;
}

Status SessionManager::Close(SessionId id) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound(StrFormat("no session %llu",
                                        static_cast<unsigned long long>(id)));
    }
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Mark closed under the entry mutex so a request racing with the close
  // (it grabbed the shared_ptr before the erase) observes NotFound
  // instead of operating on a zombie session.
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->closed = true;
  return Status::OK();
}

Status SessionManager::WithSession(
    SessionId id, const std::function<Status(core::Session&)>& fn) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    return Status::NotFound(StrFormat("no session %llu",
                                      static_cast<unsigned long long>(id)));
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->closed) {
    return Status::NotFound(StrFormat("session %llu was closed",
                                      static_cast<unsigned long long>(id)));
  }
  Status status = fn(entry->session);
  entry->last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return status;
}

Result<catalog::SnapshotPtr> SessionManager::SnapshotOf(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound(StrFormat("no session %llu",
                                      static_cast<unsigned long long>(id)));
  }
  // The pin is const for the entry's lifetime — no entry mutex needed.
  return it->second->snapshot;
}

size_t SessionManager::EvictIdle() {
  const int64_t cutoff_ns =
      NowNs() - std::chrono::duration_cast<std::chrono::nanoseconds>(
                    options_.idle_ttl)
                    .count();
  std::vector<std::shared_ptr<Entry>> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Entry& entry = *it->second;
      if (entry.last_used_ns.load(std::memory_order_relaxed) > cutoff_ns) {
        ++it;
        continue;
      }
      // try_lock: a session mid-request is busy, not idle — skip it (its
      // idle clock refreshes when the request completes).
      if (!entry.mu.try_lock()) {
        ++it;
        continue;
      }
      entry.closed = true;
      entry.mu.unlock();
      evicted.push_back(std::move(it->second));
      it = sessions_.erase(it);
    }
  }
  // Entries (their Sessions AND their snapshot pins) destruct here,
  // outside the registry lock — evicting the last session on an old epoch
  // is what finally frees that epoch's index bundle.
  return evicted.size();
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace mweaver::service
