// Scenario: the declarative data model of the phased workload harness
// (DESIGN.md §11). A scenario names a service configuration and an ordered
// list of phases; each phase runs a mix of actor types under one arrival
// model until its duration (or per-actor iteration budget) runs out. The
// runner (runner.h) drives a MappingService through the phases with every
// actor gated at phase barriers, in the style of Genny's PhaseLoop /
// Orchestrator design.
#ifndef MWEAVER_WORKLOAD_SCENARIO_H_
#define MWEAVER_WORKLOAD_SCENARIO_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mweaver::workload {

/// \brief The traffic shapes a phase can mix. Each actor type is one
/// thread-per-instance load generator with a distinct access pattern
/// against the mapping service (actors.h has the behaviours).
enum class ActorType {
  /// Opens a session, types one popular first row (firing sample search),
  /// closes. Repeats the same row — the cache-friendly interactive user.
  kSearcher = 0,
  /// Full interactive loop: first row, then goal-target samples row by
  /// row (pruning passes) until the session converges.
  kPruner,
  /// Types every replay row of a script into one session back to back —
  /// batch ingestion of samples, the highest requests-per-session shape.
  kBulkLoader,
  /// Like the searcher but rotates a distinct first row every iteration,
  /// defeating the result cache — the worst-case cold-search stream.
  kCacheBuster,
  /// Streaming writer: applies incremental insert/delete batches to its
  /// tenant through the service's update path, churning minor epochs under
  /// concurrent search traffic. Inserts copies of existing rows and only
  /// ever deletes rows it inserted itself, so batches never conflict.
  kUpdater,
};

inline constexpr size_t kNumActorTypes = 5;

const char* ActorTypeName(ActorType type);
/// \brief Parses "searcher" / "pruner" / "bulk_loader" / "cache_buster" /
/// "updater".
Result<ActorType> ParseActorType(std::string_view name);

/// \brief How requests arrive within a phase.
enum class ArrivalModel {
  /// One outstanding iteration per actor thread; the next starts when the
  /// previous finishes (plus optional think time). Overload backpressure
  /// is retried after a short backoff — closed loops self-throttle.
  kClosed = 0,
  /// Iterations start on a fixed schedule (rate_per_sec across the
  /// phase's actors) regardless of completions. Latency is measured from
  /// the *intended* start, so a backed-up service accrues its backlog in
  /// the tail percentiles instead of silently self-throttling
  /// (coordinated-omission-free). Overloaded responses are recorded and
  /// dropped, not retried.
  kOpen,
};

const char* ArrivalModelName(ArrivalModel model);

/// \brief One named phase: ramp / spike / soak / drain are conventions of
/// the shipped scenarios, not runner semantics — the runner only sees the
/// knobs below.
struct PhaseSpec {
  std::string name;
  /// Time bound; mutually exclusive with `iterations` (exactly one must be
  /// set — the parser enforces it).
  std::chrono::milliseconds duration{0};
  /// Count bound: each active actor runs exactly this many iterations,
  /// which is what makes runner tests deterministic.
  uint64_t iterations = 0;
  ArrivalModel arrival = ArrivalModel::kClosed;
  /// Open-loop total arrival rate (iterations/sec summed over the phase's
  /// actors). Required > 0 when arrival == kOpen.
  double rate_per_sec = 0.0;
  /// Per-request deadline handed to the service (0 = none).
  std::chrono::milliseconds request_deadline{0};
  /// Closed-loop pause between iterations (0 = back to back).
  std::chrono::milliseconds think_time{0};
  /// Threads per actor type active in this phase.
  std::array<size_t, kNumActorTypes> actor_counts{};

  size_t TotalActors() const;
  size_t ActorCount(ActorType type) const {
    return actor_counts[static_cast<size_t>(type)];
  }
};

/// \brief A parsed scenario: service configuration + phases.
struct Scenario {
  std::string name;
  /// Seeds every actor RNG (actor index mixed in), so runs replay.
  uint64_t seed = 1;
  /// Source-database scale (movies in the synthetic generator). The bench
  /// binary can override it from the command line for quick smokes.
  size_t movies = 80;
  /// Service worker threads.
  size_t workers = 4;
  /// Admission queue bound (kOverloaded beyond it).
  size_t queue_depth = 64;
  /// Result-cache capacity (0 disables caching).
  size_t cache_capacity = 256;
  /// Replay rows materialized per task script.
  size_t max_script_rows = 8;
  /// Catalog tenants the scenario spreads its actors over (each actor is
  /// assigned one round-robin). 1 = the single-tenant default, which runs
  /// against service::kDefaultTenant — pre-tenancy scenarios parse and
  /// behave unchanged.
  size_t tenants = 1;
  /// When on, bulk_loader actors republish their tenant (a full snapshot
  /// build + epoch swap) at the top of every iteration before loading —
  /// the ingest-churn traffic shape that proves reads never block on
  /// publishes.
  bool publish_churn = false;
  /// Row-hash shards per tenant (catalog::CatalogOptions::shard_count).
  /// 1 = monolithic snapshots; N > 1 makes every publish a shard bundle
  /// whose publishes/updates rebuild only the touched shards. Results are
  /// byte-identical for any value.
  size_t shards = 1;
  std::vector<PhaseSpec> phases;

  /// \brief Per-type maximum across phases: the threads the runner spawns
  /// (idle actors park at the phase barrier during phases that don't use
  /// them).
  std::array<size_t, kNumActorTypes> MaxActorCounts() const;
  size_t MaxTotalActors() const;
};

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_SCENARIO_H_
