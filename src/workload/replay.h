// ReplayScript: materialized goal-target rows the actors type into mapping
// sessions. Moved here from bench_service_load so the runner, the benches,
// and the tests share one materialization path.
#ifndef MWEAVER_WORKLOAD_REPLAY_H_
#define MWEAVER_WORKLOAD_REPLAY_H_

#include <string>
#include <vector>

#include "datagen/workload.h"
#include "text/fulltext_engine.h"

namespace mweaver::workload {

/// \brief One replayable mapping task: the target schema plus fully
/// populated goal-target rows. Row 0 fires the first-row sample search;
/// the rest drive pruning.
struct ReplayScript {
  std::vector<std::string> column_names;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Materializes up to `max_rows` fully populated goal-target rows
/// per task by evaluating each task's goal mapping against the source.
/// Tasks with no complete row are skipped.
std::vector<ReplayScript> BuildReplayScripts(
    const text::FullTextEngine& engine,
    const std::vector<datagen::TaskSet>& task_sets, size_t max_rows);

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_REPLAY_H_
