#include "workload/actors.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace mweaver::workload {

namespace {

using Clock = Orchestrator::Clock;

/// Closed-loop overload backoff: long enough to let a worker drain one
/// request, short enough not to distort sub-millisecond latencies.
constexpr std::chrono::microseconds kOverloadBackoff{200};

double LagMs(Clock::time_point intended, Clock::time_point actual) {
  return std::max(
      0.0,
      std::chrono::duration<double, std::milli>(actual - intended).count());
}

}  // namespace

Actor::Actor(const Config& config, size_t num_phases)
    : config_(config),
      recorder_(num_phases, config.type,
                config.seed * 1000003ull +
                    static_cast<uint64_t>(config.type) * 101ull +
                    config.ordinal),
      rng_(config.seed * 0x5851F42D4C957F2Dull +
           static_cast<uint64_t>(config.type) * 7919ull + config.ordinal) {
  MW_CHECK(config_.service != nullptr);
  MW_CHECK(config_.scripts != nullptr && !config_.scripts->empty())
      << "actors need at least one replay script";
}

const ReplayScript& Actor::PickScript(uint64_t iteration) const {
  const std::vector<ReplayScript>& scripts = *config_.scripts;
  switch (config_.type) {
    case ActorType::kSearcher:
      // Pinned per actor: repeated popular-entity traffic.
      return scripts[config_.ordinal % scripts.size()];
    case ActorType::kPruner:
    case ActorType::kBulkLoader:
    case ActorType::kCacheBuster:
      // Rotate round robin, staggered per actor so concurrent actors of
      // one type spread over the task list.
      return scripts[(config_.ordinal + iteration) % scripts.size()];
    case ActorType::kUpdater:
      break;  // updaters draw from the database, not the scripts
  }
  return scripts[0];
}

void Actor::RunUpdateIteration(const PhaseRuntime& phase,
                               double extra_latency_ms) {
  const std::string_view tenant = config_.tenant.empty()
                                      ? service::kDefaultTenant
                                      : std::string_view(config_.tenant);
  // Pin the current snapshot only to pick a template: the batch itself is
  // validated against whatever snapshot is current when the writer runs.
  auto pinned = config_.service->catalog().Pin(tenant);
  if (!pinned.ok()) {
    recorder_.RecordSessionFailure(phase.index);
    return;
  }
  const storage::Database& db = (*pinned)->db();
  storage::RelationId rel_id = storage::kInvalidRelation;
  for (size_t attempt = 0; attempt < db.num_relations(); ++attempt) {
    const auto candidate =
        static_cast<storage::RelationId>(rng_.Index(db.num_relations()));
    if (db.relation(candidate).num_live_rows() > 0) {
      rel_id = candidate;
      break;
    }
  }
  if (rel_id == storage::kInvalidRelation) {
    recorder_.RecordSessionFailure(phase.index);
    return;
  }
  const storage::Relation& rel = db.relation(rel_id);
  storage::RowId template_row = -1;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto r = static_cast<storage::RowId>(rng_.Index(rel.num_rows()));
    if (!rel.is_deleted(r)) {
      template_row = r;
      break;
    }
  }
  if (template_row < 0) {
    recorder_.RecordSessionFailure(phase.index);
    return;
  }

  service::UpdateRequest request;
  request.tenant = std::string(tenant);
  request.deadline = phase.spec->request_deadline;
  request.batch.inserts.push_back(
      catalog::RowInsert{rel.name(), rel.row(template_row)});
  // Keep the backlog bounded: once enough of our own rows accumulated,
  // fold deletes of the oldest into the batch — steady churn instead of
  // unbounded growth. Only rows THIS actor inserted are ever deleted, so
  // concurrent updaters (and publishes in other tenants) never conflict.
  constexpr size_t kMaxOwnedRows = 8;
  std::vector<std::pair<std::string, storage::RowId>> deleting;
  while (owned_rows_.size() > deleting.size() &&
         owned_rows_.size() - deleting.size() >= kMaxOwnedRows) {
    deleting.push_back(owned_rows_[deleting.size()]);
    request.batch.deletes.push_back(
        catalog::RowDelete{deleting.back().first, deleting.back().second});
  }

  service::RequestResult result = config_.service->ApplyUpdate(request);
  if (phase.spec->arrival == ArrivalModel::kClosed) {
    while (result.outcome == service::RequestOutcome::kOverloaded) {
      recorder_.RecordOverloadRetry(phase.index);
      if (Clock::now() >= phase.deadline) {
        recorder_.Record(phase.index, result.outcome, 0.0);
        return;
      }
      std::this_thread::sleep_for(kOverloadBackoff);
      result = config_.service->ApplyUpdate(request);
    }
  }
  // Publish churn invalidates row ownership: a republish rebuilds the
  // tenant from its source relations, so row ids this actor inserted into
  // earlier minor epochs are out of range (or tombstoned) in the new
  // epoch and the whole batch is rejected atomically — InvalidArgument or
  // NotFound before the delta builds, FailedPrecondition when the
  // republish lands mid-Apply and the install loses its CAS. In every
  // case the safe reaction is the same: drop the stale ownership and
  // re-issue the inserts alone; later iterations rebuild the delete
  // backlog against the new epoch's row ids.
  if (!result.status.ok() &&
      (result.status.code() == StatusCode::kInvalidArgument ||
       result.status.code() == StatusCode::kNotFound ||
       result.status.code() == StatusCode::kFailedPrecondition)) {
    owned_rows_.clear();
    deleting.clear();
    request.batch.deletes.clear();
    result = config_.service->ApplyUpdate(request);
  }
  recorder_.Record(phase.index, result.outcome,
                   result.latency_ms + extra_latency_ms);
  if (result.status.ok() && result.update_minor_epoch > 0) {
    // The batch installed: the deletes are gone, the inserts are ours now.
    owned_rows_.erase(owned_rows_.begin(),
                      owned_rows_.begin() +
                          static_cast<ptrdiff_t>(deleting.size()));
    for (storage::RowId id : result.inserted_rows) {
      owned_rows_.emplace_back(rel.name(), id);
    }
  }
  // A failed/expired batch applied nothing: owned_rows_ stays as it was
  // (the rows queued for deletion are still live), and a later iteration
  // retries them.
}

bool Actor::IssueCell(const PhaseRuntime& phase, service::SessionId session,
                      size_t row, size_t col, const std::string& value,
                      double extra_latency_ms, service::RequestResult* out) {
  service::InputRequest request;
  request.session_id = session;
  request.row = row;
  request.col = col;
  request.value = value;
  request.deadline = phase.spec->request_deadline;

  service::RequestResult result = config_.service->Call(request);
  if (phase.spec->arrival == ArrivalModel::kClosed) {
    while (result.outcome == service::RequestOutcome::kOverloaded) {
      recorder_.RecordOverloadRetry(phase.index);
      if (Clock::now() >= phase.deadline) {
        // The phase expired while backing off: book the rejection and let
        // the iteration wind down.
        recorder_.Record(phase.index, result.outcome, 0.0);
        return false;
      }
      std::this_thread::sleep_for(kOverloadBackoff);
      result = config_.service->Call(request);
    }
  }
  recorder_.Record(phase.index, result.outcome,
                   result.latency_ms + extra_latency_ms);
  if (out != nullptr) *out = result;
  // A shed (overloaded) or timed-out (truncated) cell ends the iteration:
  // the user gave up — and a queue-expired truncation never applied the
  // input, so typing the next cell would hit an inconsistent session.
  if (result.outcome == service::RequestOutcome::kOverloaded ||
      result.outcome == service::RequestOutcome::kTruncated) {
    return false;
  }
  return result.status.ok();
}

void Actor::RunIteration(const PhaseRuntime& phase, uint64_t iteration,
                         double extra_latency_ms) {
  if (config_.type == ActorType::kUpdater) {
    // Updaters don't open sessions or replay scripts — each iteration is
    // one update batch through the service.
    ++lifetime_iterations_;
    RunUpdateIteration(phase, extra_latency_ms);
    return;
  }
  const ReplayScript& script = PickScript(lifetime_iterations_);
  ++lifetime_iterations_;

  // Publish churn: the bulk loader stamps a fresh epoch of its tenant
  // before loading, so its session below pins the NEW snapshot while
  // every concurrent searcher keeps its own pinned epoch. A failed
  // publish (chaos-injected or superseded) leaves the tenant on its old
  // epoch — book it and load against that.
  if (config_.publish_churn && config_.type == ActorType::kBulkLoader &&
      config_.catalog != nullptr && config_.make_database != nullptr) {
    auto published = config_.catalog->Publish(
        config_.tenant.empty() ? service::kDefaultTenant
                               : std::string_view(config_.tenant),
        (*config_.make_database)());
    if (!published.ok()) recorder_.RecordSessionFailure(phase.index);
  }

  auto created =
      config_.tenant.empty()
          ? config_.service->CreateSession(script.column_names)
          : config_.service->CreateSession(config_.tenant,
                                           script.column_names);
  if (!created.ok()) {
    recorder_.RecordSessionFailure(phase.index);
    return;
  }
  const service::SessionId session = *created;

  switch (config_.type) {
    case ActorType::kSearcher: {
      // The pinned script's first row, every iteration: cache-friendly.
      const std::vector<std::string>& first = script.rows.front();
      for (size_t col = 0; col < first.size(); ++col) {
        if (!IssueCell(phase, session, 0, col, first[col],
                       extra_latency_ms)) {
          break;
        }
      }
      break;
    }
    case ActorType::kCacheBuster: {
      // A different goal-target row as the first row each time: distinct
      // cache keys, so (almost) every search runs the full pipeline.
      const std::vector<std::string>& first =
          script.rows[iteration % script.rows.size()];
      for (size_t col = 0; col < first.size(); ++col) {
        if (!IssueCell(phase, session, 0, col, first[col],
                       extra_latency_ms)) {
          break;
        }
      }
      break;
    }
    case ActorType::kPruner: {
      service::RequestResult last;
      bool alive = true;
      for (size_t row = 0; alive && row < script.rows.size(); ++row) {
        for (size_t col = 0; col < script.rows[row].size(); ++col) {
          if (!IssueCell(phase, session, row, col, script.rows[row][col],
                         extra_latency_ms, &last)) {
            alive = false;
            break;
          }
        }
        if (last.state == core::SessionState::kConverged ||
            last.state == core::SessionState::kNoMapping) {
          break;  // the interactive user stops once the answer is clear
        }
      }
      break;
    }
    case ActorType::kBulkLoader: {
      // Everything, back to back — convergence does not stop a batch load.
      bool alive = true;
      for (size_t row = 0; alive && row < script.rows.size(); ++row) {
        for (size_t col = 0; col < script.rows[row].size(); ++col) {
          if (!IssueCell(phase, session, row, col, script.rows[row][col],
                         extra_latency_ms)) {
            alive = false;
            break;
          }
        }
      }
      break;
    }
    case ActorType::kUpdater:
      break;  // handled above; unreachable
  }
  (void)config_.service->CloseSession(session);
}

void Actor::RunPhase(const PhaseRuntime& phase) {
  const PhaseSpec& spec = *phase.spec;
  const bool count_bounded = spec.iterations > 0;

  if (spec.arrival == ArrivalModel::kClosed) {
    for (uint64_t i = 0;; ++i) {
      if (count_bounded) {
        if (i >= spec.iterations) break;
      } else if (Clock::now() >= phase.deadline) {
        break;
      }
      RunIteration(phase, i, /*extra_latency_ms=*/0.0);
      if (spec.think_time.count() > 0 && !count_bounded) {
        std::this_thread::sleep_for(spec.think_time);
      }
    }
    return;
  }

  // Open loop: iterations start on the fixed schedule
  //   intended(i) = phase.start + stagger + i * interval
  // where interval spreads rate_per_sec over the phase's active actors
  // and `stagger` offsets this actor so the fleet doesn't fire in bursts.
  // Latency is charged from intended(i): if the service (or this thread)
  // falls behind schedule, the lag lands in the recorded tail.
  const double per_actor_rate =
      spec.rate_per_sec / static_cast<double>(phase.active_actors);
  MW_CHECK(per_actor_rate > 0.0);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / per_actor_rate));
  const auto stagger = interval * phase.active_slot / phase.active_actors;

  for (uint64_t i = 0;; ++i) {
    const Clock::time_point intended = phase.start + stagger + interval * i;
    if (count_bounded) {
      if (i >= spec.iterations) break;
    } else if (intended >= phase.deadline) {
      break;
    }
    std::this_thread::sleep_until(intended);
    RunIteration(phase, i, LagMs(intended, Clock::now()));
  }
}

}  // namespace mweaver::workload
