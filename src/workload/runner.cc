#include "workload/runner.h"

#include <cstdio>
#include <deque>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "workload/actors.h"
#include "workload/json_util.h"
#include "workload/orchestrator.h"

namespace mweaver::workload {

namespace {

using Clock = Orchestrator::Clock;

void AppendLatencyJson(JsonWriter* w, const LatencyReservoir& latency) {
  w->BeginObject();
  w->KV("p50_ms", latency.PercentileMs(0.50));
  w->KV("p95_ms", latency.PercentileMs(0.95));
  w->KV("p99_ms", latency.PercentileMs(0.99));
  w->KV("mean_ms", latency.MeanMs());
  w->KV("max_ms", latency.max_ms());
  w->KV("samples", latency.count());
  w->EndObject();
}

void AppendOutcomesJson(JsonWriter* w, const OutcomeCounts& outcomes) {
  w->BeginObject();
  w->KV("ok", outcomes.ok);
  w->KV("degraded", outcomes.degraded);
  w->KV("overloaded", outcomes.overloaded);
  w->KV("timeout", outcomes.timeout);
  w->KV("failed", outcomes.failed);
  w->EndObject();
}

void AppendCellJson(JsonWriter* w, const CellStats& cell,
                    double wall_seconds) {
  const uint64_t completed = cell.latency.count();
  w->Key("requests").UInt(cell.outcomes.Total());
  w->KV("throughput_rps",
        wall_seconds > 0.0 ? static_cast<double>(completed) / wall_seconds
                           : 0.0);
  w->Key("latency_ms");
  AppendLatencyJson(w, cell.latency);
  w->Key("outcomes");
  AppendOutcomesJson(w, cell.outcomes);
  w->KV("overload_retries", cell.overload_retries);
  w->KV("session_failures", cell.session_failures);
}

}  // namespace

uint64_t ScenarioReport::TotalRequests() const {
  uint64_t total = 0;
  for (const PhaseReport& phase : phases) {
    total += phase.stats.total.outcomes.Total();
  }
  return total;
}

uint64_t ScenarioReport::TotalFailures() const {
  uint64_t total = 0;
  for (const PhaseReport& phase : phases) {
    total += phase.stats.total.outcomes.failed +
             phase.stats.total.session_failures;
  }
  return total;
}

std::string ScenarioReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", uint64_t{1});
  w.KV("kind", "service_scenarios");
  w.KV("scenario", scenario_name);
  w.KV("seed", seed);
  w.Key("config").BeginObject();
  w.KV("movies", static_cast<uint64_t>(movies));
  w.KV("workers", static_cast<uint64_t>(workers));
  w.KV("queue_depth", static_cast<uint64_t>(queue_depth));
  w.KV("cache_capacity", static_cast<uint64_t>(cache_capacity));
  w.KV("replay_scripts", static_cast<uint64_t>(scripts));
  w.KV("tenants", static_cast<uint64_t>(tenants));
  w.KV("shards", static_cast<uint64_t>(shards));
  w.KV("publish_churn", publish_churn ? "on" : "off");
  w.EndObject();
  w.KV("wall_seconds", wall_seconds);
  w.KV("total_requests", TotalRequests());
  w.KV("total_failures", TotalFailures());

  w.Key("phases").BeginArray();
  for (const PhaseReport& phase : phases) {
    w.BeginObject();
    w.KV("name", phase.name);
    w.KV("arrival", ArrivalModelName(phase.arrival));
    w.KV("wall_seconds", phase.wall_seconds);

    w.Key("actors").BeginArray();
    for (size_t t = 0; t < kNumActorTypes; ++t) {
      const CellStats& cell = phase.stats.by_actor[t];
      if (cell.outcomes.Total() == 0 && cell.session_failures == 0) {
        continue;
      }
      w.BeginObject();
      w.KV("type", ActorTypeName(static_cast<ActorType>(t)));
      AppendCellJson(&w, cell, phase.wall_seconds);
      w.EndObject();
    }
    w.EndArray();

    w.Key("total").BeginObject();
    AppendCellJson(&w, phase.stats.total, phase.wall_seconds);
    w.EndObject();

    w.Key("service").Raw(phase.service.ToJson());
    w.EndObject();
  }
  w.EndArray();

  w.Key("service_final").Raw(final_service.ToJson());
  w.Key("service_per_tenant")
      .Raw(per_tenant_json.empty() ? "{}" : per_tenant_json);
  w.EndObject();
  return w.Finish();
}

void ScenarioReport::PrintSummary(std::FILE* out) const {
  std::fprintf(out,
               "scenario '%s': %zu phase(s), %.2f s wall, %llu requests, "
               "%llu failures\n",
               scenario_name.c_str(), phases.size(), wall_seconds,
               static_cast<unsigned long long>(TotalRequests()),
               static_cast<unsigned long long>(TotalFailures()));
  std::fprintf(out,
               "%-12s %-7s %8s %9s %9s %9s %9s  %s\n", "phase", "arrive",
               "reqs", "rps", "p50 ms", "p95 ms", "p99 ms",
               "ok/degr/over/tmo/fail");
  for (const PhaseReport& phase : phases) {
    const CellStats& total = phase.stats.total;
    std::fprintf(
        out, "%-12s %-7s %8llu %9.1f %9.3f %9.3f %9.3f  %llu/%llu/%llu/%llu/%llu\n",
        phase.name.c_str(), ArrivalModelName(phase.arrival),
        static_cast<unsigned long long>(total.outcomes.Total()),
        phase.wall_seconds > 0.0
            ? static_cast<double>(total.latency.count()) / phase.wall_seconds
            : 0.0,
        total.latency.PercentileMs(0.50), total.latency.PercentileMs(0.95),
        total.latency.PercentileMs(0.99),
        static_cast<unsigned long long>(total.outcomes.ok),
        static_cast<unsigned long long>(total.outcomes.degraded),
        static_cast<unsigned long long>(total.outcomes.overloaded),
        static_cast<unsigned long long>(total.outcomes.timeout),
        static_cast<unsigned long long>(total.outcomes.failed));
    for (size_t t = 0; t < kNumActorTypes; ++t) {
      const CellStats& cell = phase.stats.by_actor[t];
      if (cell.outcomes.Total() == 0) continue;
      std::fprintf(
          out, "  %-17s %8llu %9s %9.3f %9.3f %9.3f\n",
          ActorTypeName(static_cast<ActorType>(t)),
          static_cast<unsigned long long>(cell.outcomes.Total()), "",
          cell.latency.PercentileMs(0.50), cell.latency.PercentileMs(0.95),
          cell.latency.PercentileMs(0.99));
    }
  }
}

ScenarioRunner::ScenarioRunner(service::MappingService* service,
                               const std::vector<ReplayScript>* scripts)
    : ScenarioRunner(service, scripts, TenantTopology{}) {}

ScenarioRunner::ScenarioRunner(service::MappingService* service,
                               const std::vector<ReplayScript>* scripts,
                               TenantTopology topology)
    : service_(service), scripts_(scripts), topology_(std::move(topology)) {
  MW_CHECK(service_ != nullptr);
  MW_CHECK(scripts_ != nullptr);
}

Result<ScenarioReport> ScenarioRunner::Run(const Scenario& scenario) {
  if (scripts_->empty()) {
    return Status::FailedPrecondition(
        "no replay scripts: the task workload materialized no complete "
        "goal-target rows");
  }
  if (scenario.phases.empty()) {
    return Status::InvalidArgument("scenario has no phases");
  }
  if (scenario.tenants > 1 &&
      topology_.tenants.size() < scenario.tenants) {
    return Status::FailedPrecondition(
        StrFormat("scenario wants %zu tenants but the topology provides "
                  "%zu",
                  scenario.tenants, topology_.tenants.size()));
  }
  if (scenario.publish_churn &&
      (topology_.catalog == nullptr || !topology_.make_database)) {
    return Status::FailedPrecondition(
        "scenario sets publish_churn but the topology has no catalog / "
        "make_database");
  }

  // One actor thread per (type, ordinal) up to the per-type maximum; a
  // phase that uses fewer simply parks the extras at the barriers. Actors
  // are dealt their tenant round-robin within each type, so every tenant
  // sees every traffic shape the scenario mixes.
  const std::array<size_t, kNumActorTypes> max_counts =
      scenario.MaxActorCounts();
  std::deque<Actor> actors;
  for (size_t t = 0; t < kNumActorTypes; ++t) {
    for (size_t k = 0; k < max_counts[t]; ++k) {
      Actor::Config config;
      config.service = service_;
      config.scripts = scripts_;
      config.type = static_cast<ActorType>(t);
      config.ordinal = k;
      config.seed = scenario.seed;
      if (scenario.tenants > 1) {
        config.tenant = topology_.tenants[k % scenario.tenants];
      } else if (!topology_.tenants.empty()) {
        config.tenant = topology_.tenants.front();
      }
      if (scenario.publish_churn) {
        config.catalog = topology_.catalog;
        config.make_database = &topology_.make_database;
        config.publish_churn = true;
      }
      actors.emplace_back(config, scenario.phases.size());
    }
  }
  if (actors.empty()) {
    return Status::InvalidArgument("scenario activates no actors");
  }

  // The runner thread joins the barriers too: the gap between a phase's
  // leave barrier and the next phase's enter barrier is its quiescent
  // window for snapshotting and resetting service metrics.
  Orchestrator orchestrator(actors.size() + 1);

  std::vector<std::thread> threads;
  threads.reserve(actors.size());
  {
    size_t actor_index = 0;
    for (size_t t = 0; t < kNumActorTypes; ++t) {
      for (size_t k = 0; k < max_counts[t]; ++k, ++actor_index) {
        Actor* actor = &actors[actor_index];
        threads.emplace_back([&orchestrator, &scenario, actor, t, k]() {
          for (size_t p = 0; p < scenario.phases.size(); ++p) {
            const PhaseSpec& spec = scenario.phases[p];
            PhaseRuntime runtime;
            runtime.spec = &spec;
            runtime.index = p;
            runtime.start = orchestrator.EnterPhase(p);
            runtime.deadline = spec.iterations > 0
                                   ? Clock::time_point::max()
                                   : runtime.start + spec.duration;
            runtime.active_actors = spec.TotalActors();
            // Actors are ordered by (type, ordinal): this actor's slot
            // among the phase's active actors is the count of active
            // actors of earlier types plus its ordinal.
            size_t slot = k;
            for (size_t earlier = 0; earlier < t; ++earlier) {
              slot += spec.actor_counts[earlier];
            }
            runtime.active_slot = slot;
            const bool active =
                k < spec.actor_counts[t] && !orchestrator.cancelled();
            if (active) actor->RunPhase(runtime);
            // Inactive actors skip straight to the leave barrier: it
            // releases only when the phase's active actors finish, so
            // they sleep the phase out without busy-waiting.
            orchestrator.LeavePhase(p);
          }
        });
      }
    }
  }

  ScenarioReport report;
  report.scenario_name = scenario.name;
  report.seed = scenario.seed;
  report.movies = scenario.movies;
  report.workers = scenario.workers;
  report.queue_depth = scenario.queue_depth;
  report.cache_capacity = scenario.cache_capacity;
  report.scripts = scripts_->size();
  report.tenants = scenario.tenants;
  report.shards = scenario.shards;
  report.publish_churn = scenario.publish_churn;
  report.phases.reserve(scenario.phases.size());

  const Clock::time_point run_start = Clock::now();
  for (size_t p = 0; p < scenario.phases.size(); ++p) {
    // Quiescent window (no actor is between barriers yet): snapshot the
    // cumulative counters and reset the latency histograms so this
    // phase's service view covers only this interval.
    const service::MetricsSnapshot before = service_->SnapshotMetrics();
    service_->ResetMetricsHistograms();
    const Clock::time_point start = orchestrator.EnterPhase(p);
    orchestrator.LeavePhase(p);  // blocks until every actor finished p
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();

    PhaseReport phase;
    phase.name = scenario.phases[p].name;
    phase.arrival = scenario.phases[p].arrival;
    phase.wall_seconds = wall;
    phase.service = service_->SnapshotMetrics().Delta(before);
    report.phases.push_back(std::move(phase));
  }
  for (std::thread& thread : threads) thread.join();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_start).count();
  report.final_service = service_->SnapshotMetrics();
  report.per_tenant_json = service_->PerTenantMetricsJson();

  // Fold the per-actor recorders into the per-phase cells.
  std::vector<EventRecorder> recorders;
  recorders.reserve(actors.size());
  for (Actor& actor : actors) recorders.push_back(actor.recorder());
  std::vector<PhaseStats> stats =
      AggregateRecorders(recorders, scenario.phases.size());
  for (size_t p = 0; p < report.phases.size(); ++p) {
    report.phases[p].stats = std::move(stats[p]);
  }
  return report;
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot write '%s'", tmp.c_str()));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool flushed = std::fclose(file) == 0 && written == content.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    return Status::IOError(StrFormat("short write to '%s'", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(
        StrFormat("cannot rename '%s' -> '%s'", tmp.c_str(), path.c_str()));
  }
  return Status::OK();
}

}  // namespace mweaver::workload
