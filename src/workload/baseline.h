// Baseline gating: compares a fresh BENCH_service_scenarios.json against
// the checked-in baseline and fails on p95 latency regressions beyond a
// tolerance band. The band is relative (default +25%) with an absolute
// floor (default +10 ms): sub-millisecond smoke latencies on noisy CI
// runners must not flap the gate, while a genuine 2x regression on a
// meaningful latency still trips it.
#ifndef MWEAVER_WORKLOAD_BASELINE_H_
#define MWEAVER_WORKLOAD_BASELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mweaver::workload {

struct BaselineCheckOptions {
  /// Relative tolerance on p95: current may be baseline * (1 + tolerance).
  double tolerance = 0.25;
  /// Absolute slack in ms added to the band (CI noise floor).
  double abs_floor_ms = 10.0;
};

/// \brief One compared cell (a phase total or a phase/actor pair).
struct BaselineEntry {
  std::string phase;
  std::string cell;  // "total" or an actor type name
  double baseline_p95_ms = 0.0;
  double current_p95_ms = 0.0;
  double allowed_p95_ms = 0.0;
  /// Current exceeds the band, or the cell vanished from the current run.
  bool regressed = false;
  bool missing = false;
};

struct BaselineComparison {
  std::vector<BaselineEntry> entries;
  bool ok = true;
  std::string ToString() const;
};

/// \brief Compares p95 latencies of every (phase, cell) present in the
/// baseline document against the current document. Cells only present in
/// the current run (new phases/actors) pass silently — the next baseline
/// refresh picks them up.
Result<BaselineComparison> CompareToBaseline(
    std::string_view current_json, std::string_view baseline_json,
    const BaselineCheckOptions& options = {});

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_BASELINE_H_
