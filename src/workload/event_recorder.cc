#include "workload/event_recorder.h"

#include <algorithm>

#include "common/logging.h"

namespace mweaver::workload {

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void OutcomeCounts::Add(const OutcomeCounts& other) {
  ok += other.ok;
  degraded += other.degraded;
  overloaded += other.overloaded;
  timeout += other.timeout;
  failed += other.failed;
}

LatencyReservoir::LatencyReservoir(uint64_t seed, size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {}

void LatencyReservoir::Add(double latency_ms) {
  ++count_;
  sum_ms_ += latency_ms;
  if (latency_ms > max_ms_) max_ms_ = latency_ms;
  if (samples_.size() < capacity_) {
    samples_.push_back(latency_ms);
    return;
  }
  // Algorithm R: keep each of the `count_` offered samples with equal
  // probability capacity_/count_.
  const size_t slot = static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(count_) - 1));
  if (slot < capacity_) samples_[slot] = latency_ms;
}

void LatencyReservoir::Merge(const LatencyReservoir& other) {
  // Exact when the union fits the capacity (the common case for per-phase
  // cells); otherwise every retained sample of `other` is offered through
  // the same reservoir discipline.
  sum_ms_ += other.sum_ms_;
  if (other.max_ms_ > max_ms_) max_ms_ = other.max_ms_;
  const uint64_t merged_count = count_ + other.count_;
  for (double sample : other.samples_) {
    ++count_;
    if (samples_.size() < capacity_) {
      samples_.push_back(sample);
      continue;
    }
    const size_t slot = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(count_) - 1));
    if (slot < capacity_) samples_[slot] = sample;
  }
  count_ = merged_count;
}

double LatencyReservoir::PercentileMs(double p) const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return PercentileSorted(sorted, p);
}

void CellStats::Merge(const CellStats& other) {
  outcomes.Add(other.outcomes);
  overload_retries += other.overload_retries;
  session_failures += other.session_failures;
  latency.Merge(other.latency);
}

EventRecorder::EventRecorder(size_t num_phases, ActorType type, uint64_t seed)
    : type_(type) {
  phases_.reserve(num_phases);
  for (size_t p = 0; p < num_phases; ++p) {
    CellStats cell;
    // Distinct stream per (actor, phase) so merged subsamples stay
    // unbiased; the constants are arbitrary odd mixers.
    cell.latency = LatencyReservoir(seed * 0x9E3779B97F4A7C15ull + p);
    phases_.push_back(std::move(cell));
  }
}

void EventRecorder::Record(size_t phase, service::RequestOutcome outcome,
                           double latency_ms) {
  MW_DCHECK(phase < phases_.size());
  CellStats& cell = phases_[phase];
  switch (outcome) {
    case service::RequestOutcome::kOk:
      ++cell.outcomes.ok;
      break;
    case service::RequestOutcome::kDegraded:
      ++cell.outcomes.degraded;
      break;
    case service::RequestOutcome::kOverloaded:
      ++cell.outcomes.overloaded;
      // Rejected at admission: there is no service latency to record.
      return;
    case service::RequestOutcome::kTruncated:
      ++cell.outcomes.timeout;
      break;
    case service::RequestOutcome::kFailed:
      ++cell.outcomes.failed;
      break;
  }
  cell.latency.Add(latency_ms);
}

void EventRecorder::RecordOverloadRetry(size_t phase) {
  MW_DCHECK(phase < phases_.size());
  ++phases_[phase].overload_retries;
}

void EventRecorder::RecordSessionFailure(size_t phase) {
  MW_DCHECK(phase < phases_.size());
  ++phases_[phase].session_failures;
}

std::vector<PhaseStats> AggregateRecorders(
    const std::vector<EventRecorder>& recorders, size_t num_phases) {
  std::vector<PhaseStats> phases(num_phases);
  for (PhaseStats& phase : phases) {
    phase.by_actor.resize(kNumActorTypes);
  }
  for (const EventRecorder& recorder : recorders) {
    const size_t type = static_cast<size_t>(recorder.type());
    for (size_t p = 0; p < num_phases && p < recorder.num_phases(); ++p) {
      phases[p].by_actor[type].Merge(recorder.phase_stats(p));
      phases[p].total.Merge(recorder.phase_stats(p));
    }
  }
  return phases;
}

}  // namespace mweaver::workload
