#include "workload/baseline.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "workload/json_util.h"

namespace mweaver::workload {

namespace {

/// (phase, cell) -> p95_ms extracted from one report document.
using P95Map = std::map<std::pair<std::string, std::string>, double>;

Result<P95Map> ExtractP95s(const JsonValue& doc) {
  const JsonValue* phases = doc.Find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return Status::InvalidArgument(
        "perf document has no 'phases' array (not a "
        "BENCH_service_scenarios.json?)");
  }
  P95Map out;
  for (const JsonValue& phase : phases->array()) {
    const std::string name = phase.StringOr("name", "");
    if (name.empty()) continue;
    if (const JsonValue* total = phase.Find("total")) {
      if (const JsonValue* latency = total->Find("latency_ms")) {
        out[{name, "total"}] = latency->NumberOr("p95_ms", 0.0);
      }
    }
    const JsonValue* actors = phase.Find("actors");
    if (actors == nullptr || !actors->is_array()) continue;
    for (const JsonValue& actor : actors->array()) {
      const std::string type = actor.StringOr("type", "");
      const JsonValue* latency = actor.Find("latency_ms");
      if (type.empty() || latency == nullptr) continue;
      out[{name, type}] = latency->NumberOr("p95_ms", 0.0);
    }
  }
  return out;
}

}  // namespace

std::string BaselineComparison::ToString() const {
  std::string out = StrFormat("baseline check: %zu cell(s), %s\n",
                              entries.size(), ok ? "PASS" : "FAIL");
  for (const BaselineEntry& entry : entries) {
    if (entry.missing) {
      out += StrFormat("  %-12s %-14s baseline %8.3f ms  -> MISSING from "
                       "current run\n",
                       entry.phase.c_str(), entry.cell.c_str(),
                       entry.baseline_p95_ms);
      continue;
    }
    out += StrFormat("  %-12s %-14s baseline %8.3f ms  current %8.3f ms  "
                     "allowed %8.3f ms  %s\n",
                     entry.phase.c_str(), entry.cell.c_str(),
                     entry.baseline_p95_ms, entry.current_p95_ms,
                     entry.allowed_p95_ms,
                     entry.regressed ? "REGRESSED" : "ok");
  }
  return out;
}

Result<BaselineComparison> CompareToBaseline(
    std::string_view current_json, std::string_view baseline_json,
    const BaselineCheckOptions& options) {
  MW_ASSIGN_OR_RETURN(const JsonValue current, ParseJson(current_json));
  MW_ASSIGN_OR_RETURN(const JsonValue baseline, ParseJson(baseline_json));
  MW_ASSIGN_OR_RETURN(const P95Map current_p95s, ExtractP95s(current));
  MW_ASSIGN_OR_RETURN(const P95Map baseline_p95s, ExtractP95s(baseline));
  if (baseline_p95s.empty()) {
    return Status::InvalidArgument("baseline document has no p95 cells");
  }

  BaselineComparison comparison;
  for (const auto& [key, base_p95] : baseline_p95s) {
    BaselineEntry entry;
    entry.phase = key.first;
    entry.cell = key.second;
    entry.baseline_p95_ms = base_p95;
    entry.allowed_p95_ms = std::max(base_p95 * (1.0 + options.tolerance),
                                    base_p95 + options.abs_floor_ms);
    const auto it = current_p95s.find(key);
    if (it == current_p95s.end()) {
      entry.missing = true;
      entry.regressed = true;
    } else {
      entry.current_p95_ms = it->second;
      entry.regressed = entry.current_p95_ms > entry.allowed_p95_ms;
    }
    if (entry.regressed) comparison.ok = false;
    comparison.entries.push_back(std::move(entry));
  }
  return comparison;
}

}  // namespace mweaver::workload
