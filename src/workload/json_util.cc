#include "workload/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace mweaver::workload {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  // Integers print without a fraction so counts stay exact and diffable.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.6g", value);
}

JsonWriter::JsonWriter() = default;

void JsonWriter::BeforeValue() {
  MW_CHECK(!done_) << "JsonWriter used after Finish()";
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    MW_CHECK(pending_key_) << "object value without Key()";
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MW_CHECK(!stack_.empty() && stack_.back() == Frame::kObject)
      << "Key() outside an object";
  MW_CHECK(!pending_key_) << "two Key() calls in a row";
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  AppendJsonString(&out_, key);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  MW_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !pending_key_)
      << "unbalanced EndObject()";
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  MW_CHECK(!stack_.empty() && stack_.back() == Frame::kArray)
      << "unbalanced EndArray()";
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendJsonString(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Finish() {
  MW_CHECK(stack_.empty()) << "Finish() with open scopes";
  done_ = true;
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// JsonValue + parser

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Of(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Of(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::Of(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue, std::less<>> m) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(m);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string()
                                          : std::string(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    MW_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters");
    return v;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("json offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        MW_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Of(std::move(s));
      }
      case 't':
        return ParseKeyword("true", JsonValue::Of(true));
      case 'f':
        return ParseKeyword("false", JsonValue::Of(false));
      case 'n':
        return ParseKeyword("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue::Of(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The perf files only escape control characters; emit the code
          // point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    std::map<std::string, JsonValue, std::less<>> members;
    SkipWs();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWs();
      MW_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      MW_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.insert_or_assign(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      MW_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace mweaver::workload
