// ScenarioParser: reads the plain-text scenario format of bench/scenarios/
// (DESIGN.md §11 documents the grammar). The format is a small key/value +
// sections dialect parsed entirely in-tree — no YAML or third-party
// dependency:
//
//   # comment (blank lines ignored)
//   name: smoke            <- top-level "key: value" pairs first
//   seed: 42
//   movies: 60
//   workers: 4
//   queue: 64
//   cache: 256
//   script_rows: 8
//
//   [phase ramp]           <- one section per phase, in run order
//   duration_ms: 500       <- XOR iterations: N (count-bounded phases)
//   arrival: closed        <- closed | open (open needs rate_per_sec)
//   deadline_ms: 200
//   think_time_ms: 0
//   actors: searcher=2 pruner=1 bulk_loader=1 cache_buster=1
//
// Every diagnostic is an InvalidArgument Status carrying the 1-based line
// number ("line 12: unknown actor type 'frobber'"), so a bad checked-in
// scenario points at itself.
#ifndef MWEAVER_WORKLOAD_SCENARIO_PARSER_H_
#define MWEAVER_WORKLOAD_SCENARIO_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "workload/scenario.h"

namespace mweaver::workload {

class ScenarioParser {
 public:
  /// \brief Parses a full scenario spec from text.
  static Result<Scenario> Parse(std::string_view text);

  /// \brief Reads and parses `path`; errors are prefixed with the path.
  static Result<Scenario> ParseFile(const std::string& path);
};

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_SCENARIO_PARSER_H_
