// Actors: the per-thread load generators of the workload harness. Each
// actor owns one EventRecorder (single-writer, lock-free recording) and
// implements one traffic shape against the MappingService:
//
//   searcher      open session -> type one popular first row -> close.
//                 Replays the same row every iteration, so it exercises
//                 the result cache the way repeated popular-entity
//                 traffic does.
//   pruner        the full interactive loop: first row, then goal-target
//                 samples row by row until the session converges (or the
//                 script runs out).
//   bulk_loader   types every script row into one session back to back —
//                 batch sample ingestion, the highest request density per
//                 session.
//   cache_buster  rotates a distinct first row every iteration, forcing
//                 cold searches through the whole TPW pipeline.
//   updater       streaming writer: each iteration applies one update
//                 batch (insert a copy of an existing row; delete its own
//                 oldest inserts once a backlog builds) through the
//                 service's update path — minor-epoch churn under load.
//
// Arrival pacing lives here too: closed-loop iterations chain (with think
// time and overload retry), open-loop iterations run on a fixed schedule
// with latency measured from the intended start (see ArrivalModel).
#ifndef MWEAVER_WORKLOAD_ACTORS_H_
#define MWEAVER_WORKLOAD_ACTORS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "service/mapping_service.h"
#include "storage/database.h"
#include "workload/event_recorder.h"
#include "workload/orchestrator.h"
#include "workload/replay.h"
#include "workload/scenario.h"

namespace mweaver::workload {

/// \brief Everything an actor needs to run one phase.
struct PhaseRuntime {
  const PhaseSpec* spec = nullptr;
  size_t index = 0;
  /// Stamped by the orchestrator's entry barrier — identical across
  /// actors.
  Orchestrator::Clock::time_point start{};
  /// start + duration for time-bounded phases; time_point::max() for
  /// count-bounded ones.
  Orchestrator::Clock::time_point deadline{};
  /// This actor's slot among the phase's active actors (for open-loop
  /// schedule staggering), and how many are active in total.
  size_t active_slot = 0;
  size_t active_actors = 1;
};

/// \brief One load-generating actor thread's state and behaviour.
class Actor {
 public:
  struct Config {
    service::MappingService* service = nullptr;
    const std::vector<ReplayScript>* scripts = nullptr;
    ActorType type = ActorType::kSearcher;
    /// Index of this actor within its type (0-based).
    size_t ordinal = 0;
    /// Scenario seed; mixed with the type and ordinal for the actor RNG.
    uint64_t seed = 1;
    /// Tenant this actor's sessions target; empty = the service's default
    /// tenant (single-tenant scenarios).
    std::string tenant;
    /// Set together when the scenario runs publish churn: bulk_loader
    /// actors call catalog->Publish(tenant, (*make_database)()) at the top
    /// of every iteration. Other actor types ignore them.
    catalog::Catalog* catalog = nullptr;
    const std::function<storage::Database()>* make_database = nullptr;
    bool publish_churn = false;
  };

  Actor(const Config& config, size_t num_phases);

  ActorType type() const { return config_.type; }
  EventRecorder& recorder() { return recorder_; }
  const EventRecorder& recorder() const { return recorder_; }

  /// \brief Runs the phase loop to its bound (duration or iterations).
  /// Must be called phase by phase, between the orchestrator barriers.
  void RunPhase(const PhaseRuntime& phase);

 private:
  /// \brief One iteration of this actor's shape. `extra_latency_ms` is the
  /// open-loop schedule lag folded into every recorded latency.
  void RunIteration(const PhaseRuntime& phase, uint64_t iteration,
                    double extra_latency_ms);

  /// \brief One updater iteration: build an insert/delete batch against
  /// the tenant's current snapshot and apply it via the service (closed
  /// loops retry overload like IssueCell).
  void RunUpdateIteration(const PhaseRuntime& phase, double extra_latency_ms);

  /// \brief Sends one cell. Closed loops retry overload with backoff (up
  /// to the phase deadline); open loops record the rejection and move on.
  /// Returns false when the iteration should stop (phase expired
  /// mid-retry or the request failed hard).
  bool IssueCell(const PhaseRuntime& phase, service::SessionId session,
                 size_t row, size_t col, const std::string& value,
                 double extra_latency_ms,
                 service::RequestResult* out = nullptr);

  const ReplayScript& PickScript(uint64_t iteration) const;

  Config config_;
  EventRecorder recorder_;
  Rng rng_;
  uint64_t lifetime_iterations_ = 0;  // across phases: rotates scripts
  /// Updater bookkeeping: (relation name, row id) of rows this actor
  /// inserted and has not yet deleted. Deleting only from this list keeps
  /// concurrent updaters conflict-free (no double-deletes).
  std::vector<std::pair<std::string, storage::RowId>> owned_rows_;
};

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_ACTORS_H_
