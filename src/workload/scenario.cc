#include "workload/scenario.h"

#include "common/string_util.h"

namespace mweaver::workload {

const char* ActorTypeName(ActorType type) {
  switch (type) {
    case ActorType::kSearcher:
      return "searcher";
    case ActorType::kPruner:
      return "pruner";
    case ActorType::kBulkLoader:
      return "bulk_loader";
    case ActorType::kCacheBuster:
      return "cache_buster";
    case ActorType::kUpdater:
      return "updater";
  }
  return "?";
}

Result<ActorType> ParseActorType(std::string_view name) {
  for (size_t i = 0; i < kNumActorTypes; ++i) {
    const auto type = static_cast<ActorType>(i);
    if (name == ActorTypeName(type)) return type;
  }
  return Status::InvalidArgument(
      StrFormat("unknown actor type '%.*s'", static_cast<int>(name.size()),
                name.data()));
}

const char* ArrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kClosed:
      return "closed";
    case ArrivalModel::kOpen:
      return "open";
  }
  return "?";
}

size_t PhaseSpec::TotalActors() const {
  size_t total = 0;
  for (size_t count : actor_counts) total += count;
  return total;
}

std::array<size_t, kNumActorTypes> Scenario::MaxActorCounts() const {
  std::array<size_t, kNumActorTypes> max{};
  for (const PhaseSpec& phase : phases) {
    for (size_t i = 0; i < kNumActorTypes; ++i) {
      if (phase.actor_counts[i] > max[i]) max[i] = phase.actor_counts[i];
    }
  }
  return max;
}

size_t Scenario::MaxTotalActors() const {
  size_t total = 0;
  for (size_t count : MaxActorCounts()) total += count;
  return total;
}

}  // namespace mweaver::workload
