// ScenarioRunner: executes a parsed Scenario against a MappingService and
// produces a ScenarioReport — the persisted perf-trajectory record written
// as BENCH_service_scenarios.json (schema in DESIGN.md §11).
//
// One std::thread per actor (the per-phase maximum across the scenario);
// actors that a phase doesn't use park at the phase barrier and sleep the
// phase out. Per phase the runner also snapshots the service metrics and
// resets the latency histograms, so each PhaseReport carries the service's
// own view of just that interval alongside the harness-side measurements.
#ifndef MWEAVER_WORKLOAD_RUNNER_H_
#define MWEAVER_WORKLOAD_RUNNER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/mapping_service.h"
#include "workload/event_recorder.h"
#include "workload/replay.h"
#include "workload/scenario.h"

namespace mweaver::workload {

/// \brief Measured results of one phase.
struct PhaseReport {
  std::string name;
  ArrivalModel arrival = ArrivalModel::kClosed;
  double wall_seconds = 0.0;
  PhaseStats stats;
  /// Service-side counters for this interval: counter fields are deltas
  /// against the phase start, histogram percentiles cover only this phase
  /// (the runner resets the histograms at each phase boundary).
  service::MetricsSnapshot service;
};

/// \brief The full scenario result.
struct ScenarioReport {
  std::string scenario_name;
  uint64_t seed = 0;
  size_t movies = 0;
  size_t workers = 0;
  size_t queue_depth = 0;
  size_t cache_capacity = 0;
  size_t scripts = 0;
  double wall_seconds = 0.0;
  std::vector<PhaseReport> phases;
  /// Cumulative service counters at scenario end (histograms reflect the
  /// final phase only, per the interval resets).
  service::MetricsSnapshot final_service;

  uint64_t TotalRequests() const;
  /// Hard request failures (kFailed outcomes + failed session opens) —
  /// nonzero means the run itself is suspect.
  uint64_t TotalFailures() const;

  /// \brief Serializes the report as the BENCH_service_scenarios.json
  /// document.
  std::string ToJson() const;

  /// \brief Human-readable per-phase table.
  void PrintSummary(std::FILE* out) const;
};

/// \brief Runs scenarios over one service + replay-script set. The service
/// and scripts must outlive the runner.
class ScenarioRunner {
 public:
  ScenarioRunner(service::MappingService* service,
                 const std::vector<ReplayScript>* scripts);

  /// \brief Executes every phase. Fails fast on impossible setups (no
  /// scripts, no phases); request-level failures are reported, not thrown.
  Result<ScenarioReport> Run(const Scenario& scenario);

 private:
  service::MappingService* service_;
  const std::vector<ReplayScript>* scripts_;
};

/// \brief Writes `content` to `path` atomically enough for bench output
/// (temp file + rename).
Status WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_RUNNER_H_
