// ScenarioRunner: executes a parsed Scenario against a MappingService and
// produces a ScenarioReport — the persisted perf-trajectory record written
// as BENCH_service_scenarios.json (schema in DESIGN.md §11).
//
// One std::thread per actor (the per-phase maximum across the scenario);
// actors that a phase doesn't use park at the phase barrier and sleep the
// phase out. Per phase the runner also snapshots the service metrics and
// resets the latency histograms, so each PhaseReport carries the service's
// own view of just that interval alongside the harness-side measurements.
#ifndef MWEAVER_WORKLOAD_RUNNER_H_
#define MWEAVER_WORKLOAD_RUNNER_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "service/mapping_service.h"
#include "storage/database.h"
#include "workload/event_recorder.h"
#include "workload/replay.h"
#include "workload/scenario.h"

namespace mweaver::workload {

/// \brief Measured results of one phase.
struct PhaseReport {
  std::string name;
  ArrivalModel arrival = ArrivalModel::kClosed;
  double wall_seconds = 0.0;
  PhaseStats stats;
  /// Service-side counters for this interval: counter fields are deltas
  /// against the phase start, histogram percentiles cover only this phase
  /// (the runner resets the histograms at each phase boundary).
  service::MetricsSnapshot service;
};

/// \brief The full scenario result.
struct ScenarioReport {
  std::string scenario_name;
  uint64_t seed = 0;
  size_t movies = 0;
  size_t workers = 0;
  size_t queue_depth = 0;
  size_t cache_capacity = 0;
  size_t scripts = 0;
  size_t tenants = 1;
  /// Row-hash shards per tenant snapshot (CatalogOptions::shard_count).
  size_t shards = 1;
  bool publish_churn = false;
  double wall_seconds = 0.0;
  std::vector<PhaseReport> phases;
  /// Cumulative service counters at scenario end (histograms reflect the
  /// final phase only, per the interval resets).
  service::MetricsSnapshot final_service;
  /// Per-tenant rollup JSON object at scenario end (from
  /// MappingService::PerTenantMetricsJson); "{}" when no tenant traffic.
  std::string per_tenant_json = "{}";

  uint64_t TotalRequests() const;
  /// Hard request failures (kFailed outcomes + failed session opens) —
  /// nonzero means the run itself is suspect.
  uint64_t TotalFailures() const;

  /// \brief Serializes the report as the BENCH_service_scenarios.json
  /// document.
  std::string ToJson() const;

  /// \brief Human-readable per-phase table.
  void PrintSummary(std::FILE* out) const;
};

/// \brief The multi-tenant wiring for a scenario run: which catalog
/// tenants exist and how to mint a fresh database instance for publish
/// churn. Every named tenant must already be published before Run().
struct TenantTopology {
  catalog::Catalog* catalog = nullptr;
  /// Actor assignment targets, round-robin over the scenario's actors.
  /// Empty = single-tenant (everything lands on service::kDefaultTenant).
  std::vector<std::string> tenants;
  /// Builds the database a churning bulk_loader republishes (typically a
  /// Clone() of the scenario's source). Required when the scenario sets
  /// publish_churn.
  std::function<storage::Database()> make_database;
};

/// \brief Runs scenarios over one service + replay-script set. The service
/// and scripts must outlive the runner.
class ScenarioRunner {
 public:
  ScenarioRunner(service::MappingService* service,
                 const std::vector<ReplayScript>* scripts);
  /// \brief Multi-tenant runs: actors are spread round-robin over
  /// `topology.tenants` and publish churn draws from it.
  ScenarioRunner(service::MappingService* service,
                 const std::vector<ReplayScript>* scripts,
                 TenantTopology topology);

  /// \brief Executes every phase. Fails fast on impossible setups (no
  /// scripts, no phases, a multi-tenant scenario without a matching
  /// topology); request-level failures are reported, not thrown.
  Result<ScenarioReport> Run(const Scenario& scenario);

 private:
  service::MappingService* service_;
  const std::vector<ReplayScript>* scripts_;
  TenantTopology topology_;
};

/// \brief Writes `content` to `path` atomically enough for bench output
/// (temp file + rename).
Status WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_RUNNER_H_
