// Minimal JSON support for the workload harness: an ordered streaming
// writer (emits the BENCH_*.json perf trajectory files) and a small
// recursive-descent parser (reads those same files back for baseline
// comparison). The parser handles the full JSON grammar but is tuned for
// the files this repo writes — it keeps everything in memory and has no
// streaming mode. No third-party dependency, by design (see ISSUE 6 /
// DESIGN.md §11).
#ifndef MWEAVER_WORKLOAD_JSON_UTIL_H_
#define MWEAVER_WORKLOAD_JSON_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mweaver::workload {

/// \brief Appends the JSON string literal for `s` (quotes included,
/// control characters escaped) to `out`.
void AppendJsonString(std::string* out, std::string_view s);

/// \brief Formats a double the way the perf files expect: fixed precision,
/// never NaN/Inf (both map to 0, JSON has no spelling for them).
std::string JsonNumber(double value);

/// \brief An ordered JSON builder. Push objects/arrays, set keyed or
/// positional values, and Finish() exactly once. The writer validates
/// nesting with MW_CHECK — misuse is a programming error, not an input
/// error.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// \brief Emits `"key":` — must be directly inside an object and
  /// followed by a value or Begin*().
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);

  /// \brief Splices an already-serialized JSON value (e.g. a
  /// MetricsSnapshot::ToJson() object) in as the next value. The caller
  /// vouches that `json` is well-formed.
  JsonWriter& Raw(std::string_view json);

  // Keyed shorthands. The const char* overload exists because otherwise a
  // string literal converts to bool, silently emitting `true`.
  JsonWriter& KV(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, double value) {
    return Key(key).Number(value);
  }
  JsonWriter& KV(std::string_view key, uint64_t value) {
    return Key(key).UInt(value);
  }
  JsonWriter& KV(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  /// \brief Returns the document; the writer must be back at depth zero.
  std::string Finish();

 private:
  enum class Frame { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
  bool done_ = false;
};

/// \brief A parsed JSON value. Numbers are doubles (the perf files never
/// need 64-bit-exact integers above 2^53).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  double number() const { return number_; }
  bool boolean() const { return bool_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  /// \brief Object members by key (empty for non-objects); lets callers
  /// enumerate and re-serialize sections they did not write themselves.
  const std::map<std::string, JsonValue, std::less<>>& object() const {
    return object_;
  }

  /// \brief Object member by key, or nullptr when absent (or not an
  /// object). Insertion order is not preserved; the perf comparisons key
  /// by name.
  const JsonValue* Find(std::string_view key) const;

  /// \brief `Find(key)->number()` with a fallback for absent/non-numeric.
  double NumberOr(std::string_view key, double fallback) const;
  /// \brief `Find(key)->string()` with a fallback for absent/non-string.
  std::string StringOr(std::string_view key, std::string_view fallback) const;

  // Construction (used by the parser and tests).
  static JsonValue Null();
  static JsonValue Of(bool b);
  static JsonValue Of(double n);
  static JsonValue Of(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue, std::less<>> m);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue, std::less<>> object_;
};

/// \brief Parses a complete JSON document. Errors carry the byte offset
/// ("json offset 42: expected ':'").
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_JSON_UTIL_H_
