#include "workload/scenario_parser.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"

namespace mweaver::workload {

namespace {

Status LineError(size_t line, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("line %zu: %s", line, what.c_str()));
}

Result<uint64_t> ParseUint(std::string_view value, size_t line,
                           std::string_view key) {
  const std::string token = Trim(value);
  if (token.empty() || token[0] == '-') {
    return LineError(line, StrFormat("%.*s must be a non-negative integer, "
                                     "got '%s'",
                                     static_cast<int>(key.size()), key.data(),
                                     token.c_str()));
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return LineError(line, StrFormat("%.*s must be a non-negative integer, "
                                     "got '%s'",
                                     static_cast<int>(key.size()), key.data(),
                                     token.c_str()));
  }
  return static_cast<uint64_t>(parsed);
}

Result<double> ParseDouble(std::string_view value, size_t line,
                           std::string_view key) {
  const std::string token = Trim(value);
  char* end = nullptr;
  const double parsed = std::strtod(token.c_str(), &end);
  if (token.empty() || end == nullptr || *end != '\0') {
    return LineError(line,
                     StrFormat("%.*s must be a number, got '%s'",
                               static_cast<int>(key.size()), key.data(),
                               token.c_str()));
  }
  return parsed;
}

/// Parses "searcher=2 pruner=1 ..." into per-type counts.
Status ParseActors(std::string_view value, size_t line, PhaseSpec* phase) {
  phase->actor_counts.fill(0);
  bool any = false;
  for (const std::string& token : Split(std::string(value), ' ')) {
    const std::string entry = Trim(token);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return LineError(line, StrFormat("actor entry '%s' must look like "
                                       "type=count",
                                       entry.c_str()));
    }
    auto type = ParseActorType(Trim(entry.substr(0, eq)));
    if (!type.ok()) {
      return LineError(line, type.status().message());
    }
    MW_ASSIGN_OR_RETURN(const uint64_t count,
                        ParseUint(entry.substr(eq + 1), line, "actor count"));
    phase->actor_counts[static_cast<size_t>(*type)] =
        static_cast<size_t>(count);
    any = true;
  }
  if (!any) return LineError(line, "actors: needs at least one type=count");
  return Status::OK();
}

Status ValidatePhase(const PhaseSpec& phase, size_t line) {
  if (phase.duration.count() == 0 && phase.iterations == 0) {
    return LineError(line,
                     StrFormat("phase '%s' needs duration_ms > 0 or "
                               "iterations > 0",
                               phase.name.c_str()));
  }
  if (phase.duration.count() > 0 && phase.iterations > 0) {
    return LineError(line,
                     StrFormat("phase '%s' sets both duration_ms and "
                               "iterations; pick one bound",
                               phase.name.c_str()));
  }
  if (phase.arrival == ArrivalModel::kOpen && phase.rate_per_sec <= 0.0) {
    return LineError(line,
                     StrFormat("phase '%s' has open arrival but no positive "
                               "rate_per_sec",
                               phase.name.c_str()));
  }
  if (phase.TotalActors() == 0) {
    return LineError(
        line, StrFormat("phase '%s' has no actors", phase.name.c_str()));
  }
  return Status::OK();
}

}  // namespace

Result<Scenario> ScenarioParser::Parse(std::string_view text) {
  Scenario scenario;
  PhaseSpec current;
  bool in_phase = false;
  size_t phase_header_line = 0;

  const std::vector<std::string> lines = Split(std::string(text), '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    std::string line = lines[i];
    // Strip comments ('#' anywhere) and surrounding whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return LineError(line_no, "unterminated section header");
      }
      const std::string header = Trim(line.substr(1, line.size() - 2));
      constexpr std::string_view kPhasePrefix = "phase";
      if (header.rfind(kPhasePrefix, 0) != 0) {
        return LineError(line_no,
                         StrFormat("unknown section '[%s]' (only [phase "
                                   "NAME] is supported)",
                                   header.c_str()));
      }
      const std::string phase_name =
          Trim(std::string_view(header).substr(kPhasePrefix.size()));
      if (phase_name.empty()) {
        return LineError(line_no, "phase section needs a name: [phase NAME]");
      }
      if (in_phase) {
        MW_RETURN_NOT_OK(ValidatePhase(current, phase_header_line));
        scenario.phases.push_back(std::move(current));
      }
      for (const PhaseSpec& prior : scenario.phases) {
        if (prior.name == phase_name) {
          return LineError(line_no, StrFormat("duplicate phase name '%s'",
                                              phase_name.c_str()));
        }
      }
      current = PhaseSpec{};
      current.name = phase_name;
      in_phase = true;
      phase_header_line = line_no;
      continue;
    }

    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return LineError(line_no,
                       StrFormat("expected 'key: value', got '%s'",
                                 line.c_str()));
    }
    const std::string key = Trim(line.substr(0, colon));
    const std::string value = Trim(line.substr(colon + 1));

    if (!in_phase) {
      if (key == "name") {
        scenario.name = value;
      } else if (key == "seed") {
        MW_ASSIGN_OR_RETURN(scenario.seed, ParseUint(value, line_no, key));
      } else if (key == "movies") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        scenario.movies = static_cast<size_t>(v);
      } else if (key == "workers") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        if (v == 0) return LineError(line_no, "workers must be > 0");
        scenario.workers = static_cast<size_t>(v);
      } else if (key == "queue") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        if (v == 0) return LineError(line_no, "queue must be > 0");
        scenario.queue_depth = static_cast<size_t>(v);
      } else if (key == "cache") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        scenario.cache_capacity = static_cast<size_t>(v);
      } else if (key == "script_rows") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        if (v == 0) return LineError(line_no, "script_rows must be > 0");
        scenario.max_script_rows = static_cast<size_t>(v);
      } else if (key == "tenants") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        if (v == 0) return LineError(line_no, "tenants must be > 0");
        scenario.tenants = static_cast<size_t>(v);
      } else if (key == "shards") {
        MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
        if (v == 0) return LineError(line_no, "shards must be > 0");
        scenario.shards = static_cast<size_t>(v);
      } else if (key == "publish_churn") {
        if (value == "on") {
          scenario.publish_churn = true;
        } else if (value == "off") {
          scenario.publish_churn = false;
        } else {
          return LineError(line_no,
                           StrFormat("publish_churn must be 'on' or 'off', "
                                     "got '%s'",
                                     value.c_str()));
        }
      } else {
        return LineError(line_no,
                         StrFormat("unknown scenario key '%s'", key.c_str()));
      }
      continue;
    }

    // Phase-scoped keys.
    if (key == "duration_ms") {
      MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
      current.duration = std::chrono::milliseconds(v);
    } else if (key == "iterations") {
      MW_ASSIGN_OR_RETURN(current.iterations, ParseUint(value, line_no, key));
    } else if (key == "arrival") {
      if (value == "closed") {
        current.arrival = ArrivalModel::kClosed;
      } else if (value == "open") {
        current.arrival = ArrivalModel::kOpen;
      } else {
        return LineError(line_no,
                         StrFormat("arrival must be 'closed' or 'open', got "
                                   "'%s'",
                                   value.c_str()));
      }
    } else if (key == "rate_per_sec") {
      MW_ASSIGN_OR_RETURN(const double rate,
                          ParseDouble(value, line_no, key));
      if (rate < 0.0) {
        return LineError(line_no, "rate_per_sec must not be negative");
      }
      current.rate_per_sec = rate;
    } else if (key == "deadline_ms") {
      MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
      current.request_deadline = std::chrono::milliseconds(v);
    } else if (key == "think_time_ms") {
      MW_ASSIGN_OR_RETURN(const uint64_t v, ParseUint(value, line_no, key));
      current.think_time = std::chrono::milliseconds(v);
    } else if (key == "actors") {
      MW_RETURN_NOT_OK(ParseActors(value, line_no, &current));
    } else {
      return LineError(line_no,
                       StrFormat("unknown phase key '%s'", key.c_str()));
    }
  }

  if (in_phase) {
    MW_RETURN_NOT_OK(ValidatePhase(current, phase_header_line));
    scenario.phases.push_back(std::move(current));
  }
  if (scenario.name.empty()) {
    return Status::InvalidArgument("scenario is missing 'name:'");
  }
  if (scenario.phases.empty()) {
    return Status::InvalidArgument(
        "scenario has no [phase ...] sections");
  }
  return scenario;
}

Result<Scenario> ScenarioParser::ParseFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(
        StrFormat("cannot open scenario '%s'", path.c_str()));
  }
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  auto parsed = Parse(text);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  StrFormat("%s: %s", path.c_str(),
                            parsed.status().message().c_str()));
  }
  return parsed;
}

}  // namespace mweaver::workload
