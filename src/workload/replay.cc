#include "workload/replay.h"

#include <algorithm>
#include <utility>

#include "query/executor.h"

namespace mweaver::workload {

std::vector<ReplayScript> BuildReplayScripts(
    const text::FullTextEngine& engine,
    const std::vector<datagen::TaskSet>& task_sets, size_t max_rows) {
  std::vector<ReplayScript> scripts;
  query::PathExecutor executor(&engine);
  for (const auto& set : task_sets) {
    for (const auto& task : set.tasks) {
      auto rows = executor.EvaluateTarget(task.mapping, /*max_rows=*/200);
      if (!rows.ok()) continue;
      ReplayScript script;
      script.column_names = task.column_names;
      for (const auto& row : *rows) {
        const bool complete =
            std::all_of(row.begin(), row.end(),
                        [](const std::string& cell) { return !cell.empty(); });
        if (!complete) continue;
        script.rows.push_back(row);
        if (script.rows.size() >= max_rows) break;
      }
      if (!script.rows.empty()) scripts.push_back(std::move(script));
    }
  }
  return scripts;
}

}  // namespace mweaver::workload
