// EventRecorder: per-actor request bookkeeping, and the aggregator that
// folds every recorder into per-phase / per-actor-type statistics.
//
// Each actor thread owns exactly one EventRecorder and is its only writer,
// so the hot Record() path takes no lock and touches no shared cache line —
// the "lock-free-ish" design the harness needs to avoid perturbing the
// latencies it measures. Aggregation happens once, after all actor threads
// have joined.
//
// Latency percentiles are exact over a bounded reservoir: every recorder
// keeps up to kReservoirCapacity samples per (phase, outcome-recording)
// cell via deterministic reservoir sampling (seeded per actor), plus a
// power-of-two bucket histogram that is never downsampled. The aggregator
// concatenates reservoirs and computes exact percentiles over the merged
// sample; with the default capacity the merge is exact for any phase that
// records fewer than capacity samples per actor — true for every shipped
// scenario — and a uniform subsample beyond that.
#ifndef MWEAVER_WORKLOAD_EVENT_RECORDER_H_
#define MWEAVER_WORKLOAD_EVENT_RECORDER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "service/metrics.h"
#include "workload/scenario.h"

namespace mweaver::workload {

/// \brief Exact latency percentile over an already-sorted sample:
/// sorted[floor(p * (n-1))]. The single percentile definition of the
/// harness — benches share it instead of rolling their own (it is the
/// helper bench_service_load used to define inline).
double PercentileSorted(const std::vector<double>& sorted, double p);

/// \brief Terminal request outcomes bucketed by the harness. Truncated
/// responses count as `timeout` — a deadline cut the work short.
struct OutcomeCounts {
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t overloaded = 0;
  uint64_t timeout = 0;
  uint64_t failed = 0;

  uint64_t Total() const {
    return ok + degraded + overloaded + timeout + failed;
  }
  void Add(const OutcomeCounts& other);
};

/// \brief Bounded deterministic reservoir of latency samples.
class LatencyReservoir {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit LatencyReservoir(uint64_t seed = 0,
                            size_t capacity = kDefaultCapacity);

  void Add(double latency_ms);
  /// \brief Folds `other`'s samples in (reservoir-sampling the union).
  void Merge(const LatencyReservoir& other);

  uint64_t count() const { return count_; }
  double max_ms() const { return max_ms_; }
  double sum_ms() const { return sum_ms_; }
  double MeanMs() const {
    return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_);
  }
  const std::vector<double>& samples() const { return samples_; }

  /// \brief Exact percentile over the retained samples (sorts a copy).
  double PercentileMs(double p) const;

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t count_ = 0;    // samples offered (retained <= capacity_)
  double max_ms_ = 0.0;   // exact, over all offered samples
  double sum_ms_ = 0.0;   // exact, over all offered samples
  std::vector<double> samples_;
};

/// \brief Aggregated statistics for one (phase, actor type) cell — also
/// used for per-phase totals.
struct CellStats {
  OutcomeCounts outcomes;
  uint64_t overload_retries = 0;
  /// Sessions the actor could not even open (service errors).
  uint64_t session_failures = 0;
  LatencyReservoir latency;

  void Merge(const CellStats& other);
};

/// \brief One actor thread's private recorder. NOT thread-safe by design:
/// exactly one actor writes it, and the aggregator reads it only after the
/// actor joined.
class EventRecorder {
 public:
  /// \brief `seed` differentiates the reservoirs across actors so the
  /// merged subsample is unbiased yet replayable.
  EventRecorder(size_t num_phases, ActorType type, uint64_t seed);

  ActorType type() const { return type_; }

  void Record(size_t phase, service::RequestOutcome outcome,
              double latency_ms);
  void RecordOverloadRetry(size_t phase);
  void RecordSessionFailure(size_t phase);

  const CellStats& phase_stats(size_t phase) const {
    return phases_[phase];
  }
  size_t num_phases() const { return phases_.size(); }

 private:
  ActorType type_;
  std::vector<CellStats> phases_;
};

/// \brief Everything the aggregator distills for one phase.
struct PhaseStats {
  /// Indexed by ActorType.
  std::vector<CellStats> by_actor;
  CellStats total;
};

/// \brief Merges all recorders into per-phase stats (index = phase).
std::vector<PhaseStats> AggregateRecorders(
    const std::vector<EventRecorder>& recorders, size_t num_phases);

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_EVENT_RECORDER_H_
