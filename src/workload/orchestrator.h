// Orchestrator: gates every actor thread at phase boundaries so the whole
// fleet moves through a scenario's phases in lockstep (the PhaseLoop /
// Orchestrator split of MongoDB's Genny, reduced to what this harness
// needs).
//
// Protocol, per phase p, on every actor thread:
//
//   start = orch.EnterPhase(p);   // barrier; last arrival stamps `start`
//   ... run the phase's loop until its bound ...
//   orch.LeavePhase(p);           // barrier; nobody enters p+1 early
//
// The two barriers guarantee (a) no actor starts phase p before every
// actor has finished p-1 — a drain phase really observes a drained
// service — and (b) every actor measures the phase from the same start
// instant, so per-phase throughput is wall-clock-consistent across actors.
//
// Cancel() unblocks every waiter (used when an actor thread hits a fatal
// setup error); cancelled orchestrations make Enter/LeavePhase return
// immediately.
#ifndef MWEAVER_WORKLOAD_ORCHESTRATOR_H_
#define MWEAVER_WORKLOAD_ORCHESTRATOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mweaver::workload {

class Orchestrator {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Orchestrator(size_t num_actors);

  /// \brief Blocks until all actors arrive at phase `phase`'s start; the
  /// last arrival stamps the phase start time, and every actor receives
  /// that same instant. Returns immediately (with the current time) when
  /// cancelled.
  Clock::time_point EnterPhase(size_t phase);

  /// \brief Blocks until all actors finished phase `phase`.
  void LeavePhase(size_t phase);

  /// \brief Unblocks all current and future waiters.
  void Cancel();
  bool cancelled() const;

 private:
  /// A reusable generation-counted barrier step. `phase` is only used to
  /// sanity-check the lockstep protocol in debug builds.
  Clock::time_point Await(size_t phase, bool entering);

  const size_t num_actors_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool cancelled_ = false;
  uint64_t generation_ = 0;  // completed barrier steps
  size_t waiting_ = 0;
  Clock::time_point phase_start_{};
};

}  // namespace mweaver::workload

#endif  // MWEAVER_WORKLOAD_ORCHESTRATOR_H_
