#include "workload/orchestrator.h"

#include "common/logging.h"

namespace mweaver::workload {

Orchestrator::Orchestrator(size_t num_actors) : num_actors_(num_actors) {
  MW_CHECK(num_actors_ > 0) << "orchestrator needs at least one actor";
}

Orchestrator::Clock::time_point Orchestrator::Await(size_t phase,
                                                    bool entering) {
  std::unique_lock<std::mutex> lock(mu_);
  if (cancelled_) return Clock::now();
  // Each phase consumes two barrier generations: enter (even) and leave
  // (odd). The check catches protocol bugs (an actor skipping a phase)
  // before they deadlock the fleet.
  const uint64_t expected = phase * 2 + (entering ? 0 : 1);
  MW_DCHECK(generation_ == expected)
      << "barrier protocol violation: generation " << generation_
      << ", expected " << expected;
  const uint64_t my_generation = generation_;
  if (++waiting_ == num_actors_) {
    waiting_ = 0;
    ++generation_;
    if (entering) phase_start_ = Clock::now();
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return cancelled_ || generation_ != my_generation;
    });
  }
  return phase_start_;
}

Orchestrator::Clock::time_point Orchestrator::EnterPhase(size_t phase) {
  return Await(phase, /*entering=*/true);
}

void Orchestrator::LeavePhase(size_t phase) {
  (void)Await(phase, /*entering=*/false);
}

void Orchestrator::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
  }
  cv_.notify_all();
}

bool Orchestrator::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

}  // namespace mweaver::workload
