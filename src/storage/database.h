// Database: catalog of relations plus declared foreign keys — the source
// database DS with schema SS of the paper.
#ifndef MWEAVER_STORAGE_DATABASE_H_
#define MWEAVER_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace mweaver::storage {

/// \brief An in-memory relational database: named relations and the
/// FK->PK relationships among them.
class Database {
 public:
  explicit Database(std::string name = "db") : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// \brief Deep copy: relations (rows included), name index, and foreign
  /// keys. The clone is a fully independent instance — the catalog layer
  /// uses it to publish one source to several tenants and tests use it as
  /// a frozen reference copy while the original's tenant moves on.
  Database Clone() const;

  /// \brief Copy-on-write copy for delta builds: relations whose id is in
  /// `touched` are deep-cloned (the caller is about to mutate them), the
  /// rest share the original's immutable storage. Untouched relations cost
  /// one shared_ptr copy instead of a row-by-row clone, which is what makes
  /// a streaming update batch cheap relative to a full Publish.
  Database CloneCow(const std::vector<RelationId>& touched) const;

  const std::string& name() const { return name_; }

  /// \brief Registers a new empty relation; fails on duplicate names.
  Result<RelationId> AddRelation(RelationSchema schema);

  /// \brief Declares a foreign key; fails when any endpoint is unknown or
  /// the attribute types disagree.
  Result<ForeignKeyId> AddForeignKey(const std::string& from_relation,
                                     const std::string& from_attribute,
                                     const std::string& to_relation,
                                     const std::string& to_attribute);

  size_t num_relations() const { return relations_.size(); }
  const Relation& relation(RelationId id) const {
    return *relations_[static_cast<size_t>(id)];
  }
  /// \brief Mutable access; only valid on databases this caller exclusively
  /// owns (generators filling a fresh instance, delta builds touching the
  /// relations they deep-cloned). Mutating a relation shared via CloneCow
  /// would leak the change into the base snapshot.
  Relation* mutable_relation(RelationId id) {
    return relations_[static_cast<size_t>(id)].get();
  }

  /// \brief Relation id for `name`, or kInvalidRelation.
  RelationId FindRelation(const std::string& name) const;

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  const ForeignKey& foreign_key(ForeignKeyId id) const {
    return foreign_keys_[static_cast<size_t>(id)];
  }

  /// \brief Total attribute count across all relations (the paper reports
  /// "43 relations and 131 attributes" for Yahoo Movies).
  size_t TotalAttributes() const;
  /// \brief Total row count across all relations.
  size_t TotalRows() const;

  /// \brief Verifies that every non-null FK value references an existing
  /// key on the referenced side. O(total rows); used by generator tests.
  Status CheckReferentialIntegrity() const;

 private:
  std::string name_;
  // shared_ptr so CloneCow can share untouched relations between the base
  // snapshot and a delta; plain Clone still deep-copies every one.
  std::vector<std::shared_ptr<Relation>> relations_;
  std::unordered_map<std::string, RelationId> relations_by_name_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace mweaver::storage

#endif  // MWEAVER_STORAGE_DATABASE_H_
