#include "storage/stats.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>
#include <unordered_set>

namespace mweaver::storage {

namespace {

// Streaming accumulator shared by the column and value-bag entry points.
class StatsAccumulator {
 public:
  void AddNull() { ++rows_; ++nulls_; }

  void Add(const std::string& text, bool typed_numeric) {
    ++rows_;
    distinct_.insert(text);
    total_length_ += text.size();
    bool numeric = typed_numeric;
    if (!numeric && !text.empty()) {
      char* end = nullptr;
      std::strtod(text.c_str(), &end);
      numeric = end == text.c_str() + text.size();
    }
    if (numeric) ++numeric_values_;
    for (char c : text) {
      ++total_chars_;
      const unsigned char uc = static_cast<unsigned char>(c);
      if (std::isalpha(uc)) {
        ++classes_[0];
      } else if (std::isdigit(uc)) {
        ++classes_[1];
      } else if (std::isspace(uc)) {
        ++classes_[2];
      } else {
        ++classes_[3];
      }
    }
  }

  ColumnStats Finish() const {
    ColumnStats stats;
    stats.num_rows = rows_;
    stats.num_nulls = nulls_;
    stats.num_distinct = distinct_.size();
    const size_t non_null = rows_ - nulls_;
    if (non_null > 0) {
      stats.avg_length = static_cast<double>(total_length_) /
                         static_cast<double>(non_null);
      stats.numeric_fraction = static_cast<double>(numeric_values_) /
                               static_cast<double>(non_null);
    }
    if (total_chars_ > 0) {
      for (size_t i = 0; i < 4; ++i) {
        stats.char_classes[i] = static_cast<double>(classes_[i]) /
                                static_cast<double>(total_chars_);
      }
    }
    return stats;
  }

 private:
  size_t rows_ = 0;
  size_t nulls_ = 0;
  std::unordered_set<std::string> distinct_;
  size_t total_length_ = 0;
  size_t numeric_values_ = 0;
  std::array<size_t, 4> classes_{};
  size_t total_chars_ = 0;
};

}  // namespace

ColumnStats ComputeColumnStats(const Relation& relation,
                               AttributeId attribute) {
  StatsAccumulator acc;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (relation.is_deleted(static_cast<RowId>(r))) continue;
    const Value& v = relation.at(static_cast<RowId>(r), attribute);
    if (v.is_null()) {
      acc.AddNull();
      continue;
    }
    acc.Add(v.ToDisplayString(),
            v.type() == ValueType::kInt64 || v.type() == ValueType::kDouble);
  }
  return acc.Finish();
}

ColumnStats ComputeValueStats(const std::vector<std::string>& values) {
  StatsAccumulator acc;
  for (const std::string& v : values) acc.Add(v, /*typed_numeric=*/false);
  return acc.Finish();
}

double ShapeSimilarity(const ColumnStats& a, const ColumnStats& b) {
  // Length closeness: ratio of the smaller to the larger mean length.
  double length_sim = 1.0;
  if (a.avg_length > 0.0 || b.avg_length > 0.0) {
    const double lo = std::min(a.avg_length, b.avg_length);
    const double hi = std::max(a.avg_length, b.avg_length);
    length_sim = hi == 0.0 ? 1.0 : lo / hi;
  }
  // Numeric-fraction closeness.
  const double numeric_sim =
      1.0 - std::fabs(a.numeric_fraction - b.numeric_fraction);
  // Character-class histogram overlap (1 - L1/2).
  double l1 = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    l1 += std::fabs(a.char_classes[i] - b.char_classes[i]);
  }
  const double class_sim = 1.0 - l1 / 2.0;
  return (length_sim + numeric_sim + class_sim) / 3.0;
}

}  // namespace mweaver::storage
