#include "storage/dump.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "storage/csv.h"

namespace mweaver::storage {

namespace {

constexpr const char* kMagic = "mweaverdb";
constexpr int kVersion = 1;

const char* TypeTag(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<ValueType> ParseTypeTag(const std::string& tag) {
  if (tag == "int64") return ValueType::kInt64;
  if (tag == "double") return ValueType::kDouble;
  if (tag == "string") return ValueType::kString;
  if (tag == "null") return ValueType::kNull;
  return Status::InvalidArgument("unknown attribute type tag '" + tag + "'");
}

// Strings are backslash-escaped so every record stays on a single line
// (the dump reader is line-oriented).
std::string EscapeNewlines(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeNewlines(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) {
      return Status::InvalidArgument("dangling escape in dump string");
    }
    switch (s[i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        return Status::InvalidArgument("unknown escape in dump string");
    }
  }
  return out;
}

// Cell encoding: "" is NULL; otherwise a one-character type sigil followed
// by the value text ("s" string, "i" int64, "d" double). The sigil keeps
// empty strings distinguishable from NULLs.
std::string EncodeCell(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return "i" + std::to_string(value.AsInt64());
    case ValueType::kDouble:
      return "d" + StrFormat("%.17g", value.AsDouble());
    case ValueType::kString:
      return "s" + EscapeNewlines(value.AsString());
  }
  return "";
}

Result<Value> DecodeCell(const std::string& text) {
  if (text.empty()) return Value::Null();
  const std::string body = text.substr(1);
  switch (text[0]) {
    case 's': {
      MW_ASSIGN_OR_RETURN(std::string unescaped, UnescapeNewlines(body));
      return Value(std::move(unescaped));
    }
    case 'i': {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(body.c_str(), &end, 10);
      if (errno != 0 || end == body.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64 cell '" + text + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case 'd': {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(body.c_str(), &end);
      if (errno != 0 || end == body.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double cell '" + text + "'");
      }
      return Value(v);
    }
    default:
      return Status::InvalidArgument("bad cell sigil in '" + text + "'");
  }
}

}  // namespace

Status DumpDatabase(const Database& db, std::ostream* out) {
  *out << kMagic << " " << kVersion << "\n";
  *out << FormatCsvLine({"db", db.name()}) << "\n";
  for (size_t r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(static_cast<RelationId>(r));
    *out << FormatCsvLine({"relation", rel.name(),
                           std::to_string(rel.schema().num_attributes())})
         << "\n";
    for (const AttributeSchema& attr : rel.schema().attributes()) {
      *out << FormatCsvLine({"attr", attr.name, TypeTag(attr.type),
                             attr.searchable ? "1" : "0"})
           << "\n";
    }
    if (!rel.schema().primary_key().empty()) {
      std::vector<std::string> pk{"pk"};
      for (AttributeId a : rel.schema().primary_key()) {
        pk.push_back(std::to_string(a));
      }
      *out << FormatCsvLine(pk) << "\n";
    }
    for (const Row& row : rel.rows()) {
      std::vector<std::string> fields{"row"};
      fields.reserve(row.size() + 1);
      for (const Value& v : row) fields.push_back(EncodeCell(v));
      *out << FormatCsvLine(fields) << "\n";
    }
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    const Relation& from = db.relation(fk.from_relation);
    const Relation& to = db.relation(fk.to_relation);
    *out << FormatCsvLine(
                {"fk", from.name(),
                 from.schema().attribute(fk.from_attribute).name, to.name(),
                 to.schema().attribute(fk.to_attribute).name})
         << "\n";
  }
  if (!*out) return Status::IOError("dump write failed");
  return Status::OK();
}

Status DumpDatabaseToFile(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  return DumpDatabase(db, &out);
}

Result<Database> LoadDatabase(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("empty dump");
  }
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  header >> magic >> version;
  if (magic != kMagic || version != kVersion) {
    return Status::InvalidArgument("not an mweaverdb v1 dump: " + line);
  }

  Database db;
  Relation* current = nullptr;
  // Attribute records follow their relation record; we buffer the schema
  // until the first pk/row/next-relation record, then register it.
  std::string pending_name;
  std::vector<AttributeSchema> pending_attrs;
  std::vector<AttributeId> pending_pk;
  size_t pending_declared = 0;
  bool has_pending = false;

  auto flush_pending = [&]() -> Status {
    if (!has_pending) return Status::OK();
    // Chaos site: relation materialization failing mid-load (short read,
    // corrupt page) — the load must fail cleanly, not half-register.
    MW_FAILPOINT_RETURN_NOT_OK("storage.load.relation");
    if (pending_attrs.size() != pending_declared) {
      return Status::InvalidArgument(StrFormat(
          "relation '%s' declares %zu attributes but lists %zu",
          pending_name.c_str(), pending_declared, pending_attrs.size()));
    }
    RelationSchema schema(pending_name, std::move(pending_attrs));
    if (!pending_pk.empty()) schema.SetPrimaryKey(std::move(pending_pk));
    MW_ASSIGN_OR_RETURN(RelationId id, db.AddRelation(std::move(schema)));
    current = db.mutable_relation(id);
    pending_attrs = {};
    pending_pk = {};
    has_pending = false;
    return Status::OK();
  };

  size_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    MW_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    const std::string& kind = fields[0];
    if (kind == "db") {
      if (fields.size() != 2) {
        return Status::InvalidArgument("bad db record at line " +
                                       std::to_string(line_no));
      }
      db = Database(fields[1]);
      current = nullptr;
    } else if (kind == "relation") {
      MW_RETURN_NOT_OK(flush_pending());
      if (fields.size() != 3) {
        return Status::InvalidArgument("bad relation record at line " +
                                       std::to_string(line_no));
      }
      pending_name = fields[1];
      pending_declared =
          static_cast<size_t>(std::strtoull(fields[2].c_str(), nullptr, 10));
      has_pending = true;
      current = nullptr;
    } else if (kind == "attr") {
      if (!has_pending || fields.size() != 4) {
        return Status::InvalidArgument("stray attr record at line " +
                                       std::to_string(line_no));
      }
      MW_ASSIGN_OR_RETURN(ValueType type, ParseTypeTag(fields[2]));
      pending_attrs.push_back(
          AttributeSchema{fields[1], type, fields[3] == "1"});
    } else if (kind == "pk") {
      if (!has_pending) {
        return Status::InvalidArgument("stray pk record at line " +
                                       std::to_string(line_no));
      }
      for (size_t i = 1; i < fields.size(); ++i) {
        pending_pk.push_back(static_cast<AttributeId>(
            std::strtol(fields[i].c_str(), nullptr, 10)));
      }
    } else if (kind == "row") {
      MW_RETURN_NOT_OK(flush_pending());
      if (current == nullptr) {
        return Status::InvalidArgument("row before any relation at line " +
                                       std::to_string(line_no));
      }
      Row row;
      row.reserve(fields.size() - 1);
      for (size_t i = 1; i < fields.size(); ++i) {
        MW_ASSIGN_OR_RETURN(Value v, DecodeCell(fields[i]));
        row.push_back(std::move(v));
      }
      MW_RETURN_NOT_OK(current->Append(std::move(row)));
    } else if (kind == "fk") {
      MW_RETURN_NOT_OK(flush_pending());
      if (fields.size() != 5) {
        return Status::InvalidArgument("bad fk record at line " +
                                       std::to_string(line_no));
      }
      // Chaos site: FK resolution faulting while the catalog is wired up.
      MW_FAILPOINT_RETURN_NOT_OK("storage.load.foreign_key");
      MW_ASSIGN_OR_RETURN(ForeignKeyId fk_id,
                          db.AddForeignKey(fields[1], fields[2], fields[3],
                                           fields[4]));
      (void)fk_id;
    } else {
      return Status::InvalidArgument("unknown record '" + kind +
                                     "' at line " + std::to_string(line_no));
    }
  }
  MW_RETURN_NOT_OK(flush_pending());
  return db;
}

Result<Database> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open dump: " + path);
  return LoadDatabase(&in);
}

}  // namespace mweaver::storage
