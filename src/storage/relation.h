// Relation: a schema plus a row-oriented instance I(R), with lazily built
// per-attribute hash indexes used for FK joins.
#ifndef MWEAVER_STORAGE_RELATION_H_
#define MWEAVER_STORAGE_RELATION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace mweaver::storage {

/// A materialized row.
using Row = std::vector<Value>;

/// \brief Equality hash index on one attribute: value -> row ids.
class HashIndex {
 public:
  /// \brief Rows of `rel` whose `attribute` equals `value` (empty if none).
  const std::vector<RowId>& Lookup(const Value& value) const;

  void Insert(const Value& value, RowId row) { map_[value].push_back(row); }
  size_t num_distinct() const { return map_.size(); }

 private:
  std::unordered_map<Value, std::vector<RowId>> map_;
};

/// \brief A relation instance: rows conforming to a schema. Rows are
/// appended at the tail and deleted by tombstone — a deleted row keeps its
/// physical slot (and therefore its RowId), so posting lists, location maps
/// and FK edges built against older revisions never see ids shift under
/// them. Physical compaction happens only on a full rebuild (Publish).
class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  // Indexes hold row ids; moving is fine, implicit copying would be
  // wasteful. Deliberate deep copies go through Clone().
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  /// \brief Deep copy of schema, rows and tombstones. Lazily built hash
  /// indexes are NOT copied — the clone rebuilds them on first use (they
  /// index by row id, which survives the copy, but sharing them would
  /// couple lifetimes).
  Relation Clone() const {
    Relation copy(schema_);
    copy.rows_ = rows_;
    copy.deleted_ = deleted_;
    copy.num_deleted_ = num_deleted_;
    return copy;
  }

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }

  /// \brief Appends a row. Fails if the arity does not match the schema or a
  /// non-null value's type contradicts the declared attribute type.
  Status Append(Row row);

  /// \brief Appends without validation; for trusted bulk loads (generators).
  RowId AppendUnchecked(Row row) {
    rows_.push_back(std::move(row));
    return static_cast<RowId>(rows_.size() - 1);
  }

  /// \brief Tombstones row `id`. Fails if the id is out of range or the row
  /// is already deleted. Invalidates lazily built hash indexes (they are
  /// rebuilt, skipping tombstones, on next use); only call on relations not
  /// concurrently served — in practice the private clones a delta build
  /// mutates before its snapshot is installed.
  Status Delete(RowId id);

  bool is_deleted(RowId id) const {
    const auto i = static_cast<size_t>(id);
    return i < deleted_.size() && deleted_[i] != 0;
  }

  /// \brief Physical row count, tombstoned slots included. RowIds range
  /// over [0, num_rows()).
  size_t num_rows() const { return rows_.size(); }
  size_t num_deleted() const { return num_deleted_; }
  size_t num_live_rows() const { return rows_.size() - num_deleted_; }
  const Row& row(RowId id) const { return rows_[static_cast<size_t>(id)]; }
  const Value& at(RowId row, AttributeId attr) const {
    return rows_[static_cast<size_t>(row)][static_cast<size_t>(attr)];
  }
  const std::vector<Row>& rows() const { return rows_; }

  /// \brief Hash index on `attribute`, built on first use. Thread-safe:
  /// concurrent callers may race to build, protected by a mutex; the
  /// returned index is immutable afterwards.
  const HashIndex& IndexOn(AttributeId attribute) const;

 private:
  RelationSchema schema_;
  std::vector<Row> rows_;
  // Tombstone flags, indexed by RowId; empty until the first Delete (the
  // common read-only relation pays nothing).
  std::vector<uint8_t> deleted_;
  size_t num_deleted_ = 0;
  // Lazily built; mutable because building an index does not change the
  // logical relation contents. The mutex lives behind a pointer so the
  // relation stays movable.
  mutable std::vector<std::unique_ptr<HashIndex>> indexes_;
  mutable std::unique_ptr<std::mutex> index_mutex_ =
      std::make_unique<std::mutex>();
};

}  // namespace mweaver::storage

#endif  // MWEAVER_STORAGE_RELATION_H_
