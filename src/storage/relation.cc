#include "storage/relation.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mweaver::storage {

namespace {
const std::vector<RowId> kNoRows;
}  // namespace

const std::vector<RowId>& HashIndex::Lookup(const Value& value) const {
  auto it = map_.find(value);
  return it == map_.end() ? kNoRows : it->second;
}

Status Relation::Append(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "relation '%s' expects %zu attributes, got %zu",
        schema_.name().c_str(), schema_.num_attributes(), row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (!v.is_null() && v.type() != schema_.attributes()[i].type) {
      return Status::InvalidArgument(StrFormat(
          "relation '%s' attribute '%s' expects %s, got %s",
          schema_.name().c_str(), schema_.attributes()[i].name.c_str(),
          ValueTypeName(schema_.attributes()[i].type),
          ValueTypeName(v.type())));
    }
  }
  MW_CHECK(indexes_.empty())
      << "appending to relation '" << name() << "' after indexes were built";
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Relation::Delete(RowId id) {
  if (id < 0 || static_cast<size_t>(id) >= rows_.size()) {
    return Status::InvalidArgument(
        StrFormat("relation '%s' has no row %lld", schema_.name().c_str(),
                  static_cast<long long>(id)));
  }
  if (is_deleted(id)) {
    return Status::InvalidArgument(
        StrFormat("relation '%s' row %lld already deleted",
                  schema_.name().c_str(), static_cast<long long>(id)));
  }
  if (deleted_.empty()) deleted_.assign(rows_.size(), 0);
  if (deleted_.size() < rows_.size()) deleted_.resize(rows_.size(), 0);
  deleted_[static_cast<size_t>(id)] = 1;
  ++num_deleted_;
  // Lazily built indexes may already hold this row: drop them so the next
  // IndexOn rebuild skips the tombstone.
  {
    std::lock_guard<std::mutex> lock(*index_mutex_);
    indexes_.clear();
  }
  return Status::OK();
}

const HashIndex& Relation::IndexOn(AttributeId attribute) const {
  MW_CHECK_GE(attribute, 0);
  MW_CHECK_LT(static_cast<size_t>(attribute), schema_.num_attributes());
  std::lock_guard<std::mutex> lock(*index_mutex_);
  if (indexes_.empty()) indexes_.resize(schema_.num_attributes());
  auto& slot = indexes_[static_cast<size_t>(attribute)];
  if (slot == nullptr) {
    slot = std::make_unique<HashIndex>();
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (is_deleted(static_cast<RowId>(r))) continue;
      const Value& v = rows_[r][static_cast<size_t>(attribute)];
      if (!v.is_null()) slot->Insert(v, static_cast<RowId>(r));
    }
  }
  return *slot;
}

}  // namespace mweaver::storage
