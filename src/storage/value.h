// Value: a single relational cell. The paper's samples are strings, but the
// engine also stores integers (surrogate keys) and doubles so FK joins are
// typed. Values are immutable once constructed.
#ifndef MWEAVER_STORAGE_VALUE_H_
#define MWEAVER_STORAGE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

namespace mweaver::storage {

enum class ValueType { kNull = 0, kInt64, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// \brief One relational cell: null, int64, double, or string.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong accessor is a programming error
  /// (checked in debug builds via std::get's exception->abort on mismatch).
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// \brief Renders any value as text (NULL -> "", numbers via to_string).
  /// This is the representation the full-text engine indexes and the
  /// spreadsheet displays.
  std::string ToDisplayString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Ordering across types follows the variant index (null < int < double <
  /// string); within a type, the natural order.
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace mweaver::storage

template <>
struct std::hash<mweaver::storage::Value> {
  size_t operator()(const mweaver::storage::Value& v) const {
    return v.Hash();
  }
};

#endif  // MWEAVER_STORAGE_VALUE_H_
