// CSV import/export so example programs can map real files. RFC-4180-style
// quoting (double quotes, embedded quotes doubled).
#ifndef MWEAVER_STORAGE_CSV_H_
#define MWEAVER_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"

namespace mweaver::storage {

/// \brief Parses one CSV record (no trailing newline) into fields.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// \brief Renders fields as one CSV record, quoting when needed.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// \brief Loads `path` into a new relation named `relation_name`. The first
/// record is the header; every column is typed kString.
Result<Relation> LoadCsvRelation(const std::string& path,
                                 const std::string& relation_name);

/// \brief Writes `relation` (header + rows, display strings) to `path`.
Status SaveCsvRelation(const Relation& relation, const std::string& path);

}  // namespace mweaver::storage

#endif  // MWEAVER_STORAGE_CSV_H_
