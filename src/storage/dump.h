// Whole-database serialization: a line-oriented text format holding the
// catalog (relations, attribute types, primary keys, foreign keys) and
// every row. Lets a generated or CSV-assembled source database be saved
// once and reloaded across sessions and benchmark runs.
//
// Format (one record per line, CSV-quoted where needed):
//   mweaverdb 1
//   relation,<name>,<num_attrs>
//   attr,<name>,<type>,<searchable>
//   pk,<attr_index>[,<attr_index>...]
//   row,<v1>,<v2>,...            # typed by the declared attribute types
//   fk,<from_rel>,<from_attr>,<to_rel>,<to_attr>
#ifndef MWEAVER_STORAGE_DUMP_H_
#define MWEAVER_STORAGE_DUMP_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"

namespace mweaver::storage {

/// \brief Writes `db` to `out` in the dump format.
Status DumpDatabase(const Database& db, std::ostream* out);

/// \brief Writes `db` to `path`.
Status DumpDatabaseToFile(const Database& db, const std::string& path);

/// \brief Reads a database back from `in`. Validates the header, attribute
/// types, arities and foreign keys; null cells round-trip as nulls.
Result<Database> LoadDatabase(std::istream* in);

/// \brief Reads a database from `path`.
Result<Database> LoadDatabaseFromFile(const std::string& path);

}  // namespace mweaver::storage

#endif  // MWEAVER_STORAGE_DUMP_H_
