#include "storage/value.h"

#include <cmath>

#include "common/hash_util.h"
#include "common/string_util.h"

namespace mweaver::storage {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      // Trim trailing zeros so 2.5 renders as "2.5" and 3.0 as "3".
      std::string s = StrFormat("%g", AsDouble());
      return s;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      HashCombine(&seed, AsInt64());
      break;
    case ValueType::kDouble:
      HashCombine(&seed, AsDouble());
      break;
    case ValueType::kString:
      HashCombine(&seed, AsString());
      break;
  }
  return seed;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  if (value.is_null()) return os << "NULL";
  if (value.type() == ValueType::kString) {
    return os << '\'' << value.AsString() << '\'';
  }
  return os << value.ToDisplayString();
}

}  // namespace mweaver::storage
