#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mweaver::storage {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument(
            "CSV quote appearing mid-field: " + line);
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF files.
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated CSV quote: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& f = fields[i];
    const bool needs_quote = f.find_first_of(",\"\r\n") != std::string::npos;
    if (needs_quote) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<Relation> LoadCsvRelation(const std::string& path,
                                 const std::string& relation_name) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open CSV file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  MW_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line));
  std::vector<AttributeSchema> attrs;
  attrs.reserve(header.size());
  for (std::string& name : header) {
    attrs.push_back(AttributeSchema{Trim(name), ValueType::kString, true});
  }
  Relation rel(RelationSchema(relation_name, std::move(attrs)));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    MW_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    if (fields.size() != rel.schema().num_attributes()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected %zu fields, got %zu", path.c_str(),
                    line_no, rel.schema().num_attributes(), fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (std::string& f : fields) row.emplace_back(std::move(f));
    MW_RETURN_NOT_OK(rel.Append(std::move(row)));
  }
  return rel;
}

Status SaveCsvRelation(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open CSV file for writing: " + path);
  }
  std::vector<std::string> header;
  header.reserve(relation.schema().num_attributes());
  for (const AttributeSchema& a : relation.schema().attributes()) {
    header.push_back(a.name);
  }
  out << FormatCsvLine(header) << "\n";
  std::vector<std::string> fields(relation.schema().num_attributes());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    for (size_t c = 0; c < fields.size(); ++c) {
      fields[c] = relation.at(static_cast<RowId>(r),
                              static_cast<AttributeId>(c))
                      .ToDisplayString();
    }
    out << FormatCsvLine(fields) << "\n";
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace mweaver::storage
