#include "storage/schema.h"

namespace mweaver::storage {

AttributeId RelationSchema::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<AttributeId>(i);
  }
  return kInvalidAttribute;
}

}  // namespace mweaver::storage
