// Schema metadata: attributes, relation schemas, and foreign keys. These are
// the S(R_i), SS objects of the paper's Section 4.1.
#ifndef MWEAVER_STORAGE_SCHEMA_H_
#define MWEAVER_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace mweaver::storage {

/// Index of a relation within a Database catalog.
using RelationId = int32_t;
/// Index of an attribute within its relation's schema.
using AttributeId = int32_t;
/// Index of a row within a relation instance.
using RowId = int64_t;
/// Index of a foreign key within a Database catalog.
using ForeignKeyId = int32_t;

inline constexpr RelationId kInvalidRelation = -1;
inline constexpr AttributeId kInvalidAttribute = -1;

/// \brief One column: name + declared type. `searchable` marks string
/// attributes that participate in full-text indexing (non-searchable columns
/// still join but never contain samples).
struct AttributeSchema {
  std::string name;
  ValueType type = ValueType::kString;
  bool searchable = true;
};

/// \brief A source-relation schema S(R): named, ordered attributes plus an
/// optional primary key.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<AttributeSchema> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<AttributeSchema>& attributes() const {
    return attributes_;
  }
  size_t num_attributes() const { return attributes_.size(); }
  const AttributeSchema& attribute(AttributeId id) const {
    return attributes_[static_cast<size_t>(id)];
  }

  /// \brief Attribute id for `name`, or kInvalidAttribute.
  AttributeId FindAttribute(const std::string& name) const;

  /// \brief Declares `attribute_ids` as the primary key.
  void SetPrimaryKey(std::vector<AttributeId> attribute_ids) {
    primary_key_ = std::move(attribute_ids);
  }
  const std::vector<AttributeId>& primary_key() const { return primary_key_; }

 private:
  std::string name_;
  std::vector<AttributeSchema> attributes_;
  std::vector<AttributeId> primary_key_;
};

/// \brief A foreign-key-to-primary-key relationship: the edges of the schema
/// graph (Definition 2). Single-attribute keys, as in the paper.
struct ForeignKey {
  RelationId from_relation = kInvalidRelation;  // referencing side
  AttributeId from_attribute = kInvalidAttribute;
  RelationId to_relation = kInvalidRelation;  // referenced side
  AttributeId to_attribute = kInvalidAttribute;

  bool operator==(const ForeignKey& other) const = default;
};

}  // namespace mweaver::storage

#endif  // MWEAVER_STORAGE_SCHEMA_H_
