// Column statistics: cardinalities and value-shape summaries. Consumed by
// the instance-based schema matchers (opaque-column-name matching needs
// value-shape histograms, cf. Kang & Naughton [20] in the paper) and by
// tests/EXPLAIN diagnostics.
#ifndef MWEAVER_STORAGE_STATS_H_
#define MWEAVER_STORAGE_STATS_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace mweaver::storage {

/// \brief Summary statistics of one attribute column.
struct ColumnStats {
  size_t num_rows = 0;
  size_t num_nulls = 0;
  size_t num_distinct = 0;
  /// Mean display-string length of non-null values.
  double avg_length = 0.0;
  /// Fraction of non-null values that parse entirely as numbers.
  double numeric_fraction = 0.0;
  /// Character-class distribution over all non-null display characters:
  /// [letters, digits, whitespace, other]. Sums to 1 when any characters
  /// exist.
  std::array<double, 4> char_classes{};

  double null_fraction() const {
    return num_rows == 0 ? 0.0
                         : static_cast<double>(num_nulls) /
                               static_cast<double>(num_rows);
  }
};

/// \brief Computes statistics for `attribute` of `relation` (O(rows)).
ColumnStats ComputeColumnStats(const Relation& relation,
                               AttributeId attribute);

/// \brief Same summary over a bag of display strings (e.g. user-typed
/// instances of a target column).
ColumnStats ComputeValueStats(const std::vector<std::string>& values);

/// \brief Similarity of two columns' value *shapes* in [0,1]: closeness of
/// average length, numeric fraction and character-class histograms. Used
/// for matching opaquely named columns by their data alone.
double ShapeSimilarity(const ColumnStats& a, const ColumnStats& b);

}  // namespace mweaver::storage

#endif  // MWEAVER_STORAGE_STATS_H_
