#include "storage/database.h"

#include "common/string_util.h"

namespace mweaver::storage {

Database Database::Clone() const {
  Database copy(name_);
  copy.relations_.reserve(relations_.size());
  for (const auto& rel : relations_) {
    copy.relations_.push_back(std::make_shared<Relation>(rel->Clone()));
  }
  copy.relations_by_name_ = relations_by_name_;
  copy.foreign_keys_ = foreign_keys_;
  return copy;
}

Database Database::CloneCow(const std::vector<RelationId>& touched) const {
  Database copy(name_);
  copy.relations_ = relations_;  // share everything ...
  for (RelationId id : touched) {  // ... except what the caller will mutate
    copy.relations_[static_cast<size_t>(id)] =
        std::make_shared<Relation>(relation(id).Clone());
  }
  copy.relations_by_name_ = relations_by_name_;
  copy.foreign_keys_ = foreign_keys_;
  return copy;
}

Result<RelationId> Database::AddRelation(RelationSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (relations_by_name_.count(schema.name()) > 0) {
    return Status::AlreadyExists(
        StrFormat("relation '%s' already exists", schema.name().c_str()));
  }
  const RelationId id = static_cast<RelationId>(relations_.size());
  relations_by_name_.emplace(schema.name(), id);
  relations_.push_back(std::make_shared<Relation>(std::move(schema)));
  return id;
}

Result<ForeignKeyId> Database::AddForeignKey(const std::string& from_relation,
                                             const std::string& from_attribute,
                                             const std::string& to_relation,
                                             const std::string& to_attribute) {
  const RelationId from_rel = FindRelation(from_relation);
  if (from_rel == kInvalidRelation) {
    return Status::NotFound(
        StrFormat("unknown relation '%s'", from_relation.c_str()));
  }
  const RelationId to_rel = FindRelation(to_relation);
  if (to_rel == kInvalidRelation) {
    return Status::NotFound(
        StrFormat("unknown relation '%s'", to_relation.c_str()));
  }
  const AttributeId from_attr =
      relation(from_rel).schema().FindAttribute(from_attribute);
  if (from_attr == kInvalidAttribute) {
    return Status::NotFound(StrFormat("unknown attribute '%s.%s'",
                                      from_relation.c_str(),
                                      from_attribute.c_str()));
  }
  const AttributeId to_attr =
      relation(to_rel).schema().FindAttribute(to_attribute);
  if (to_attr == kInvalidAttribute) {
    return Status::NotFound(StrFormat("unknown attribute '%s.%s'",
                                      to_relation.c_str(),
                                      to_attribute.c_str()));
  }
  const ValueType from_type =
      relation(from_rel).schema().attribute(from_attr).type;
  const ValueType to_type = relation(to_rel).schema().attribute(to_attr).type;
  if (from_type != to_type) {
    return Status::InvalidArgument(StrFormat(
        "foreign key type mismatch: %s.%s (%s) -> %s.%s (%s)",
        from_relation.c_str(), from_attribute.c_str(),
        ValueTypeName(from_type), to_relation.c_str(), to_attribute.c_str(),
        ValueTypeName(to_type)));
  }
  const ForeignKeyId id = static_cast<ForeignKeyId>(foreign_keys_.size());
  foreign_keys_.push_back(
      ForeignKey{from_rel, from_attr, to_rel, to_attr});
  return id;
}

RelationId Database::FindRelation(const std::string& name) const {
  auto it = relations_by_name_.find(name);
  return it == relations_by_name_.end() ? kInvalidRelation : it->second;
}

size_t Database::TotalAttributes() const {
  size_t total = 0;
  for (const auto& rel : relations_) {
    total += rel->schema().num_attributes();
  }
  return total;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& rel : relations_) total += rel->num_live_rows();
  return total;
}

Status Database::CheckReferentialIntegrity() const {
  for (const ForeignKey& fk : foreign_keys_) {
    const Relation& from = relation(fk.from_relation);
    const Relation& to = relation(fk.to_relation);
    const HashIndex& idx = to.IndexOn(fk.to_attribute);
    for (size_t r = 0; r < from.num_rows(); ++r) {
      if (from.is_deleted(static_cast<RowId>(r))) continue;
      const Value& v = from.at(static_cast<RowId>(r), fk.from_attribute);
      if (v.is_null()) continue;
      if (idx.Lookup(v).empty()) {
        return Status::FailedPrecondition(StrFormat(
            "dangling foreign key: %s.%s row %zu -> %s.%s (value %s)",
            from.name().c_str(),
            from.schema().attribute(fk.from_attribute).name.c_str(), r,
            to.name().c_str(),
            to.schema().attribute(fk.to_attribute).name.c_str(),
            v.ToDisplayString().c_str()));
      }
    }
  }
  return Status::OK();
}

}  // namespace mweaver::storage
