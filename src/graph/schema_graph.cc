#include "graph/schema_graph.h"

#include <deque>

#include "common/logging.h"

namespace mweaver::graph {

SchemaGraph::SchemaGraph(const storage::Database* db) : db_(db) {
  MW_CHECK(db != nullptr);
  adjacency_.resize(db->num_relations());
  for (size_t i = 0; i < db->foreign_keys().size(); ++i) {
    const storage::ForeignKey& fk = db->foreign_keys()[i];
    const storage::ForeignKeyId fk_id = static_cast<storage::ForeignKeyId>(i);
    adjacency_[static_cast<size_t>(fk.from_relation)].push_back(
        SchemaEdge{fk.to_relation, fk_id});
    // A self-referencing FK contributes a single (self-loop) entry.
    if (fk.to_relation != fk.from_relation) {
      adjacency_[static_cast<size_t>(fk.to_relation)].push_back(
          SchemaEdge{fk.from_relation, fk_id});
    }
  }
}

storage::AttributeId SchemaGraph::JoinAttributeOn(
    storage::ForeignKeyId fk_id, storage::RelationId relation) const {
  const storage::ForeignKey& fk =
      db_->foreign_keys()[static_cast<size_t>(fk_id)];
  if (relation == fk.from_relation) return fk.from_attribute;
  MW_CHECK_EQ(relation, fk.to_relation);
  return fk.to_attribute;
}

int SchemaGraph::Distance(storage::RelationId from,
                          storage::RelationId to) const {
  if (from == to) return 0;
  std::vector<int> dist(num_vertices(), -1);
  dist[static_cast<size_t>(from)] = 0;
  std::deque<storage::RelationId> queue{from};
  while (!queue.empty()) {
    const storage::RelationId u = queue.front();
    queue.pop_front();
    for (const SchemaEdge& e : Neighbors(u)) {
      if (dist[static_cast<size_t>(e.neighbor)] == -1) {
        dist[static_cast<size_t>(e.neighbor)] =
            dist[static_cast<size_t>(u)] + 1;
        if (e.neighbor == to) return dist[static_cast<size_t>(e.neighbor)];
        queue.push_back(e.neighbor);
      }
    }
  }
  return -1;
}

}  // namespace mweaver::graph
