// SchemaGraph (Definition 2): an undirected multigraph with one vertex per
// relation and one edge per foreign-key-to-primary-key relationship. Inner
// joins are symmetric, so edge direction is dropped, but each edge remembers
// its underlying FK so tuple-level joins know which attributes to equate.
#ifndef MWEAVER_GRAPH_SCHEMA_GRAPH_H_
#define MWEAVER_GRAPH_SCHEMA_GRAPH_H_

#include <vector>

#include "storage/database.h"
#include "storage/schema.h"

namespace mweaver::graph {

/// \brief One incident edge as seen from a vertex: the neighbor relation and
/// the foreign key realizing the join. Two relations connected by several
/// distinct FKs contribute several entries (a multigraph).
struct SchemaEdge {
  storage::RelationId neighbor = storage::kInvalidRelation;
  storage::ForeignKeyId fk = -1;
};

/// \brief Undirected multigraph over a Database's relations and FKs.
class SchemaGraph {
 public:
  /// \brief Builds the graph from `db`'s catalog. `db` must outlive the
  /// graph and must not gain relations or FKs afterwards.
  explicit SchemaGraph(const storage::Database* db);

  const storage::Database& db() const { return *db_; }

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return db_->foreign_keys().size(); }

  /// \brief Edges incident to `relation` (each FK appears from both sides).
  const std::vector<SchemaEdge>& Neighbors(storage::RelationId relation) const {
    return adjacency_[static_cast<size_t>(relation)];
  }

  /// \brief Join attribute of `fk` on the `relation` side. For a self-
  /// referencing FK this cannot disambiguate; the path structures carry
  /// explicit orientation instead (see core/mapping_path.h).
  storage::AttributeId JoinAttributeOn(storage::ForeignKeyId fk,
                                       storage::RelationId relation) const;

  /// \brief Shortest hop distance between two relations (-1 if unreachable).
  /// Used by tests and by the match-driven baseline's path selection.
  int Distance(storage::RelationId from, storage::RelationId to) const;

 private:
  const storage::Database* db_;
  std::vector<std::vector<SchemaEdge>> adjacency_;
};

}  // namespace mweaver::graph

#endif  // MWEAVER_GRAPH_SCHEMA_GRAPH_H_
