#include "core/execution_context.h"

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mweaver::core {

const char* SearchStageName(SearchStage stage) {
  switch (stage) {
    case SearchStage::kLocate:
      return "locate";
    case SearchStage::kPairwiseGen:
      return "pairwise-gen";
    case SearchStage::kPairwiseExec:
      return "pairwise-exec";
    case SearchStage::kWeave:
      return "weave";
    case SearchStage::kRank:
      return "rank";
  }
  return "?";
}

std::string ExecutionTrace::ToString() const {
  std::string out;
  for (size_t i = 0; i < kNumSearchStages; ++i) {
    if (!out.empty()) out += " | ";
    out += StrFormat("%s %.2fms/%llu%s",
                     SearchStageName(static_cast<SearchStage>(i)),
                     stages[i].wall_ms,
                     static_cast<unsigned long long>(stages[i].items),
                     stages[i].stopped_early ? "!" : "");
  }
  out += StrFormat(" | polls %llu (clock %llu) | arena %zuB/%llu allocs",
                   static_cast<unsigned long long>(stop_checks),
                   static_cast<unsigned long long>(clock_reads),
                   arena_bytes_used,
                   static_cast<unsigned long long>(arena_allocations));
  out += StrFormat(
      " | probes %llu (memo %llu/%llu, cand %llu, scan %llu, allrows %llu)",
      static_cast<unsigned long long>(text_probes.probes),
      static_cast<unsigned long long>(text_probes.memo_hits),
      static_cast<unsigned long long>(text_probes.memo_misses),
      static_cast<unsigned long long>(text_probes.candidates_examined),
      static_cast<unsigned long long>(text_probes.scan_fallbacks),
      static_cast<unsigned long long>(text_probes.all_rows_fallbacks));
  return out;
}

bool ExecutionContext::ShouldStop() {
  stop_checks_.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_relaxed)) return true;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    stopped_.store(true, std::memory_order_relaxed);
    return true;
  }
  if (!has_deadline_) return false;
  // Throttle: only every kStopPollStride-th check reads the clock. The
  // first check always does, so a pre-expired deadline stops the pipeline
  // at its very first poll (locate included).
  if (deadline_polls_.fetch_add(1, std::memory_order_relaxed) %
          kStopPollStride !=
      0) {
    return false;
  }
  clock_reads_.fetch_add(1, std::memory_order_relaxed);
  // Chaos site (throttled branch only, so the tight-loop fast path stays
  // untouched): a spurious deadline expiry at a clock read.
  if (MW_FAILPOINT_TRIGGERED("core.deadline.poll")) {
    stopped_.store(true, std::memory_order_relaxed);
    return true;
  }
  const SearchClock::time_point now =
      now_fn_ != nullptr ? now_fn_() : SearchClock::now();
  if (now >= deadline_) {
    stopped_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ExecutionContext::StageSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  StageTrace& trace = ctx_->stages_[static_cast<size_t>(stage_)];
  trace.wall_ms += watch_.ElapsedMillis();
  trace.items += items_;
  trace.stopped_early = ctx_->stop_requested();
}

ExecutionTrace ExecutionContext::trace() const {
  ExecutionTrace out;
  out.stages = stages_;
  out.stop_checks = stop_checks_.load(std::memory_order_relaxed);
  out.clock_reads = clock_reads_.load(std::memory_order_relaxed);
  out.arena_bytes_used = arena_.bytes_used();
  out.arena_allocations = arena_.num_allocations();
  out.text_probes = probe_counters_.Snapshot();
  return out;
}

void ExecutionContext::ResetForSearch() {
  stopped_.store(false, std::memory_order_relaxed);
  deadline_polls_.store(0, std::memory_order_relaxed);
  stop_checks_.store(0, std::memory_order_relaxed);
  clock_reads_.store(0, std::memory_order_relaxed);
  stages_ = {};
  probe_counters_.Reset();
  arena_.Reset();
}

}  // namespace mweaver::core
