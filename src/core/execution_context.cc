#include "core/execution_context.h"

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mweaver::core {

const char* SearchStageName(SearchStage stage) {
  switch (stage) {
    case SearchStage::kLocate:
      return "locate";
    case SearchStage::kPairwiseGen:
      return "pairwise-gen";
    case SearchStage::kPairwiseExec:
      return "pairwise-exec";
    case SearchStage::kWeave:
      return "weave";
    case SearchStage::kRank:
      return "rank";
    case SearchStage::kPrune:
      return "prune";
  }
  return "?";
}

std::string ExecutionTrace::ToString() const {
  std::string out;
  for (size_t i = 0; i < kNumSearchStages; ++i) {
    if (!out.empty()) out += " | ";
    out += StrFormat("%s %.2fms/%llu%s",
                     SearchStageName(static_cast<SearchStage>(i)),
                     stages[i].wall_ms,
                     static_cast<unsigned long long>(stages[i].items),
                     stages[i].stopped_early ? "!" : "");
    if (stages[i].workers > 1) {
      out += StrFormat("(w%llu)",
                       static_cast<unsigned long long>(stages[i].workers));
    }
  }
  out += StrFormat(" | polls %llu (clock %llu) | arena %zuB/%llu allocs",
                   static_cast<unsigned long long>(stop_checks),
                   static_cast<unsigned long long>(clock_reads),
                   arena_bytes_used,
                   static_cast<unsigned long long>(arena_allocations));
  out += StrFormat(
      " | probes %llu (memo %llu/%llu, cand %llu, scan %llu, allrows %llu)",
      static_cast<unsigned long long>(text_probes.probes),
      static_cast<unsigned long long>(text_probes.memo_hits),
      static_cast<unsigned long long>(text_probes.memo_misses),
      static_cast<unsigned long long>(text_probes.candidates_examined),
      static_cast<unsigned long long>(text_probes.scan_fallbacks),
      static_cast<unsigned long long>(text_probes.all_rows_fallbacks));
  return out;
}

bool ExecutionContext::ShouldStop() {
  stop_checks_.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_relaxed)) return true;
  // Child views mirror the parent's latch: a deadline expiry or cancel
  // observed by any sibling worker (propagated via RequestStop) stops this
  // one at its next poll, without its own clock read.
  if (parent_ != nullptr && parent_->stop_requested()) {
    stopped_.store(true, std::memory_order_relaxed);
    return true;
  }
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    RequestStop();
    return true;
  }
  if (!has_deadline_) return false;
  // Throttle: only every kStopPollStride-th check reads the clock. The
  // first check always does, so a pre-expired deadline stops the pipeline
  // at its very first poll (locate included).
  if (deadline_polls_.fetch_add(1, std::memory_order_relaxed) %
          kStopPollStride !=
      0) {
    return false;
  }
  clock_reads_.fetch_add(1, std::memory_order_relaxed);
  // Chaos site (throttled branch only, so the tight-loop fast path stays
  // untouched): a spurious deadline expiry at a clock read.
  if (MW_FAILPOINT_TRIGGERED("core.deadline.poll")) {
    RequestStop();
    return true;
  }
  const SearchClock::time_point now =
      now_fn_ != nullptr ? now_fn_() : SearchClock::now();
  if (now >= deadline_) {
    RequestStop();
    return true;
  }
  return false;
}

std::unique_ptr<ExecutionContext> ExecutionContext::ForkChild() {
  auto child = std::make_unique<ExecutionContext>();
  child->deadline_ = deadline_;
  child->has_deadline_ = has_deadline_;
  child->cancel_ = cancel_;
  child->now_fn_ = now_fn_;
  child->parent_ = this;
  // A parent already stopped fathers stopped children: the worker's first
  // poll answers from the latch without touching the clock.
  child->stopped_.store(stop_requested(), std::memory_order_relaxed);
  return child;
}

void ExecutionContext::MergeChild(const ExecutionContext& child) {
  stop_checks_.fetch_add(child.stop_checks(), std::memory_order_relaxed);
  clock_reads_.fetch_add(child.clock_reads(), std::memory_order_relaxed);
  probe_counters_.Record(child.probe_counters_.Snapshot());
}

void ExecutionContext::RecordStageWorkers(SearchStage stage,
                                          uint64_t workers) {
  StageTrace& trace = stages_[static_cast<size_t>(stage)];
  if (workers > trace.workers) trace.workers = workers;
}

void ExecutionContext::StageSpan::Finish() {
  if (finished_) return;
  finished_ = true;
  StageTrace& trace = ctx_->stages_[static_cast<size_t>(stage_)];
  trace.wall_ms += watch_.ElapsedMillis();
  trace.items += items_;
  trace.stopped_early = ctx_->stop_requested();
}

ExecutionTrace ExecutionContext::trace() const {
  ExecutionTrace out;
  out.stages = stages_;
  out.stop_checks = stop_checks_.load(std::memory_order_relaxed);
  out.clock_reads = clock_reads_.load(std::memory_order_relaxed);
  out.arena_bytes_used = arena_.bytes_used();
  out.arena_allocations = arena_.num_allocations();
  out.text_probes = probe_counters_.Snapshot();
  return out;
}

void ExecutionContext::ResetForSearch() {
  stopped_.store(false, std::memory_order_relaxed);
  deadline_polls_.store(0, std::memory_order_relaxed);
  stop_checks_.store(0, std::memory_order_relaxed);
  clock_reads_.store(0, std::memory_order_relaxed);
  stages_ = {};
  probe_counters_.Reset();
  arena_.Reset();
}

}  // namespace mweaver::core
