// Discriminating-sample suggestion — the paper's §7 future work: "we are
// studying how to provide features that will automatically suggest
// relevant data". When several candidate mappings remain, the most useful
// next sample row is one produced by *some but not all* candidates: typing
// it is guaranteed to prune the candidates that cannot produce it while
// keeping those that can.
#ifndef MWEAVER_CORE_SUGGEST_H_
#define MWEAVER_CORE_SUGGEST_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/execution_context.h"
#include "core/ranking.h"
#include "query/executor.h"

namespace mweaver::core {

/// \brief One suggested target row.
struct RowSuggestion {
  /// Values per target column (ordered by column).
  std::vector<std::string> row;
  /// How many of the current candidates produce this row.
  size_t supporting_candidates = 0;
  /// Of the total candidates considered.
  size_t total_candidates = 0;

  /// Candidates eliminated if the user confirms this row (those that
  /// cannot produce it).
  size_t candidates_pruned_if_confirmed() const {
    return total_candidates - supporting_candidates;
  }
};

struct SuggestOptions {
  /// Target rows materialized per candidate (bounds the work).
  size_t rows_per_candidate = 64;
  /// Maximum suggestions returned.
  size_t limit = 5;
};

/// \brief Computes suggestions for the current candidate set, best first
/// (rows supported by about half the candidates split the hypothesis space
/// fastest and rank highest; unanimous rows are never suggested — they
/// carry no signal). Empty when 0 or 1 candidates remain or nothing
/// discriminates. When `ctx` is given, the deadline is polled per
/// candidate and inside each candidate's target evaluation, and the
/// evaluation probes record into its counters; rows materialized so far
/// still yield suggestions.
Result<std::vector<RowSuggestion>> SuggestDiscriminatingRows(
    const query::PathExecutor& executor,
    const std::vector<CandidateMapping>& candidates,
    const SuggestOptions& options = {}, ExecutionContext* ctx = nullptr);

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_SUGGEST_H_
