// Sample pruning (Section 5): shrinking the candidate set as the user types
// samples below the first row.
//
// Pruning by attribute: a new sample E_i in column i keeps only mappings
// whose projection for i is an attribute containing E_i.
//
// Pruning by mapping structure: whenever a row holds >= 2 samples, each
// candidate is executed as an approximate search query constrained by that
// row; candidates with an empty result are discarded.
#ifndef MWEAVER_CORE_PRUNING_H_
#define MWEAVER_CORE_PRUNING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/execution_context.h"
#include "core/ranking.h"
#include "query/executor.h"
#include "text/fulltext_engine.h"

namespace mweaver::core {

/// \brief Pruning-by-attribute. Removes from `candidates` every mapping
/// whose column-`target_column` projection is not among the attributes
/// containing `sample`. Returns the number removed. When `ctx` is given,
/// the deadline/cancel token is polled before each candidate's probe and
/// the probes record into its counters; candidates not examined before a
/// stop are kept (pruning must never drop a mapping it did not disprove),
/// and a pre-expired deadline costs zero probes. With `num_threads > 1`
/// the per-candidate probes run in parallel on child context views; the
/// surviving set is identical for any thread count.
size_t PruneByAttribute(const text::FullTextEngine& engine, int target_column,
                        const std::string& sample,
                        std::vector<CandidateMapping>* candidates,
                        ExecutionContext* ctx = nullptr,
                        size_t num_threads = 1);

/// \brief Pruning-by-structure. `row_samples` holds every non-empty cell of
/// one spreadsheet row (column -> sample); requires >= 2 entries to convey
/// join information, but safely degrades to attribute-style filtering for
/// fewer. Removes candidates with no supporting tuple path. Returns the
/// number removed via `*num_pruned`. When `ctx` is given, the deadline is
/// polled per candidate and inside each support query; candidates not
/// examined — or whose query was cut off before support could be found —
/// are kept (pruning must never drop a mapping it did not disprove). With
/// `num_threads > 1` the per-candidate support queries run in parallel on
/// child context views; the surviving set is identical for any thread
/// count.
Status PruneByStructure(const query::PathExecutor& executor,
                        const query::SampleMap& row_samples,
                        std::vector<CandidateMapping>* candidates,
                        size_t* num_pruned, ExecutionContext* ctx = nullptr,
                        size_t num_threads = 1);

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_PRUNING_H_
