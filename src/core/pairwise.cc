#include "core/pairwise.h"

#include <set>
#include <string>

#include "common/failpoint.h"
#include "common/logging.h"
#include "core/parallel_stage.h"

namespace mweaver::core {

namespace {

// One step of a schema-graph walk: the relation reached, the FK used, and
// which side of the FK the new vertex occupies.
struct WalkStep {
  storage::RelationId relation;
  storage::ForeignKeyId fk;
  bool is_from_side;
};

// Builds the chain mapping path for a walk from `start_rel` (projecting
// column i from `start_attr`) to the walk's endpoint (projecting column j
// from `end_attr`).
MappingPath BuildChain(storage::RelationId start_rel,
                       const std::vector<WalkStep>& walk, int i,
                       storage::AttributeId start_attr, int j,
                       storage::AttributeId end_attr) {
  MappingPath path = MappingPath::SingleVertex(start_rel);
  VertexId last = 0;
  for (const WalkStep& step : walk) {
    last = path.AddVertex(step.relation, last, step.fk, step.is_from_side);
  }
  path.AddProjection(i, 0, start_attr);
  path.AddProjection(j, last, end_attr);
  return path;
}

}  // namespace

PairwiseMappingMap GeneratePairwiseMappingPaths(
    const graph::SchemaGraph& schema_graph, const LocationMap& locations,
    const SearchOptions& options, ExecutionContext& ctx) {
  const int pmnj = options.pmnj;
  const storage::Database& db = schema_graph.db();
  const size_t m = locations.num_columns();
  PairwiseMappingMap pmpm;
  // Canonical forms already emitted, per column pair.
  std::map<ColumnPair, std::set<std::string>> seen;

  // Attributes of L(j) grouped by relation, for endpoint lookups.
  std::vector<std::map<storage::RelationId, std::vector<storage::AttributeId>>>
      attrs_by_relation(m);
  for (size_t j = 0; j < m; ++j) {
    for (const text::AttributeRef& attr : locations.AttributesOf(j)) {
      attrs_by_relation[j][attr.relation].push_back(attr.attribute);
    }
  }

  for (size_t i = 0; i < m; ++i) {
    for (const text::AttributeRef& start : locations.AttributesOf(i)) {
      if (ctx.ShouldStop()) return pmpm;
      // Breadth-first enumeration of every walk of at most `pmnj` edges
      // starting at the relation containing A_i (Algorithm 3). Walks may
      // revisit relations: relation paths are occurrence trees.
      std::vector<std::vector<WalkStep>> frontier{{}};
      for (int depth = 0; depth <= pmnj && !frontier.empty(); ++depth) {
        if (ctx.ShouldStop()) return pmpm;
        for (const std::vector<WalkStep>& walk : frontier) {
          const storage::RelationId endpoint =
              walk.empty() ? start.relation : walk.back().relation;
          // Emit a pairwise mapping for every later column whose location
          // map has attributes on the endpoint relation (Algorithm 3 line
          // 6-11, Algorithm 4).
          for (size_t j = i + 1; j < m; ++j) {
            auto it = attrs_by_relation[j].find(endpoint);
            if (it == attrs_by_relation[j].end()) continue;
            for (storage::AttributeId end_attr : it->second) {
              MappingPath path =
                  BuildChain(start.relation, walk, static_cast<int>(i),
                             start.attribute, static_cast<int>(j), end_attr);
              const ColumnPair key{static_cast<int>(i), static_cast<int>(j)};
              if (seen[key].insert(path.Canonical()).second) {
                pmpm[key].push_back(std::move(path));
              }
            }
          }
        }
        if (depth == pmnj) break;
        // Extend every frontier walk by one schema-graph edge.
        std::vector<std::vector<WalkStep>> next;
        for (const std::vector<WalkStep>& walk : frontier) {
          const storage::RelationId endpoint =
              walk.empty() ? start.relation : walk.back().relation;
          for (const graph::SchemaEdge& e :
               schema_graph.Neighbors(endpoint)) {
            const storage::ForeignKey& fk =
                db.foreign_keys()[static_cast<size_t>(e.fk)];
            std::vector<bool> orientations;
            if (fk.from_relation == fk.to_relation) {
              // Self-referencing FK: the new vertex can sit on either side
              // (unless both sides are the same attribute).
              orientations = fk.from_attribute == fk.to_attribute
                                 ? std::vector<bool>{true}
                                 : std::vector<bool>{true, false};
            } else {
              orientations = {e.neighbor == fk.from_relation};
            }
            for (bool is_from_side : orientations) {
              std::vector<WalkStep> extended = walk;
              extended.push_back(WalkStep{e.neighbor, e.fk, is_from_side});
              next.push_back(std::move(extended));
            }
          }
        }
        frontier = std::move(next);
      }
    }
  }
  return pmpm;
}

Result<PairwiseTupleMap> CreatePairwiseTuplePaths(
    const query::PathExecutor& executor, const PairwiseMappingMap& pmpm,
    const LocationMap& locations, const SearchOptions& options,
    ExecutionContext& ctx, PairwiseStats* stats) {
  // Chaos site: a transient failure at the pairwise-execution stage (the
  // stage issuing the approximate-search queries, i.e. the place a real
  // storage backend would flake).
  MW_FAILPOINT_RETURN_NOT_OK("core.pairwise.exec");
  // Flatten the work list so the per-mapping queries can run in parallel;
  // results are merged back in flattened order, keeping the output
  // deterministic for any thread count.
  struct WorkItem {
    ColumnPair key;
    const MappingPath* mapping;
    query::SampleMap samples;
  };
  std::vector<WorkItem> work;
  for (const auto& [key, mappings] : pmpm) {
    const auto& [i, j] = key;
    query::SampleMap samples{
        {i, locations.column(static_cast<size_t>(i)).sample},
        {j, locations.column(static_cast<size_t>(j)).sample}};
    for (const MappingPath& mapping : mappings) {
      work.push_back(WorkItem{key, &mapping, samples});
    }
  }

  query::ExecOptions exec_options;
  exec_options.max_results = options.max_tuple_paths_per_mapping;
  std::vector<Result<std::vector<TuplePath>>> results(
      work.size(), Result<std::vector<TuplePath>>(std::vector<TuplePath>{}));
  // One stop check per query keeps the overhead negligible (each query is
  // orders of magnitude heavier than a clock read, and ShouldStop itself
  // throttles clock reads); the sticky latch makes late work items skip
  // without re-reading the clock. Each worker polls and records through its
  // own child context view; a stop observed by one (deadline, cancel, the
  // chaos failpoint below) propagates to the rest via the shared latch.
  ParallelStageFor(
      &ctx, SearchStage::kPairwiseExec, work.size(), options.num_threads,
      [&](ExecutionContext* wctx, size_t idx) {
        // Chaos site: a spurious cancel landing mid-enumeration (client
        // disconnect). Unlike core.weave.step this is reachable for
        // two-column targets, where the weave loop never runs.
        if (MW_FAILPOINT_FIRE("core.pairwise.step") == FailAction::kCancel) {
          wctx->RequestStop();
        }
        if (wctx->ShouldStop()) return;
        results[idx] = executor.Execute(*work[idx].mapping, work[idx].samples,
                                        exec_options, wctx);
      });

  PairwiseTupleMap ptpm;
  PairwiseStats local;
  local.deadline_expired = ctx.stop_requested();
  for (size_t idx = 0; idx < work.size(); ++idx) {
    ++local.num_mappings;
    MW_ASSIGN_OR_RETURN(std::vector<TuplePath> supports,
                        std::move(results[idx]));
    if (supports.empty()) continue;  // prune unsupported mappings
    ++local.num_valid_mappings;
    local.num_tuple_paths += supports.size();
    if (options.max_tuple_paths_per_mapping > 0 &&
        supports.size() >= options.max_tuple_paths_per_mapping) {
      local.truncated = true;
    }
    std::vector<TuplePath>& bucket = ptpm[work[idx].key];
    for (TuplePath& tp : supports) bucket.push_back(std::move(tp));
  }
  if (stats != nullptr) *stats = local;
  return ptpm;
}

}  // namespace mweaver::core
