// ExecutionContext: the per-request runtime state of one sample search.
//
// One context travels through every stage of the TPW pipeline (and the
// baselines) alongside the immutable SearchOptions. It carries:
//
//  * deadline + cooperative cancellation, behind a poll-throttled
//    ShouldStop() that reads the clock at most once per kStopPollStride
//    checks (stages poll in tight loops; a syscall per poll would dominate);
//  * a bump-pointer Arena for tuple-path node storage (the weave stage's
//    millions of short-lived small vectors), recycled between searches;
//  * an optional tuple-path memory budget over that arena;
//  * per-stage trace spans (wall time, item counters, whether the stage
//    observed an early stop), surfaced through SearchStats and the
//    service-layer metrics.
//
// Thread-safety: ShouldStop(), RequestStop() and stop_requested() are safe
// from any thread (cancellation tokens fire from client threads). The arena
// and the trace are single-threaded: only the stage that owns the context's
// thread may allocate or open spans. Parallel stages therefore never share
// one context across workers — each worker gets a child view (ForkChild)
// that shares the deadline/cancel/stop latch but owns its own counters,
// merged back deterministically at the stage barrier (MergeChild).
#ifndef MWEAVER_CORE_EXECUTION_CONTEXT_H_
#define MWEAVER_CORE_EXECUTION_CONTEXT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>

#include "common/arena.h"
#include "common/stopwatch.h"
#include "core/options.h"
#include "text/lookup_stats.h"

namespace mweaver::core {

/// \brief The five stages of the TPW pipeline (Section 4.3), plus the
/// interactive refinement path's pruning stage (Section 5), which runs per
/// keystroke after the first-row search and shares the same trace/metrics
/// plumbing.
enum class SearchStage {
  kLocate = 0,
  kPairwiseGen,
  kPairwiseExec,
  kWeave,
  kRank,
  kPrune,
};
inline constexpr size_t kNumSearchStages = 6;

const char* SearchStageName(SearchStage stage);

/// \brief Trace record of one pipeline stage within one search.
struct StageTrace {
  double wall_ms = 0.0;
  /// Stage-specific unit count: occurrences located, mappings generated,
  /// queries executed, paths woven, candidates ranked or pruned.
  uint64_t items = 0;
  /// Worker contexts the stage fanned out over (0 = the stage never ran a
  /// parallel region; parallel stages record min(num_threads, work items)).
  uint64_t workers = 0;
  /// The stage ended with the stop latch set (deadline/cancel observed).
  bool stopped_early = false;
};

/// \brief A copyable snapshot of one search's per-stage trace, embedded in
/// SearchStats and consumed by ServiceMetrics and the benches.
struct ExecutionTrace {
  std::array<StageTrace, kNumSearchStages> stages{};

  /// ShouldStop() polls across the whole search and how many of them
  /// actually read the clock (the throttle keeps clock_reads ~1/64 of
  /// stop_checks).
  uint64_t stop_checks = 0;
  uint64_t clock_reads = 0;

  /// Arena counters at snapshot time.
  size_t arena_bytes_used = 0;
  uint64_t arena_allocations = 0;

  /// Approximate-keyword-lookup counters for this search: per-attribute
  /// probes, memo hits/misses, candidates the indexes examined, fallbacks.
  text::ProbeStats text_probes;

  const StageTrace& stage(SearchStage s) const {
    return stages[static_cast<size_t>(s)];
  }
  /// One-line rendering, e.g. "locate 0.1ms/12 | ... | rank 0.3ms/4".
  std::string ToString() const;
};

/// \brief Per-request runtime state threaded through the TPW pipeline.
class ExecutionContext {
 public:
  /// A real clock read happens at most once per this many ShouldStop()
  /// calls while a deadline is set.
  static constexpr uint64_t kStopPollStride = 64;

  ExecutionContext() = default;

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  // ------------------------------------------------ request configuration --

  /// \brief Sets the wall-clock deadline (SearchClock::time_point::max()
  /// means none). Configure before the search starts.
  void set_deadline(SearchClock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = deadline != SearchClock::time_point::max();
  }
  void clear_deadline() { set_deadline(SearchClock::time_point::max()); }
  bool has_deadline() const { return has_deadline_; }
  SearchClock::time_point deadline() const { return deadline_; }

  /// \brief Installs a cooperative cancellation token (may fire from any
  /// thread; must outlive the search). nullptr clears it.
  void set_cancel_token(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// \brief Caps arena bytes for tuple-path storage (0 = unlimited).
  /// Exceeding it truncates the search (like max_total_tuple_paths) but is
  /// not a deadline event.
  void set_memory_budget_bytes(size_t bytes) { memory_budget_bytes_ = bytes; }
  size_t memory_budget_bytes() const { return memory_budget_bytes_; }
  bool OverMemoryBudget() const {
    return memory_budget_bytes_ > 0 && arena_.bytes_used() > memory_budget_bytes_;
  }

  // ------------------------------------------------------- stop plumbing --

  /// \brief True once the search should stop early (deadline passed or the
  /// cancellation token fired). Sticky: once true, stays true until
  /// ResetForSearch(). Cheap enough for tight loops: the clock is read at
  /// most once per kStopPollStride calls.
  bool ShouldStop();

  /// \brief The latch state without polling (no clock read, no token read).
  bool stop_requested() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// \brief Trips the latch directly (tests, fatal downstream errors,
  /// chaos-injected cancels). On a child view the stop propagates to the
  /// parent, so sibling workers observe it at their next poll.
  void RequestStop() {
    stopped_.store(true, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->RequestStop();
  }

  // ------------------------------------------------- parallel child views --

  /// \brief Forks a child view for one parallel-stage worker. The child
  /// shares the parent's deadline, cancellation token, test clock and stop
  /// latch (a stop on either side is observed by the other at the next
  /// poll), but owns its poll counters, probe counters, arena and trace —
  /// so workers never contend on the parent's single-threaded state. The
  /// parent must outlive the child; fold the child's counters back with
  /// MergeChild() after the parallel region's barrier.
  std::unique_ptr<ExecutionContext> ForkChild();

  /// \brief Folds one child view's counters (stop checks, clock reads,
  /// probe stats) into this context. Call after the parallel region ends,
  /// in fixed worker order, so merged totals are deterministic.
  void MergeChild(const ExecutionContext& child);

  /// \brief Records that `stage` fanned out over `workers` worker contexts
  /// (keeps the maximum across repeated parallel regions of one stage).
  void RecordStageWorkers(SearchStage stage, uint64_t workers);

  // --------------------------------------------------------------- arena --

  Arena& arena() { return arena_; }
  const Arena& arena() const { return arena_; }
  /// \brief The memory resource tuple-path stages allocate from.
  std::pmr::memory_resource* resource() { return &arena_; }

  // --------------------------------------------------------------- trace --

  /// \brief RAII span over one pipeline stage: records wall time, an item
  /// counter, and whether the stop latch was set by stage end.
  class StageSpan {
   public:
    StageSpan(ExecutionContext* ctx, SearchStage stage)
        : ctx_(ctx), stage_(stage) {}
    ~StageSpan() { Finish(); }
    StageSpan(const StageSpan&) = delete;
    StageSpan& operator=(const StageSpan&) = delete;

    void AddItems(uint64_t n) { items_ += n; }
    /// \brief Ends the span early (idempotent; the destructor is a no-op
    /// afterwards).
    void Finish();

   private:
    ExecutionContext* ctx_;
    SearchStage stage_;
    Stopwatch watch_;
    uint64_t items_ = 0;
    bool finished_ = false;
  };

  StageSpan TraceStage(SearchStage stage) { return StageSpan(this, stage); }

  /// \brief Accumulator the text layer's probes record into; safe to share
  /// across the pairwise stage's ParallelFor workers.
  text::ProbeCounters& probe_counters() { return probe_counters_; }
  const text::ProbeCounters& probe_counters() const { return probe_counters_; }

  /// \brief Copyable snapshot of the trace so far (stop/clock/arena
  /// counters included).
  ExecutionTrace trace() const;

  /// Clock reads performed by ShouldStop() since ResetForSearch() — the
  /// throttle contract tested in core_test.
  uint64_t clock_reads() const {
    return clock_reads_.load(std::memory_order_relaxed);
  }
  uint64_t stop_checks() const {
    return stop_checks_.load(std::memory_order_relaxed);
  }

  /// \brief Injects a fake clock for tests (nullptr restores the real one).
  using NowFn = SearchClock::time_point (*)();
  void SetClockForTesting(NowFn now_fn) { now_fn_ = now_fn; }

  // ------------------------------------------------------------ lifecycle --

  /// \brief Prepares the context for the next search on the same session:
  /// clears the stop latch, poll counters and trace, and recycles the
  /// arena. Deadline, cancel token and budget configuration are kept (the
  /// caller re-arms them per request).
  void ResetForSearch();

 private:
  // Request configuration (written before the search starts, read-only
  // while stages run — the happens-before edge is the stage/thread spawn).
  SearchClock::time_point deadline_ = SearchClock::time_point::max();
  bool has_deadline_ = false;
  const std::atomic<bool>* cancel_ = nullptr;
  size_t memory_budget_bytes_ = 0;
  NowFn now_fn_ = nullptr;
  // Set on child views only (ForkChild): the context whose stop latch this
  // view mirrors. The parent outlives its children by contract.
  ExecutionContext* parent_ = nullptr;

  // Stop plumbing (multi-threaded).
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> deadline_polls_{0};
  std::atomic<uint64_t> stop_checks_{0};
  std::atomic<uint64_t> clock_reads_{0};

  // Text-layer probe counters (multi-threaded; see probe_counters()).
  text::ProbeCounters probe_counters_;

  // Single-threaded state.
  Arena arena_;
  std::array<StageTrace, kNumSearchStages> stages_{};
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_EXECUTION_CONTEXT_H_
