// Tunables of the TPW sample-search pipeline.
//
// SearchOptions is a pure, copyable value type: it describes WHAT to search
// (search-space bounds, ranking weights, parallelism) and never carries
// per-request runtime state. Deadlines, cancellation tokens, memory budgets
// and tracing live in core::ExecutionContext (core/execution_context.h),
// which is threaded through the pipeline alongside the options.
#ifndef MWEAVER_CORE_OPTIONS_H_
#define MWEAVER_CORE_OPTIONS_H_

#include <chrono>
#include <cstddef>
#include <string>

namespace mweaver::core {

/// Clock used for search deadlines.
using SearchClock = std::chrono::steady_clock;

/// \brief Options controlling sample search (Section 4.5) and ranking.
struct SearchOptions {
  /// Pairwise Maximal Number of Joins (Section 4.5.2): the BFS depth limit
  /// when connecting a pair of projected attributes. The paper uses 2.
  int pmnj = 2;

  /// Ranking weights (Section 4.5.5): score = matching_weight * mean match
  /// score + complexity_weight * 1/(1 + #joins).
  double matching_weight = 0.7;
  double complexity_weight = 0.3;

  /// Upper bound on tuple paths created per pairwise mapping (0 = no
  /// bound). When hit, SearchStats::truncated is set; completeness is no
  /// longer guaranteed.
  size_t max_tuple_paths_per_mapping = 0;

  /// Upper bound on tuple paths held across all levels of the weave (0 = no
  /// bound); emulates a memory budget. When hit, SearchStats::truncated is
  /// set.
  size_t max_total_tuple_paths = 0;

  /// How many supporting tuple paths each returned candidate retains for
  /// display/explanation (scores are computed over all of them regardless).
  size_t retained_tuple_paths_per_mapping = 3;

  /// Worker threads for the parallel stages of the search core: the
  /// per-column location probes, the pairwise tuple-path creation step (the
  /// dominant cost of sample search: one approximate-search query per
  /// pairwise mapping), and the per-candidate pruning probes of the
  /// interactive path. 1 = sequential. Results are deterministic
  /// regardless of the thread count.
  size_t num_threads = 1;

  /// \brief Canonical encoding of every option that can change the result
  /// SET of a search. Two option values with equal fingerprints produce
  /// identical candidate lists for identical inputs; `num_threads` is
  /// deliberately excluded (it changes timing, never the converged output).
  /// service::ResultCache keys on this — when adding a field to this
  /// struct, decide whether it is result-affecting and update Fingerprint()
  /// accordingly (a sizeof tripwire in result_cache.cc forces the review).
  std::string Fingerprint() const;
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_OPTIONS_H_
