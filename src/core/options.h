// Tunables of the TPW sample-search pipeline.
#ifndef MWEAVER_CORE_OPTIONS_H_
#define MWEAVER_CORE_OPTIONS_H_

#include <atomic>
#include <chrono>
#include <cstddef>

namespace mweaver::core {

/// Clock used for search deadlines.
using SearchClock = std::chrono::steady_clock;

/// \brief Options controlling sample search (Section 4.5) and ranking.
struct SearchOptions {
  /// Pairwise Maximal Number of Joins (Section 4.5.2): the BFS depth limit
  /// when connecting a pair of projected attributes. The paper uses 2.
  int pmnj = 2;

  /// Ranking weights (Section 4.5.5): score = matching_weight * mean match
  /// score + complexity_weight * 1/(1 + #joins).
  double matching_weight = 0.7;
  double complexity_weight = 0.3;

  /// Upper bound on tuple paths created per pairwise mapping (0 = no
  /// bound). When hit, SearchStats::truncated is set; completeness is no
  /// longer guaranteed.
  size_t max_tuple_paths_per_mapping = 0;

  /// Upper bound on tuple paths held across all levels of the weave (0 = no
  /// bound); emulates a memory budget. When hit, SearchStats::truncated is
  /// set.
  size_t max_total_tuple_paths = 0;

  /// How many supporting tuple paths each returned candidate retains for
  /// display/explanation (scores are computed over all of them regardless).
  size_t retained_tuple_paths_per_mapping = 3;

  /// Worker threads for the pairwise tuple-path creation step (the
  /// dominant cost of sample search: one approximate-search query per
  /// pairwise mapping). 1 = sequential. Results are deterministic
  /// regardless of the thread count.
  size_t num_threads = 1;

  /// Wall-clock deadline for the search. The pairwise-execution and weave
  /// loops poll it and stop early once it passes: the search still returns
  /// (a possibly empty ranked list over whatever was built in time) with
  /// SearchStats::truncated and SearchStats::deadline_expired set, instead
  /// of stalling its worker thread. max() = no deadline.
  SearchClock::time_point deadline = SearchClock::time_point::max();

  /// Optional cooperative cancellation token (e.g. the client hung up).
  /// Checked at the same points as `deadline`; must outlive the search.
  const std::atomic<bool>* cancel = nullptr;

  bool has_deadline() const {
    return deadline != SearchClock::time_point::max();
  }

  /// \brief True once the search should stop early (deadline passed or the
  /// cancellation token fired).
  bool ExpiredOrCancelled() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline() && SearchClock::now() >= deadline;
  }
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_OPTIONS_H_
