// LocateSamples (Algorithm 1): the location map L, where L(i) is the set of
// source attributes (with their verified matching rows) that noisily
// contain sample E_i.
#ifndef MWEAVER_CORE_LOCATION_MAP_H_
#define MWEAVER_CORE_LOCATION_MAP_H_

#include <string>
#include <vector>

#include "core/execution_context.h"
#include "graph/schema_graph.h"
#include "text/fulltext_engine.h"

namespace mweaver::core {

/// \brief L(i) for one target column.
struct ColumnLocations {
  int target_column = -1;
  std::string sample;
  std::vector<text::Occurrence> occurrences;
};

/// \brief The location map L for a sample tuple.
class LocationMap {
 public:
  /// \brief Runs Algorithm 1: one full-text lookup per sample. Empty
  /// samples yield empty occurrence lists (the caller decides whether that
  /// is an error; the Session requires a fully-populated first row). When
  /// `ctx` is given, the deadline/cancel token is polled before each column
  /// lookup; columns not examined after a stop are left empty. With
  /// `num_threads > 1` the per-column lookups run in parallel on child
  /// context views; each column's occurrences land in its own slot, so the
  /// map is identical for any thread count.
  static LocationMap Build(const text::FullTextEngine& engine,
                           const std::vector<std::string>& sample_tuple,
                           ExecutionContext* ctx = nullptr,
                           size_t num_threads = 1);

  /// \brief Builds a location map from explicit attribute sets (no
  /// occurrence rows). Used by schema-level enumeration (the naive baseline
  /// and the match-driven tool), where the per-column attributes are given
  /// rather than discovered.
  static LocationMap FromAttributes(
      const std::vector<std::vector<text::AttributeRef>>& attrs_per_column,
      const std::vector<std::string>& samples = {});

  size_t num_columns() const { return columns_.size(); }
  const ColumnLocations& column(size_t i) const { return columns_[i]; }

  /// \brief All attributes in L(i), in occurrence order. Precomputed at
  /// build time — callers used to pay a vector allocation per call.
  const std::vector<text::AttributeRef>& AttributesOf(size_t i) const {
    return attrs_[i];
  }

  /// \brief True iff attribute `attr` contains sample i. A single bit probe
  /// against the engine's dense attribute-slot numbering when the map was
  /// built from an engine; a binary search over sorted attributes otherwise
  /// (FromAttributes has no slot universe). Never a linear scan.
  bool Contains(size_t i, const text::AttributeRef& attr) const;

  /// \brief Total number of (column, attribute) occurrence entries.
  size_t TotalOccurrences() const;

  /// \brief FK-graph-aware invalidation check against a newer engine in the
  /// same snapshot lineage. The map is stale iff any relation that could
  /// change its contents moved to a newer update version: a relation one of
  /// its occurrences lives in (the occurrence row sets would differ), or an
  /// FK neighbor of such a relation in `graph` (joins out of the occurrence
  /// rows would land on different tuples). Updates confined to relations
  /// outside that neighborhood leave the map exactly reusable — the hook a
  /// session-migration path uses to decide between re-locating and keeping
  /// its frozen map. Build() captures the engine's per-relation versions;
  /// maps built by FromAttributes (no engine) are always reported stale.
  bool StaleVersusEngine(const text::FullTextEngine& engine,
                         const graph::SchemaGraph& graph) const;

 private:
  // Derives attrs_/slot_bits_/sorted_attrs_ for column i from its
  // occurrences. Safe to run per-column in parallel (engine reads only).
  void FinalizeColumn(size_t i, const text::FullTextEngine* engine);

  std::vector<ColumnLocations> columns_;
  // Per-column attribute list in occurrence order (AttributesOf).
  std::vector<std::vector<text::AttributeRef>> attrs_;
  // Per-column membership bitset over engine->AttrSlot() when built from an
  // engine; engine_ is null (and slot_bits_ unused) for FromAttributes maps.
  const text::FullTextEngine* engine_ = nullptr;
  std::vector<std::vector<uint64_t>> slot_bits_;
  // Per-relation update versions captured from the engine at Build time;
  // StaleVersusEngine diffs these against a newer engine's.
  std::vector<uint64_t> built_versions_;
  // Per-column sorted attribute list (Contains fallback without an engine).
  std::vector<std::vector<text::AttributeRef>> sorted_attrs_;
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_LOCATION_MAP_H_
