#include "core/pruning.h"

#include <algorithm>

namespace mweaver::core {

size_t PruneByAttribute(const text::FullTextEngine& engine, int target_column,
                        const std::string& sample,
                        std::vector<CandidateMapping>* candidates,
                        ExecutionContext* ctx) {
  const size_t before = candidates->size();
  text::ProbeCounters* counters =
      ctx != nullptr ? &ctx->probe_counters() : nullptr;
  candidates->erase(
      std::remove_if(
          candidates->begin(), candidates->end(),
          [&](const CandidateMapping& c) {
            const Projection* p = c.mapping.FindProjection(target_column);
            if (p == nullptr) return true;  // malformed: drop
            const storage::RelationId rel =
                c.mapping.vertex(p->vertex).relation;
            return engine
                .MatchingRows(text::AttributeRef{rel, p->attribute}, sample,
                              counters)
                ->empty();
          }),
      candidates->end());
  return before - candidates->size();
}

Status PruneByStructure(const query::PathExecutor& executor,
                        const query::SampleMap& row_samples,
                        std::vector<CandidateMapping>* candidates,
                        size_t* num_pruned, ExecutionContext* ctx) {
  std::vector<CandidateMapping> kept;
  kept.reserve(candidates->size());
  for (CandidateMapping& c : *candidates) {
    if (ctx != nullptr && ctx->ShouldStop()) {
      // Unexamined candidates stay: a stop may only leave extra
      // candidates, never remove valid ones.
      kept.push_back(std::move(c));
      continue;
    }
    MW_ASSIGN_OR_RETURN(bool supported,
                        executor.HasSupport(c.mapping, row_samples));
    if (supported) kept.push_back(std::move(c));
  }
  if (num_pruned != nullptr) *num_pruned = candidates->size() - kept.size();
  *candidates = std::move(kept);
  return Status::OK();
}

}  // namespace mweaver::core
