#include "core/pruning.h"

#include <utility>

#include "core/parallel_stage.h"

namespace mweaver::core {

namespace {

// Compacts `candidates` in place, keeping index order, dropping every entry
// whose drop flag is set. Returns the number removed.
size_t CompactDropped(std::vector<CandidateMapping>* candidates,
                      const std::vector<unsigned char>& drop) {
  const size_t before = candidates->size();
  size_t out = 0;
  for (size_t i = 0; i < before; ++i) {
    if (drop[i]) continue;
    if (out != i) (*candidates)[out] = std::move((*candidates)[i]);
    ++out;
  }
  candidates->resize(out);
  return before - out;
}

}  // namespace

size_t PruneByAttribute(const text::FullTextEngine& engine, int target_column,
                        const std::string& sample,
                        std::vector<CandidateMapping>* candidates,
                        ExecutionContext* ctx, size_t num_threads) {
  // drop[i] set => candidate i was examined and disproven (or malformed).
  // Unexamined candidates — the deadline/cancel fired before their probe —
  // keep their zero: a stop may only leave extra candidates, never remove
  // valid ones. A pre-expired deadline therefore costs zero probes.
  std::vector<unsigned char> drop(candidates->size(), 0);
  // Serial pre-pass resolves each candidate's probed (relation, attribute)
  // into flat parallel arrays, so the probe workers stream two contiguous
  // lanes instead of chasing projection lists inside CandidateMapping.
  std::vector<storage::RelationId> rels(candidates->size(), -1);
  std::vector<storage::AttributeId> attrs(candidates->size(), -1);
  for (size_t i = 0; i < candidates->size(); ++i) {
    const CandidateMapping& cand = (*candidates)[i];
    const Projection* p = cand.mapping.FindProjection(target_column);
    if (p == nullptr) {  // malformed: drop, no probe needed
      drop[i] = 1;
      continue;
    }
    rels[i] = cand.mapping.vertex(p->vertex).relation;
    attrs[i] = p->attribute;
  }
  ParallelStageFor(
      ctx, SearchStage::kPrune, candidates->size(), num_threads,
      [&](ExecutionContext* c, size_t i) {
        if (drop[i]) return;  // malformed, already dropped
        if (c != nullptr && c->ShouldStop()) return;
        if (engine
                .MatchingRows(text::AttributeRef{rels[i], attrs[i]}, sample,
                              c != nullptr ? &c->probe_counters() : nullptr)
                ->empty()) {
          drop[i] = 1;
        }
      });
  return CompactDropped(candidates, drop);
}

Status PruneByStructure(const query::PathExecutor& executor,
                        const query::SampleMap& row_samples,
                        std::vector<CandidateMapping>* candidates,
                        size_t* num_pruned, ExecutionContext* ctx,
                        size_t num_threads) {
  const size_t before = candidates->size();
  std::vector<unsigned char> drop(before, 0);
  std::vector<Status> errors(before, Status::OK());
  ParallelStageFor(
      ctx, SearchStage::kPrune, before, num_threads,
      [&](ExecutionContext* c, size_t i) {
        if (c != nullptr && c->ShouldStop()) return;  // unexamined: keep
        Result<bool> supported =
            executor.HasSupport((*candidates)[i].mapping, row_samples, c);
        if (!supported.ok()) {
          errors[i] = supported.status();
          return;
        }
        // A query cut off mid-enumeration reports false for support it did
        // not get to find — that is "unexamined", not "disproven", so the
        // candidate stays.
        if (!*supported && !(c != nullptr && c->stop_requested())) {
          drop[i] = 1;
        }
      });
  for (size_t i = 0; i < before; ++i) {
    MW_RETURN_NOT_OK(errors[i]);
  }
  const size_t removed = CompactDropped(candidates, drop);
  if (num_pruned != nullptr) *num_pruned = removed;
  return Status::OK();
}

}  // namespace mweaver::core
