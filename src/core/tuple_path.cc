#include "core/tuple_path.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/path_internal.h"

namespace mweaver::core {

using internal::AdjEdge;
using internal::BuildAdjacency;
using internal::CanonicalEncoding;
using internal::SimplePath;

TuplePath TuplePath::SingleVertex(storage::RelationId relation,
                                  storage::RowId row,
                                  std::pmr::memory_resource* mr) {
  TuplePath path(mr != nullptr ? mr : std::pmr::get_default_resource());
  path.relations_.push_back(relation);
  path.parents_.push_back(kNoVertex);
  path.fks_.push_back(-1);
  path.from_side_.push_back(0);
  path.rows_.push_back(row);
  return path;
}

VertexId TuplePath::AddVertex(storage::RelationId relation, storage::RowId row,
                              VertexId parent, storage::ForeignKeyId fk,
                              bool is_from_side) {
  MW_CHECK_GE(parent, 0);
  MW_CHECK_LT(static_cast<size_t>(parent), relations_.size());
  relations_.push_back(relation);
  parents_.push_back(parent);
  fks_.push_back(fk);
  from_side_.push_back(is_from_side ? 1 : 0);
  rows_.push_back(row);
  return static_cast<VertexId>(relations_.size() - 1);
}

void TuplePath::AddProjection(int target_column, VertexId vertex,
                              storage::AttributeId attribute,
                              double match_score) {
  MW_CHECK(FindProjection(target_column) == nullptr)
      << "duplicate projection for target column " << target_column;
  MW_CHECK_GE(vertex, 0);
  MW_CHECK_LT(static_cast<size_t>(vertex), relations_.size());
  // Insert keeping (projections_, match_scores_) sorted by target column.
  size_t pos = 0;
  while (pos < projections_.size() &&
         projections_[pos].target_column < target_column) {
    ++pos;
  }
  projections_.insert(projections_.begin() + static_cast<ptrdiff_t>(pos),
                      Projection{target_column, vertex, attribute});
  match_scores_.insert(match_scores_.begin() + static_cast<ptrdiff_t>(pos),
                       match_score);
}

const Projection* TuplePath::FindProjection(int target_column) const {
  for (const Projection& p : projections_) {
    if (p.target_column == target_column) return &p;
  }
  return nullptr;
}

std::vector<int> TuplePath::TargetColumns() const {
  std::vector<int> cols;
  cols.reserve(projections_.size());
  for (const Projection& p : projections_) cols.push_back(p.target_column);
  return cols;
}

double TuplePath::MeanMatchScore() const {
  if (match_scores_.empty()) return 1.0;
  double total = 0.0;
  for (double s : match_scores_) total += s;
  return total / static_cast<double>(match_scores_.size());
}

MappingPath TuplePath::ExtractMappingPath() const {
  MappingPath mp;
  if (relations_.empty()) return mp;
  mp = MappingPath::SingleVertex(relations_[0]);
  for (size_t i = 1; i < relations_.size(); ++i) {
    mp.AddVertex(relations_[i], parents_[i], fks_[i], from_side_[i] != 0);
  }
  for (const Projection& p : projections_) {
    mp.AddProjection(p.target_column, p.vertex, p.attribute);
  }
  return mp;
}

std::vector<std::string> TuplePath::ProjectTargetValues(
    const storage::Database& db) const {
  std::vector<std::string> values;
  values.reserve(projections_.size());
  for (const Projection& p : projections_) {
    const storage::Relation& rel =
        db.relation(relations_[static_cast<size_t>(p.vertex)]);
    values.push_back(
        rel.at(rows_[static_cast<size_t>(p.vertex)], p.attribute)
            .ToDisplayString());
  }
  return values;
}

std::string TuplePath::Canonical() const {
  std::vector<std::string> labels(relations_.size());
  for (size_t i = 0; i < relations_.size(); ++i) {
    std::string label = "R" + std::to_string(relations_[i]) + "#" +
                        std::to_string(rows_[i]);
    std::vector<std::string> projs;
    for (const Projection& p : projections_) {
      if (p.vertex == static_cast<VertexId>(i)) {
        projs.push_back(std::to_string(p.target_column) + ":" +
                        std::to_string(p.attribute));
      }
    }
    std::sort(projs.begin(), projs.end());
    if (!projs.empty()) label += "[" + Join(projs, ",") + "]";
    labels[i] = std::move(label);
  }
  return CanonicalEncoding({parents_.data(), parents_.size()},
                           {fks_.data(), fks_.size()},
                           {from_side_.data(), from_side_.size()}, labels);
}

bool TuplePath::IsConsistent(const storage::Database& db) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i] < 0 ||
        static_cast<size_t>(relations_[i]) >= db.num_relations()) {
      return false;
    }
    const storage::Relation& rel = db.relation(relations_[i]);
    if (rows_[i] < 0 || static_cast<size_t>(rows_[i]) >= rel.num_rows()) {
      return false;
    }
    if (parents_[i] == kNoVertex) continue;
    // Join condition between this vertex and its parent.
    const bool is_from = from_side_[i] != 0;
    const storage::ForeignKey& fk =
        db.foreign_keys()[static_cast<size_t>(fks_[i])];
    const storage::AttributeId my_attr =
        is_from ? fk.from_attribute : fk.to_attribute;
    const storage::AttributeId parent_attr =
        is_from ? fk.to_attribute : fk.from_attribute;
    const size_t parent = static_cast<size_t>(parents_[i]);
    const storage::Value& mine = rel.at(rows_[i], my_attr);
    const storage::Value& theirs =
        db.relation(relations_[parent]).at(rows_[parent], parent_attr);
    if (mine.is_null() || mine != theirs) return false;
  }
  // Normal form: no two same-(fk, orientation) neighbors of a vertex hold
  // the same tuple.
  const auto adj = BuildAdjacency(parents(), fks(), from_sides());
  for (size_t u = 0; u < adj.size(); ++u) {
    const auto& edges = adj[u];
    for (size_t a = 0; a < edges.size(); ++a) {
      for (size_t b = a + 1; b < edges.size(); ++b) {
        if (edges[a].fk == edges[b].fk &&
            edges[a].neighbor_is_from_side == edges[b].neighbor_is_from_side &&
            relations_[static_cast<size_t>(edges[a].neighbor)] ==
                relations_[static_cast<size_t>(edges[b].neighbor)] &&
            row(edges[a].neighbor) == row(edges[b].neighbor)) {
          return false;
        }
      }
    }
  }
  return true;
}

namespace {

// Finds a neighbor of `at` in `path` (excluding `visited` vertices) that
// matches (relation, row, fk, orientation); kNoVertex if none.
VertexId FindMergeTarget(const TuplePath& path,
                         const std::vector<std::vector<AdjEdge>>& adj,
                         VertexId at, const std::vector<bool>& visited,
                         storage::RelationId relation, storage::RowId row,
                         storage::ForeignKeyId fk, bool neighbor_is_from) {
  for (const AdjEdge& e : adj[static_cast<size_t>(at)]) {
    if (visited[static_cast<size_t>(e.neighbor)]) continue;
    if (e.fk != fk || e.neighbor_is_from_side != neighbor_is_from) continue;
    if (path.vertex(e.neighbor).relation == relation &&
        path.row(e.neighbor) == row) {
      return e.neighbor;
    }
  }
  return kNoVertex;
}

}  // namespace

std::optional<TuplePath> TuplePath::Weave(const TuplePath& base,
                                          const TuplePath& ptp,
                                          std::pmr::memory_resource* mr) {
  MW_CHECK_EQ(ptp.size(), 2u);
  // Identify the common key k and the new key j.
  const std::vector<int> base_cols = base.TargetColumns();
  int common_key = -1;
  int new_key = -1;
  for (const Projection& p : ptp.projections_) {
    const bool in_base =
        std::find(base_cols.begin(), base_cols.end(), p.target_column) !=
        base_cols.end();
    if (in_base) {
      MW_CHECK_EQ(common_key, -1)
          << "weave requires exactly one common projection key";
      common_key = p.target_column;
    } else {
      new_key = p.target_column;
    }
  }
  MW_CHECK_NE(common_key, -1);
  MW_CHECK_NE(new_key, -1);

  const Projection* base_proj = base.FindProjection(common_key);
  const Projection* ptp_common = ptp.FindProjection(common_key);
  const Projection* ptp_new = ptp.FindProjection(new_key);

  const VertexId fuse_base = base_proj->vertex;
  const VertexId fuse_ptp = ptp_common->vertex;

  // Line 4 of Algorithm 6: the fused vertices must be the same tuple.
  if (base.vertex(fuse_base).relation != ptp.vertex(fuse_ptp).relation ||
      base.row(fuse_base) != ptp.row(fuse_ptp)) {
    return std::nullopt;
  }

  TuplePath result(base, mr != nullptr ? mr : std::pmr::get_default_resource());
  const auto base_adj =
      BuildAdjacency(result.parents(), result.fks(), result.from_sides());
  const auto ptp_adj = BuildAdjacency(ptp.parents(), ptp.fks(),
                                      ptp.from_sides());

  // The chain of ptp vertices from the fuse point to the new projection.
  const std::vector<VertexId> chain =
      SimplePath(ptp_adj, fuse_ptp, ptp_new->vertex);

  std::vector<bool> visited(result.num_vertices(), false);
  visited[static_cast<size_t>(fuse_base)] = true;

  VertexId cur = fuse_base;   // current merge position in `result`
  bool grafting = false;
  for (size_t step = 1; step < chain.size(); ++step) {
    const VertexId pv = chain[step];
    // Edge metadata between chain[step-1] and pv, from pv's perspective.
    storage::ForeignKeyId fk = -1;
    bool pv_is_from = false;
    for (const AdjEdge& e : ptp_adj[static_cast<size_t>(chain[step - 1])]) {
      if (e.neighbor == pv) {
        fk = e.fk;
        pv_is_from = e.neighbor_is_from_side;
        break;
      }
    }
    MW_CHECK_NE(fk, -1);

    if (!grafting) {
      const VertexId merged = FindMergeTarget(
          result, base_adj, cur, visited, ptp.vertex(pv).relation,
          ptp.row(pv), fk, pv_is_from);
      if (merged != kNoVertex) {
        cur = merged;
        visited[static_cast<size_t>(merged)] = true;
        continue;
      }
      grafting = true;
    }
    // Graft pv as a new child of cur.
    cur = result.AddVertex(ptp.vertex(pv).relation, ptp.row(pv), cur, fk,
                           pv_is_from);
  }

  // The chain end now corresponds to `cur`; project the new key there.
  const size_t ptp_new_index = static_cast<size_t>(
      ptp_new - ptp.projections_.data());
  result.AddProjection(new_key, cur, ptp_new->attribute,
                       ptp.match_scores_[ptp_new_index]);
  return result;
}

std::string TuplePath::ToString(const storage::Database& db) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < relations_.size(); ++i) {
    const storage::Relation& rel = db.relation(relations_[i]);
    std::string s = rel.name() + "#" + std::to_string(rows_[i]);
    for (const Projection& p : projections_) {
      if (p.vertex == static_cast<VertexId>(i)) {
        s += StrFormat("[%d:%s]", p.target_column,
                       rel.schema().attribute(p.attribute).name.c_str());
      }
    }
    parts.push_back(std::move(s));
  }
  return Join(parts, " - ");
}

}  // namespace mweaver::core
