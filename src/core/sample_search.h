// SampleSearch: the full TPW pipeline (Section 4.3's five steps).
//
//   1. LocateSamples      -> LocationMap            (core/location_map.h)
//   2. Pairwise mappings  -> PairwiseMappingMap     (core/pairwise.h)
//   3. Pairwise tuples    -> PairwiseTupleMap       (core/pairwise.h)
//   4. Complete weaving   -> complete tuple paths   (core/weaver.h)
//   5. Ranking            -> CandidateMapping list  (core/ranking.h)
#ifndef MWEAVER_CORE_SAMPLE_SEARCH_H_
#define MWEAVER_CORE_SAMPLE_SEARCH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/execution_context.h"
#include "core/location_map.h"
#include "core/options.h"
#include "core/pairwise.h"
#include "core/ranking.h"
#include "core/weaver.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "text/fulltext_engine.h"

namespace mweaver::core {

/// \brief End-to-end counters and timings for one sample search.
struct SearchStats {
  size_t num_occurrences = 0;        // location-map entries
  PairwiseStats pairwise;            // steps 2-3
  WeaveStats weave;                  // step 4
  size_t num_complete_tuple_paths = 0;
  size_t num_valid_mappings = 0;     // "# Valid MP" of Table 4

  /// True when any stage stopped early (per-mapping/total tuple-path caps,
  /// the memory budget, or the deadline), so the candidate list may be
  /// incomplete.
  bool truncated = false;
  /// True when the early stop was the deadline / cancellation token.
  bool deadline_expired = false;

  /// Per-stage trace (wall time, item counts, early-stop flags) plus
  /// stop-check/clock/arena counters, snapshotted from the
  /// ExecutionContext at search end.
  ExecutionTrace trace;

  /// Legacy per-stage timings; mirrors of trace.stage(...).wall_ms.
  double locate_ms = 0.0;
  double pairwise_gen_ms = 0.0;
  double pairwise_exec_ms = 0.0;
  double weave_ms = 0.0;
  double rank_ms = 0.0;
  double total_ms = 0.0;
};

/// \brief Result of sample search: ranked candidates + instrumentation.
struct SearchResult {
  std::vector<CandidateMapping> candidates;
  SearchStats stats;
};

/// \brief Runs TPW for the (fully populated) first sample row. Every entry
/// of `sample_tuple` must be non-empty. m == 1 degenerates to single-vertex
/// mappings over the sample's occurrences.
///
/// `ctx` supplies the request's deadline/cancellation, the tuple-path
/// arena, and collects the per-stage trace. The caller is responsible for
/// ctx.ResetForSearch() between searches (Session does this); candidates'
/// example tuple paths are heap-backed copies and outlive the arena.
Result<SearchResult> SampleSearch(const text::FullTextEngine& engine,
                                  const graph::SchemaGraph& schema_graph,
                                  const std::vector<std::string>& sample_tuple,
                                  const SearchOptions& options,
                                  ExecutionContext& ctx);

/// \brief Convenience overload running on a fresh internal context (no
/// deadline, no cancellation, default arena).
Result<SearchResult> SampleSearch(const text::FullTextEngine& engine,
                                  const graph::SchemaGraph& schema_graph,
                                  const std::vector<std::string>& sample_tuple,
                                  const SearchOptions& options = {});

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_SAMPLE_SEARCH_H_
