// Ranking (Section 4.5.5): extracts the distinct complete mapping paths
// from the complete tuple paths and orders them by score.
//
// score(tuple path) = matching_weight * mean per-cell match score
//                   + complexity_weight * 1 / (1 + #joins)
// score(mapping)    = mean score over its supporting tuple paths.
#ifndef MWEAVER_CORE_RANKING_H_
#define MWEAVER_CORE_RANKING_H_

#include <vector>

#include "core/execution_context.h"
#include "core/mapping_path.h"
#include "core/options.h"
#include "core/tuple_path.h"

namespace mweaver::core {

/// \brief One ranked candidate: a valid complete mapping path, its score,
/// and (a sample of) the tuple paths supporting it.
struct CandidateMapping {
  MappingPath mapping;
  double score = 0.0;
  /// Number of supporting complete tuple paths.
  size_t support = 0;
  /// Up to SearchOptions::retained_tuple_paths_per_mapping examples.
  /// Always heap-backed: ranking copies arena-backed inputs, and std::pmr
  /// copy semantics re-allocate the copy on the default resource, so these
  /// survive the arena's reset.
  std::vector<TuplePath> example_tuple_paths;
};

/// \brief Per-tuple-path score under `options`.
double ScoreTuplePath(const TuplePath& path, const SearchOptions& options);

/// \brief Groups complete tuple paths by their mapping path (canonical
/// form), scores each group, and returns candidates sorted by descending
/// score (ties broken by fewer joins, then canonical form for determinism).
/// When `ctx` is given, the deadline/cancel token is polled per input path;
/// a stop ranks only the paths grouped so far.
std::vector<CandidateMapping> RankMappings(
    const std::vector<TuplePath>& complete_tuple_paths,
    const SearchOptions& options, ExecutionContext* ctx = nullptr);

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_RANKING_H_
