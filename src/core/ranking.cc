#include "core/ranking.h"

#include <algorithm>
#include <map>
#include <string>

namespace mweaver::core {

double ScoreTuplePath(const TuplePath& path, const SearchOptions& options) {
  const double matching = path.MeanMatchScore();
  const double complexity =
      1.0 / (1.0 + static_cast<double>(path.num_joins()));
  return options.matching_weight * matching +
         options.complexity_weight * complexity;
}

std::vector<CandidateMapping> RankMappings(
    const std::vector<TuplePath>& complete_tuple_paths,
    const SearchOptions& options, ExecutionContext* ctx) {
  struct Group {
    CandidateMapping candidate;
    double score_total = 0.0;
  };
  std::map<std::string, Group> groups;
  for (const TuplePath& tp : complete_tuple_paths) {
    if (ctx != nullptr && ctx->ShouldStop()) break;
    MappingPath mapping = tp.ExtractMappingPath();
    std::string key = mapping.Canonical();
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Group& group = it->second;
    if (inserted) group.candidate.mapping = std::move(mapping);
    group.score_total += ScoreTuplePath(tp, options);
    ++group.candidate.support;
    if (group.candidate.example_tuple_paths.size() <
        options.retained_tuple_paths_per_mapping) {
      group.candidate.example_tuple_paths.push_back(tp);
    }
  }

  // Keep each group's canonical key alongside the candidate so the sort
  // never recomputes canonicalization (O(n log n) comparisons).
  std::vector<std::pair<std::string, CandidateMapping>> keyed;
  keyed.reserve(groups.size());
  for (auto& [key, group] : groups) {
    group.candidate.score =
        group.score_total / static_cast<double>(group.candidate.support);
    keyed.emplace_back(key, std::move(group.candidate));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              if (a.second.score != b.second.score) {
                return a.second.score > b.second.score;
              }
              if (a.second.mapping.num_joins() !=
                  b.second.mapping.num_joins()) {
                return a.second.mapping.num_joins() <
                       b.second.mapping.num_joins();
              }
              return a.first < b.first;
            });
  std::vector<CandidateMapping> out;
  out.reserve(keyed.size());
  for (auto& [key, candidate] : keyed) out.push_back(std::move(candidate));
  return out;
}

}  // namespace mweaver::core
