#include "core/mapping_path.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/path_internal.h"

namespace mweaver::core {

using internal::AdjEdge;
using internal::BuildAdjacency;
using internal::CanonicalEncoding;

MappingPath MappingPath::SingleVertex(storage::RelationId relation) {
  MappingPath path;
  path.vertices_.push_back(PathVertex{relation, kNoVertex, -1, false});
  return path;
}

VertexId MappingPath::AddVertex(storage::RelationId relation, VertexId parent,
                                storage::ForeignKeyId fk, bool is_from_side) {
  MW_CHECK_GE(parent, 0);
  MW_CHECK_LT(static_cast<size_t>(parent), vertices_.size());
  vertices_.push_back(PathVertex{relation, parent, fk, is_from_side});
  return static_cast<VertexId>(vertices_.size() - 1);
}

void MappingPath::AddProjection(int target_column, VertexId vertex,
                                storage::AttributeId attribute) {
  MW_CHECK(FindProjection(target_column) == nullptr)
      << "duplicate projection for target column " << target_column;
  MW_CHECK_GE(vertex, 0);
  MW_CHECK_LT(static_cast<size_t>(vertex), vertices_.size());
  projections_.push_back(Projection{target_column, vertex, attribute});
  std::sort(projections_.begin(), projections_.end(),
            [](const Projection& a, const Projection& b) {
              return a.target_column < b.target_column;
            });
}

const Projection* MappingPath::FindProjection(int target_column) const {
  for (const Projection& p : projections_) {
    if (p.target_column == target_column) return &p;
  }
  return nullptr;
}

std::vector<int> MappingPath::TargetColumns() const {
  std::vector<int> cols;
  cols.reserve(projections_.size());
  for (const Projection& p : projections_) cols.push_back(p.target_column);
  return cols;
}

std::vector<VertexId> MappingPath::Children(VertexId v) const {
  std::vector<VertexId> children;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].parent == v) {
      children.push_back(static_cast<VertexId>(i));
    }
  }
  return children;
}

size_t MappingPath::Degree(VertexId v) const {
  size_t degree = Children(v).size();
  if (vertices_[static_cast<size_t>(v)].parent != kNoVertex) ++degree;
  return degree;
}

bool MappingPath::TerminalsProjected() const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const VertexId v = static_cast<VertexId>(i);
    const bool is_terminal = vertices_.size() == 1 || Degree(v) == 1;
    if (!is_terminal) continue;
    bool projected = false;
    for (const Projection& p : projections_) {
      if (p.vertex == v) {
        projected = true;
        break;
      }
    }
    if (!projected) return false;
  }
  return true;
}

std::string MappingPath::Canonical() const {
  std::vector<std::string> labels(vertices_.size());
  for (size_t i = 0; i < vertices_.size(); ++i) {
    std::string label = "R" + std::to_string(vertices_[i].relation);
    std::vector<std::string> projs;
    for (const Projection& p : projections_) {
      if (p.vertex == static_cast<VertexId>(i)) {
        projs.push_back(std::to_string(p.target_column) + ":" +
                        std::to_string(p.attribute));
      }
    }
    std::sort(projs.begin(), projs.end());
    if (!projs.empty()) label += "[" + Join(projs, ",") + "]";
    labels[i] = std::move(label);
  }
  return CanonicalEncoding(vertices_, labels);
}

std::string MappingPath::ToString(const storage::Database& db) const {
  if (vertices_.empty()) return "(empty)";
  const auto adj = BuildAdjacency(vertices_);
  std::vector<std::string> labels(vertices_.size());
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const PathVertex& v = vertices_[i];
    const storage::Relation& rel = db.relation(v.relation);
    std::string label = rel.name();
    std::vector<std::string> projs;
    for (const Projection& p : projections_) {
      if (p.vertex == static_cast<VertexId>(i)) {
        projs.push_back(std::to_string(p.target_column) + ":" +
                        rel.schema().attribute(p.attribute).name);
      }
    }
    if (!projs.empty()) label += "[" + Join(projs, ",") + "]";
    labels[i] = std::move(label);
  }

  // Depth-first rendering from vertex 0; branch points in braces.
  std::function<std::string(VertexId, VertexId)> render =
      [&](VertexId v, VertexId parent) -> std::string {
    std::string s = labels[static_cast<size_t>(v)];
    std::vector<std::string> branches;
    for (const AdjEdge& e : adj[static_cast<size_t>(v)]) {
      if (e.neighbor == parent) continue;
      branches.push_back(render(e.neighbor, v));
    }
    if (branches.size() == 1) {
      s += "--" + branches[0];
    } else if (branches.size() > 1) {
      s += "{" + Join(branches, " ; ") + "}";
    }
    return s;
  };
  return render(0, kNoVertex);
}

}  // namespace mweaver::core
