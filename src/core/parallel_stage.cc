#include "core/parallel_stage.h"

#include <memory>
#include <vector>

#include "common/parallel.h"

namespace mweaver::core {

size_t ParallelStageFor(
    ExecutionContext* parent, SearchStage stage, size_t n, size_t num_threads,
    const std::function<void(ExecutionContext*, size_t)>& fn) {
  if (n == 0) return 0;
  const size_t workers = ParallelWorkerCount(n, num_threads);
  if (workers <= 1 || parent == nullptr) {
    // Serial path: run on the parent directly. A null parent stays null —
    // stages accept optional contexts and parallelism without one would
    // have no deadline or counters to share anyway.
    for (size_t i = 0; i < n; ++i) fn(parent, i);
    return workers;
  }

  std::vector<std::unique_ptr<ExecutionContext>> children;
  children.reserve(workers);
  for (size_t w = 0; w < workers; ++w) children.push_back(parent->ForkChild());

  ParallelFor(n, num_threads, [&children, &fn](size_t worker, size_t i) {
    fn(children[worker].get(), i);
  });

  // The barrier has passed: fold the children back in worker order so the
  // parent's counters accumulate identically across runs and thread counts.
  for (const auto& child : children) parent->MergeChild(*child);
  parent->RecordStageWorkers(stage, workers);
  return workers;
}

}  // namespace mweaver::core
