// Pairwise mapping-path generation (Algorithms 2-4) and pairwise tuple-path
// creation (Section 4.5.3).
//
// For every pair of target columns (i, j), i < j, and every pair of
// attributes (A_i in L(i), A_j in L(j)), a depth-limited breadth-first
// search over the schema graph enumerates every relation path of at most
// PMNJ joins connecting the two attributes' relations (PMPM). Each pairwise
// mapping is then executed as an approximate-search query; the resulting
// instance-level supports are the pairwise tuple paths (PTPM), and
// mappings with no support are pruned.
#ifndef MWEAVER_CORE_PAIRWISE_H_
#define MWEAVER_CORE_PAIRWISE_H_

#include <map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/execution_context.h"
#include "core/location_map.h"
#include "core/mapping_path.h"
#include "core/options.h"
#include "core/tuple_path.h"
#include "graph/schema_graph.h"
#include "query/executor.h"

namespace mweaver::core {

/// Key (i, j) with i < j: one entry per pair of target columns.
using ColumnPair = std::pair<int, int>;

/// \brief PMPM: pairwise mapping path map (Section 4.5.2).
using PairwiseMappingMap = std::map<ColumnPair, std::vector<MappingPath>>;

/// \brief PTPM: pairwise tuple path map (Section 4.5.3).
using PairwiseTupleMap = std::map<ColumnPair, std::vector<TuplePath>>;

/// \brief Algorithms 2-4: enumerates every pairwise mapping path satisfying
/// the PMNJ constraint (options.pmnj), deduplicated per column pair by
/// canonical form. Polls `ctx` between BFS start attributes and per depth
/// level; a stop leaves later pairs un-enumerated.
PairwiseMappingMap GeneratePairwiseMappingPaths(
    const graph::SchemaGraph& schema_graph, const LocationMap& locations,
    const SearchOptions& options, ExecutionContext& ctx);

/// \brief Statistics from pairwise tuple-path creation.
struct PairwiseStats {
  size_t num_mappings = 0;        // pairwise mappings generated
  size_t num_valid_mappings = 0;  // with at least one supporting tuple path
  size_t num_tuple_paths = 0;     // total pairwise tuple paths created
  bool truncated = false;         // a per-mapping cap was hit
  /// The deadline / cancellation token stopped execution early: mappings
  /// not yet executed were skipped (their supports are simply missing).
  bool deadline_expired = false;
};

/// \brief Section 4.5.3: executes each pairwise mapping as an approximate
/// search query, keeping the supporting tuple paths; unsupported mappings
/// are dropped.
Result<PairwiseTupleMap> CreatePairwiseTuplePaths(
    const query::PathExecutor& executor, const PairwiseMappingMap& pmpm,
    const LocationMap& locations, const SearchOptions& options,
    ExecutionContext& ctx, PairwiseStats* stats);

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_PAIRWISE_H_
