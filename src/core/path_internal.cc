#include "core/path_internal.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace mweaver::core::internal {

std::vector<std::vector<AdjEdge>> BuildAdjacency(
    std::span<const PathVertex> vertices) {
  std::vector<std::vector<AdjEdge>> adj(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    const PathVertex& v = vertices[i];
    if (v.parent == kNoVertex) continue;
    const VertexId child = static_cast<VertexId>(i);
    adj[static_cast<size_t>(v.parent)].push_back(
        AdjEdge{child, v.fk_to_parent, v.is_from_side});
    adj[static_cast<size_t>(child)].push_back(
        AdjEdge{v.parent, v.fk_to_parent, !v.is_from_side});
  }
  return adj;
}

std::vector<std::vector<AdjEdge>> BuildAdjacency(
    std::span<const VertexId> parents,
    std::span<const storage::ForeignKeyId> fks,
    std::span<const unsigned char> from_side) {
  std::vector<std::vector<AdjEdge>> adj(parents.size());
  for (size_t i = 0; i < parents.size(); ++i) {
    const VertexId parent = parents[i];
    if (parent == kNoVertex) continue;
    const VertexId child = static_cast<VertexId>(i);
    adj[static_cast<size_t>(parent)].push_back(
        AdjEdge{child, fks[i], from_side[i] != 0});
    adj[static_cast<size_t>(child)].push_back(
        AdjEdge{parent, fks[i], from_side[i] == 0});
  }
  return adj;
}

std::string EncodeFrom(const std::vector<std::vector<AdjEdge>>& adj,
                       const std::vector<std::string>& labels, VertexId v,
                       VertexId parent) {
  std::vector<std::string> child_encodings;
  bool skipped_parent = false;
  for (const AdjEdge& e : adj[static_cast<size_t>(v)]) {
    // Skip exactly one traversal edge back to the parent; further edges to
    // the same vertex id cannot occur in a tree.
    if (e.neighbor == parent && !skipped_parent) {
      skipped_parent = true;
      continue;
    }
    std::string edge = "-f" + std::to_string(e.fk) +
                       (e.neighbor_is_from_side ? ">" : "<");
    child_encodings.push_back(edge + EncodeFrom(adj, labels, e.neighbor, v));
  }
  std::sort(child_encodings.begin(), child_encodings.end());
  std::string out = labels[static_cast<size_t>(v)];
  if (!child_encodings.empty()) {
    out += "(" + Join(child_encodings, "|") + ")";
  }
  return out;
}

namespace {

std::string BestRooting(const std::vector<std::vector<AdjEdge>>& adj,
                        const std::vector<std::string>& labels) {
  std::string best;
  for (size_t i = 0; i < adj.size(); ++i) {
    std::string enc =
        EncodeFrom(adj, labels, static_cast<VertexId>(i), kNoVertex);
    if (best.empty() || enc < best) best = std::move(enc);
  }
  return best;
}

}  // namespace

std::string CanonicalEncoding(std::span<const PathVertex> vertices,
                              const std::vector<std::string>& labels) {
  if (vertices.empty()) return "";
  return BestRooting(BuildAdjacency(vertices), labels);
}

std::string CanonicalEncoding(std::span<const VertexId> parents,
                              std::span<const storage::ForeignKeyId> fks,
                              std::span<const unsigned char> from_side,
                              const std::vector<std::string>& labels) {
  if (parents.empty()) return "";
  return BestRooting(BuildAdjacency(parents, fks, from_side), labels);
}

std::vector<VertexId> SimplePath(const std::vector<std::vector<AdjEdge>>& adj,
                                 VertexId from, VertexId to) {
  std::vector<VertexId> path;
  std::function<bool(VertexId, VertexId)> dfs = [&](VertexId v,
                                                    VertexId parent) {
    path.push_back(v);
    if (v == to) return true;
    for (const AdjEdge& e : adj[static_cast<size_t>(v)]) {
      if (e.neighbor == parent) continue;
      if (dfs(e.neighbor, v)) return true;
    }
    path.pop_back();
    return false;
  };
  const bool found = dfs(from, kNoVertex);
  MW_CHECK(found) << "vertices " << from << " and " << to
                  << " are not connected";
  return path;
}

}  // namespace mweaver::core::internal
