#include "core/location_map.h"

#include "core/parallel_stage.h"

namespace mweaver::core {

LocationMap LocationMap::Build(const text::FullTextEngine& engine,
                               const std::vector<std::string>& sample_tuple,
                               ExecutionContext* ctx, size_t num_threads) {
  LocationMap map;
  map.columns_.resize(sample_tuple.size());
  ParallelStageFor(
      ctx, SearchStage::kLocate, sample_tuple.size(), num_threads,
      [&](ExecutionContext* c, size_t i) {
        ColumnLocations& col = map.columns_[i];
        col.target_column = static_cast<int>(i);
        col.sample = sample_tuple[i];
        if (!col.sample.empty() && !(c != nullptr && c->ShouldStop())) {
          col.occurrences = engine.FindOccurrences(
              col.sample, c != nullptr ? &c->probe_counters() : nullptr);
        }
      });
  return map;
}

LocationMap LocationMap::FromAttributes(
    const std::vector<std::vector<text::AttributeRef>>& attrs_per_column,
    const std::vector<std::string>& samples) {
  LocationMap map;
  map.columns_.reserve(attrs_per_column.size());
  for (size_t i = 0; i < attrs_per_column.size(); ++i) {
    ColumnLocations col;
    col.target_column = static_cast<int>(i);
    if (i < samples.size()) col.sample = samples[i];
    for (const text::AttributeRef& attr : attrs_per_column[i]) {
      col.occurrences.push_back(text::Occurrence{attr, text::EmptyRowSet()});
    }
    map.columns_.push_back(std::move(col));
  }
  return map;
}

std::vector<text::AttributeRef> LocationMap::AttributesOf(size_t i) const {
  std::vector<text::AttributeRef> attrs;
  attrs.reserve(columns_[i].occurrences.size());
  for (const text::Occurrence& occ : columns_[i].occurrences) {
    attrs.push_back(occ.attr);
  }
  return attrs;
}

bool LocationMap::Contains(size_t i, const text::AttributeRef& attr) const {
  for (const text::Occurrence& occ : columns_[i].occurrences) {
    if (occ.attr == attr) return true;
  }
  return false;
}

size_t LocationMap::TotalOccurrences() const {
  size_t total = 0;
  for (const ColumnLocations& col : columns_) total += col.occurrences.size();
  return total;
}

}  // namespace mweaver::core
