#include "core/location_map.h"

#include <algorithm>

#include "core/parallel_stage.h"

namespace mweaver::core {

void LocationMap::FinalizeColumn(size_t i,
                                 const text::FullTextEngine* engine) {
  const ColumnLocations& col = columns_[i];
  std::vector<text::AttributeRef>& attrs = attrs_[i];
  attrs.clear();
  attrs.reserve(col.occurrences.size());
  for (const text::Occurrence& occ : col.occurrences) {
    attrs.push_back(occ.attr);
  }
  if (engine != nullptr) {
    std::vector<uint64_t>& bits = slot_bits_[i];
    bits.assign((engine->num_attr_slots() + 63) / 64, 0);
    for (const text::AttributeRef& attr : attrs) {
      const int slot = engine->AttrSlot(attr);
      if (slot >= 0) {
        bits[static_cast<size_t>(slot) >> 6] |=
            uint64_t{1} << (static_cast<size_t>(slot) & 63);
      }
    }
  } else {
    std::vector<text::AttributeRef>& sorted = sorted_attrs_[i];
    sorted = attrs;
    std::sort(sorted.begin(), sorted.end());
  }
}

LocationMap LocationMap::Build(const text::FullTextEngine& engine,
                               const std::vector<std::string>& sample_tuple,
                               ExecutionContext* ctx, size_t num_threads) {
  LocationMap map;
  map.engine_ = &engine;
  map.built_versions_ = engine.relation_versions();
  map.columns_.resize(sample_tuple.size());
  map.attrs_.resize(sample_tuple.size());
  map.slot_bits_.resize(sample_tuple.size());
  ParallelStageFor(
      ctx, SearchStage::kLocate, sample_tuple.size(), num_threads,
      [&](ExecutionContext* c, size_t i) {
        ColumnLocations& col = map.columns_[i];
        col.target_column = static_cast<int>(i);
        col.sample = sample_tuple[i];
        if (!col.sample.empty() && !(c != nullptr && c->ShouldStop())) {
          col.occurrences = engine.FindOccurrences(
              col.sample, c != nullptr ? &c->probe_counters() : nullptr);
        }
        map.FinalizeColumn(i, &engine);
      });
  return map;
}

LocationMap LocationMap::FromAttributes(
    const std::vector<std::vector<text::AttributeRef>>& attrs_per_column,
    const std::vector<std::string>& samples) {
  LocationMap map;
  map.columns_.reserve(attrs_per_column.size());
  map.attrs_.resize(attrs_per_column.size());
  map.sorted_attrs_.resize(attrs_per_column.size());
  for (size_t i = 0; i < attrs_per_column.size(); ++i) {
    ColumnLocations col;
    col.target_column = static_cast<int>(i);
    if (i < samples.size()) col.sample = samples[i];
    for (const text::AttributeRef& attr : attrs_per_column[i]) {
      col.occurrences.push_back(text::Occurrence{attr, text::EmptyRowSet()});
    }
    map.columns_.push_back(std::move(col));
    map.FinalizeColumn(i, nullptr);
  }
  return map;
}

bool LocationMap::Contains(size_t i, const text::AttributeRef& attr) const {
  if (engine_ != nullptr) {
    const int slot = engine_->AttrSlot(attr);
    if (slot < 0) return false;
    const std::vector<uint64_t>& bits = slot_bits_[i];
    const size_t word = static_cast<size_t>(slot) >> 6;
    return word < bits.size() &&
           ((bits[word] >> (static_cast<size_t>(slot) & 63)) & 1) != 0;
  }
  const std::vector<text::AttributeRef>& sorted = sorted_attrs_[i];
  return std::binary_search(sorted.begin(), sorted.end(), attr);
}

size_t LocationMap::TotalOccurrences() const {
  size_t total = 0;
  for (const ColumnLocations& col : columns_) total += col.occurrences.size();
  return total;
}

bool LocationMap::StaleVersusEngine(const text::FullTextEngine& engine,
                                    const graph::SchemaGraph& graph) const {
  if (built_versions_.empty()) return true;  // FromAttributes: no stamp
  const std::vector<uint64_t>& now = engine.relation_versions();
  if (now.size() != built_versions_.size()) return true;  // schema changed
  const auto changed = [&](storage::RelationId rel) {
    const auto r = static_cast<size_t>(rel);
    return now[r] != built_versions_[r];
  };
  for (const auto& attrs : attrs_) {
    for (const text::AttributeRef& attr : attrs) {
      if (changed(attr.relation)) return true;
      for (const graph::SchemaEdge& edge : graph.Neighbors(attr.relation)) {
        if (changed(edge.neighbor)) return true;
      }
    }
  }
  return false;
}

}  // namespace mweaver::core
