// Tuple paths (Definition 5) and the Weave operation (Algorithm 6).
//
// A tuple path instantiates a mapping path: every vertex additionally holds
// the id of a concrete tuple of its relation, and adjacent tuples are
// connected by the edge's foreign key in the source instance. Weaving merges
// a pairwise tuple path onto a base tuple path at their (single) common
// projection key, fusing vertices whose (relation occurrence, tuple, edge)
// agree and grafting the unmergeable suffix as a new branch — producing a
// tuple path of size |base| + 1.
#ifndef MWEAVER_CORE_TUPLE_PATH_H_
#define MWEAVER_CORE_TUPLE_PATH_H_

#include <memory_resource>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/mapping_path.h"
#include "storage/database.h"

namespace mweaver::core {

/// \brief An instantiated mapping path (Definition 5).
///
/// Shares the rooted-tree representation of MappingPath, with a parallel
/// array of tuple (row) ids, plus per-projection match scores against the
/// user's samples (filled in by the executor, consumed by ranking).
///
/// Storage is allocator-aware (std::pmr): the weave stage constructs its
/// millions of short-lived paths on the ExecutionContext's bump-pointer
/// arena, while the default constructor uses the heap. Plain copies always
/// land on the heap (std::pmr copy semantics), which is exactly the
/// "detach" the ranking stage needs when retaining example paths beyond
/// the arena's lifetime; moves keep the source's resource.
///
/// Vertex storage is structure-of-arrays: one parallel pmr vector per
/// PathVertex field (relation, parent, fk, orientation) plus the row ids.
/// Pruning and canonicalization scans touch one field across all vertices,
/// so SoA streams a single contiguous (and arena-packed) lane instead of
/// striding over interleaved structs. `vertex(v)` materializes a PathVertex
/// by value for callers that want the struct view.
class TuplePath {
 public:
  TuplePath() = default;
  /// \brief An empty path whose node storage draws from `mr`.
  explicit TuplePath(std::pmr::memory_resource* mr)
      : relations_(mr),
        parents_(mr),
        fks_(mr),
        from_side_(mr),
        rows_(mr),
        projections_(mr),
        match_scores_(mr) {}
  /// \brief Copy of `other` with node storage on `mr` (arena cloning).
  TuplePath(const TuplePath& other, std::pmr::memory_resource* mr)
      : relations_(other.relations_, mr),
        parents_(other.parents_, mr),
        fks_(other.fks_, mr),
        from_side_(other.from_side_, mr),
        rows_(other.rows_, mr),
        projections_(other.projections_, mr),
        match_scores_(other.match_scores_, mr) {}
  TuplePath(const TuplePath&) = default;
  TuplePath(TuplePath&&) = default;
  TuplePath& operator=(const TuplePath&) = default;
  TuplePath& operator=(TuplePath&&) = default;

  /// \brief Single-vertex path over (relation, row), allocated from `mr`
  /// (nullptr = heap).
  static TuplePath SingleVertex(storage::RelationId relation,
                                storage::RowId row,
                                std::pmr::memory_resource* mr = nullptr);

  VertexId AddVertex(storage::RelationId relation, storage::RowId row,
                     VertexId parent, storage::ForeignKeyId fk,
                     bool is_from_side);

  void AddProjection(int target_column, VertexId vertex,
                     storage::AttributeId attribute, double match_score);

  /// \brief Struct view of vertex `v`, assembled from the SoA lanes.
  PathVertex vertex(VertexId v) const {
    const size_t i = static_cast<size_t>(v);
    return PathVertex{relations_[i], parents_[i], fks_[i],
                      from_side_[i] != 0};
  }
  // SoA lane views (parallel arrays, one entry per vertex).
  std::span<const storage::RelationId> relations() const {
    return {relations_.data(), relations_.size()};
  }
  std::span<const VertexId> parents() const {
    return {parents_.data(), parents_.size()};
  }
  std::span<const storage::ForeignKeyId> fks() const {
    return {fks_.data(), fks_.size()};
  }
  std::span<const unsigned char> from_sides() const {
    return {from_side_.data(), from_side_.size()};
  }
  storage::RowId row(VertexId v) const {
    return rows_[static_cast<size_t>(v)];
  }
  size_t num_vertices() const { return relations_.size(); }
  size_t num_joins() const {
    return relations_.empty() ? 0 : relations_.size() - 1;
  }

  const std::pmr::vector<Projection>& projections() const {
    return projections_;
  }
  const Projection* FindProjection(int target_column) const;
  std::vector<int> TargetColumns() const;
  size_t size() const { return projections_.size(); }

  /// \brief Mean match score across this path's projections (1.0 when no
  /// projection carries a score).
  double MeanMatchScore() const;
  double match_score(size_t projection_index) const {
    return match_scores_[projection_index];
  }

  /// \brief The schema-level mapping path this tuple path instantiates
  /// (drops tuple ids and scores).
  MappingPath ExtractMappingPath() const;

  /// \brief The projected target tuple t_p (Definition 7): display strings
  /// per covered target column, ordered by target column.
  std::vector<std::string> ProjectTargetValues(
      const storage::Database& db) const;

  /// \brief Rooting-independent encoding over (relation, row, fk,
  /// orientation, projections); used for duplicate elimination in Alg 5.
  std::string Canonical() const;

  /// \brief Instance-consistency check (the invariant behind Theorem 1):
  /// every edge's FK join condition holds between the assigned tuples, all
  /// row ids are in range, and no two same-FK/orientation neighbors of a
  /// vertex share a tuple (the weave normal form). Used by tests and
  /// debug assertions.
  bool IsConsistent(const storage::Database& db) const;

  bool operator==(const TuplePath& other) const {
    return Canonical() == other.Canonical();
  }

  /// \brief Weaves pairwise path `ptp` onto `base` (Algorithm 6).
  ///
  /// Requires: ptp.size() == 2 and the projection-key sets intersect in
  /// exactly one column. Returns nullopt when the fuse vertices disagree on
  /// (relation, tuple). On success the result has size base.size() + 1 and
  /// its node storage draws from `mr` (nullptr = heap).
  static std::optional<TuplePath> Weave(const TuplePath& base,
                                        const TuplePath& ptp,
                                        std::pmr::memory_resource* mr =
                                            nullptr);

  std::string ToString(const storage::Database& db) const;

 private:
  // Vertex SoA lanes; all five vectors stay the same length.
  std::pmr::vector<storage::RelationId> relations_;
  std::pmr::vector<VertexId> parents_;
  std::pmr::vector<storage::ForeignKeyId> fks_;
  std::pmr::vector<unsigned char> from_side_;  // bool, packed
  std::pmr::vector<storage::RowId> rows_;
  std::pmr::vector<Projection> projections_;  // sorted by target column
  std::pmr::vector<double> match_scores_;     // parallel to projections_
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_TUPLE_PATH_H_
