// Session: the interaction model of Section 3, driving the input
// spreadsheet. The user fills the first row completely (triggering sample
// search), then keeps entering samples in lower rows (triggering sample
// pruning) until a single candidate mapping remains.
#ifndef MWEAVER_CORE_SESSION_H_
#define MWEAVER_CORE_SESSION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/execution_context.h"
#include "core/options.h"
#include "core/ranking.h"
#include "core/sample_search.h"
#include "core/suggest.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "text/fulltext_engine.h"

namespace mweaver::core {

enum class SessionState {
  /// First row not yet fully populated: no candidates yet.
  kAwaitingFirstRow,
  /// Candidates exist; more samples would narrow them down.
  kRefining,
  /// Exactly one candidate remains: the desired mapping.
  kConverged,
  /// All candidates were pruned away (or none found): the samples are
  /// inconsistent with the source instance.
  kNoMapping,
};

const char* SessionStateName(SessionState state);

/// \brief An interactive MWeaver mapping-design session over one source
/// database.
class Session {
 public:
  /// \brief `engine` and `schema_graph` must outlive the session.
  /// `column_names` fixes the target schema (one spreadsheet column each).
  Session(const text::FullTextEngine* engine,
          const graph::SchemaGraph* schema_graph,
          std::vector<std::string> column_names,
          SearchOptions options = {});

  /// \brief Replaces the first-row search implementation. The service layer
  /// installs a caching wrapper here; by default the session calls
  /// SampleSearch() directly. The function receives the fully populated
  /// first row, the session's (immutable) options, and the session's
  /// execution context, already reset for this search.
  using SearchFn = std::function<Result<SearchResult>(
      const std::vector<std::string>& first_row, const SearchOptions&,
      ExecutionContext&)>;
  void set_search_fn(SearchFn fn) { search_fn_ = std::move(fn); }

  /// \brief The session's search options. Immutable after construction:
  /// per-request state (deadline, cancellation, budget) lives on
  /// context(), and the service's result cache keys on
  /// options().Fingerprint() under that assumption.
  const SearchOptions& options() const { return options_; }

  /// \brief The session's execution context. Callers arm per-request state
  /// (deadline, cancel token, memory budget) here before Input(); the
  /// session resets its transient state (stop latch, trace, arena) at the
  /// start of every search or pruning pass, re-using the arena's blocks.
  ExecutionContext& context() { return context_; }
  const ExecutionContext& context() const { return context_; }

  /// \brief Input(i, j, c): sets the spreadsheet cell at `row`, `col` and
  /// reacts per the interaction model. Empty `value` clears a cell (ignored
  /// by the model, Section 3). Fails on out-of-range columns or when
  /// editing the first row after it was already searched (re-entry is
  /// supported by Reset()).
  Status Input(size_t row, size_t col, std::string value);

  /// \brief Renames a target column (spreadsheet header edit).
  Status RenameColumn(size_t col, std::string name);

  /// \brief Clears all cells and candidates, keeping the target schema.
  void Reset();

  /// \brief Irrelevant-sample protection (the paper's §7 future work: "warn
  /// the user about irrelevant [data]" that "will invalidate previously
  /// generated correct mappings"). When enabled, a below-first-row sample
  /// that would prune away *every* candidate is rejected: the cell is
  /// cleared, the previous candidates are restored, and
  /// last_input_rejected() reports the event. Off by default (the paper's
  /// §5 behaviour).
  void set_reject_irrelevant_samples(bool enabled) {
    reject_irrelevant_ = enabled;
  }
  bool reject_irrelevant_samples() const { return reject_irrelevant_; }
  /// \brief True iff the most recent Input() was rejected as irrelevant.
  bool last_input_rejected() const { return last_input_rejected_; }

  /// \brief Suggests target rows whose confirmation would prune the
  /// current candidate set (§7's "automatically suggest relevant data");
  /// see core/suggest.h. Empty before the first search or after
  /// convergence. Runs on the session's context (reset first), so the
  /// armed deadline/cancel token applies and the evaluation probes land in
  /// context().trace() — hence non-const.
  Result<std::vector<RowSuggestion>> SuggestRows(size_t limit = 5);

  SessionState state() const { return state_; }
  bool converged() const { return state_ == SessionState::kConverged; }

  size_t num_columns() const { return column_names_.size(); }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  /// \brief The cell's value; out-of-range coordinates read as an (empty)
  /// never-written cell rather than faulting.
  const std::string& cell(size_t row, size_t col) const;
  size_t num_rows() const { return grid_.size(); }

  /// \brief Current candidate mappings, best first.
  const std::vector<CandidateMapping>& candidates() const {
    return candidates_;
  }
  /// \brief The single remaining mapping. Before convergence (or after all
  /// candidates were pruned away) returns a default-constructed empty
  /// candidate (score 0, support 0) instead of aborting, so service
  /// handlers can probe it without pre-checking converged().
  const CandidateMapping& best() const;

  /// \brief Stats of the initial sample search (valid after the first row
  /// completes).
  const SearchStats& search_stats() const { return search_stats_; }
  /// \brief Wall-clock of the most recent search (ms).
  double last_search_ms() const { return last_search_ms_; }
  /// \brief Wall-clock of the most recent pruning pass (ms).
  double last_prune_ms() const { return last_prune_ms_; }

  /// \brief Total number of non-empty cells entered so far (the "number of
  /// samples" metric of Table 1 / Figure 12).
  size_t num_samples() const;

 private:
  Status RunSearch();
  Status RunPruning(size_t row, size_t col, const std::string& value);
  void UpdateState();

  const text::FullTextEngine* engine_;
  const graph::SchemaGraph* schema_graph_;
  std::vector<std::string> column_names_;
  SearchOptions options_;
  ExecutionContext context_;
  SearchFn search_fn_;

  std::vector<std::vector<std::string>> grid_;
  bool reject_irrelevant_ = false;
  bool last_input_rejected_ = false;
  bool searched_ = false;
  SessionState state_ = SessionState::kAwaitingFirstRow;
  std::vector<CandidateMapping> candidates_;
  SearchStats search_stats_;
  double last_search_ms_ = 0.0;
  double last_prune_ms_ = 0.0;
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_SESSION_H_
