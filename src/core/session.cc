#include "core/session.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/pruning.h"

namespace mweaver::core {

namespace {
const std::string kEmptyCell;
}  // namespace

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kAwaitingFirstRow:
      return "awaiting-first-row";
    case SessionState::kRefining:
      return "refining";
    case SessionState::kConverged:
      return "converged";
    case SessionState::kNoMapping:
      return "no-mapping";
  }
  return "?";
}

Session::Session(const text::FullTextEngine* engine,
                 const graph::SchemaGraph* schema_graph,
                 std::vector<std::string> column_names, SearchOptions options)
    : engine_(engine),
      schema_graph_(schema_graph),
      column_names_(std::move(column_names)),
      options_(options) {
  MW_CHECK(engine != nullptr);
  MW_CHECK(schema_graph != nullptr);
  MW_CHECK(!column_names_.empty());
}

const std::string& Session::cell(size_t row, size_t col) const {
  if (row >= grid_.size() || col >= grid_[row].size()) return kEmptyCell;
  return grid_[row][col];
}

const CandidateMapping& Session::best() const {
  static const CandidateMapping kNoMapping;
  if (candidates_.empty()) return kNoMapping;
  return candidates_.front();
}

size_t Session::num_samples() const {
  size_t count = 0;
  for (const auto& row : grid_) {
    for (const auto& cell : row) {
      if (!cell.empty()) ++count;
    }
  }
  return count;
}

Status Session::Input(size_t row, size_t col, std::string value) {
  if (col >= column_names_.size()) {
    return Status::OutOfRange(
        StrFormat("column %zu out of range (target has %zu columns)", col,
                  column_names_.size()));
  }
  if (row == 0 && searched_) {
    return Status::FailedPrecondition(
        "the first row is fixed once sample search has run; call Reset() to "
        "start over");
  }
  if (row >= grid_.size()) {
    grid_.resize(row + 1, std::vector<std::string>(column_names_.size()));
  }
  grid_[row][col] = value;
  if (value.empty()) return Status::OK();  // cleared cells carry no signal

  if (row == 0) {
    // Search fires once the first row is fully populated (Section 3).
    for (const std::string& cell : grid_[0]) {
      if (cell.empty()) return Status::OK();
    }
    return RunSearch();
  }
  if (!searched_) {
    return Status::FailedPrecondition(
        "fill the first row completely before providing further samples");
  }
  return RunPruning(row, col, value);
}

Status Session::RenameColumn(size_t col, std::string name) {
  if (col >= column_names_.size()) {
    return Status::OutOfRange(StrFormat("column %zu out of range", col));
  }
  column_names_[col] = std::move(name);
  return Status::OK();
}

void Session::Reset() {
  grid_.clear();
  candidates_.clear();
  searched_ = false;
  // A rejection from before the Reset() is not an event of the new
  // interaction; leaving it set reports a phantom rejection.
  last_input_rejected_ = false;
  state_ = SessionState::kAwaitingFirstRow;
  search_stats_ = SearchStats{};
  last_search_ms_ = 0.0;
  last_prune_ms_ = 0.0;
}

Result<std::vector<RowSuggestion>> Session::SuggestRows(size_t limit) {
  SuggestOptions options;
  options.limit = limit;
  // Suggestion queries run under the same per-request controls as search
  // and pruning: the armed deadline/cancel token applies and the
  // evaluation probes are visible in context().trace().
  context_.ResetForSearch();
  query::PathExecutor executor(engine_);
  return SuggestDiscriminatingRows(executor, candidates_, options, &context_);
}

Status Session::RunSearch() {
  Stopwatch watch;
  context_.ResetForSearch();
  MW_ASSIGN_OR_RETURN(
      SearchResult result,
      search_fn_ ? search_fn_(grid_[0], options_, context_)
                 : SampleSearch(*engine_, *schema_graph_, grid_[0], options_,
                                context_));
  searched_ = true;
  candidates_ = std::move(result.candidates);
  search_stats_ = result.stats;
  last_search_ms_ = watch.ElapsedMillis();
  UpdateState();
  return Status::OK();
}

Status Session::RunPruning(size_t row, size_t col, const std::string& value) {
  Stopwatch watch;
  context_.ResetForSearch();
  last_input_rejected_ = false;
  // Snapshot so an irrelevant sample can be rolled back.
  std::vector<CandidateMapping> snapshot;
  if (reject_irrelevant_) snapshot = candidates_;

  ExecutionContext::StageSpan span = context_.TraceStage(SearchStage::kPrune);
  span.AddItems(candidates_.size());

  // Pruning by attribute always applies to the newly typed sample.
  PruneByAttribute(*engine_, static_cast<int>(col), value, &candidates_,
                   &context_, options_.num_threads);

  // Pruning by mapping structure applies when the row carries more than one
  // sample (Section 5).
  query::SampleMap row_samples;
  for (size_t c = 0; c < grid_[row].size(); ++c) {
    if (!grid_[row][c].empty()) {
      row_samples.emplace(static_cast<int>(c), grid_[row][c]);
    }
  }
  if (!candidates_.empty() && row_samples.size() >= 2) {
    query::PathExecutor executor(engine_);
    MW_RETURN_NOT_OK(PruneByStructure(executor, row_samples, &candidates_,
                                      nullptr, &context_,
                                      options_.num_threads));
  }
  span.Finish();

  if (reject_irrelevant_ && candidates_.empty() && !snapshot.empty()) {
    // The sample contradicts every remaining candidate: warn instead of
    // invalidating previously correct mappings (§7).
    candidates_ = std::move(snapshot);
    grid_[row][col].clear();
    last_input_rejected_ = true;
  }
  last_prune_ms_ = watch.ElapsedMillis();
  UpdateState();
  return Status::OK();
}

void Session::UpdateState() {
  if (!searched_) {
    state_ = SessionState::kAwaitingFirstRow;
  } else if (candidates_.empty()) {
    state_ = SessionState::kNoMapping;
  } else if (candidates_.size() == 1) {
    state_ = SessionState::kConverged;
  } else {
    state_ = SessionState::kRefining;
  }
}

}  // namespace mweaver::core
