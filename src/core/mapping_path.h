// Relation paths and mapping paths (Definitions 3 and 4).
//
// A relation path is an undirected tree whose vertices are relation
// *occurrences* (the same relation may appear several times) and whose edges
// are foreign-key joins. A mapping path augments it with a projection map
// from target columns to attributes of path vertices; it is equivalent to a
// project-join schema mapping and can be rendered as SQL (query/sql.h) or
// executed (query/executor.h).
//
// Representation: a rooted tree (vertex 0 is the root; every other vertex
// stores its parent and the FK edge to it), which keeps weaving and
// canonical encoding simple. Logical identity is *unrooted*: Canonical()
// returns a rooting-independent encoding used for equality and dedup.
#ifndef MWEAVER_CORE_MAPPING_PATH_H_
#define MWEAVER_CORE_MAPPING_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/schema.h"

namespace mweaver::core {

/// Index of a vertex within a path.
using VertexId = int32_t;
inline constexpr VertexId kNoVertex = -1;

/// \brief One vertex of a relation path: a relation occurrence plus the FK
/// edge to its parent (root: parent == kNoVertex, fk == -1).
struct PathVertex {
  storage::RelationId relation = storage::kInvalidRelation;
  VertexId parent = kNoVertex;
  storage::ForeignKeyId fk_to_parent = -1;
  /// True iff this vertex is on the FK's referencing ("from") side of the
  /// join to its parent. Disambiguates self-referencing FKs.
  bool is_from_side = false;
};

/// \brief One projection map entry: target column j drawn from
/// `attribute` of path vertex `vertex` (pm(j) = attribute, Definition 4).
struct Projection {
  int target_column = -1;
  VertexId vertex = kNoVertex;
  storage::AttributeId attribute = storage::kInvalidAttribute;

  bool operator==(const Projection& other) const = default;
};

/// \brief A mapping path: relation path + projection map.
class MappingPath {
 public:
  MappingPath() = default;

  /// \brief Creates a single-vertex path over `relation`.
  static MappingPath SingleVertex(storage::RelationId relation);

  /// \brief Appends a vertex joined to `parent` via `fk`; `is_from_side`
  /// tells which side of the FK the new vertex occupies. Returns its id.
  VertexId AddVertex(storage::RelationId relation, VertexId parent,
                     storage::ForeignKeyId fk, bool is_from_side);

  /// \brief Adds pm(target_column) = vertex.attribute. A target column may
  /// appear at most once (checked).
  void AddProjection(int target_column, VertexId vertex,
                     storage::AttributeId attribute);

  const std::vector<PathVertex>& vertices() const { return vertices_; }
  const PathVertex& vertex(VertexId v) const {
    return vertices_[static_cast<size_t>(v)];
  }
  size_t num_vertices() const { return vertices_.size(); }

  /// Projections sorted by target column.
  const std::vector<Projection>& projections() const { return projections_; }
  /// \brief The projection for `target_column`, or nullptr.
  const Projection* FindProjection(int target_column) const;
  /// \brief Sorted target columns covered by this path (the set N).
  std::vector<int> TargetColumns() const;

  /// \brief Size of the mapping path = |N| (Definition 4 discussion).
  size_t size() const { return projections_.size(); }
  /// \brief Number of joins (edges) in the relation path.
  size_t num_joins() const { return vertices_.empty() ? 0
                                                      : vertices_.size() - 1; }

  /// \brief Children of `v` in the rooted representation.
  std::vector<VertexId> Children(VertexId v) const;
  /// \brief Degree of `v` in the unrooted tree.
  size_t Degree(VertexId v) const;
  /// \brief True iff every degree-1 vertex carries at least one projection
  /// (the terminal-vertex condition of Definition 4). A single-vertex path
  /// requires that vertex to be projected.
  bool TerminalsProjected() const;

  /// \brief Rooting-independent encoding; equal encodings iff the unrooted
  /// labeled trees (with projections) are isomorphic.
  std::string Canonical() const;

  bool operator==(const MappingPath& other) const {
    return Canonical() == other.Canonical();
  }

  /// \brief Human-readable description, e.g.
  /// "movie[1:title]-(direct)-person[2:name]".
  std::string ToString(const storage::Database& db) const;

 private:
  std::vector<PathVertex> vertices_;
  std::vector<Projection> projections_;
};

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_MAPPING_PATH_H_
