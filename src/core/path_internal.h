// Implementation helpers shared by MappingPath and TuplePath: undirected
// adjacency over the rooted representation and rooting-independent tree
// encoding. Internal to mweaver_core; not part of the public API.
#ifndef MWEAVER_CORE_PATH_INTERNAL_H_
#define MWEAVER_CORE_PATH_INTERNAL_H_

#include <span>
#include <string>
#include <vector>

#include "core/mapping_path.h"

namespace mweaver::core::internal {

/// One undirected adjacency entry derived from the rooted tree.
struct AdjEdge {
  VertexId neighbor;
  storage::ForeignKeyId fk;
  /// Whether `neighbor` occupies the FK's referencing ("from") side.
  bool neighbor_is_from_side;
};

/// \brief Undirected adjacency lists of a rooted path-vertex array. Spans
/// so std::vector (MappingPath) storage works.
std::vector<std::vector<AdjEdge>> BuildAdjacency(
    std::span<const PathVertex> vertices);

/// \brief SoA overload over TuplePath's parallel vertex lanes (parent, fk,
/// orientation); identical output to the AoS overload.
std::vector<std::vector<AdjEdge>> BuildAdjacency(
    std::span<const VertexId> parents,
    std::span<const storage::ForeignKeyId> fks,
    std::span<const unsigned char> from_side);

/// \brief AHU-style encoding of the subtree of `v` entered from `parent`
/// (pass kNoVertex for the whole tree), given one label per vertex.
std::string EncodeFrom(const std::vector<std::vector<AdjEdge>>& adj,
                       const std::vector<std::string>& labels, VertexId v,
                       VertexId parent);

/// \brief Minimum of EncodeFrom over all rootings: canonical form of the
/// unrooted labeled tree.
std::string CanonicalEncoding(std::span<const PathVertex> vertices,
                              const std::vector<std::string>& labels);

/// \brief SoA overload of CanonicalEncoding (see BuildAdjacency).
std::string CanonicalEncoding(std::span<const VertexId> parents,
                              std::span<const storage::ForeignKeyId> fks,
                              std::span<const unsigned char> from_side,
                              const std::vector<std::string>& labels);

/// \brief Vertices on the unique simple path from `from` to `to` inclusive.
std::vector<VertexId> SimplePath(const std::vector<std::vector<AdjEdge>>& adj,
                                 VertexId from, VertexId to);

}  // namespace mweaver::core::internal

#endif  // MWEAVER_CORE_PATH_INTERNAL_H_
