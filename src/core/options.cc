#include "core/options.h"

#include "common/string_util.h"

namespace mweaver::core {

std::string SearchOptions::Fingerprint() const {
  // Every result-affecting field, in declaration order. num_threads is
  // excluded on purpose: see the header comment.
  return StrFormat("opt1;pmnj=%d;w=%.6f/%.6f;caps=%zu/%zu;keep=%zu", pmnj,
                   matching_weight, complexity_weight,
                   max_tuple_paths_per_mapping, max_total_tuple_paths,
                   retained_tuple_paths_per_mapping);
}

}  // namespace mweaver::core
