// Complete tuple-path construction (Algorithm 5): bottom-up weaving of
// pairwise tuple paths into complete ones, entirely in memory.
//
// Level n holds every distinct tuple path covering n target columns
// (n = 2..m). Each level-(n+1) path is obtained by weaving a pairwise tuple
// path sharing exactly one projection key onto a level-n base. Duplicates
// arising from different weave orders are removed via canonical encodings.
#ifndef MWEAVER_CORE_WEAVER_H_
#define MWEAVER_CORE_WEAVER_H_

#include <vector>

#include "core/execution_context.h"
#include "core/options.h"
#include "core/pairwise.h"
#include "core/tuple_path.h"

namespace mweaver::core {

/// \brief Counters from the weave (Figure 13 / Table 4 instrumentation).
struct WeaveStats {
  /// tuple_paths_per_level[n] = number of distinct tuple paths of size n
  /// (index 0 and 1 unused; index 2 = pairwise inputs that survived).
  std::vector<size_t> tuple_paths_per_level;
  /// Total distinct tuple paths processed across levels 2..m ("# TP Woven").
  size_t total_tuple_paths = 0;
  /// Weave invocations attempted / succeeded (pre-dedup).
  size_t weave_attempts = 0;
  size_t weave_successes = 0;
  /// True when max_total_tuple_paths or the deadline stopped the
  /// construction early.
  bool truncated = false;
  /// The early stop was the deadline / cancellation token.
  bool deadline_expired = false;
};

/// \brief Runs Algorithm 5: weaves PTPM entries up to complete size
/// `num_columns`, returning the complete tuple paths (level m).
///
/// With num_columns == 2 the complete paths are the (deduplicated) pairwise
/// paths themselves.
///
/// Node storage for every intermediate and returned path lives on
/// `ctx.arena()` — the weave is the allocation hot path, so the bump
/// allocator replaces millions of small heap allocations with pointer
/// increments. Returned paths are only valid until the context's next
/// ResetForSearch(); ranking detaches the retained examples by plain copy.
/// The deadline/cancel token is polled once per base path, and
/// ctx.OverMemoryBudget() truncates the weave alongside
/// options.max_total_tuple_paths.
std::vector<TuplePath> GenerateCompleteTuplePaths(const PairwiseTupleMap& ptpm,
                                                  int num_columns,
                                                  const SearchOptions& options,
                                                  ExecutionContext& ctx,
                                                  WeaveStats* stats);

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_WEAVER_H_
