#include "core/suggest.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace mweaver::core {

Result<std::vector<RowSuggestion>> SuggestDiscriminatingRows(
    const query::PathExecutor& executor,
    const std::vector<CandidateMapping>& candidates,
    const SuggestOptions& options, ExecutionContext* ctx) {
  std::vector<RowSuggestion> suggestions;
  if (candidates.size() < 2) return suggestions;

  // Materialize (a bounded sample of) each candidate's target instance and
  // count per-row support. A row produced by candidate mappings it was not
  // sampled from may be undercounted; undercounting only makes a
  // suggestion look *more* discriminating than it is, never silently
  // un-discriminating, and the Session re-verifies by executing the typed
  // samples anyway.
  std::map<std::vector<std::string>, std::set<size_t>> support;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (ctx != nullptr && ctx->ShouldStop()) break;
    MW_ASSIGN_OR_RETURN(
        std::vector<std::vector<std::string>> rows,
        executor.EvaluateTarget(candidates[c].mapping,
                                options.rows_per_candidate, ctx));
    for (std::vector<std::string>& row : rows) {
      support[std::move(row)].insert(c);
    }
  }

  const size_t total = candidates.size();
  for (auto& [row, supporters] : support) {
    if (supporters.size() == total) continue;  // unanimous: no signal
    RowSuggestion suggestion;
    suggestion.row = row;
    suggestion.supporting_candidates = supporters.size();
    suggestion.total_candidates = total;
    suggestions.push_back(std::move(suggestion));
  }

  // Best first: support closest to half the candidates (maximal expected
  // pruning whichever way the user's knowledge falls), ties broken by more
  // pruning, then lexicographically for determinism.
  const double half = static_cast<double>(total) / 2.0;
  std::sort(suggestions.begin(), suggestions.end(),
            [&](const RowSuggestion& a, const RowSuggestion& b) {
              const double da = std::fabs(
                  static_cast<double>(a.supporting_candidates) - half);
              const double db = std::fabs(
                  static_cast<double>(b.supporting_candidates) - half);
              if (da != db) return da < db;
              if (a.supporting_candidates != b.supporting_candidates) {
                return a.supporting_candidates < b.supporting_candidates;
              }
              return a.row < b.row;
            });
  if (suggestions.size() > options.limit) {
    suggestions.resize(options.limit);
  }
  return suggestions;
}

}  // namespace mweaver::core
