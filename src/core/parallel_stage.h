// ParallelStageFor: the bridge between the TPW pipeline's per-request
// ExecutionContext and the worker-identified ParallelFor. One call runs a
// pipeline stage's per-item work over min(num_threads, n) workers, handing
// each worker its own child context view (shared deadline/cancel/stop
// latch, private counters) and folding the children back into the parent
// in fixed worker order once the region's barrier passes — so the merged
// counters, like the per-index results the callers write, are identical
// for every thread count.
#ifndef MWEAVER_CORE_PARALLEL_STAGE_H_
#define MWEAVER_CORE_PARALLEL_STAGE_H_

#include <cstddef>
#include <functional>

#include "core/execution_context.h"

namespace mweaver::core {

/// \brief Invokes `fn(ctx, i)` for every i in [0, n) on up to `num_threads`
/// workers, where `ctx` is the worker's own context view. The serial path
/// (num_threads <= 1, n <= 1, or `parent == nullptr`) calls `fn(parent, i)`
/// inline on the caller — byte-for-byte today's single-threaded behavior.
/// The parallel path forks one child view per worker, runs the loop, merges
/// every child back into `parent` in worker order, and records the fan-out
/// on `stage`'s trace. Blocks until all invocations finish. Returns the
/// number of worker contexts used (1 on the serial path, 0 for n == 0).
///
/// `fn` must not touch `parent` directly on the parallel path (poll and
/// record through the context it is handed), and results must be written to
/// per-index slots so the output order never depends on scheduling.
size_t ParallelStageFor(ExecutionContext* parent, SearchStage stage, size_t n,
                        size_t num_threads,
                        const std::function<void(ExecutionContext*, size_t)>& fn);

}  // namespace mweaver::core

#endif  // MWEAVER_CORE_PARALLEL_STAGE_H_
