#include "core/sample_search.h"

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace mweaver::core {

namespace {

// Copies the per-stage trace into the stats, filling both the structured
// trace and the legacy flat *_ms fields.
void SnapshotTrace(const ExecutionContext& ctx, SearchStats* stats) {
  stats->trace = ctx.trace();
  stats->locate_ms = stats->trace.stage(SearchStage::kLocate).wall_ms;
  stats->pairwise_gen_ms =
      stats->trace.stage(SearchStage::kPairwiseGen).wall_ms;
  stats->pairwise_exec_ms =
      stats->trace.stage(SearchStage::kPairwiseExec).wall_ms;
  stats->weave_ms = stats->trace.stage(SearchStage::kWeave).wall_ms;
  stats->rank_ms = stats->trace.stage(SearchStage::kRank).wall_ms;
}

}  // namespace

Result<SearchResult> SampleSearch(const text::FullTextEngine& engine,
                                  const graph::SchemaGraph& schema_graph,
                                  const std::vector<std::string>& sample_tuple,
                                  const SearchOptions& options) {
  ExecutionContext ctx;
  return SampleSearch(engine, schema_graph, sample_tuple, options, ctx);
}

Result<SearchResult> SampleSearch(const text::FullTextEngine& engine,
                                  const graph::SchemaGraph& schema_graph,
                                  const std::vector<std::string>& sample_tuple,
                                  const SearchOptions& options,
                                  ExecutionContext& ctx) {
  if (sample_tuple.empty()) {
    return Status::InvalidArgument("sample tuple must have at least 1 column");
  }
  for (size_t i = 0; i < sample_tuple.size(); ++i) {
    if (sample_tuple[i].empty()) {
      return Status::InvalidArgument(StrFormat(
          "sample search requires a fully populated first row; column %zu "
          "is empty",
          i));
    }
  }

  SearchResult result;
  Stopwatch total;

  // Step 1: find sample occurrences (Algorithm 1).
  LocationMap locations;
  {
    ExecutionContext::StageSpan span = ctx.TraceStage(SearchStage::kLocate);
    locations =
        LocationMap::Build(engine, sample_tuple, &ctx, options.num_threads);
    span.AddItems(locations.TotalOccurrences());
  }
  result.stats.num_occurrences = locations.TotalOccurrences();

  const int m = static_cast<int>(sample_tuple.size());
  if (m == 1) {
    // Degenerate case: every attribute containing the sample yields a
    // single-vertex mapping, supported by its matching rows. Paths live on
    // the arena like woven ones; the deadline is polled per row so even
    // m == 1 searches observe a pre-expired deadline.
    std::vector<TuplePath> paths;
    {
      ExecutionContext::StageSpan span = ctx.TraceStage(SearchStage::kWeave);
      for (const text::Occurrence& occ : locations.column(0).occurrences) {
        if (ctx.ShouldStop()) break;
        for (storage::RowId row : *occ.rows) {
          if (ctx.ShouldStop()) break;
          TuplePath tp = TuplePath::SingleVertex(occ.attr.relation, row,
                                                 ctx.resource());
          tp.AddProjection(0, 0, occ.attr.attribute,
                           engine.RowMatchScore(occ.attr, row,
                                                sample_tuple[0]));
          paths.push_back(std::move(tp));
        }
      }
      span.AddItems(paths.size());
    }
    result.stats.num_complete_tuple_paths = paths.size();
    {
      ExecutionContext::StageSpan span = ctx.TraceStage(SearchStage::kRank);
      result.candidates = RankMappings(paths, options, &ctx);
      span.AddItems(result.candidates.size());
    }
    result.stats.num_valid_mappings = result.candidates.size();
    result.stats.deadline_expired = ctx.stop_requested();
    result.stats.truncated = result.stats.deadline_expired;
    SnapshotTrace(ctx, &result.stats);
    result.stats.total_ms = total.ElapsedMillis();
    return result;
  }

  // Step 2: pairwise mapping paths (Algorithms 2-4).
  PairwiseMappingMap pmpm;
  {
    ExecutionContext::StageSpan span =
        ctx.TraceStage(SearchStage::kPairwiseGen);
    pmpm = GeneratePairwiseMappingPaths(schema_graph, locations, options, ctx);
    for (const auto& [key, mappings] : pmpm) span.AddItems(mappings.size());
  }

  // Step 3: pairwise tuple paths via approximate search queries.
  query::PathExecutor executor(&engine);
  PairwiseTupleMap ptpm;
  {
    ExecutionContext::StageSpan span =
        ctx.TraceStage(SearchStage::kPairwiseExec);
    MW_ASSIGN_OR_RETURN(ptpm, CreatePairwiseTuplePaths(
                                  executor, pmpm, locations, options, ctx,
                                  &result.stats.pairwise));
    span.AddItems(result.stats.pairwise.num_tuple_paths);
  }

  // Step 4: weave complete tuple paths (Algorithm 5). Runs even when the
  // deadline has expired mid-pairwise: the surviving pairwise paths are
  // themselves deadline-checked, and weaving what exists yields the
  // partial candidates the caller is owed. The woven paths live on
  // ctx.arena() until the next ResetForSearch().
  std::vector<TuplePath> complete;
  {
    ExecutionContext::StageSpan span = ctx.TraceStage(SearchStage::kWeave);
    complete = GenerateCompleteTuplePaths(ptpm, m, options, ctx,
                                          &result.stats.weave);
    span.AddItems(result.stats.weave.total_tuple_paths);
  }
  result.stats.num_complete_tuple_paths = complete.size();

  // Step 5: extract and rank mappings. Retained example tuple paths are
  // copied off the arena here (std::pmr copy semantics).
  {
    ExecutionContext::StageSpan span = ctx.TraceStage(SearchStage::kRank);
    result.candidates = RankMappings(complete, options, &ctx);
    span.AddItems(result.candidates.size());
  }
  result.stats.num_valid_mappings = result.candidates.size();
  result.stats.truncated = result.stats.pairwise.truncated ||
                           result.stats.weave.truncated ||
                           ctx.stop_requested();
  result.stats.deadline_expired = result.stats.pairwise.deadline_expired ||
                                  result.stats.weave.deadline_expired ||
                                  ctx.stop_requested();
  SnapshotTrace(ctx, &result.stats);
  result.stats.total_ms = total.ElapsedMillis();
  return result;
}

}  // namespace mweaver::core
