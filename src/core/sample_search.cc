#include "core/sample_search.h"

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace mweaver::core {

Result<SearchResult> SampleSearch(const text::FullTextEngine& engine,
                                  const graph::SchemaGraph& schema_graph,
                                  const std::vector<std::string>& sample_tuple,
                                  const SearchOptions& options) {
  if (sample_tuple.empty()) {
    return Status::InvalidArgument("sample tuple must have at least 1 column");
  }
  for (size_t i = 0; i < sample_tuple.size(); ++i) {
    if (sample_tuple[i].empty()) {
      return Status::InvalidArgument(StrFormat(
          "sample search requires a fully populated first row; column %zu "
          "is empty",
          i));
    }
  }

  SearchResult result;
  Stopwatch total;
  Stopwatch phase;

  // Step 1: find sample occurrences (Algorithm 1).
  const LocationMap locations = LocationMap::Build(engine, sample_tuple);
  result.stats.num_occurrences = locations.TotalOccurrences();
  result.stats.locate_ms = phase.ElapsedMillis();

  const int m = static_cast<int>(sample_tuple.size());
  if (m == 1) {
    // Degenerate case: every attribute containing the sample yields a
    // single-vertex mapping, supported by its matching rows.
    std::vector<TuplePath> paths;
    for (const text::Occurrence& occ : locations.column(0).occurrences) {
      for (storage::RowId row : occ.rows) {
        TuplePath tp = TuplePath::SingleVertex(occ.attr.relation, row);
        tp.AddProjection(0, 0, occ.attr.attribute,
                         engine.RowMatchScore(occ.attr, row,
                                              sample_tuple[0]));
        paths.push_back(std::move(tp));
      }
    }
    result.stats.num_complete_tuple_paths = paths.size();
    phase.Restart();
    result.candidates = RankMappings(paths, options);
    result.stats.rank_ms = phase.ElapsedMillis();
    result.stats.num_valid_mappings = result.candidates.size();
    result.stats.total_ms = total.ElapsedMillis();
    return result;
  }

  // Deadline support: every stage boundary (and the stages' own loops)
  // polls the deadline, so an expired search returns promptly with
  // whatever was built so far instead of stalling its worker thread.
  const auto expired = [&]() {
    if (!options.ExpiredOrCancelled()) return false;
    result.stats.deadline_expired = true;
    result.stats.truncated = true;
    return true;
  };
  if (expired()) {
    result.stats.total_ms = total.ElapsedMillis();
    return result;
  }

  // Step 2: pairwise mapping paths (Algorithms 2-4).
  phase.Restart();
  const PairwiseMappingMap pmpm =
      GeneratePairwiseMappingPaths(schema_graph, locations, options.pmnj);
  result.stats.pairwise_gen_ms = phase.ElapsedMillis();

  // Step 3: pairwise tuple paths via approximate search queries.
  phase.Restart();
  query::PathExecutor executor(&engine);
  MW_ASSIGN_OR_RETURN(
      const PairwiseTupleMap ptpm,
      CreatePairwiseTuplePaths(executor, pmpm, locations, options,
                               &result.stats.pairwise));
  result.stats.pairwise_exec_ms = phase.ElapsedMillis();

  // Step 4: weave complete tuple paths (Algorithm 5). Runs even when the
  // deadline has expired mid-pairwise: the surviving pairwise paths are
  // themselves deadline-checked, and weaving what exists yields the
  // partial candidates the caller is owed.
  phase.Restart();
  const std::vector<TuplePath> complete =
      GenerateCompleteTuplePaths(ptpm, m, options, &result.stats.weave);
  result.stats.num_complete_tuple_paths = complete.size();
  result.stats.weave_ms = phase.ElapsedMillis();

  // Step 5: extract and rank mappings.
  phase.Restart();
  result.candidates = RankMappings(complete, options);
  result.stats.rank_ms = phase.ElapsedMillis();
  result.stats.num_valid_mappings = result.candidates.size();
  result.stats.truncated = result.stats.truncated ||
                           result.stats.pairwise.truncated ||
                           result.stats.pairwise.deadline_expired ||
                           result.stats.weave.truncated;
  result.stats.deadline_expired = result.stats.deadline_expired ||
                                  result.stats.pairwise.deadline_expired ||
                                  result.stats.weave.deadline_expired;
  result.stats.total_ms = total.ElapsedMillis();
  return result;
}

}  // namespace mweaver::core
