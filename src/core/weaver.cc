#include "core/weaver.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/failpoint.h"
#include "common/logging.h"

namespace mweaver::core {

std::vector<TuplePath> GenerateCompleteTuplePaths(const PairwiseTupleMap& ptpm,
                                                  int num_columns,
                                                  const SearchOptions& options,
                                                  ExecutionContext& ctx,
                                                  WeaveStats* stats) {
  MW_CHECK_GE(num_columns, 2);
  const size_t m = static_cast<size_t>(num_columns);
  WeaveStats local;
  local.tuple_paths_per_level.assign(m + 1, 0);
  std::pmr::memory_resource* const arena = ctx.resource();

  // Level 2: all pairwise tuple paths, deduplicated and cloned onto the
  // arena so every level (and the returned paths) shares one allocator.
  std::vector<TuplePath> level;
  {
    std::set<std::string> seen;
    for (const auto& [key, paths] : ptpm) {
      for (const TuplePath& tp : paths) {
        if (seen.insert(tp.Canonical()).second) level.emplace_back(tp, arena);
      }
    }
  }
  local.tuple_paths_per_level[std::min<size_t>(2, m)] = level.size();
  local.total_tuple_paths = level.size();

  auto over_budget = [&]() {
    return (options.max_total_tuple_paths > 0 &&
            local.total_tuple_paths > options.max_total_tuple_paths) ||
           ctx.OverMemoryBudget();
  };

  for (size_t n = 2; n < m && !level.empty(); ++n) {
    std::vector<TuplePath> next;
    std::set<std::string> seen;
    for (const TuplePath& base : level) {
      // Chaos site: a spurious cancellation landing mid-weave, exactly as a
      // client disconnect would — the run must still surface a classified,
      // truncated result.
      if (MW_FAILPOINT_FIRE("core.weave.step") == FailAction::kCancel) {
        ctx.RequestStop();
      }
      // One stop check per base path: bases fan out into many weave
      // attempts, so this bounds the overrun without a clock read per
      // attempt (ShouldStop throttles clock reads further).
      if (ctx.ShouldStop()) {
        local.truncated = true;
        local.deadline_expired = true;
        break;
      }
      const std::vector<int> base_cols = base.TargetColumns();
      auto covers = [&](int col) {
        return std::find(base_cols.begin(), base_cols.end(), col) !=
               base_cols.end();
      };
      for (const auto& [key, pairwise_paths] : ptpm) {
        // Weavable iff the pairwise keys intersect the base's in exactly
        // one column (Algorithm 5, line 8).
        const int in_base = (covers(key.first) ? 1 : 0) +
                            (covers(key.second) ? 1 : 0);
        if (in_base != 1) continue;
        for (const TuplePath& ptp : pairwise_paths) {
          ++local.weave_attempts;
          std::optional<TuplePath> woven = TuplePath::Weave(base, ptp, arena);
          if (!woven.has_value()) continue;
          ++local.weave_successes;
          if (seen.insert(woven->Canonical()).second) {
            next.push_back(std::move(*woven));
            ++local.total_tuple_paths;
            if (over_budget()) {
              local.truncated = true;
              break;
            }
          }
        }
        if (local.truncated) break;
      }
      if (local.truncated) break;
    }
    local.tuple_paths_per_level[n + 1] = next.size();
    level = std::move(next);
    if (local.truncated) break;
  }

  if (stats != nullptr) *stats = local;
  return level;
}

}  // namespace mweaver::core
