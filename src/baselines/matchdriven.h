// A match-driven mapping tool in the Clio / IBM InfoSphere Data Architect
// mold (Figure 3 of the paper): first a matching phase proposing
// attribute-level correspondences from schema- and instance-based
// similarity, then a mapping phase enumerating the join structures that
// realize the user-confirmed correspondences.
//
// In the user study this tool is driven by a simulated user who must review
// each proposed correspondence and disambiguate the join path — the
// workflow whose cost MWeaver's sample-driven interaction avoids.
#ifndef MWEAVER_BASELINES_MATCHDRIVEN_H_
#define MWEAVER_BASELINES_MATCHDRIVEN_H_

#include <string>
#include <vector>

#include "baselines/candidate_enum.h"
#include "common/result.h"
#include "core/mapping_path.h"
#include "graph/schema_graph.h"
#include "text/fulltext_engine.h"

namespace mweaver::baselines {

/// \brief One proposed attribute-level correspondence.
struct Correspondence {
  int target_column = -1;
  text::AttributeRef attr;
  double score = 0.0;
};

struct MatchOptions {
  /// Correspondence proposals per target column.
  size_t top_k = 5;
  /// Weights of the similarity signals (see baselines/matchers.h); a
  /// weight of 0 disables the signal.
  double name_weight = 0.5;
  double instance_weight = 0.35;
  double shape_weight = 0.15;
  /// Join search depth and candidate bound for the mapping phase.
  int pmnj = 2;
  size_t max_mappings = 10000;
};

/// \brief Match-driven (Clio-style) schema mapper.
class MatchDrivenMapper {
 public:
  /// \brief `engine` and `schema_graph` must outlive the mapper.
  MatchDrivenMapper(const text::FullTextEngine* engine,
                    const graph::SchemaGraph* schema_graph,
                    MatchOptions options = {});

  /// \brief Matching phase: for each target column name (optionally with a
  /// few known instance values), the top-k source attributes ranked by
  /// combined name/instance similarity. result[i] is sorted best-first.
  std::vector<std::vector<Correspondence>> ProposeCorrespondences(
      const std::vector<std::string>& target_column_names,
      const std::vector<std::vector<std::string>>& instance_values = {}) const;

  /// \brief Mapping phase: all join structures (within PMNJ) realizing one
  /// confirmed correspondence per column, sorted by ascending join count —
  /// the tool "usually picks one mapping" (the first); the alternatives are
  /// what the user must disambiguate.
  Result<std::vector<core::MappingPath>> EnumerateMappings(
      const std::vector<Correspondence>& confirmed) const;

  /// \brief Name similarity in [0,1] between a target column name and a
  /// source attribute name (token-based edit similarity; exposed for tests).
  static double NameSimilarity(const std::string& target_name,
                               const std::string& attr_name);

 private:
  const text::FullTextEngine* engine_;
  const graph::SchemaGraph* schema_graph_;
  MatchOptions options_;
};

}  // namespace mweaver::baselines

#endif  // MWEAVER_BASELINES_MATCHDRIVEN_H_
