// Schema-level enumeration of complete candidate mapping paths — the
// "candidate network" generation of DISCOVER-style keyword search ([17] in
// the paper), which the naive baseline of Section 6.3 is built on.
//
// Enumerates exactly the mapping-path family TPW searches: complete paths
// constructible by starting from a pairwise path (<= PMNJ joins between the
// two projected attributes) and repeatedly attaching each remaining target
// column via a connection chain of <= PMNJ joins, with every structural
// merge/graft alternative explored. Unlike TPW, no instance information
// prunes the enumeration, so the candidate count explodes combinatorially —
// which is the point of the comparison.
#ifndef MWEAVER_BASELINES_CANDIDATE_ENUM_H_
#define MWEAVER_BASELINES_CANDIDATE_ENUM_H_

#include <vector>

#include "common/result.h"
#include "core/execution_context.h"
#include "core/mapping_path.h"
#include "graph/schema_graph.h"
#include "text/fulltext_engine.h"

namespace mweaver::baselines {

struct EnumOptions {
  int pmnj = 2;
  /// Abort with ResourceExhausted once this many distinct candidates exist
  /// (0 = unlimited). Emulates the paper's naive algorithm running out of
  /// memory beyond target size 4-5.
  size_t max_candidates = 0;
};

struct EnumStats {
  /// Distinct complete candidate mapping paths enumerated ("# Naive MP").
  size_t num_candidates = 0;
  /// Candidates enumerated per level (level n = n columns covered).
  std::vector<size_t> candidates_per_level;
  /// The deadline / cancellation token stopped enumeration early.
  bool deadline_expired = false;
};

/// \brief Enumerates every complete candidate mapping path where column i
/// projects one of `attrs_per_column[i]`. Returns ResourceExhausted when
/// `max_candidates` is exceeded (stats still reports the count reached).
/// When `ctx` is given, its deadline/cancel token is polled per base path;
/// a stop returns the candidates completed so far with
/// stats->deadline_expired set.
Result<std::vector<core::MappingPath>> EnumerateCandidateMappings(
    const graph::SchemaGraph& schema_graph,
    const std::vector<std::vector<text::AttributeRef>>& attrs_per_column,
    const EnumOptions& options, EnumStats* stats,
    core::ExecutionContext* ctx = nullptr);

}  // namespace mweaver::baselines

#endif  // MWEAVER_BASELINES_CANDIDATE_ENUM_H_
