#include "baselines/matchers.h"

#include "baselines/matchdriven.h"
#include "common/logging.h"

namespace mweaver::baselines {

double NameMatcher::Score(const MatchTarget& target,
                          const text::AttributeRef& attr,
                          const text::FullTextEngine& engine) const {
  const storage::Relation& rel = engine.db().relation(attr.relation);
  return MatchDrivenMapper::NameSimilarity(
      target.column_name, rel.schema().attribute(attr.attribute).name);
}

double InstanceOverlapMatcher::Score(const MatchTarget& target,
                                     const text::AttributeRef& attr,
                                     const text::FullTextEngine& engine) const {
  if (target.instances.empty()) return 0.0;
  size_t contained = 0;
  for (const std::string& value : target.instances) {
    if (!engine.MatchingRows(attr, value)->empty()) ++contained;
  }
  return static_cast<double>(contained) /
         static_cast<double>(target.instances.size());
}

double ShapeMatcher::Score(const MatchTarget& target,
                           const text::AttributeRef& attr,
                           const text::FullTextEngine& engine) const {
  if (target.instances.empty()) return 0.0;
  const storage::ColumnStats source = storage::ComputeColumnStats(
      engine.db().relation(attr.relation), attr.attribute);
  const storage::ColumnStats wanted =
      storage::ComputeValueStats(target.instances);
  return storage::ShapeSimilarity(source, wanted);
}

CompositeMatcher& CompositeMatcher::Add(
    std::unique_ptr<AttributeMatcher> matcher, double weight) {
  MW_CHECK(matcher != nullptr);
  MW_CHECK_GT(weight, 0.0);
  components_.push_back(Component{std::move(matcher), weight});
  return *this;
}

double CompositeMatcher::Score(const MatchTarget& target,
                               const text::AttributeRef& attr,
                               const text::FullTextEngine& engine) const {
  if (components_.empty()) return 0.0;
  double total = 0.0;
  double weight_total = 0.0;
  for (const Component& component : components_) {
    total += component.weight * component.matcher->Score(target, attr,
                                                         engine);
    weight_total += component.weight;
  }
  return total / weight_total;
}

CompositeMatcher CompositeMatcher::Default() {
  CompositeMatcher composite;
  composite.Add(std::make_unique<NameMatcher>(), 0.5);
  composite.Add(std::make_unique<InstanceOverlapMatcher>(), 0.35);
  composite.Add(std::make_unique<ShapeMatcher>(), 0.15);
  return composite;
}

}  // namespace mweaver::baselines
