// Pluggable attribute matchers for the match-driven (Clio/InfoSphere-style)
// baseline, in the families the paper's related work surveys (§2):
// schema-based (name similarity, cf. Cupid/COMA), instance-based (value
// overlap, cf. LSD; value-shape statistics for opaque column names, cf.
// Kang & Naughton), and weighted combinations thereof.
#ifndef MWEAVER_BASELINES_MATCHERS_H_
#define MWEAVER_BASELINES_MATCHERS_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/stats.h"
#include "text/fulltext_engine.h"

namespace mweaver::baselines {

/// \brief What a matcher sees about the target column being matched.
struct MatchTarget {
  std::string column_name;
  /// Instance values of the target column, when available (e.g. samples
  /// the user already typed).
  std::vector<std::string> instances;
};

/// \brief Scores how well one source attribute corresponds to a target
/// column. Implementations are stateless w.r.t. targets and reusable.
class AttributeMatcher {
 public:
  virtual ~AttributeMatcher() = default;

  /// \brief Similarity in [0,1] between `target` and the source attribute
  /// `attr` of `engine`'s database.
  virtual double Score(const MatchTarget& target,
                       const text::AttributeRef& attr,
                       const text::FullTextEngine& engine) const = 0;

  /// \brief Short identifier ("name", "instance", "shape", ...).
  virtual std::string id() const = 0;
};

/// \brief Schema-based: token-level name similarity (CamelCase/snake_case
/// aware). Ignores instances.
class NameMatcher : public AttributeMatcher {
 public:
  double Score(const MatchTarget& target, const text::AttributeRef& attr,
               const text::FullTextEngine& engine) const override;
  std::string id() const override { return "name"; }
};

/// \brief Instance-based: the fraction of the target's instance values that
/// the source column noisily contains. 0 when no instances are given.
class InstanceOverlapMatcher : public AttributeMatcher {
 public:
  double Score(const MatchTarget& target, const text::AttributeRef& attr,
               const text::FullTextEngine& engine) const override;
  std::string id() const override { return "instance"; }
};

/// \brief Instance-based for opaque names: compares the *shape* of the
/// target instances (length, numeric fraction, character classes) against
/// the source column's statistics. 0 when no instances are given.
class ShapeMatcher : public AttributeMatcher {
 public:
  double Score(const MatchTarget& target, const text::AttributeRef& attr,
               const text::FullTextEngine& engine) const override;
  std::string id() const override { return "shape"; }
};

/// \brief Weighted combination of matchers (the LSD/COMA pattern).
/// Weights need not sum to 1; scores are normalized by the weight total.
class CompositeMatcher : public AttributeMatcher {
 public:
  CompositeMatcher() = default;

  /// \brief Adds a component with the given weight (> 0).
  CompositeMatcher& Add(std::unique_ptr<AttributeMatcher> matcher,
                        double weight);

  double Score(const MatchTarget& target, const text::AttributeRef& attr,
               const text::FullTextEngine& engine) const override;
  std::string id() const override { return "composite"; }

  size_t num_components() const { return components_.size(); }

  /// \brief The default stack used by MatchDrivenMapper: name 0.5,
  /// instance overlap 0.35, value shape 0.15.
  static CompositeMatcher Default();

 private:
  struct Component {
    std::unique_ptr<AttributeMatcher> matcher;
    double weight;
  };
  std::vector<Component> components_;
};

}  // namespace mweaver::baselines

#endif  // MWEAVER_BASELINES_MATCHERS_H_
