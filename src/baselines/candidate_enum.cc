#include "baselines/candidate_enum.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/logging.h"
#include "core/location_map.h"
#include "core/pairwise.h"
#include "core/path_internal.h"

namespace mweaver::baselines {

namespace {

using core::ColumnPair;
using core::MappingPath;
using core::PairwiseMappingMap;
using core::Projection;
using core::VertexId;
using core::kNoVertex;
using core::internal::AdjEdge;
using core::internal::BuildAdjacency;
using core::internal::SimplePath;

// One step of an attachment chain, from the anchor toward the new column's
// projection.
struct ChainStep {
  storage::RelationId relation;
  storage::ForeignKeyId fk;
  bool is_from_side;
};

// An attachment chain: anchored at a vertex of `anchor_relation`, adding a
// projection of `end_attr` for the new column at the chain's end.
struct Chain {
  storage::RelationId anchor_relation;
  std::vector<ChainStep> steps;
  storage::AttributeId end_attr;
};

// Extracts attachment chains from a pairwise mapping path, anchored at the
// vertex projecting `anchor_col` and ending at the vertex projecting
// `new_col`.
Chain ChainFromPairwise(const MappingPath& pairwise, int anchor_col,
                        int new_col) {
  const Projection* anchor = pairwise.FindProjection(anchor_col);
  const Projection* target = pairwise.FindProjection(new_col);
  MW_CHECK(anchor != nullptr && target != nullptr);
  const auto adj = BuildAdjacency(pairwise.vertices());
  const std::vector<VertexId> order =
      SimplePath(adj, anchor->vertex, target->vertex);
  Chain chain;
  chain.anchor_relation = pairwise.vertex(anchor->vertex).relation;
  chain.end_attr = target->attribute;
  for (size_t i = 1; i < order.size(); ++i) {
    // Edge between order[i-1] and order[i], seen from order[i].
    for (const AdjEdge& e : adj[static_cast<size_t>(order[i - 1])]) {
      if (e.neighbor == order[i]) {
        chain.steps.push_back(ChainStep{pairwise.vertex(order[i]).relation,
                                        e.fk, e.neighbor_is_from_side});
        break;
      }
    }
  }
  return chain;
}

// Enumerates every structural way to attach `chain` (projecting `new_col`)
// to `base` at the vertex projecting `anchor_col`: each prefix of the chain
// may merge with matching base edges (all branchings explored), the suffix
// is grafted.
void AttachAllWays(const MappingPath& base, int anchor_col, int new_col,
                   const Chain& chain, std::vector<MappingPath>* out) {
  const Projection* anchor_proj = base.FindProjection(anchor_col);
  MW_CHECK(anchor_proj != nullptr);
  if (base.vertex(anchor_proj->vertex).relation != chain.anchor_relation) {
    return;
  }

  // Recursive exploration; `path` is copied per branch (paths are tiny).
  std::function<void(MappingPath, VertexId, size_t, std::vector<VertexId>)>
      rec = [&](MappingPath path, VertexId cur, size_t step,
                std::vector<VertexId> visited) {
        if (step == chain.steps.size()) {
          path.AddProjection(new_col, cur, chain.end_attr);
          out->push_back(std::move(path));
          return;
        }
        const ChainStep& cs = chain.steps[step];
        // Merge alternatives: any unvisited neighbor matching the step's
        // (relation, fk, orientation).
        const auto adj = BuildAdjacency(path.vertices());
        for (const AdjEdge& e : adj[static_cast<size_t>(cur)]) {
          if (std::find(visited.begin(), visited.end(), e.neighbor) !=
              visited.end()) {
            continue;
          }
          if (e.fk != cs.fk || e.neighbor_is_from_side != cs.is_from_side) {
            continue;
          }
          if (path.vertex(e.neighbor).relation != cs.relation) continue;
          std::vector<VertexId> next_visited = visited;
          next_visited.push_back(e.neighbor);
          rec(path, e.neighbor, step + 1, std::move(next_visited));
        }
        // Graft alternative: a fresh vertex (subsequent steps then graft
        // too, since the new vertex has no other neighbors).
        MappingPath grafted = path;
        const VertexId nv =
            grafted.AddVertex(cs.relation, cur, cs.fk, cs.is_from_side);
        std::vector<VertexId> next_visited = visited;
        next_visited.push_back(nv);
        rec(std::move(grafted), nv, step + 1, std::move(next_visited));
      };
  rec(base, anchor_proj->vertex, 0, {anchor_proj->vertex});
}

}  // namespace

Result<std::vector<core::MappingPath>> EnumerateCandidateMappings(
    const graph::SchemaGraph& schema_graph,
    const std::vector<std::vector<text::AttributeRef>>& attrs_per_column,
    const EnumOptions& options, EnumStats* stats,
    core::ExecutionContext* ctx) {
  // The pairwise generator below requires a context; callers without one
  // get a local context with no deadline.
  core::ExecutionContext local_ctx;
  core::ExecutionContext& exec_ctx = ctx != nullptr ? *ctx : local_ctx;
  const size_t m = attrs_per_column.size();
  EnumStats local;
  local.candidates_per_level.assign(m + 1, 0);
  auto finish = [&](Status status) {
    if (stats != nullptr) *stats = local;
    return status;
  };
  if (m == 0) {
    return finish(Status::InvalidArgument("no target columns"));
  }

  if (m == 1) {
    std::vector<MappingPath> out;
    for (const text::AttributeRef& attr : attrs_per_column[0]) {
      if (exec_ctx.ShouldStop()) {
        local.deadline_expired = true;
        break;
      }
      MappingPath path = MappingPath::SingleVertex(attr.relation);
      path.AddProjection(0, 0, attr.attribute);
      out.push_back(std::move(path));
    }
    local.num_candidates = out.size();
    local.candidates_per_level[1] = out.size();
    if (stats != nullptr) *stats = local;
    return out;
  }

  const core::LocationMap locations =
      core::LocationMap::FromAttributes(attrs_per_column);
  core::SearchOptions pairwise_options;
  pairwise_options.pmnj = options.pmnj;
  const PairwiseMappingMap pmpm = core::GeneratePairwiseMappingPaths(
      schema_graph, locations, pairwise_options, exec_ctx);

  // Pre-strip pairwise paths into attachment chains per (anchor, new)
  // column ordered pair, deduplicated.
  std::map<std::pair<int, int>, std::vector<Chain>> chains;
  {
    std::map<std::pair<int, int>, std::set<std::string>> seen;
    auto add_chain = [&](int anchor, int added, Chain chain) {
      std::string key = "R" + std::to_string(chain.anchor_relation);
      for (const ChainStep& s : chain.steps) {
        key += "|" + std::to_string(s.relation) + "," +
               std::to_string(s.fk) + "," + (s.is_from_side ? "f" : "t");
      }
      key += "|a" + std::to_string(chain.end_attr);
      if (seen[{anchor, added}].insert(std::move(key)).second) {
        chains[{anchor, added}].push_back(std::move(chain));
      }
    };
    for (const auto& [pair, mappings] : pmpm) {
      for (const MappingPath& mp : mappings) {
        add_chain(pair.first, pair.second,
                  ChainFromPairwise(mp, pair.first, pair.second));
        add_chain(pair.second, pair.first,
                  ChainFromPairwise(mp, pair.second, pair.first));
      }
    }
  }

  // Level 2: the pairwise paths themselves.
  std::vector<MappingPath> level;
  size_t live_total = 0;
  {
    std::set<std::string> seen;
    for (const auto& [pair, mappings] : pmpm) {
      for (const MappingPath& mp : mappings) {
        if (seen.insert(mp.Canonical()).second) level.push_back(mp);
      }
    }
  }
  live_total += level.size();
  local.candidates_per_level[2] = level.size();
  if (m == 2) local.num_candidates = level.size();

  for (size_t n = 2; n < m; ++n) {
    std::vector<MappingPath> next;
    std::set<std::string> seen;
    for (const MappingPath& base : level) {
      if (exec_ctx.ShouldStop()) {
        local.deadline_expired = true;
        break;
      }
      const std::vector<int> base_cols = base.TargetColumns();
      for (int anchor : base_cols) {
        for (size_t j = 0; j < m; ++j) {
          const int new_col = static_cast<int>(j);
          if (std::find(base_cols.begin(), base_cols.end(), new_col) !=
              base_cols.end()) {
            continue;
          }
          auto it = chains.find({anchor, new_col});
          if (it == chains.end()) continue;
          for (const Chain& chain : it->second) {
            std::vector<MappingPath> attached;
            AttachAllWays(base, anchor, new_col, chain, &attached);
            for (MappingPath& mp : attached) {
              if (seen.insert(mp.Canonical()).second) {
                next.push_back(std::move(mp));
                ++live_total;
                if (options.max_candidates > 0 &&
                    live_total > options.max_candidates) {
                  local.candidates_per_level[n + 1] = next.size();
                  local.num_candidates = next.size();
                  return finish(Status::ResourceExhausted(
                      "naive candidate enumeration exceeded the memory "
                      "budget of " +
                      std::to_string(options.max_candidates) +
                      " mapping paths"));
                }
              }
            }
          }
        }
      }
    }
    local.candidates_per_level[n + 1] = next.size();
    level = std::move(next);
    if (local.deadline_expired) break;
  }

  local.deadline_expired = local.deadline_expired || exec_ctx.stop_requested();
  local.num_candidates = level.size();
  if (stats != nullptr) *stats = local;
  return level;
}

}  // namespace mweaver::baselines
