// The naive sample-search baseline of Section 6.3: enumerate every complete
// candidate mapping path the way DISCOVER-style "candidate networks" are
// generated, then validate each one with a database query. Exponentially
// many candidates must be validated through expensive execution, which is
// what TPW's early instance-level pruning avoids.
#ifndef MWEAVER_BASELINES_NAIVE_SEARCH_H_
#define MWEAVER_BASELINES_NAIVE_SEARCH_H_

#include <string>
#include <vector>

#include "baselines/candidate_enum.h"
#include "common/result.h"
#include "core/execution_context.h"
#include "core/mapping_path.h"
#include "graph/schema_graph.h"
#include "text/fulltext_engine.h"

namespace mweaver::baselines {

struct NaiveOptions {
  EnumOptions enumeration;
};

struct NaiveStats {
  EnumStats enumeration;      // "# Naive MP" and per-level counts
  size_t num_valid = 0;       // candidates surviving validation
  double enumerate_ms = 0.0;
  double validate_ms = 0.0;
  double total_ms = 0.0;
  /// True when enumeration blew the memory budget (the paper's "-" cells).
  bool exhausted = false;
  /// The deadline / cancellation token stopped the search early (during
  /// location, enumeration or validation).
  bool deadline_expired = false;
};

/// \brief Runs the naive algorithm for one sample tuple. Returns the valid
/// complete mapping paths (the same set TPW finds), or ResourceExhausted
/// when the candidate enumeration exceeds the memory budget — `stats` is
/// populated either way. When `ctx` is given, every phase (locate,
/// enumerate, validate) polls its deadline/cancel token; a stop returns the
/// mappings validated so far with stats->deadline_expired set.
Result<std::vector<core::MappingPath>> NaiveSampleSearch(
    const text::FullTextEngine& engine, const graph::SchemaGraph& schema_graph,
    const std::vector<std::string>& sample_tuple, const NaiveOptions& options,
    NaiveStats* stats, core::ExecutionContext* ctx = nullptr);

}  // namespace mweaver::baselines

#endif  // MWEAVER_BASELINES_NAIVE_SEARCH_H_
