#include "baselines/eirene.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"

namespace mweaver::baselines {

namespace {

using core::MappingPath;
using core::VertexId;

// An FK link between two example tuples (indices into source_tuples).
struct TupleEdge {
  size_t a;
  size_t b;
  storage::ForeignKeyId fk;
  bool a_is_from_side;
};

// All FK links holding between the example's tuples in the instance.
std::vector<TupleEdge> LinkTuples(const storage::Database& db,
                                  const DataExample& example) {
  std::vector<TupleEdge> edges;
  const auto& tuples = example.source_tuples;
  for (size_t a = 0; a < tuples.size(); ++a) {
    for (size_t b = 0; b < tuples.size(); ++b) {
      if (a == b) continue;
      for (size_t f = 0; f < db.foreign_keys().size(); ++f) {
        const storage::ForeignKey& fk = db.foreign_keys()[f];
        if (tuples[a].first != fk.from_relation ||
            tuples[b].first != fk.to_relation) {
          continue;
        }
        const storage::Value& va =
            db.relation(tuples[a].first).at(tuples[a].second,
                                            fk.from_attribute);
        const storage::Value& vb =
            db.relation(tuples[b].first).at(tuples[b].second,
                                            fk.to_attribute);
        if (!va.is_null() && va == vb) {
          // Record each undirected link once (from the "a < b" side when
          // both directions exist as separate FKs they are distinct edges).
          edges.push_back(
              TupleEdge{a, b, static_cast<storage::ForeignKeyId>(f), true});
        }
      }
    }
  }
  return edges;
}

// True iff `edge_subset` forms a spanning tree over n vertices.
bool IsSpanningTree(const std::vector<TupleEdge>& edges,
                    const std::vector<size_t>& edge_subset, size_t n) {
  if (edge_subset.size() + 1 != n) return false;
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t e : edge_subset) {
    const size_t ra = find(edges[e].a);
    const size_t rb = find(edges[e].b);
    if (ra == rb) return false;  // cycle
    parent[ra] = rb;
  }
  return true;
}

}  // namespace

EireneFitter::EireneFitter(const storage::Database* db, EireneOptions options)
    : db_(db), options_(options) {
  MW_CHECK(db != nullptr);
}

Result<std::vector<core::MappingPath>> EireneFitter::FitOne(
    const DataExample& example) const {
  const storage::Database& db = *db_;
  const size_t n = example.source_tuples.size();
  if (n == 0) {
    return Status::InvalidArgument("data example has no source tuples");
  }
  for (const auto& [rel, row] : example.source_tuples) {
    if (rel < 0 || static_cast<size_t>(rel) >= db.num_relations()) {
      return Status::InvalidArgument("example references unknown relation");
    }
    if (row < 0 ||
        static_cast<size_t>(row) >= db.relation(rel).num_rows()) {
      return Status::InvalidArgument("example references unknown tuple");
    }
  }

  const std::vector<TupleEdge> edges = LinkTuples(db, example);
  if (edges.size() > options_.max_edges) {
    return Status::ResourceExhausted(
        StrFormat("example induces %zu candidate joins (max %zu)",
                  edges.size(), options_.max_edges));
  }

  // Per target column: the (tuple index, attribute) cells whose value
  // matches the example's target value exactly.
  std::vector<std::vector<std::pair<size_t, storage::AttributeId>>>
      cell_candidates(example.target_tuple.size());
  for (size_t col = 0; col < example.target_tuple.size(); ++col) {
    const std::string& want = example.target_tuple[col];
    if (want.empty()) continue;
    for (size_t t = 0; t < n; ++t) {
      const auto& [rel_id, row] = example.source_tuples[t];
      const storage::Relation& rel = db.relation(rel_id);
      for (size_t a = 0; a < rel.schema().num_attributes(); ++a) {
        const storage::Value& v =
            rel.at(row, static_cast<storage::AttributeId>(a));
        if (!v.is_null() && v.ToDisplayString() == want) {
          cell_candidates[col].emplace_back(
              t, static_cast<storage::AttributeId>(a));
        }
      }
    }
    if (cell_candidates[col].empty()) {
      return std::vector<core::MappingPath>{};  // unfittable example
    }
  }

  std::vector<core::MappingPath> out;
  std::set<std::string> seen;

  // Enumerate spanning trees (n is tiny: the tuples one user example
  // contains), then every projection assignment per tree.
  std::vector<size_t> subset;
  std::function<void(size_t)> choose_edges = [&](size_t start) {
    if (subset.size() + 1 == n) {
      if (!IsSpanningTree(edges, subset, n)) return;
      // Root the tree at tuple 0 and convert to a MappingPath.
      std::vector<std::vector<size_t>> incident(n);
      for (size_t e : subset) {
        incident[edges[e].a].push_back(e);
        incident[edges[e].b].push_back(e);
      }
      MappingPath base =
          MappingPath::SingleVertex(example.source_tuples[0].first);
      std::vector<VertexId> vertex_of_tuple(n, core::kNoVertex);
      vertex_of_tuple[0] = 0;
      std::vector<bool> placed(n, false);
      placed[0] = true;
      std::function<void(size_t)> attach = [&](size_t t) {
        for (size_t e : incident[t]) {
          const TupleEdge& te = edges[e];
          const size_t other = te.a == t ? te.b : te.a;
          if (placed[other]) continue;
          placed[other] = true;
          const bool other_is_from = (te.a == other) == te.a_is_from_side;
          vertex_of_tuple[other] = base.AddVertex(
              example.source_tuples[other].first, vertex_of_tuple[t], te.fk,
              other_is_from);
          attach(other);
        }
      };
      attach(0);
      for (size_t t = 0; t < n; ++t) {
        if (!placed[t]) return;  // should not happen for a spanning tree
      }

      // Projection assignments: product over the specified columns.
      std::vector<size_t> specified;
      for (size_t col = 0; col < cell_candidates.size(); ++col) {
        if (!example.target_tuple[col].empty()) specified.push_back(col);
      }
      std::function<void(size_t, MappingPath)> assign =
          [&](size_t idx, MappingPath partial) {
            if (idx == specified.size()) {
              if (seen.insert(partial.Canonical()).second) {
                out.push_back(std::move(partial));
              }
              return;
            }
            const size_t col = specified[idx];
            for (const auto& [tuple_idx, attr] : cell_candidates[col]) {
              MappingPath next = partial;
              next.AddProjection(static_cast<int>(col),
                                 vertex_of_tuple[tuple_idx], attr);
              assign(idx + 1, std::move(next));
            }
          };
      assign(0, base);
      return;
    }
    for (size_t e = start; e < edges.size(); ++e) {
      subset.push_back(e);
      choose_edges(e + 1);
      subset.pop_back();
    }
  };
  // (For n == 1 the first call immediately hits the spanning-tree base
  // case with an empty edge subset.)
  choose_edges(0);
  return out;
}

Result<std::vector<core::MappingPath>> EireneFitter::Fit(
    const std::vector<DataExample>& examples) const {
  if (examples.empty()) {
    return Status::InvalidArgument("at least one data example is required");
  }
  std::vector<core::MappingPath> fitted;
  for (size_t i = 0; i < examples.size(); ++i) {
    MW_ASSIGN_OR_RETURN(std::vector<core::MappingPath> one,
                        FitOne(examples[i]));
    if (i == 0) {
      fitted = std::move(one);
    } else {
      std::set<std::string> canon;
      for (const core::MappingPath& mp : one) canon.insert(mp.Canonical());
      fitted.erase(std::remove_if(fitted.begin(), fitted.end(),
                                  [&](const core::MappingPath& mp) {
                                    return canon.count(mp.Canonical()) == 0;
                                  }),
                   fitted.end());
    }
    if (fitted.empty()) break;
  }
  return fitted;
}

}  // namespace mweaver::baselines
