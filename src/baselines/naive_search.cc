#include "baselines/naive_search.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/location_map.h"
#include "query/executor.h"

namespace mweaver::baselines {

Result<std::vector<core::MappingPath>> NaiveSampleSearch(
    const text::FullTextEngine& engine, const graph::SchemaGraph& schema_graph,
    const std::vector<std::string>& sample_tuple, const NaiveOptions& options,
    NaiveStats* stats, core::ExecutionContext* ctx) {
  NaiveStats local;
  auto publish = [&]() {
    if (stats != nullptr) *stats = local;
  };

  for (size_t i = 0; i < sample_tuple.size(); ++i) {
    if (sample_tuple[i].empty()) {
      publish();
      return Status::InvalidArgument(
          StrFormat("naive search requires a fully populated sample tuple; "
                    "column %zu is empty",
                    i));
    }
  }

  Stopwatch total;
  Stopwatch phase;

  // Step 1 is shared with TPW: locate the samples.
  const core::LocationMap locations =
      core::LocationMap::Build(engine, sample_tuple, ctx);
  std::vector<std::vector<text::AttributeRef>> attrs_per_column;
  attrs_per_column.reserve(locations.num_columns());
  for (size_t i = 0; i < locations.num_columns(); ++i) {
    attrs_per_column.push_back(locations.AttributesOf(i));
  }

  // Enumerate every candidate network, blind to the instance.
  Result<std::vector<core::MappingPath>> candidates =
      EnumerateCandidateMappings(schema_graph, attrs_per_column,
                                 options.enumeration, &local.enumeration, ctx);
  local.deadline_expired = local.enumeration.deadline_expired;
  local.enumerate_ms = phase.ElapsedMillis();
  if (!candidates.ok()) {
    local.exhausted = candidates.status().IsResourceExhausted();
    local.total_ms = total.ElapsedMillis();
    publish();
    return candidates.status();
  }

  // Validate each candidate with a keyword-constrained existence query.
  phase.Restart();
  query::SampleMap samples;
  for (size_t i = 0; i < sample_tuple.size(); ++i) {
    samples.emplace(static_cast<int>(i), sample_tuple[i]);
  }
  query::PathExecutor executor(&engine);
  std::vector<core::MappingPath> valid;
  for (const core::MappingPath& mapping : *candidates) {
    // One poll per validation query; unvalidated candidates are dropped
    // (the baseline reports deadline_expired so callers know the result
    // set is partial).
    if (ctx != nullptr && ctx->ShouldStop()) {
      local.deadline_expired = true;
      break;
    }
    MW_ASSIGN_OR_RETURN(bool supported,
                        executor.HasSupport(mapping, samples, ctx));
    if (supported) valid.push_back(mapping);
  }
  if (ctx != nullptr && ctx->stop_requested()) local.deadline_expired = true;
  local.num_valid = valid.size();
  local.validate_ms = phase.ElapsedMillis();
  local.total_ms = total.ElapsedMillis();
  publish();
  return valid;
}

}  // namespace mweaver::baselines
