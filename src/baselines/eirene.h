// An Eirene-style mapping designer (Alexe et al., SIGMOD 2011 — reference
// [8] of the paper): fits project-join mappings to fully-specified data
// examples, each pairing a set of source tuples with one target tuple.
//
// Contrast with MWeaver (Section 2): the user must know the source schema
// well enough to supply the source side of every example and to link the
// tuples through join values — which is where its extra interaction cost in
// the user study comes from.
#ifndef MWEAVER_BASELINES_EIRENE_H_
#define MWEAVER_BASELINES_EIRENE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/mapping_path.h"
#include "storage/database.h"

namespace mweaver::baselines {

/// \brief One data example: the source tuples the user copied out of the
/// source instance, plus the target tuple they should produce.
struct DataExample {
  std::vector<std::pair<storage::RelationId, storage::RowId>> source_tuples;
  /// One value per target column; empty strings are unconstrained.
  std::vector<std::string> target_tuple;
};

struct EireneOptions {
  /// Maximum FK edges considered between the example's tuples before
  /// aborting (guards degenerate examples).
  size_t max_edges = 64;
};

/// \brief Fits project-join mappings to data examples over one database.
class EireneFitter {
 public:
  /// \brief `db` must outlive the fitter.
  explicit EireneFitter(const storage::Database* db,
                        EireneOptions options = {});

  /// \brief Mapping paths consistent with *every* example: for each
  /// example, the mapping's relation path is a spanning tree of the
  /// example's source tuples (joined through FK value equality) and each
  /// specified target value equals the projected source value exactly.
  /// Returns an empty vector when no mapping fits.
  Result<std::vector<core::MappingPath>> Fit(
      const std::vector<DataExample>& examples) const;

  /// \brief Fits a single example.
  Result<std::vector<core::MappingPath>> FitOne(
      const DataExample& example) const;

 private:
  const storage::Database* db_;
  EireneOptions options_;
};

}  // namespace mweaver::baselines

#endif  // MWEAVER_BASELINES_EIRENE_H_
