#include "baselines/matchdriven.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <set>

#include "baselines/matchers.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace mweaver::baselines {

MatchDrivenMapper::MatchDrivenMapper(const text::FullTextEngine* engine,
                                     const graph::SchemaGraph* schema_graph,
                                     MatchOptions options)
    : engine_(engine), schema_graph_(schema_graph), options_(options) {
  MW_CHECK(engine != nullptr);
  MW_CHECK(schema_graph != nullptr);
}

namespace {

// Splits CamelCase boundaries before lowercasing so "ReleaseDate" aligns
// with "release_date".
std::string BreakCamelCase(const std::string& name) {
  std::string out;
  for (size_t i = 0; i < name.size(); ++i) {
    if (i > 0 && std::isupper(static_cast<unsigned char>(name[i])) &&
        std::islower(static_cast<unsigned char>(name[i - 1]))) {
      out += ' ';
    }
    out += name[i];
  }
  return out;
}

}  // namespace

double MatchDrivenMapper::NameSimilarity(const std::string& target_name,
                                         const std::string& attr_name) {
  const std::string a = ToLower(BreakCamelCase(target_name));
  const std::string b = ToLower(BreakCamelCase(attr_name));
  if (a == b) return 1.0;
  // Token-level: best alignment of target tokens onto attribute tokens
  // handles snake_case vs CamelCase vs spaced names.
  const std::vector<std::string> ta = text::Tokenize(a);
  const std::vector<std::string> tb = text::Tokenize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  double total = 0.0;
  for (const std::string& x : ta) {
    double best = 0.0;
    for (const std::string& y : tb) {
      double sim = EditSimilarity(x, y);
      // Substring containment (e.g. "name" in "fullname") counts strongly.
      if (x.size() >= 3 && y.find(x) != std::string::npos) {
        sim = std::max(sim, 0.8);
      }
      best = std::max(best, sim);
    }
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

std::vector<std::vector<Correspondence>>
MatchDrivenMapper::ProposeCorrespondences(
    const std::vector<std::string>& target_column_names,
    const std::vector<std::vector<std::string>>& instance_values) const {
  const storage::Database& db = engine_->db();

  // Assemble the matcher stack from the configured weights (LSD/COMA-style
  // combination; see baselines/matchers.h).
  CompositeMatcher matcher;
  if (options_.name_weight > 0.0) {
    matcher.Add(std::make_unique<NameMatcher>(), options_.name_weight);
  }
  if (options_.instance_weight > 0.0) {
    matcher.Add(std::make_unique<InstanceOverlapMatcher>(),
                options_.instance_weight);
  }
  if (options_.shape_weight > 0.0) {
    matcher.Add(std::make_unique<ShapeMatcher>(), options_.shape_weight);
  }

  std::vector<std::vector<Correspondence>> proposals(
      target_column_names.size());
  for (size_t col = 0; col < target_column_names.size(); ++col) {
    MatchTarget target;
    target.column_name = target_column_names[col];
    if (col < instance_values.size()) {
      target.instances = instance_values[col];
    }
    std::vector<Correspondence> scored;
    for (size_t r = 0; r < db.num_relations(); ++r) {
      const storage::RelationId rel_id = static_cast<storage::RelationId>(r);
      const storage::Relation& rel = db.relation(rel_id);
      for (size_t a = 0; a < rel.schema().num_attributes(); ++a) {
        const storage::AttributeSchema& attr_schema =
            rel.schema().attributes()[a];
        if (attr_schema.type != storage::ValueType::kString ||
            !attr_schema.searchable) {
          continue;
        }
        const text::AttributeRef ref{rel_id,
                                     static_cast<storage::AttributeId>(a)};
        const double score = matcher.Score(target, ref, *engine_);
        if (score <= 0.0) continue;
        scored.push_back(
            Correspondence{static_cast<int>(col), ref, score});
      }
    }
    std::sort(scored.begin(), scored.end(),
              [&](const Correspondence& x, const Correspondence& y) {
                if (x.score != y.score) return x.score > y.score;
                return engine_->AttributeName(x.attr) <
                       engine_->AttributeName(y.attr);
              });
    if (scored.size() > options_.top_k) scored.resize(options_.top_k);
    proposals[col] = std::move(scored);
  }
  return proposals;
}

Result<std::vector<core::MappingPath>> MatchDrivenMapper::EnumerateMappings(
    const std::vector<Correspondence>& confirmed) const {
  if (confirmed.empty()) {
    return Status::InvalidArgument("no confirmed correspondences");
  }
  // One attribute per column, ordered by target column index.
  std::vector<Correspondence> sorted = confirmed;
  std::sort(sorted.begin(), sorted.end(),
            [](const Correspondence& a, const Correspondence& b) {
              return a.target_column < b.target_column;
            });
  std::vector<std::vector<text::AttributeRef>> attrs_per_column;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].target_column != static_cast<int>(i)) {
      return Status::InvalidArgument(
          "confirmed correspondences must cover target columns 0..m-1 "
          "exactly once");
    }
    attrs_per_column.push_back({sorted[i].attr});
  }

  EnumOptions enum_options;
  enum_options.pmnj = options_.pmnj;
  enum_options.max_candidates = options_.max_mappings;
  MW_ASSIGN_OR_RETURN(std::vector<core::MappingPath> mappings,
                      EnumerateCandidateMappings(*schema_graph_,
                                                 attrs_per_column,
                                                 enum_options, nullptr));
  std::sort(mappings.begin(), mappings.end(),
            [](const core::MappingPath& a, const core::MappingPath& b) {
              if (a.num_joins() != b.num_joins()) {
                return a.num_joins() < b.num_joins();
              }
              return a.Canonical() < b.Canonical();
            });
  return mappings;
}

}  // namespace mweaver::baselines
