// Token pools for synthetic value generation: first/last names, title
// words, places, and prose filler. Drawing values from fixed overlapping
// pools creates the cross-attribute collisions the paper's search problem
// feeds on (a director's surname inside a company name, a title inside a
// logline, a family name matching a person, ...).
#ifndef MWEAVER_DATAGEN_POOLS_H_
#define MWEAVER_DATAGEN_POOLS_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace mweaver::datagen {

/// \brief Access to the fixed token pools.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<std::string>& TitleAdjectives();
const std::vector<std::string>& TitleNouns();
const std::vector<std::string>& Cities();
const std::vector<std::string>& Countries();
const std::vector<std::string>& GenreNames();
const std::vector<std::string>& CompanySuffixes();
const std::vector<std::string>& FillerWords();

/// \brief "First Last", Zipf-skewed so some names are popular.
std::string MakePersonName(Rng* rng);

/// \brief A movie-like title ("The Crimson Harbor", "Echoes of Winter").
std::string MakeMovieTitle(Rng* rng);

/// \brief "Surname Pictures"-style production company name.
std::string MakeCompanyName(Rng* rng);

/// \brief One prose sentence of `words` filler words, optionally embedding
/// `embed` verbatim (used to plant titles inside loglines).
std::string MakeSentence(Rng* rng, size_t words, const std::string& embed = "");

/// \brief "YYYY-MM-DD" date string in [year_lo, year_hi].
std::string MakeDate(Rng* rng, int year_lo, int year_hi);

}  // namespace mweaver::datagen

#endif  // MWEAVER_DATAGEN_POOLS_H_
