#include "datagen/pools.h"

#include "common/string_util.h"

namespace mweaver::datagen {

namespace {

// Function-local statics keep the pools trivially destructible from the
// caller's perspective (constructed once, leaked at exit by design).
template <typename... Args>
const std::vector<std::string>& Pool(Args... items) {
  static const std::vector<std::string>& pool =
      *new std::vector<std::string>{items...};
  return pool;
}

}  // namespace

const std::vector<std::string>& FirstNames() {
  return Pool(
      "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
      "Linda", "David", "Elizabeth", "William", "Barbara", "Richard",
      "Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen",
      "Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Betty",
      "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven",
      "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
      "Kenji", "Aiko", "Rajesh", "Priya", "Olga", "Dmitri", "Amara",
      "Kwame", "Lucia", "Mateo");
}

const std::vector<std::string>& LastNames() {
  return Pool(
      "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
      "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
      "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
      "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
      "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
      "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
      "Cameron", "Burton", "Yates", "Wood", "Nolan", "Kurosawa", "Bergman",
      "Fellini", "Varda", "Campion");
}

const std::vector<std::string>& TitleAdjectives() {
  return Pool(
      "Crimson", "Silent", "Golden", "Broken", "Hidden", "Midnight",
      "Electric", "Frozen", "Scarlet", "Hollow", "Burning", "Distant",
      "Savage", "Gentle", "Shattered", "Eternal", "Velvet", "Iron",
      "Paper", "Glass", "Neon", "Wild", "Quiet", "Lost", "Final",
      "Forgotten", "Endless", "Pale", "Obsidian", "Amber");
}

const std::vector<std::string>& TitleNouns() {
  return Pool(
      "Harbor", "Winter", "Empire", "Garden", "Horizon", "Mirror",
      "Shadow", "River", "Mountain", "Orchard", "Station", "Voyage",
      "Kingdom", "Lantern", "Compass", "Tempest", "Avenue", "Canyon",
      "Meadow", "Archive", "Fortress", "Carousel", "Labyrinth", "Monsoon",
      "Eclipse", "Aurora", "Summit", "Harvest", "Cathedral", "Bazaar",
      "Parade", "Circus", "Railway", "Lagoon", "Glacier", "Prairie",
      "Boulevard", "Observatory", "Expedition", "Reunion");
}

const std::vector<std::string>& Cities() {
  return Pool(
      "Wellington", "Auckland", "Queenstown", "Sydney", "Melbourne",
      "London", "Manchester", "Dublin", "Paris", "Lyon", "Berlin",
      "Munich", "Prague", "Vienna", "Rome", "Venice", "Madrid",
      "Barcelona", "Lisbon", "Toronto", "Vancouver", "Montreal",
      "Los Angeles", "San Francisco", "Chicago", "Boston", "Atlanta",
      "Tokyo", "Kyoto", "Seoul", "Mumbai", "Marrakesh", "Reykjavik",
      "Havana", "Santiago");
}

const std::vector<std::string>& Countries() {
  return Pool(
      "New Zealand", "Australia", "United Kingdom", "Ireland", "France",
      "Germany", "Czech Republic", "Austria", "Italy", "Spain", "Portugal",
      "Canada", "United States", "Japan", "South Korea", "India",
      "Morocco", "Iceland", "Cuba", "Chile", "Mexico", "Brazil",
      "Norway", "Sweden", "Denmark");
}

const std::vector<std::string>& GenreNames() {
  return Pool(
      "Drama", "Comedy", "Thriller", "Science Fiction", "Romance",
      "Documentary", "Horror", "Western", "Animation", "Mystery",
      "Adventure", "Musical");
}

const std::vector<std::string>& CompanySuffixes() {
  return Pool("Pictures", "Studios", "Films", "Entertainment", "Media",
              "Productions", "Co.", "Works");
}

const std::vector<std::string>& FillerWords() {
  return Pool(
      "story", "journey", "family", "secret", "discovers", "against",
      "world", "life", "young", "finds", "must", "between", "city",
      "dream", "past", "future", "love", "war", "truth", "hope",
      "betrayal", "escape", "returns", "mysterious", "ancient", "small",
      "town", "night", "memory", "promise", "fate", "courage", "silence",
      "storm", "light", "darkness", "heart", "stranger", "letter",
      "island");
}

std::string MakePersonName(Rng* rng) {
  const auto& first = FirstNames();
  const auto& last = LastNames();
  return first[rng->ZipfIndex(first.size(), 0.6)] + " " +
         last[rng->ZipfIndex(last.size(), 0.6)];
}

std::string MakeMovieTitle(Rng* rng) {
  const auto& adjectives = TitleAdjectives();
  const auto& nouns = TitleNouns();
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return "The " + rng->Pick(adjectives) + " " + rng->Pick(nouns);
    case 1:
      return rng->Pick(adjectives) + " " + rng->Pick(nouns);
    case 2:
      return rng->Pick(nouns) + " of " + rng->Pick(nouns);
    default:
      return "The " + rng->Pick(nouns);
  }
}

std::string MakeCompanyName(Rng* rng) {
  return rng->Pick(LastNames()) + " " + rng->Pick(CompanySuffixes());
}

std::string MakeSentence(Rng* rng, size_t words, const std::string& embed) {
  std::vector<std::string> parts;
  const size_t embed_at = embed.empty() ? words : rng->Index(words);
  for (size_t i = 0; i < words; ++i) {
    if (i == embed_at) parts.push_back(embed);
    parts.push_back(rng->Pick(FillerWords()));
  }
  return Join(parts, " ");
}

std::string MakeDate(Rng* rng, int year_lo, int year_hi) {
  const int year = static_cast<int>(rng->UniformInt(year_lo, year_hi));
  const int month = static_cast<int>(rng->UniformInt(1, 12));
  const int day = static_cast<int>(rng->UniformInt(1, 28));
  return StrFormat("%04d-%02d-%02d", year, month, day);
}

}  // namespace mweaver::datagen
