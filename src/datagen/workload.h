// The synthetic mapping-task workload of Section 6.2 and the simulated
// sample-typing user that drives it: three task sets whose goal mappings
// share a relation path of J = 2, 3, 4 joins, each with target sizes
// m = 3..6; the simulated user repeatedly samples rows of the goal target
// instance and types them into a Session until the goal mapping is
// discovered.
#ifndef MWEAVER_DATAGEN_WORKLOAD_H_
#define MWEAVER_DATAGEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/mapping_path.h"
#include "core/options.h"
#include "core/session.h"
#include "graph/schema_graph.h"
#include "text/fulltext_engine.h"

namespace mweaver::datagen {

/// \brief One goal mapping task: the mapping to be discovered and the
/// target schema the user sees.
struct TaskMapping {
  std::string name;
  core::MappingPath mapping;
  std::vector<std::string> column_names;
};

/// \brief A task set: mappings sharing one relation path (J joins), with
/// target sizes 3..6.
struct TaskSet {
  int joins = 0;
  std::vector<TaskMapping> tasks;
};

/// \brief Builds the three task sets over the Yahoo-Movies-like database
/// (task set i has J = i+1 joins... specifically J = 2, 3, 4 as in the
/// paper's Figure 12/13 legends).
Result<std::vector<TaskSet>> MakeYahooTaskSets(const storage::Database& db);

/// \brief Our addition: the analogous J = 2, 3, 4 task sets over the
/// IMDb-like database (the paper ran the synthetic workload on Yahoo
/// Movies only). IMDb's link tables are wider, so the same J reaches
/// different entity combinations.
Result<std::vector<TaskSet>> MakeImdbTaskSets(const storage::Database& db);

/// \brief The Figure-11 user-study tasks: (a) over the Yahoo-like schema,
/// (b) over the IMDb-like schema. Target: Movie, ReleaseDate,
/// ProductionCompany, Director.
Result<TaskMapping> MakeYahooStudyTask(const storage::Database& db);
Result<TaskMapping> MakeImdbStudyTask(const storage::Database& db);

/// \brief Builds a chain-shaped mapping by relation names; consecutive
/// relations must be connected by exactly one FK (ambiguity is an error, to
/// keep task definitions explicit). Projections are (column, vertex index,
/// attribute name) triples. Exposed for tests and custom workloads.
Result<core::MappingPath> BuildChainMapping(
    const storage::Database& db, const std::vector<std::string>& relations,
    const std::vector<std::tuple<int, int, std::string>>& projections);

struct SimulationOptions {
  uint64_t seed = 1;
  /// Stop (undiscovered) after this many samples; 0 = 20 * m (the paper's
  /// observed worst case is about 8m).
  size_t max_samples = 0;
  /// Cap on materialized goal-target rows.
  size_t target_rows_cap = 2000;
  core::SearchOptions search;
};

/// \brief Everything the experiments need from one simulated session.
struct SimulationResult {
  /// The session converged to a single mapping.
  bool discovered = false;
  /// ... and that mapping is the goal (sanity flag; should track
  /// `discovered` whenever the samples come from the goal's target).
  bool converged_to_goal = false;
  /// Total samples typed, first row included (Table 1's metric).
  size_t num_samples = 0;
  /// Candidate-set size after each sample; 0 entries before the first
  /// search completes (Figure 12's series).
  std::vector<size_t> candidates_after_sample;
  /// Initial sample-search latency (Table 2 "Searching").
  double search_ms = 0.0;
  /// Per-sample pruning latencies (Table 2 "Pruning").
  std::vector<double> prune_ms;
  /// Stats of the initial search (Tables 3-4, Figure 13).
  core::SearchStats search_stats;
  /// Rows materialized from the goal target.
  size_t target_rows = 0;
  /// The sample tuple used for the first row (reused by baseline benches).
  std::vector<std::string> first_row;
  /// Every value typed, in order (the user-study keystroke accounting).
  std::vector<std::string> typed_values;
};

/// \brief Runs one simulated user session against `task`'s goal mapping.
Result<SimulationResult> SimulateUserSession(
    const text::FullTextEngine& engine, const graph::SchemaGraph& schema_graph,
    const TaskMapping& task, const SimulationOptions& options);

}  // namespace mweaver::datagen

#endif  // MWEAVER_DATAGEN_WORKLOAD_H_
