// Synthetic stand-ins for the paper's two evaluation datasets.
//
// The real dumps are proprietary, so we generate databases with the same
// schema *shape* (the paper reports "Yahoo Movies ... 43 relations and 131
// attributes" and "IMDb ... 19 relations and 57 attributes" — both
// generators reproduce those counts exactly, checked at construction) and
// the same value-collision character: titles embedded in loglines, person
// names shared with family/company names, locations naming both cities and
// countries, and so on. Row counts scale with the config so tests stay
// fast while benchmarks can approach the paper's data sizes.
#ifndef MWEAVER_DATAGEN_MOVIE_GEN_H_
#define MWEAVER_DATAGEN_MOVIE_GEN_H_

#include <cstdint>

#include "storage/database.h"

namespace mweaver::datagen {

/// \brief Scale knobs for the Yahoo-Movies-like database (43 relations /
/// 131 attributes).
struct YahooMoviesConfig {
  uint64_t seed = 42;
  size_t num_movies = 200;
  /// Other entity cardinalities derive from num_movies unless set:
  /// 0 = derive.
  size_t num_people = 0;     // default: 1.5x movies
  size_t num_companies = 0;  // default: movies / 5, min 12
  size_t num_locations = 35;
};

/// \brief Builds the Yahoo-Movies-like source database.
storage::Database MakeYahooMovies(const YahooMoviesConfig& config = {});

/// \brief Scale knobs for the IMDb-like database (19 relations / 57
/// attributes).
struct ImdbConfig {
  uint64_t seed = 1729;
  size_t num_movies = 300;
  size_t num_people = 0;     // default: 2x movies
  size_t num_companies = 0;  // default: movies / 5, min 12
};

/// \brief Builds the IMDb-like source database.
storage::Database MakeImdb(const ImdbConfig& config = {});

}  // namespace mweaver::datagen

#endif  // MWEAVER_DATAGEN_MOVIE_GEN_H_
