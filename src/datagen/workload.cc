#include "datagen/workload.h"

#include <algorithm>
#include <tuple>

#include "common/random.h"
#include "common/string_util.h"
#include "query/executor.h"

namespace mweaver::datagen {

namespace {

using core::MappingPath;
using core::VertexId;

// The unique FK connecting two named relations (error when none or many).
Result<std::pair<storage::ForeignKeyId, bool>> FindUniqueFk(
    const storage::Database& db, storage::RelationId child,
    storage::RelationId parent) {
  storage::ForeignKeyId found = -1;
  bool child_is_from = false;
  for (size_t i = 0; i < db.foreign_keys().size(); ++i) {
    const storage::ForeignKey& fk = db.foreign_keys()[i];
    const bool forward =
        fk.from_relation == child && fk.to_relation == parent;
    const bool backward =
        fk.to_relation == child && fk.from_relation == parent;
    if (!forward && !backward) continue;
    if (found != -1) {
      return Status::InvalidArgument(StrFormat(
          "multiple foreign keys between '%s' and '%s'",
          db.relation(child).name().c_str(),
          db.relation(parent).name().c_str()));
    }
    found = static_cast<storage::ForeignKeyId>(i);
    child_is_from = forward;
  }
  if (found == -1) {
    return Status::NotFound(StrFormat(
        "no foreign key between '%s' and '%s'",
        db.relation(child).name().c_str(),
        db.relation(parent).name().c_str()));
  }
  return std::make_pair(found, child_is_from);
}

}  // namespace

Result<core::MappingPath> BuildChainMapping(
    const storage::Database& db, const std::vector<std::string>& relations,
    const std::vector<std::tuple<int, int, std::string>>& projections) {
  if (relations.empty()) {
    return Status::InvalidArgument("chain needs at least one relation");
  }
  std::vector<storage::RelationId> rel_ids;
  for (const std::string& name : relations) {
    const storage::RelationId id = db.FindRelation(name);
    if (id == storage::kInvalidRelation) {
      return Status::NotFound("unknown relation '" + name + "'");
    }
    rel_ids.push_back(id);
  }
  MappingPath path = MappingPath::SingleVertex(rel_ids[0]);
  for (size_t i = 1; i < rel_ids.size(); ++i) {
    MW_ASSIGN_OR_RETURN(auto fk, FindUniqueFk(db, rel_ids[i],
                                              rel_ids[i - 1]));
    path.AddVertex(rel_ids[i], static_cast<VertexId>(i - 1), fk.first,
                   fk.second);
  }
  for (const auto& [column, vertex, attr_name] : projections) {
    if (vertex < 0 || static_cast<size_t>(vertex) >= rel_ids.size()) {
      return Status::OutOfRange(
          StrFormat("projection vertex %d out of range", vertex));
    }
    const storage::AttributeId attr =
        db.relation(rel_ids[static_cast<size_t>(vertex)])
            .schema()
            .FindAttribute(attr_name);
    if (attr == storage::kInvalidAttribute) {
      return Status::NotFound(StrFormat(
          "unknown attribute '%s.%s'",
          relations[static_cast<size_t>(vertex)].c_str(),
          attr_name.c_str()));
    }
    path.AddProjection(column, static_cast<VertexId>(vertex), attr);
  }
  if (!path.TerminalsProjected()) {
    return Status::InvalidArgument(
        "every terminal relation of a task mapping must project an "
        "attribute");
  }
  return path;
}

Result<std::vector<TaskSet>> MakeYahooTaskSets(const storage::Database& db) {
  std::vector<TaskSet> sets;

  // Task set 1 (J=2): movie - direct - person.
  {
    TaskSet set;
    set.joins = 2;
    const std::vector<std::string> chain{"movie", "direct", "person"};
    // Note: movie.mpaa is deliberately absent — a sample like "R" matches
    // nearly every string attribute under the substring error model.
    const std::vector<std::tuple<int, int, std::string>> all{
        {0, 0, "title"},        {1, 2, "name"},
        {2, 0, "release_date"}, {3, 0, "produced_in"},
        {4, 2, "birth_year"},   {5, 0, "runtime"},
    };
    for (int m = 3; m <= 6; ++m) {
      std::vector<std::tuple<int, int, std::string>> projections(
          all.begin(), all.begin() + m);
      MW_ASSIGN_OR_RETURN(MappingPath path,
                          BuildChainMapping(db, chain, projections));
      std::vector<std::string> columns;
      for (const auto& [col, vertex, attr] : projections) {
        columns.push_back(attr);
      }
      set.tasks.push_back(TaskMapping{
          StrFormat("set1-J2-m%d", m), std::move(path), std::move(columns)});
    }
    sets.push_back(std::move(set));
  }

  // Task set 2 (J=3): person - direct - movie - review.
  {
    TaskSet set;
    set.joins = 3;
    const std::vector<std::string> chain{"person", "direct", "movie",
                                         "review"};
    const std::vector<std::tuple<int, int, std::string>> all{
        {0, 0, "name"},    {1, 2, "title"},      {2, 3, "headline"},
        {3, 2, "release_date"}, {4, 3, "rating"}, {5, 0, "birth_year"},
    };
    for (int m = 3; m <= 6; ++m) {
      std::vector<std::tuple<int, int, std::string>> projections(
          all.begin(), all.begin() + m);
      MW_ASSIGN_OR_RETURN(MappingPath path,
                          BuildChainMapping(db, chain, projections));
      std::vector<std::string> columns;
      for (const auto& [col, vertex, attr] : projections) {
        columns.push_back(attr);
      }
      set.tasks.push_back(TaskMapping{
          StrFormat("set2-J3-m%d", m), std::move(path), std::move(columns)});
    }
    sets.push_back(std::move(set));
  }

  // Task set 3 (J=4): company - produce - movie - direct - person.
  {
    TaskSet set;
    set.joins = 4;
    const std::vector<std::string> chain{"company", "produce", "movie",
                                         "direct", "person"};
    const std::vector<std::tuple<int, int, std::string>> all{
        {0, 0, "name"},         {1, 2, "title"}, {2, 4, "name"},
        {3, 2, "release_date"}, {4, 0, "country"}, {5, 4, "birth_year"},
    };
    for (int m = 3; m <= 6; ++m) {
      std::vector<std::tuple<int, int, std::string>> projections(
          all.begin(), all.begin() + m);
      MW_ASSIGN_OR_RETURN(MappingPath path,
                          BuildChainMapping(db, chain, projections));
      std::vector<std::string> columns{"company"};
      for (size_t i = 1; i < projections.size(); ++i) {
        columns.push_back(std::get<2>(projections[i]));
      }
      // Disambiguate the two "name" columns for display.
      columns[2] = "person";
      set.tasks.push_back(TaskMapping{
          StrFormat("set3-J4-m%d", m), std::move(path), std::move(columns)});
    }
    sets.push_back(std::move(set));
  }

  return sets;
}

Result<std::vector<TaskSet>> MakeImdbTaskSets(const storage::Database& db) {
  std::vector<TaskSet> sets;

  // Task set 1 (J=2): company_name - movie_companies - movie.
  {
    TaskSet set;
    set.joins = 2;
    const std::vector<std::string> chain{"company_name", "movie_companies",
                                         "movie"};
    const std::vector<std::tuple<int, int, std::string>> all{
        {0, 0, "name"},
        {1, 2, "title"},
        {2, 2, "production_year"},
        {3, 1, "note"},
        {4, 0, "country_code"},
    };
    for (int m = 3; m <= 5; ++m) {
      std::vector<std::tuple<int, int, std::string>> projections(
          all.begin(), all.begin() + m);
      MW_ASSIGN_OR_RETURN(MappingPath path,
                          BuildChainMapping(db, chain, projections));
      std::vector<std::string> columns;
      for (const auto& [col, vertex, attr] : projections) {
        columns.push_back(attr);
      }
      set.tasks.push_back(TaskMapping{
          StrFormat("imdb-set1-J2-m%d", m), std::move(path),
          std::move(columns)});
    }
    sets.push_back(std::move(set));
  }

  // Task set 2 (J=3): person - cast_info - movie - movie_info.
  {
    TaskSet set;
    set.joins = 3;
    const std::vector<std::string> chain{"person", "cast_info", "movie",
                                         "movie_info"};
    const std::vector<std::tuple<int, int, std::string>> all{
        {0, 0, "name"},
        {1, 2, "title"},
        {2, 3, "info"},
        {3, 2, "production_year"},
    };
    for (int m = 3; m <= 4; ++m) {
      std::vector<std::tuple<int, int, std::string>> projections(
          all.begin(), all.begin() + m);
      MW_ASSIGN_OR_RETURN(MappingPath path,
                          BuildChainMapping(db, chain, projections));
      std::vector<std::string> columns;
      for (const auto& [col, vertex, attr] : projections) {
        columns.push_back(attr);
      }
      set.tasks.push_back(TaskMapping{
          StrFormat("imdb-set2-J3-m%d", m), std::move(path),
          std::move(columns)});
    }
    sets.push_back(std::move(set));
  }

  // Task set 3 (J=4): company_name - movie_companies - movie - cast_info -
  // person. cast_info carries two FKs toward its neighbors, so the chain
  // must be assembled around the unique FKs between consecutive pairs.
  {
    TaskSet set;
    set.joins = 4;
    const std::vector<std::string> chain{"company_name", "movie_companies",
                                         "movie", "cast_info", "person"};
    const std::vector<std::tuple<int, int, std::string>> all{
        {0, 0, "name"},
        {1, 2, "title"},
        {2, 4, "name"},
        {3, 2, "production_year"},
    };
    for (int m = 3; m <= 4; ++m) {
      std::vector<std::tuple<int, int, std::string>> projections(
          all.begin(), all.begin() + m);
      MW_ASSIGN_OR_RETURN(MappingPath path,
                          BuildChainMapping(db, chain, projections));
      std::vector<std::string> columns{"company"};
      for (size_t i = 1; i < projections.size(); ++i) {
        columns.push_back(std::get<2>(projections[i]));
      }
      columns[2] = "person";
      set.tasks.push_back(TaskMapping{
          StrFormat("imdb-set3-J4-m%d", m), std::move(path),
          std::move(columns)});
    }
    sets.push_back(std::move(set));
  }

  return sets;
}

Result<TaskMapping> MakeYahooStudyTask(const storage::Database& db) {
  // Figure 11(a): company <- produce <- movie[title, release_date] ->
  // direct -> person[name]; target (Movie, ReleaseDate, ProductionCompany,
  // Director). Built as a chain company-produce-movie-direct-person with
  // two projections on the movie vertex.
  MW_ASSIGN_OR_RETURN(
      MappingPath path,
      BuildChainMapping(db,
                        {"company", "produce", "movie", "direct", "person"},
                        {{0, 2, "title"},
                         {1, 2, "release_date"},
                         {2, 0, "name"},
                         {3, 4, "name"}}));
  return TaskMapping{
      "yahoo-study", std::move(path),
      {"Movie", "ReleaseDate", "ProductionCompany", "Director"}};
}

Result<TaskMapping> MakeImdbStudyTask(const storage::Database& db) {
  // Figure 11(b): movie joins movie_info (release date),
  // movie_companies -> company_name, and cast_info -> person. A tree, not a
  // chain, so it is assembled explicitly.
  const storage::RelationId movie = db.FindRelation("movie");
  const storage::RelationId movie_info = db.FindRelation("movie_info");
  const storage::RelationId movie_companies =
      db.FindRelation("movie_companies");
  const storage::RelationId company_name = db.FindRelation("company_name");
  const storage::RelationId cast_info = db.FindRelation("cast_info");
  const storage::RelationId person = db.FindRelation("person");
  MW_CHECK(movie != storage::kInvalidRelation);

  auto fk_between = [&](const char* from, const char* from_attr,
                        const char* to,
                        const char* to_attr) -> storage::ForeignKeyId {
    for (size_t i = 0; i < db.foreign_keys().size(); ++i) {
      const storage::ForeignKey& fk = db.foreign_keys()[i];
      const storage::RelationId f = db.FindRelation(from);
      const storage::RelationId t = db.FindRelation(to);
      if (fk.from_relation == f && fk.to_relation == t &&
          db.relation(f).schema().attribute(fk.from_attribute).name ==
              from_attr &&
          db.relation(t).schema().attribute(fk.to_attribute).name ==
              to_attr) {
        return static_cast<storage::ForeignKeyId>(i);
      }
    }
    MW_CHECK(false) << "missing FK " << from << "." << from_attr << " -> "
                    << to << "." << to_attr;
    return -1;
  };

  MappingPath path = MappingPath::SingleVertex(movie);  // v0
  const VertexId v_info = path.AddVertex(
      movie_info, 0, fk_between("movie_info", "mid", "movie", "mid"), true);
  const VertexId v_mc = path.AddVertex(
      movie_companies, 0,
      fk_between("movie_companies", "mid", "movie", "mid"), true);
  const VertexId v_cn = path.AddVertex(
      company_name, v_mc,
      fk_between("movie_companies", "cid", "company_name", "cid"), false);
  const VertexId v_ci = path.AddVertex(
      cast_info, 0, fk_between("cast_info", "mid", "movie", "mid"), true);
  const VertexId v_p = path.AddVertex(
      person, v_ci, fk_between("cast_info", "pid", "person", "pid"), false);

  path.AddProjection(0, 0, db.relation(movie).schema().FindAttribute("title"));
  path.AddProjection(1, v_info,
                     db.relation(movie_info).schema().FindAttribute("info"));
  path.AddProjection(
      2, v_cn, db.relation(company_name).schema().FindAttribute("name"));
  path.AddProjection(3, v_p,
                     db.relation(person).schema().FindAttribute("name"));
  MW_CHECK(path.TerminalsProjected());
  return TaskMapping{
      "imdb-study", std::move(path),
      {"Movie", "ReleaseDate", "ProductionCompany", "Director"}};
}

Result<SimulationResult> SimulateUserSession(
    const text::FullTextEngine& engine, const graph::SchemaGraph& schema_graph,
    const TaskMapping& task, const SimulationOptions& options) {
  SimulationResult result;
  const size_t m = task.mapping.size();
  const size_t max_samples =
      options.max_samples > 0 ? options.max_samples : 20 * m;
  const std::string goal_canonical = task.mapping.Canonical();

  query::PathExecutor executor(&engine);
  MW_ASSIGN_OR_RETURN(
      std::vector<std::vector<std::string>> target,
      executor.EvaluateTarget(task.mapping, options.target_rows_cap));
  if (target.empty()) {
    return Status::FailedPrecondition(
        "goal mapping '" + task.name + "' produces an empty target");
  }
  result.target_rows = target.size();

  Rng rng(options.seed);
  core::Session session(&engine, &schema_graph, task.column_names,
                        options.search);

  // Column fill order within each row is randomized per row.
  std::vector<size_t> column_order(m);
  for (size_t i = 0; i < m; ++i) column_order[i] = i;

  size_t row_index = 0;
  while (result.num_samples < max_samples) {
    const std::vector<std::string>& row = rng.Pick(target);
    rng.Shuffle(&column_order);
    if (row_index == 0) result.first_row = row;
    bool stop = false;
    for (size_t k = 0; k < m && !stop; ++k) {
      const size_t col = column_order[k];
      MW_RETURN_NOT_OK(session.Input(row_index, col, row[col]));
      ++result.num_samples;
      result.typed_values.push_back(row[col]);
      result.candidates_after_sample.push_back(session.candidates().size());
      if (row_index == 0) {
        if (k + 1 == m) {
          result.search_ms = session.last_search_ms();
          result.search_stats = session.search_stats();
        }
      } else {
        result.prune_ms.push_back(session.last_prune_ms());
      }
      if (session.state() == core::SessionState::kConverged) {
        result.discovered = true;
        result.converged_to_goal =
            session.best().mapping.Canonical() == goal_canonical;
        stop = true;
      } else if (session.state() == core::SessionState::kNoMapping) {
        stop = true;  // samples contradicted every candidate
      }
      if (result.num_samples >= max_samples) stop = true;
    }
    if (result.discovered ||
        session.state() == core::SessionState::kNoMapping) {
      break;
    }
    ++row_index;
  }
  return result;
}

}  // namespace mweaver::datagen
