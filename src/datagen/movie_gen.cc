#include "datagen/movie_gen.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "datagen/pools.h"

namespace mweaver::datagen {

namespace {

using storage::AttributeSchema;
using storage::Database;
using storage::Relation;
using storage::RelationId;
using storage::RelationSchema;
using storage::Row;
using storage::Value;
using storage::ValueType;

// Shorthand attribute constructors.
AttributeSchema Id(const std::string& name) {
  return AttributeSchema{name, ValueType::kInt64, /*searchable=*/false};
}
AttributeSchema Str(const std::string& name) {
  return AttributeSchema{name, ValueType::kString, /*searchable=*/true};
}

RelationId AddTable(Database* db, const std::string& name,
                    std::vector<AttributeSchema> attrs) {
  RelationSchema schema(name, std::move(attrs));
  schema.SetPrimaryKey({0});
  auto result = db->AddRelation(std::move(schema));
  MW_CHECK(result.ok()) << result.status().ToString();
  return *result;
}

void AddFk(Database* db, const std::string& from_rel,
           const std::string& from_attr, const std::string& to_rel,
           const std::string& to_attr) {
  auto result = db->AddForeignKey(from_rel, from_attr, to_rel, to_attr);
  MW_CHECK(result.ok()) << result.status().ToString();
}

Value IdOf(size_t index) { return Value(static_cast<int64_t>(index)); }

// Appends `count` link rows connecting random pairs; avoids exact duplicate
// pairs so link tables behave like real many-to-many relations.
void FillLinks(Relation* rel, Rng* rng, size_t left_count, size_t right_count,
               size_t per_left_min, size_t per_left_max) {
  std::set<std::pair<size_t, size_t>> used;
  for (size_t l = 0; l < left_count; ++l) {
    const size_t n = static_cast<size_t>(
        rng->UniformInt(static_cast<int64_t>(per_left_min),
                        static_cast<int64_t>(per_left_max)));
    for (size_t k = 0; k < n; ++k) {
      const size_t r = rng->Index(right_count);
      if (!used.insert({l, r}).second) continue;
      rel->AppendUnchecked(Row{IdOf(l), IdOf(r)});
    }
  }
}

}  // namespace

Database MakeYahooMovies(const YahooMoviesConfig& config) {
  Rng rng(config.seed);
  const size_t movies = config.num_movies;
  MW_CHECK_GE(movies, 4u);
  const size_t people =
      config.num_people > 0 ? config.num_people : movies * 3 / 2;
  const size_t companies = config.num_companies > 0
                               ? config.num_companies
                               : std::max<size_t>(12, movies / 5);
  const size_t locations = std::max<size_t>(8, config.num_locations);
  const size_t genres = GenreNames().size();
  const size_t awards = std::max<size_t>(4, movies / 10);
  const size_t families = 40;
  const size_t countries = Countries().size();
  const size_t languages = 15;
  const size_t keywords = 80;
  const size_t critics = 30;
  const size_t cinemas = 25;
  const size_t festivals = 15;
  const size_t studios = 20;
  const size_t songs = movies;
  const size_t series = 20;
  const size_t episodes = series * 6;
  const size_t characters = movies;
  const size_t agents = 25;

  Database db("yahoo_movies");

  // --- Entity relations -------------------------------------------------
  AddTable(&db, "movie",
           {Id("mid"), Str("title"), Str("logline"), Str("release_date"),
            Str("mpaa"), Str("runtime"), Str("produced_in")});
  AddTable(&db, "person",
           {Id("pid"), Str("name"), Str("bio"), Str("birth_year"),
            Str("gender")});
  AddTable(&db, "company",
           {Id("cid"), Str("name"), Str("country"), Str("founded")});
  AddTable(&db, "location", {Id("lid"), Str("loc"), Str("region")});
  AddTable(&db, "genre", {Id("gid"), Str("name"), Str("description")});
  AddTable(&db, "award",
           {Id("aid"), Str("name"), Str("year"), Str("category")});
  AddTable(&db, "family", {Id("fid"), Str("family"), Str("origin")});
  AddTable(&db, "country", {Id("cnid"), Str("name"), Str("code")});
  AddTable(&db, "language", {Id("lgid"), Str("name"), Str("code")});
  AddTable(&db, "keyword", {Id("kid"), Str("word"), Str("category")});
  AddTable(&db, "review",
           {Id("rvid"), Id("mid"), Str("text"), Str("rating"),
            Str("headline")});
  AddTable(&db, "critic", {Id("crid"), Str("name"), Str("outlet")});
  AddTable(&db, "cinema",
           {Id("cnmid"), Str("name"), Str("city"), Str("capacity")});
  AddTable(&db, "festival",
           {Id("fsid"), Str("name"), Str("city"), Str("month")});
  AddTable(&db, "studio", {Id("stid"), Str("name"), Str("city")});
  AddTable(&db, "song",
           {Id("sgid"), Str("title"), Str("artist"), Str("year")});
  AddTable(&db, "trailer",
           {Id("trid"), Id("mid"), Str("url"), Str("duration")});
  AddTable(&db, "poster",
           {Id("psid"), Id("mid"), Str("caption"), Str("artist")});
  AddTable(&db, "quote", {Id("qid"), Id("mid"), Str("line"), Str("speaker")});
  AddTable(&db, "boxoffice",
           {Id("boid"), Id("mid"), Str("gross"), Str("territory")});
  AddTable(&db, "series", {Id("srid"), Str("name"), Str("network")});
  AddTable(&db, "episode",
           {Id("epid"), Id("srid"), Str("title"), Str("number"),
            Str("air_date")});
  AddTable(&db, "character",
           {Id("chid"), Str("name"), Str("description")});
  AddTable(&db, "agent", {Id("agid"), Str("name"), Str("agency"),
                          Str("phone")});

  // --- Link relations ----------------------------------------------------
  AddTable(&db, "direct", {Id("mid"), Id("pid")});
  AddTable(&db, "write", {Id("mid"), Id("pid")});
  AddTable(&db, "act", {Id("mid"), Id("pid"), Str("role")});
  AddTable(&db, "produce", {Id("mid"), Id("cid")});
  AddTable(&db, "filmedin", {Id("mid"), Id("lid")});
  AddTable(&db, "hasgenre", {Id("mid"), Id("gid")});
  AddTable(&db, "moviewon", {Id("aid"), Id("mid")});
  AddTable(&db, "personwon", {Id("aid"), Id("pid")});
  AddTable(&db, "belongsto", {Id("pid"), Id("fid")});
  AddTable(&db, "bornin", {Id("pid"), Id("cnid")});
  AddTable(&db, "spokenin", {Id("mid"), Id("lgid")});
  AddTable(&db, "haskeyword", {Id("mid"), Id("kid")});
  AddTable(&db, "reviewedby", {Id("rvid"), Id("crid")});
  AddTable(&db, "showsin", {Id("mid"), Id("cnmid")});
  AddTable(&db, "shownat", {Id("mid"), Id("fsid")});
  AddTable(&db, "distributedby", {Id("mid"), Id("stid")});
  AddTable(&db, "featuresong", {Id("mid"), Id("sgid")});
  AddTable(&db, "playscharacter", {Id("chid"), Id("pid")});
  AddTable(&db, "representedby", {Id("pid"), Id("agid")});

  // --- Foreign keys -------------------------------------------------------
  AddFk(&db, "review", "mid", "movie", "mid");
  AddFk(&db, "trailer", "mid", "movie", "mid");
  AddFk(&db, "poster", "mid", "movie", "mid");
  AddFk(&db, "quote", "mid", "movie", "mid");
  AddFk(&db, "boxoffice", "mid", "movie", "mid");
  AddFk(&db, "episode", "srid", "series", "srid");
  AddFk(&db, "direct", "mid", "movie", "mid");
  AddFk(&db, "direct", "pid", "person", "pid");
  AddFk(&db, "write", "mid", "movie", "mid");
  AddFk(&db, "write", "pid", "person", "pid");
  AddFk(&db, "act", "mid", "movie", "mid");
  AddFk(&db, "act", "pid", "person", "pid");
  AddFk(&db, "produce", "mid", "movie", "mid");
  AddFk(&db, "produce", "cid", "company", "cid");
  AddFk(&db, "filmedin", "mid", "movie", "mid");
  AddFk(&db, "filmedin", "lid", "location", "lid");
  AddFk(&db, "hasgenre", "mid", "movie", "mid");
  AddFk(&db, "hasgenre", "gid", "genre", "gid");
  AddFk(&db, "moviewon", "aid", "award", "aid");
  AddFk(&db, "moviewon", "mid", "movie", "mid");
  AddFk(&db, "personwon", "aid", "award", "aid");
  AddFk(&db, "personwon", "pid", "person", "pid");
  AddFk(&db, "belongsto", "pid", "person", "pid");
  AddFk(&db, "belongsto", "fid", "family", "fid");
  AddFk(&db, "bornin", "pid", "person", "pid");
  AddFk(&db, "bornin", "cnid", "country", "cnid");
  AddFk(&db, "spokenin", "mid", "movie", "mid");
  AddFk(&db, "spokenin", "lgid", "language", "lgid");
  AddFk(&db, "haskeyword", "mid", "movie", "mid");
  AddFk(&db, "haskeyword", "kid", "keyword", "kid");
  AddFk(&db, "reviewedby", "rvid", "review", "rvid");
  AddFk(&db, "reviewedby", "crid", "critic", "crid");
  AddFk(&db, "showsin", "mid", "movie", "mid");
  AddFk(&db, "showsin", "cnmid", "cinema", "cnmid");
  AddFk(&db, "shownat", "mid", "movie", "mid");
  AddFk(&db, "shownat", "fsid", "festival", "fsid");
  AddFk(&db, "distributedby", "mid", "movie", "mid");
  AddFk(&db, "distributedby", "stid", "studio", "stid");
  AddFk(&db, "featuresong", "mid", "movie", "mid");
  AddFk(&db, "featuresong", "sgid", "song", "sgid");
  AddFk(&db, "playscharacter", "chid", "character", "chid");
  AddFk(&db, "playscharacter", "pid", "person", "pid");
  AddFk(&db, "representedby", "pid", "person", "pid");
  AddFk(&db, "representedby", "agid", "agent", "agid");

  MW_CHECK_EQ(db.num_relations(), 43u)
      << "Yahoo-Movies-like schema must match the paper's 43 relations";
  MW_CHECK_EQ(db.TotalAttributes(), 131u)
      << "Yahoo-Movies-like schema must match the paper's 131 attributes";

  // --- Instance generation -----------------------------------------------
  // People first; their names feed movie loglines.
  std::vector<std::string> person_names(people);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("person"));
    for (size_t p = 0; p < people; ++p) {
      person_names[p] = MakePersonName(&rng);
      // Some bios mention the person's own name, planting director names
      // inside person.bio (deliberate search ambiguity; kept low enough
      // that a few pruning rows can rule the bio mapping out).
      const std::string bio = MakeSentence(
          &rng, 8, rng.Bernoulli(0.35) ? person_names[p] : "");
      rel->AppendUnchecked(
          Row{IdOf(p), Value(person_names[p]), Value(bio),
              Value(std::to_string(rng.UniformInt(1930, 1995))),
              Value(rng.Bernoulli(0.5) ? "male" : "female")});
    }
  }

  std::vector<std::string> movie_titles(movies);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("movie"));
    for (size_t m = 0; m < movies; ++m) {
      movie_titles[m] = MakeMovieTitle(&rng);
      // Many loglines embed the movie's own title — this is what makes
      // L("Avatar") = {movie.title, movie.logline} in the paper's example.
      // The rate balances occurrence ambiguity against prunability: each
      // extra sample row has a ~45% chance of ruling the logline mapping
      // out, giving the paper's ~two-rows-to-converge behaviour.
      std::string embed;
      if (rng.Bernoulli(0.55)) embed = movie_titles[m];
      std::string logline = MakeSentence(&rng, 10, embed);
      if (rng.Bernoulli(0.3)) {
        logline += " starring " + rng.Pick(person_names);
      }
      rel->AppendUnchecked(
          Row{IdOf(m), Value(movie_titles[m]), Value(logline),
              Value(MakeDate(&rng, 1970, 2011)),
              Value(rng.Bernoulli(0.5) ? "PG-13" : "R"),
              Value(std::to_string(rng.UniformInt(80, 190)) + " min"),
              Value(rng.Pick(Countries()))});
    }
  }

  {
    Relation* rel = db.mutable_relation(db.FindRelation("company"));
    for (size_t c = 0; c < companies; ++c) {
      rel->AppendUnchecked(
          Row{IdOf(c), Value(MakeCompanyName(&rng)),
              Value(rng.Pick(Countries())),
              Value(std::to_string(rng.UniformInt(1920, 2005)))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("location"));
    for (size_t l = 0; l < locations; ++l) {
      // Locations name either a city or a country — so a sample like
      // "New Zealand" is found in location.loc AND movie.produced_in.
      const std::string loc =
          rng.Bernoulli(0.35) ? rng.Pick(Countries()) : rng.Pick(Cities());
      rel->AppendUnchecked(
          Row{IdOf(l), Value(loc), Value(rng.Pick(Countries()))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("genre"));
    for (size_t g = 0; g < genres; ++g) {
      rel->AppendUnchecked(Row{IdOf(g), Value(GenreNames()[g]),
                               Value(MakeSentence(&rng, 6))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("award"));
    for (size_t a = 0; a < awards; ++a) {
      rel->AppendUnchecked(
          Row{IdOf(a),
              Value("Best " + rng.Pick(TitleNouns()) + " Award"),
              Value(std::to_string(rng.UniformInt(1980, 2011))),
              Value(rng.Bernoulli(0.5) ? "Feature" : "Short")});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("family"));
    for (size_t f = 0; f < families; ++f) {
      // Some family entries read like full person names (the paper's
      // family.family matched "James Cameron").
      const std::string name = rng.Bernoulli(0.4)
                                   ? MakePersonName(&rng)
                                   : rng.Pick(LastNames()) + " family";
      rel->AppendUnchecked(
          Row{IdOf(f), Value(name), Value(rng.Pick(Countries()))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("country"));
    for (size_t c = 0; c < countries; ++c) {
      const std::string& name = Countries()[c];
      rel->AppendUnchecked(
          Row{IdOf(c), Value(name),
              Value(ToLower(name.substr(0, 2)))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("language"));
    static const char* kLanguages[] = {
        "English", "French", "German", "Spanish", "Italian", "Japanese",
        "Korean", "Hindi", "Mandarin", "Portuguese", "Russian", "Arabic",
        "Swedish", "Dutch", "Maori"};
    for (size_t l = 0; l < languages; ++l) {
      rel->AppendUnchecked(Row{IdOf(l), Value(kLanguages[l]),
                               Value(ToLower(std::string(kLanguages[l])
                                                 .substr(0, 2)))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("keyword"));
    for (size_t k = 0; k < keywords; ++k) {
      rel->AppendUnchecked(Row{IdOf(k), Value(rng.Pick(FillerWords())),
                               Value(rng.Pick(GenreNames()))});
    }
  }
  const size_t reviews = movies * 3 / 2;
  {
    Relation* rel = db.mutable_relation(db.FindRelation("review"));
    for (size_t r = 0; r < reviews; ++r) {
      const size_t m = rng.Index(movies);
      // Half of all reviews quote the movie's title in their text.
      rel->AppendUnchecked(
          Row{IdOf(r), IdOf(m),
              Value(MakeSentence(&rng, 14,
                                 rng.Bernoulli(0.5) ? movie_titles[m] : "")),
              Value(StrFormat("%.1f", 1.0 + rng.UniformDouble() * 9.0)),
              Value("A " + rng.Pick(TitleAdjectives()) + " " +
                    rng.Pick(FillerWords()))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("critic"));
    static const char* kOutlets[] = {"The Gazette", "Daily Reel",
                                     "Cinema Weekly", "The Standard",
                                     "Frame Journal"};
    for (size_t c = 0; c < critics; ++c) {
      rel->AppendUnchecked(Row{IdOf(c), Value(MakePersonName(&rng)),
                               Value(kOutlets[rng.Index(5)])});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("cinema"));
    for (size_t c = 0; c < cinemas; ++c) {
      rel->AppendUnchecked(
          Row{IdOf(c), Value(rng.Pick(TitleNouns()) + " Cinema"),
              Value(rng.Pick(Cities())),
              Value(std::to_string(rng.UniformInt(80, 600)) + " seats")});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("festival"));
    static const char* kMonths[] = {"January", "February", "May", "July",
                                    "September", "October", "November"};
    for (size_t f = 0; f < festivals; ++f) {
      rel->AppendUnchecked(
          Row{IdOf(f), Value(rng.Pick(Cities()) + " Film Festival"),
              Value(rng.Pick(Cities())), Value(kMonths[rng.Index(7)])});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("studio"));
    for (size_t s = 0; s < studios; ++s) {
      rel->AppendUnchecked(Row{IdOf(s), Value(MakeCompanyName(&rng)),
                               Value(rng.Pick(Cities()))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("song"));
    for (size_t s = 0; s < songs; ++s) {
      rel->AppendUnchecked(
          Row{IdOf(s), Value(MakeMovieTitle(&rng)),
              Value(MakePersonName(&rng)),
              Value(std::to_string(rng.UniformInt(1960, 2011)))});
    }
  }
  const size_t trailers = std::max<size_t>(1, movies * 4 / 5);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("trailer"));
    for (size_t t = 0; t < trailers; ++t) {
      const size_t m = rng.Index(movies);
      rel->AppendUnchecked(
          Row{IdOf(t), IdOf(m),
              Value("videos.example.com/t" + std::to_string(t)),
              Value(StrFormat("%d:%02d",
                              static_cast<int>(rng.UniformInt(1, 3)),
                              static_cast<int>(rng.UniformInt(0, 59))))});
    }
  }
  const size_t posters = std::max<size_t>(1, movies * 7 / 10);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("poster"));
    for (size_t p = 0; p < posters; ++p) {
      const size_t m = rng.Index(movies);
      rel->AppendUnchecked(
          Row{IdOf(p), IdOf(m),
              Value(MakeSentence(&rng, 5,
                                 rng.Bernoulli(0.4) ? movie_titles[m] : "")),
              Value(MakePersonName(&rng))});
    }
  }
  const size_t quotes = movies;
  {
    Relation* rel = db.mutable_relation(db.FindRelation("quote"));
    for (size_t q = 0; q < quotes; ++q) {
      const size_t m = rng.Index(movies);
      rel->AppendUnchecked(Row{IdOf(q), IdOf(m),
                               Value(MakeSentence(&rng, 9)),
                               Value(MakePersonName(&rng))});
    }
  }
  const size_t boxoffices = std::max<size_t>(1, movies * 4 / 5);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("boxoffice"));
    for (size_t b = 0; b < boxoffices; ++b) {
      rel->AppendUnchecked(
          Row{IdOf(b), IdOf(rng.Index(movies)),
              Value("$" + std::to_string(rng.UniformInt(1, 900)) + "M"),
              Value(rng.Bernoulli(0.5) ? "Domestic" : "Worldwide")});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("series"));
    static const char* kNetworks[] = {"NBC", "HBO", "BBC", "ABC", "AMC"};
    for (size_t s = 0; s < series; ++s) {
      rel->AppendUnchecked(Row{IdOf(s),
                               Value("The " + rng.Pick(TitleNouns()) +
                                     " Chronicles"),
                               Value(kNetworks[rng.Index(5)])});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("episode"));
    for (size_t e = 0; e < episodes; ++e) {
      rel->AppendUnchecked(
          Row{IdOf(e), IdOf(e / 6), Value(MakeMovieTitle(&rng)),
              Value(StrFormat("S%dE%d",
                              static_cast<int>(rng.UniformInt(1, 5)),
                              static_cast<int>(rng.UniformInt(1, 12)))),
              Value(MakeDate(&rng, 1995, 2011))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("character"));
    for (size_t c = 0; c < characters; ++c) {
      rel->AppendUnchecked(Row{IdOf(c),
                               Value(rng.Bernoulli(0.5)
                                         ? MakePersonName(&rng)
                                         : rng.Pick(FirstNames())),
                               Value(MakeSentence(&rng, 6))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("agent"));
    static const char* kAgencies[] = {"CAA", "WME", "UTA", "Gersh",
                                      "Paradigm"};
    for (size_t a = 0; a < agents; ++a) {
      rel->AppendUnchecked(
          Row{IdOf(a), Value(MakePersonName(&rng)),
              Value(kAgencies[rng.Index(5)]),
              Value(StrFormat("555-%04d",
                              static_cast<int>(rng.UniformInt(0, 9999))))});
    }
  }

  // Link rows. Fan-outs follow the paper's intuition: one or two directors
  // per movie, more writers and many actors, etc.
  auto link = [&](const char* name) {
    return db.mutable_relation(db.FindRelation(name));
  };
  FillLinks(link("direct"), &rng, movies, people, 1, 2);
  FillLinks(link("write"), &rng, movies, people, 1, 3);
  {
    Relation* rel = link("act");
    std::set<std::pair<size_t, size_t>> used;
    for (size_t m = 0; m < movies; ++m) {
      const size_t n = static_cast<size_t>(rng.UniformInt(3, 6));
      for (size_t k = 0; k < n; ++k) {
        const size_t p = rng.Index(people);
        if (!used.insert({m, p}).second) continue;
        rel->AppendUnchecked(Row{IdOf(m), IdOf(p),
                                 Value(rng.Pick(FirstNames()))});
      }
    }
  }
  FillLinks(link("produce"), &rng, movies, companies, 1, 2);
  FillLinks(link("filmedin"), &rng, movies, locations, 1, 2);
  FillLinks(link("hasgenre"), &rng, movies, genres, 1, 2);
  FillLinks(link("moviewon"), &rng, awards, movies, 1, 1);
  FillLinks(link("personwon"), &rng, awards, people, 1, 1);
  FillLinks(link("belongsto"), &rng, people / 2, families, 1, 1);
  FillLinks(link("bornin"), &rng, people, countries, 1, 1);
  FillLinks(link("spokenin"), &rng, movies, languages, 1, 2);
  FillLinks(link("haskeyword"), &rng, movies, keywords, 2, 4);
  FillLinks(link("reviewedby"), &rng, reviews, critics, 1, 1);
  FillLinks(link("showsin"), &rng, movies, cinemas, 1, 2);
  FillLinks(link("shownat"), &rng, movies / 2, festivals, 1, 1);
  FillLinks(link("distributedby"), &rng, movies, studios, 1, 1);
  FillLinks(link("featuresong"), &rng, movies / 2, songs, 1, 1);
  FillLinks(link("playscharacter"), &rng, characters, people, 1, 1);
  FillLinks(link("representedby"), &rng, people * 2 / 5, agents, 1, 1);

  return db;
}

Database MakeImdb(const ImdbConfig& config) {
  Rng rng(config.seed);
  const size_t movies = config.num_movies;
  MW_CHECK_GE(movies, 4u);
  const size_t people =
      config.num_people > 0 ? config.num_people : movies * 2;
  const size_t companies = config.num_companies > 0
                               ? config.num_companies
                               : std::max<size_t>(12, movies / 5);
  const size_t char_names = movies;
  const size_t keywords = 100;

  Database db("imdb");

  AddTable(&db, "movie",
           {Id("mid"), Str("title"), Str("production_year"), Id("kind_id")});
  AddTable(&db, "person", {Id("pid"), Str("name"), Str("gender")});
  AddTable(&db, "company_name",
           {Id("cid"), Str("name"), Str("country_code")});
  AddTable(&db, "cast_info",
           {Id("ciid"), Id("mid"), Id("pid"), Id("role_id"),
            Id("person_role_id")});
  AddTable(&db, "movie_companies",
           {Id("mcid"), Id("mid"), Id("cid"), Str("note")});
  AddTable(&db, "movie_info",
           {Id("miid"), Id("mid"), Id("info_type_id"), Str("info")});
  AddTable(&db, "info_type", {Id("itid"), Str("info")});
  AddTable(&db, "role_type", {Id("rtid"), Str("role")});
  AddTable(&db, "char_name", {Id("chid"), Str("name")});
  AddTable(&db, "aka_name", {Id("anid"), Id("pid"), Str("name")});
  AddTable(&db, "aka_title", {Id("atid"), Id("mid"), Str("title")});
  AddTable(&db, "keyword", {Id("kid"), Str("keyword")});
  AddTable(&db, "movie_keyword", {Id("mkid"), Id("mid"), Id("kid")});
  AddTable(&db, "person_info",
           {Id("piid"), Id("pid"), Id("info_type_id"), Str("info")});
  AddTable(&db, "movie_link",
           {Id("mlid"), Id("mid"), Id("linked_mid"), Id("link_type_id")});
  AddTable(&db, "link_type", {Id("ltid"), Str("link")});
  AddTable(&db, "complete_cast", {Id("ccid"), Id("mid"), Id("subject_id")});
  AddTable(&db, "comp_cast_type", {Id("cctid"), Str("kind")});
  AddTable(&db, "kind_type", {Id("ktid"), Str("kind")});

  AddFk(&db, "movie", "kind_id", "kind_type", "ktid");
  AddFk(&db, "cast_info", "mid", "movie", "mid");
  AddFk(&db, "cast_info", "pid", "person", "pid");
  AddFk(&db, "cast_info", "role_id", "role_type", "rtid");
  AddFk(&db, "cast_info", "person_role_id", "char_name", "chid");
  AddFk(&db, "movie_companies", "mid", "movie", "mid");
  AddFk(&db, "movie_companies", "cid", "company_name", "cid");
  AddFk(&db, "movie_info", "mid", "movie", "mid");
  AddFk(&db, "movie_info", "info_type_id", "info_type", "itid");
  AddFk(&db, "aka_name", "pid", "person", "pid");
  AddFk(&db, "aka_title", "mid", "movie", "mid");
  AddFk(&db, "movie_keyword", "mid", "movie", "mid");
  AddFk(&db, "movie_keyword", "kid", "keyword", "kid");
  AddFk(&db, "person_info", "pid", "person", "pid");
  AddFk(&db, "person_info", "info_type_id", "info_type", "itid");
  AddFk(&db, "movie_link", "mid", "movie", "mid");
  AddFk(&db, "movie_link", "linked_mid", "movie", "mid");
  AddFk(&db, "movie_link", "link_type_id", "link_type", "ltid");
  AddFk(&db, "complete_cast", "mid", "movie", "mid");
  AddFk(&db, "complete_cast", "subject_id", "comp_cast_type", "cctid");

  MW_CHECK_EQ(db.num_relations(), 19u)
      << "IMDb-like schema must match the paper's 19 relations";
  MW_CHECK_EQ(db.TotalAttributes(), 57u)
      << "IMDb-like schema must match the paper's 57 attributes";

  // --- Instance generation -----------------------------------------------
  static const char* kKinds[] = {"movie", "tv series", "tv movie",
                                 "video", "short"};
  {
    Relation* rel = db.mutable_relation(db.FindRelation("kind_type"));
    for (size_t k = 0; k < 5; ++k) {
      rel->AppendUnchecked(Row{IdOf(k), Value(kKinds[k])});
    }
  }
  static const char* kRoles[] = {"actor", "actress", "director",
                                 "producer", "writer", "composer"};
  {
    Relation* rel = db.mutable_relation(db.FindRelation("role_type"));
    for (size_t r = 0; r < 6; ++r) {
      rel->AppendUnchecked(Row{IdOf(r), Value(kRoles[r])});
    }
  }
  static const char* kInfoTypes[] = {"release date", "runtime", "country",
                                     "birth date", "birth place",
                                     "tagline"};
  {
    Relation* rel = db.mutable_relation(db.FindRelation("info_type"));
    for (size_t i = 0; i < 6; ++i) {
      rel->AppendUnchecked(Row{IdOf(i), Value(kInfoTypes[i])});
    }
  }
  static const char* kLinks[] = {"sequel", "remake", "references",
                                 "follows"};
  {
    Relation* rel = db.mutable_relation(db.FindRelation("link_type"));
    for (size_t l = 0; l < 4; ++l) {
      rel->AppendUnchecked(Row{IdOf(l), Value(kLinks[l])});
    }
  }
  static const char* kCastKinds[] = {"cast", "crew", "complete",
                                     "complete+verified"};
  {
    Relation* rel = db.mutable_relation(db.FindRelation("comp_cast_type"));
    for (size_t c = 0; c < 4; ++c) {
      rel->AppendUnchecked(Row{IdOf(c), Value(kCastKinds[c])});
    }
  }

  std::vector<std::string> person_names(people);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("person"));
    for (size_t p = 0; p < people; ++p) {
      person_names[p] = MakePersonName(&rng);
      rel->AppendUnchecked(Row{IdOf(p), Value(person_names[p]),
                               Value(rng.Bernoulli(0.5) ? "m" : "f")});
    }
  }
  std::vector<std::string> movie_titles(movies);
  {
    Relation* rel = db.mutable_relation(db.FindRelation("movie"));
    for (size_t m = 0; m < movies; ++m) {
      movie_titles[m] = MakeMovieTitle(&rng);
      rel->AppendUnchecked(
          Row{IdOf(m), Value(movie_titles[m]),
              Value(std::to_string(rng.UniformInt(1950, 2011))),
              IdOf(rng.Index(5))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("company_name"));
    for (size_t c = 0; c < companies; ++c) {
      rel->AppendUnchecked(
          Row{IdOf(c), Value(MakeCompanyName(&rng)),
              Value(ToLower(rng.Pick(Countries()).substr(0, 2)))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("char_name"));
    for (size_t c = 0; c < char_names; ++c) {
      rel->AppendUnchecked(Row{IdOf(c),
                               Value(rng.Bernoulli(0.5)
                                         ? MakePersonName(&rng)
                                         : rng.Pick(FirstNames()))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("keyword"));
    for (size_t k = 0; k < keywords; ++k) {
      rel->AppendUnchecked(Row{IdOf(k), Value(rng.Pick(FillerWords()))});
    }
  }
  {
    // Every movie gets one director, one producer, and several actors.
    Relation* rel = db.mutable_relation(db.FindRelation("cast_info"));
    size_t ci = 0;
    for (size_t m = 0; m < movies; ++m) {
      auto add = [&](size_t role) {
        const size_t p = rng.Index(people);
        const Value char_ref = rng.Bernoulli(0.5)
                                   ? IdOf(rng.Index(char_names))
                                   : Value::Null();
        rel->AppendUnchecked(
            Row{IdOf(ci++), IdOf(m), IdOf(p), IdOf(role), char_ref});
      };
      add(2);  // director
      add(3);  // producer
      const size_t actors = static_cast<size_t>(rng.UniformInt(2, 5));
      for (size_t a = 0; a < actors; ++a) add(rng.Bernoulli(0.5) ? 0 : 1);
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("movie_companies"));
    size_t mc = 0;
    for (size_t m = 0; m < movies; ++m) {
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 2));
      for (size_t k = 0; k < n; ++k) {
        // Real IMDb notes carry role and year, e.g. "(production) (2004)".
        const std::string note =
            std::string(rng.Bernoulli(0.5) ? "(production)"
                                           : "(distribution)") +
            " (" + std::to_string(rng.UniformInt(1950, 2011)) + ")";
        rel->AppendUnchecked(Row{IdOf(mc++), IdOf(m),
                                 IdOf(rng.Index(companies)), Value(note)});
      }
    }
  }
  {
    // movie_info: every movie gets a release date, plus runtime/country.
    Relation* rel = db.mutable_relation(db.FindRelation("movie_info"));
    size_t mi = 0;
    for (size_t m = 0; m < movies; ++m) {
      rel->AppendUnchecked(
          Row{IdOf(mi++), IdOf(m), IdOf(0),
              Value(MakeDate(&rng, 1950, 2011))});
      rel->AppendUnchecked(
          Row{IdOf(mi++), IdOf(m), IdOf(1),
              Value(std::to_string(rng.UniformInt(80, 190)) + " min")});
      if (rng.Bernoulli(0.6)) {
        rel->AppendUnchecked(Row{IdOf(mi++), IdOf(m), IdOf(2),
                                 Value(rng.Pick(Countries()))});
      }
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("aka_name"));
    size_t an = 0;
    for (size_t p = 0; p < people; ++p) {
      if (!rng.Bernoulli(0.25)) continue;
      rel->AppendUnchecked(Row{IdOf(an++), IdOf(p),
                               Value(rng.Pick(FirstNames()) + " " +
                                     rng.Pick(LastNames()))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("aka_title"));
    size_t at = 0;
    for (size_t m = 0; m < movies; ++m) {
      if (!rng.Bernoulli(0.3)) continue;
      rel->AppendUnchecked(Row{IdOf(at++), IdOf(m),
                               Value(MakeMovieTitle(&rng))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("movie_keyword"));
    size_t mk = 0;
    for (size_t m = 0; m < movies; ++m) {
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 4));
      std::set<size_t> used;
      for (size_t k = 0; k < n; ++k) {
        const size_t kw = rng.Index(keywords);
        if (!used.insert(kw).second) continue;
        rel->AppendUnchecked(Row{IdOf(mk++), IdOf(m), IdOf(kw)});
      }
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("person_info"));
    size_t pi = 0;
    for (size_t p = 0; p < people; ++p) {
      rel->AppendUnchecked(Row{IdOf(pi++), IdOf(p), IdOf(3),
                               Value(MakeDate(&rng, 1930, 1995))});
      if (rng.Bernoulli(0.5)) {
        rel->AppendUnchecked(Row{IdOf(pi++), IdOf(p), IdOf(4),
                                 Value(rng.Pick(Cities()))});
      }
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("movie_link"));
    size_t ml = 0;
    for (size_t m = 0; m < movies; ++m) {
      if (!rng.Bernoulli(0.2)) continue;
      rel->AppendUnchecked(Row{IdOf(ml++), IdOf(m), IdOf(rng.Index(movies)),
                               IdOf(rng.Index(4))});
    }
  }
  {
    Relation* rel = db.mutable_relation(db.FindRelation("complete_cast"));
    size_t cc = 0;
    for (size_t m = 0; m < movies; ++m) {
      if (!rng.Bernoulli(0.4)) continue;
      rel->AppendUnchecked(Row{IdOf(cc++), IdOf(m), IdOf(rng.Index(4))});
    }
  }

  return db;
}

}  // namespace mweaver::datagen
