#include "text/fulltext_engine.h"

#include <algorithm>
#include <optional>

#include "common/failpoint.h"
#include "common/hash_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/thread_pool.h"
#include "text/numeric.h"

namespace mweaver::text {

namespace {

uint64_t PolicyFingerprint(const MatchPolicy& policy) {
  size_t seed = static_cast<size_t>(policy.mode);
  HashCombine(&seed, policy.max_edit_distance);
  HashCombine(&seed, policy.match_numeric);
  return seed;
}

}  // namespace

void FullTextEngine::InitMetadata(const storage::Database* db,
                                  MatchPolicy policy,
                                  const EngineOptions& options) {
  MW_CHECK(db != nullptr);
  db_ = db;
  policy_ = policy;
  policy_fp_ = PolicyFingerprint(policy);
  probe_cache_ = std::make_shared<ProbeCache>(options.probe_cache_bytes);
  shard_index_ = options.shard_index;
  shard_count_ = options.shard_count;
  MW_CHECK(shard_count_ <= 1 || shard_index_ < shard_count_);
  rel_versions_.assign(db->num_relations(), 0);
  for (size_t r = 0; r < db->num_relations(); ++r) {
    const storage::RelationId rel_id = static_cast<storage::RelationId>(r);
    const storage::Relation& rel = db->relation(rel_id);
    for (size_t a = 0; a < rel.schema().num_attributes(); ++a) {
      const storage::AttributeSchema& attr_schema =
          rel.schema().attributes()[a];
      if (!attr_schema.searchable) continue;
      const AttributeRef ref{rel_id, static_cast<storage::AttributeId>(a)};
      if (attr_schema.type == storage::ValueType::kString) {
        index_of_attr_[ref] = indexed_attrs_.size();
        indexed_attrs_.push_back(ref);
      } else if (attr_schema.type == storage::ValueType::kInt64 ||
                 attr_schema.type == storage::ValueType::kDouble) {
        numeric_attrs_.push_back(ref);
      }
    }
  }
  for (size_t i = 0; i < indexed_attrs_.size(); ++i) {
    slot_of_attr_[indexed_attrs_[i]] = static_cast<int>(i);
  }
  for (size_t i = 0; i < numeric_attrs_.size(); ++i) {
    slot_of_attr_[numeric_attrs_[i]] =
        static_cast<int>(indexed_attrs_.size() + i);
  }
}

FullTextEngine::FullTextEngine(const storage::Database* db, MatchPolicy policy,
                               EngineOptions options) {
  InitMetadata(db, policy, options);
  // Per-attribute index builds are independent; fan them out on the shared
  // pool. (Token dictionary, trigram table and deletion table of each
  // attribute are all built inside the InvertedIndex constructor.)
  indexes_.resize(indexed_attrs_.size());
  const size_t threads = options.build_threads != 0
                             ? options.build_threads
                             : ThreadPool::Shared().num_threads();
  ParallelFor(indexed_attrs_.size(), threads, [&](size_t i) {
    // Chaos site: latency spikes during the parallel n-gram/deletion index
    // build (builds cannot fail, so only kDelay is meaningful here).
    (void)MW_FAILPOINT_FIRE("text.index.build");
    const AttributeRef& ref = indexed_attrs_[i];
    indexes_[i] = std::make_shared<InvertedIndex>(
        db->relation(ref.relation), ref.attribute, shard_index_, shard_count_);
  });
}

std::unique_ptr<FullTextEngine> FullTextEngine::CloneForDelta(
    const storage::Database* db,
    const std::vector<storage::RelationId>& touched,
    uint64_t new_version) const {
  MW_CHECK(db != nullptr);
  auto delta = std::unique_ptr<FullTextEngine>(new FullTextEngine());
  delta->db_ = db;
  delta->policy_ = policy_;
  delta->policy_fp_ = policy_fp_;
  delta->indexed_attrs_ = indexed_attrs_;
  delta->index_of_attr_ = index_of_attr_;
  delta->numeric_attrs_ = numeric_attrs_;
  delta->slot_of_attr_ = slot_of_attr_;
  delta->rel_versions_ = rel_versions_;
  delta->shard_index_ = shard_index_;
  delta->shard_count_ = shard_count_;
  delta->probe_cache_ = probe_cache_;  // shared; versions fence staleness
  delta->indexes_.resize(indexes_.size());
  for (size_t i = 0; i < indexes_.size(); ++i) {
    const storage::RelationId rel = indexed_attrs_[i].relation;
    const bool is_touched =
        std::find(touched.begin(), touched.end(), rel) != touched.end();
    delta->indexes_[i] = is_touched
                             ? std::make_shared<InvertedIndex>(*indexes_[i])
                             : indexes_[i];
  }
  for (storage::RelationId rel : touched) {
    delta->rel_versions_[static_cast<size_t>(rel)] = new_version;
  }
  return delta;
}

void FullTextEngine::ApplyRowInsert(storage::RelationId relation,
                                    storage::RowId row) {
  if (shard_count_ > 1 && ShardOfRow(row, shard_count_) != shard_index_) {
    return;  // the row belongs to a sibling shard
  }
  const storage::Relation& rel = db_->relation(relation);
  for (size_t i = 0; i < indexed_attrs_.size(); ++i) {
    if (indexed_attrs_[i].relation != relation) continue;
    indexes_[i]->AddRow(row, rel.at(row, indexed_attrs_[i].attribute));
  }
}

void FullTextEngine::ApplyRowDelete(storage::RelationId relation,
                                    storage::RowId row) {
  if (shard_count_ > 1 && ShardOfRow(row, shard_count_) != shard_index_) {
    return;  // the row belongs to a sibling shard
  }
  const storage::Relation& rel = db_->relation(relation);
  for (size_t i = 0; i < indexed_attrs_.size(); ++i) {
    if (indexed_attrs_[i].relation != relation) continue;
    indexes_[i]->RemoveRow(row, rel.at(row, indexed_attrs_[i].attribute));
  }
}

void FullTextEngine::FinalizeDelta(
    const std::vector<storage::RelationId>& touched) {
  for (size_t i = 0; i < indexed_attrs_.size(); ++i) {
    const storage::RelationId rel = indexed_attrs_[i].relation;
    if (std::find(touched.begin(), touched.end(), rel) != touched.end()) {
      indexes_[i]->FinalizeDelta();
    }
  }
}

size_t FullTextEngine::MaxRemovedRows(storage::RelationId relation) const {
  size_t max_removed = 0;
  for (size_t i = 0; i < indexed_attrs_.size(); ++i) {
    if (indexed_attrs_[i].relation != relation) continue;
    max_removed = std::max(max_removed, indexes_[i]->num_removed_rows());
  }
  return max_removed;
}

void FullTextEngine::CompactRelationIndexes(storage::RelationId relation) {
  const storage::Relation& rel = db_->relation(relation);
  for (size_t i = 0; i < indexed_attrs_.size(); ++i) {
    if (indexed_attrs_[i].relation != relation) continue;
    indexes_[i]->Compact(rel, indexed_attrs_[i].attribute);
  }
}

std::string FullTextEngine::CellText(const AttributeRef& attr,
                                     storage::RowId row) const {
  return db_->relation(attr.relation).at(row, attr.attribute)
      .ToDisplayString();
}

std::vector<Occurrence> FullTextEngine::FindOccurrences(
    const std::string& sample, ProbeCounters* counters) const {
  std::vector<Occurrence> occurrences;
  for (const AttributeRef& attr : indexed_attrs_) {
    RowSet rows = MatchingRows(attr, sample, counters);
    if (!rows->empty()) {
      occurrences.push_back(Occurrence{attr, std::move(rows)});
    }
  }
  if (policy_.match_numeric && ParseNumeric(sample).has_value()) {
    for (const AttributeRef& attr : numeric_attrs_) {
      RowSet rows = MatchingRows(attr, sample, counters);
      if (!rows->empty()) {
        occurrences.push_back(Occurrence{attr, std::move(rows)});
      }
    }
  }
  return occurrences;
}

bool FullTextEngine::IsNumericAttr(const AttributeRef& attr) const {
  const storage::ValueType type = db_->relation(attr.relation)
                                      .schema()
                                      .attribute(attr.attribute)
                                      .type;
  return type == storage::ValueType::kInt64 ||
         type == storage::ValueType::kDouble;
}

std::vector<storage::RowId> FullTextEngine::NumericMatches(
    const AttributeRef& attr, double sample) const {
  std::vector<storage::RowId> rows;
  const storage::Relation& rel = db_->relation(attr.relation);
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    if (rel.is_deleted(static_cast<storage::RowId>(r))) continue;
    if (NumericEquals(rel.at(static_cast<storage::RowId>(r), attr.attribute),
                      sample)) {
      rows.push_back(static_cast<storage::RowId>(r));
    }
  }
  return rows;
}

RowSet FullTextEngine::MatchingRows(const AttributeRef& attr,
                                    const std::string& sample,
                                    ProbeCounters* counters) const {
  ProbeStats stats;
  stats.probes = 1;
  const uint64_t version = relation_version(attr.relation);
  if (RowSet cached = probe_cache_->Lookup(attr.relation, attr.attribute,
                                           policy_fp_, version, sample)) {
    stats.memo_hits = 1;
    probe_totals_.Record(stats);
    if (counters != nullptr) counters->Record(stats);
    return cached;
  }
  stats.memo_misses = 1;

  // Compute outside any lock (reads immutable indexes and relation data); a
  // racing thread may compute and insert the same entry, which is harmless.
  std::vector<storage::RowId> verified;
  bool cacheable = true;
  auto idx_it = index_of_attr_.find(attr);
  if (idx_it == index_of_attr_.end()) {
    // Numeric attributes are matched by a (memoized) verification scan.
    const std::optional<double> numeric =
        policy_.match_numeric ? ParseNumeric(sample) : std::nullopt;
    const bool searchable_numeric =
        numeric.has_value() &&
        std::find(numeric_attrs_.begin(), numeric_attrs_.end(), attr) !=
            numeric_attrs_.end();
    if (!searchable_numeric) {
      probe_totals_.Record(stats);
      if (counters != nullptr) counters->Record(stats);
      return EmptyRowSet();
    }
    verified = NumericMatches(attr, *numeric);
  } else {
    const InvertedIndex& index = *indexes_[idx_it->second];
    for (storage::RowId row : index.CandidateRows(sample, policy_, &stats)) {
      if (NoisyContains(CellText(attr, row), sample, policy_)) {
        verified.push_back(row);
      }
    }
    // Punctuation-only samples degrade to an all-rows candidate set; caching
    // the (column-sized) verified result would let degenerate probes flush
    // the memo's useful working set.
    cacheable = stats.all_rows_fallbacks == 0;
  }
  probe_totals_.Record(stats);
  if (counters != nullptr) counters->Record(stats);

  RowSet result = verified.empty()
                      ? EmptyRowSet()
                      : std::make_shared<const std::vector<storage::RowId>>(
                            std::move(verified));
  if (cacheable) {
    probe_cache_->Insert(attr.relation, attr.attribute, policy_fp_, version,
                         sample, result);
  }
  return result;
}

bool FullTextEngine::RowContains(const AttributeRef& attr, storage::RowId row,
                                 const std::string& sample) const {
  if (db_->relation(attr.relation).is_deleted(row)) return false;
  if (policy_.match_numeric && IsNumericAttr(attr)) {
    const std::optional<double> numeric = ParseNumeric(sample);
    return numeric.has_value() &&
           NumericEquals(db_->relation(attr.relation).at(row, attr.attribute),
                         *numeric);
  }
  return NoisyContains(CellText(attr, row), sample, policy_);
}

double FullTextEngine::RowMatchScore(const AttributeRef& attr,
                                     storage::RowId row,
                                     const std::string& sample) const {
  if (db_->relation(attr.relation).is_deleted(row)) return 0.0;
  if (policy_.match_numeric && IsNumericAttr(attr)) {
    return RowContains(attr, row, sample) ? 1.0 : 0.0;
  }
  return MatchScore(CellText(attr, row), sample, policy_);
}

std::string FullTextEngine::AttributeName(const AttributeRef& attr) const {
  const storage::Relation& rel = db_->relation(attr.relation);
  return rel.name() + "." + rel.schema().attribute(attr.attribute).name;
}

size_t FullTextEngine::index_bytes() const {
  size_t bytes = 0;
  for (const auto& index : indexes_) bytes += index->index_bytes();
  return bytes;
}

}  // namespace mweaver::text
