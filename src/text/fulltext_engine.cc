#include "text/fulltext_engine.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "text/numeric.h"

namespace mweaver::text {

namespace {
const std::vector<storage::RowId> kNoRows;
}  // namespace

FullTextEngine::FullTextEngine(const storage::Database* db, MatchPolicy policy)
    : db_(db), policy_(policy) {
  MW_CHECK(db != nullptr);
  for (size_t r = 0; r < db->num_relations(); ++r) {
    const storage::RelationId rel_id = static_cast<storage::RelationId>(r);
    const storage::Relation& rel = db->relation(rel_id);
    for (size_t a = 0; a < rel.schema().num_attributes(); ++a) {
      const storage::AttributeSchema& attr_schema =
          rel.schema().attributes()[a];
      if (!attr_schema.searchable) continue;
      const AttributeRef ref{rel_id, static_cast<storage::AttributeId>(a)};
      if (attr_schema.type == storage::ValueType::kString) {
        index_of_attr_[ref] = indexes_.size();
        indexed_attrs_.push_back(ref);
        indexes_.push_back(
            std::make_unique<InvertedIndex>(rel, ref.attribute));
      } else if (attr_schema.type == storage::ValueType::kInt64 ||
                 attr_schema.type == storage::ValueType::kDouble) {
        numeric_attrs_.push_back(ref);
      }
    }
  }
}

std::string FullTextEngine::CellText(const AttributeRef& attr,
                                     storage::RowId row) const {
  return db_->relation(attr.relation).at(row, attr.attribute)
      .ToDisplayString();
}

std::vector<Occurrence> FullTextEngine::FindOccurrences(
    const std::string& sample) const {
  std::vector<Occurrence> occurrences;
  for (const AttributeRef& attr : indexed_attrs_) {
    const std::vector<storage::RowId>& rows = MatchingRows(attr, sample);
    if (!rows.empty()) {
      occurrences.push_back(Occurrence{attr, rows});
    }
  }
  if (policy_.match_numeric && ParseNumeric(sample).has_value()) {
    for (const AttributeRef& attr : numeric_attrs_) {
      const std::vector<storage::RowId>& rows = MatchingRows(attr, sample);
      if (!rows.empty()) {
        occurrences.push_back(Occurrence{attr, rows});
      }
    }
  }
  return occurrences;
}

bool FullTextEngine::IsNumericAttr(const AttributeRef& attr) const {
  const storage::ValueType type = db_->relation(attr.relation)
                                      .schema()
                                      .attribute(attr.attribute)
                                      .type;
  return type == storage::ValueType::kInt64 ||
         type == storage::ValueType::kDouble;
}

std::vector<storage::RowId> FullTextEngine::NumericMatches(
    const AttributeRef& attr, double sample) const {
  std::vector<storage::RowId> rows;
  const storage::Relation& rel = db_->relation(attr.relation);
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    if (NumericEquals(rel.at(static_cast<storage::RowId>(r), attr.attribute),
                      sample)) {
      rows.push_back(static_cast<storage::RowId>(r));
    }
  }
  return rows;
}

const std::vector<storage::RowId>& FullTextEngine::MatchingRows(
    const AttributeRef& attr, const std::string& sample) const {
  const auto cache_key = std::make_pair(attr, sample);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto cached = match_cache_.find(cache_key);
    if (cached != match_cache_.end()) return cached->second;
  }

  // Compute outside the lock (reads immutable indexes and relation data);
  // a racing thread may compute the same entry — emplace keeps the first.
  std::vector<storage::RowId> verified;
  auto idx_it = index_of_attr_.find(attr);
  if (idx_it == index_of_attr_.end()) {
    // Numeric attributes are matched by a (memoized) verification scan.
    const std::optional<double> numeric =
        policy_.match_numeric ? ParseNumeric(sample) : std::nullopt;
    const bool searchable_numeric =
        numeric.has_value() &&
        std::find(numeric_attrs_.begin(), numeric_attrs_.end(), attr) !=
            numeric_attrs_.end();
    if (!searchable_numeric) return kNoRows;
    verified = NumericMatches(attr, *numeric);
  } else {
    const InvertedIndex& index = *indexes_[idx_it->second];
    for (storage::RowId row : index.CandidateRows(sample, policy_)) {
      if (NoisyContains(CellText(attr, row), sample, policy_)) {
        verified.push_back(row);
      }
    }
  }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto [it, inserted] = match_cache_.emplace(cache_key, std::move(verified));
  return it->second;
}

bool FullTextEngine::RowContains(const AttributeRef& attr, storage::RowId row,
                                 const std::string& sample) const {
  if (policy_.match_numeric && IsNumericAttr(attr)) {
    const std::optional<double> numeric = ParseNumeric(sample);
    return numeric.has_value() &&
           NumericEquals(db_->relation(attr.relation).at(row, attr.attribute),
                         *numeric);
  }
  return NoisyContains(CellText(attr, row), sample, policy_);
}

double FullTextEngine::RowMatchScore(const AttributeRef& attr,
                                     storage::RowId row,
                                     const std::string& sample) const {
  if (policy_.match_numeric && IsNumericAttr(attr)) {
    return RowContains(attr, row, sample) ? 1.0 : 0.0;
  }
  return MatchScore(CellText(attr, row), sample, policy_);
}

std::string FullTextEngine::AttributeName(const AttributeRef& attr) const {
  const storage::Relation& rel = db_->relation(attr.relation);
  return rel.name() + "." + rel.schema().attribute(attr.attribute).name;
}

}  // namespace mweaver::text
