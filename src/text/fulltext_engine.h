// FullTextEngine: approximate keyword search over every searchable attribute
// of a Database. Provides the two primitives TPW needs from the "MySQL
// full-text" substrate: find all occurrences of a sample (Algorithm 1), and
// the verified matching rows of one attribute (used when executing pairwise
// mapping queries and pruning queries).
#ifndef MWEAVER_TEXT_FULLTEXT_ENGINE_H_
#define MWEAVER_TEXT_FULLTEXT_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/lookup_stats.h"
#include "text/match.h"
#include "text/probe_cache.h"

namespace mweaver::text {

/// \brief Identifies one source attribute (the elements of the location map
/// L(i), e.g. "person.name").
struct AttributeRef {
  storage::RelationId relation = storage::kInvalidRelation;
  storage::AttributeId attribute = storage::kInvalidAttribute;

  bool operator==(const AttributeRef& other) const = default;
  bool operator<(const AttributeRef& other) const {
    return relation != other.relation ? relation < other.relation
                                      : attribute < other.attribute;
  }
};

/// \brief All rows of one attribute that noisily contain a sample.
struct Occurrence {
  AttributeRef attr;
  RowSet rows;  // sorted, verified matches (never null)
};

/// \brief Tuning knobs of the engine's acceleration layer.
struct EngineOptions {
  /// Byte budget of the probe memo (0 disables memoization).
  size_t probe_cache_bytes = 8u << 20;
  /// Threads for the per-attribute parallel index build; 0 picks the
  /// process-wide thread-pool size.
  size_t build_threads = 0;
  /// Shard scope: with `shard_count` > 1 the engine indexes only the rows
  /// common::ShardOfRow assigns to `shard_index`. Row ids stay physical
  /// (relation-global); ShardedTextEngine unions per-shard results.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
};

/// \brief Full-text search engine over one database instance.
///
/// Indexes are built eagerly (and in parallel across attributes) at
/// construction for every `searchable` string attribute. Verified
/// per-(attribute, sample) match sets are memoized in a byte-bounded LRU
/// ProbeCache, mirroring how a production engine caches hot keyword queries
/// during an interactive session.
class FullTextEngine {
 public:
  /// \brief Builds inverted indexes over `db`. The database must outlive the
  /// engine and must not change afterwards except through the delta protocol
  /// below (CloneForDelta + ApplyRow*).
  FullTextEngine(const storage::Database* db, MatchPolicy policy,
                 EngineOptions options = {});

  virtual ~FullTextEngine() = default;
  FullTextEngine(const FullTextEngine&) = delete;
  FullTextEngine& operator=(const FullTextEngine&) = delete;

  /// \brief Copy-on-write copy for a streaming update: indexes over
  /// relations in `touched` are deep-copied (the caller is about to mutate
  /// them via ApplyRowInsert/ApplyRowDelete), the rest share the base
  /// engine's immutable indexes. The probe memo is shared with the base —
  /// its entries are keyed by per-relation version, and every touched
  /// relation's version is bumped to `new_version`, so entries for touched
  /// relations go stale by construction while untouched relations keep
  /// their hit rate. `db` is the delta's own CoW database (same physical
  /// row ids as the base).
  std::unique_ptr<FullTextEngine> CloneForDelta(
      const storage::Database* db,
      const std::vector<storage::RelationId>& touched,
      uint64_t new_version) const;

  /// \brief Incrementally indexes a freshly appended row of `relation`
  /// across every indexed attribute. Only valid on a CloneForDelta engine
  /// whose `touched` set included the relation, before the engine is
  /// published. A sharded engine indexes the row only when
  /// common::ShardOfRow assigns it to this shard.
  virtual void ApplyRowInsert(storage::RelationId relation, storage::RowId row);

  /// \brief Removes a tombstoned row of `relation` from every indexed
  /// attribute. Same ownership restrictions as ApplyRowInsert; the row's
  /// values must still be physically readable (tombstoned, not erased).
  virtual void ApplyRowDelete(storage::RelationId relation, storage::RowId row);

  /// \brief Refreshes byte accounting on the touched relations' indexes
  /// after a batch of ApplyRow* calls.
  virtual void FinalizeDelta(const std::vector<storage::RelationId>& touched);

  /// \brief Largest per-index removed-row count among `relation`'s indexes:
  /// the delta-compaction policy input.
  virtual size_t MaxRemovedRows(storage::RelationId relation) const;

  /// \brief Rebuilds every index of `relation` from scratch over its live
  /// rows, reclaiming dictionary garbage left by removals. Same ownership
  /// restrictions as ApplyRowInsert.
  virtual void CompactRelationIndexes(storage::RelationId relation);

  /// \brief Update version of one relation: 0 at Publish, bumped to the
  /// snapshot's minor epoch whenever a streaming update touches the
  /// relation. Part of the probe-memo key and LocationMap's staleness
  /// stamp.
  uint64_t relation_version(storage::RelationId relation) const {
    const auto r = static_cast<size_t>(relation);
    return r < rel_versions_.size() ? rel_versions_[r] : 0;
  }
  const std::vector<uint64_t>& relation_versions() const {
    return rel_versions_;
  }

  const storage::Database& db() const { return *db_; }
  const MatchPolicy& policy() const { return policy_; }

  /// \brief All attributes containing `sample`, with their verified matching
  /// rows — one call per sample implements Algorithm 1's location map entry.
  /// `counters`, when given, accumulates probe/memo statistics.
  std::vector<Occurrence> FindOccurrences(
      const std::string& sample, ProbeCounters* counters = nullptr) const;

  /// \brief Verified rows of one attribute that noisily contain `sample`
  /// (sorted, never null). Returns the empty set for non-indexed attributes.
  virtual RowSet MatchingRows(const AttributeRef& attr,
                              const std::string& sample,
                              ProbeCounters* counters = nullptr) const;

  /// \brief True iff the given row's attribute value noisily contains
  /// `sample`.
  bool RowContains(const AttributeRef& attr, storage::RowId row,
                   const std::string& sample) const;

  /// \brief Match score of one cell against a sample (0 when not contained).
  double RowMatchScore(const AttributeRef& attr, storage::RowId row,
                       const std::string& sample) const;

  /// \brief "relation.attribute" display name.
  std::string AttributeName(const AttributeRef& attr) const;

  /// \brief Number of indexed (relation, attribute) columns.
  size_t num_indexed_attributes() const { return indexed_attrs_.size(); }
  /// \brief Searchable numeric columns considered when the policy enables
  /// numeric-sample matching.
  size_t num_numeric_attributes() const { return numeric_attrs_.size(); }

  /// \brief Dense slot of `attr` among this engine's searchable attributes
  /// (indexed string attributes first, then numeric ones), or -1 when not
  /// searchable. Stable for the engine's lifetime and < num_attr_slots();
  /// backs LocationMap's bitset membership probe.
  int AttrSlot(const AttributeRef& attr) const {
    auto it = slot_of_attr_.find(attr);
    return it == slot_of_attr_.end() ? -1 : it->second;
  }
  size_t num_attr_slots() const {
    return indexed_attrs_.size() + numeric_attrs_.size();
  }

  /// \brief Approximate heap footprint of all attribute indexes.
  virtual size_t index_bytes() const;
  /// \brief Lifetime probe statistics across every caller of this engine
  /// (callers passing their own ProbeCounters are counted here too).
  ProbeStats probe_totals() const { return probe_totals_.Snapshot(); }
  ProbeCache::Stats probe_cache_stats() const { return probe_cache_->stats(); }

  /// \brief Shard topology of this engine: 1 for a monolithic engine or one
  /// shard of a bundle; ShardedTextEngine reports its fanout width.
  virtual uint32_t shard_count() const { return 1; }

 protected:
  // For CloneForDelta (and the sharded facade), which fill every member
  // themselves.
  FullTextEngine() = default;

  // Fills every metadata member (attribute discovery, slot numbering,
  // relation versions, policy fingerprint, probe memo, shard scope) without
  // building any index. Shared by the public constructor and
  // ShardedTextEngine, whose per-attribute indexes live in its shard
  // engines.
  void InitMetadata(const storage::Database* db, MatchPolicy policy,
                    const EngineOptions& options);

  std::string CellText(const AttributeRef& attr, storage::RowId row) const;
  bool IsNumericAttr(const AttributeRef& attr) const;
  // Verified rows of a numeric attribute matching a numeric sample.
  std::vector<storage::RowId> NumericMatches(const AttributeRef& attr,
                                             double sample) const;

  const storage::Database* db_ = nullptr;
  MatchPolicy policy_;
  uint64_t policy_fp_ = 0;  // fingerprint of policy_, part of the memo key
  // Index storage aligned with `indexed_attrs_`. shared_ptr so a delta
  // engine shares untouched indexes with its base; only the deep-copied
  // touched ones are ever mutated, and only pre-publication.
  std::vector<AttributeRef> indexed_attrs_;
  std::vector<std::shared_ptr<InvertedIndex>> indexes_;
  std::map<AttributeRef, size_t> index_of_attr_;
  // Searchable int64/double columns (no inverted index; matched by scan).
  std::vector<AttributeRef> numeric_attrs_;
  // Dense AttrSlot() numbering over indexed + numeric attributes.
  std::map<AttributeRef, int> slot_of_attr_;
  // Per-relation update version (see relation_version()).
  std::vector<uint64_t> rel_versions_;
  // Shard scope (EngineOptions::shard_*): ApplyRow* silently skips rows the
  // shard hash assigns elsewhere, so a sharded facade can broadcast row ops.
  uint32_t shard_index_ = 0;
  uint32_t shard_count_ = 1;
  // Byte-bounded memo of verified results (thread safety is needed by the
  // parallel pairwise step, core/pairwise.h). Shared across one publish
  // lineage — a Publish mints a fresh cache, streaming deltas reuse their
  // base's, with per-relation versions in the key fencing stale entries.
  // Punctuation-only fallback results are never inserted — see
  // CandidateRows' all_rows_ contract.
  mutable std::shared_ptr<ProbeCache> probe_cache_;
  mutable ProbeCounters probe_totals_;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_FULLTEXT_ENGINE_H_
