// FullTextEngine: approximate keyword search over every searchable attribute
// of a Database. Provides the two primitives TPW needs from the "MySQL
// full-text" substrate: find all occurrences of a sample (Algorithm 1), and
// the verified matching rows of one attribute (used when executing pairwise
// mapping queries and pruning queries).
#ifndef MWEAVER_TEXT_FULLTEXT_ENGINE_H_
#define MWEAVER_TEXT_FULLTEXT_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/database.h"
#include "text/inverted_index.h"
#include "text/lookup_stats.h"
#include "text/match.h"
#include "text/probe_cache.h"

namespace mweaver::text {

/// \brief Identifies one source attribute (the elements of the location map
/// L(i), e.g. "person.name").
struct AttributeRef {
  storage::RelationId relation = storage::kInvalidRelation;
  storage::AttributeId attribute = storage::kInvalidAttribute;

  bool operator==(const AttributeRef& other) const = default;
  bool operator<(const AttributeRef& other) const {
    return relation != other.relation ? relation < other.relation
                                      : attribute < other.attribute;
  }
};

/// \brief All rows of one attribute that noisily contain a sample.
struct Occurrence {
  AttributeRef attr;
  RowSet rows;  // sorted, verified matches (never null)
};

/// \brief Tuning knobs of the engine's acceleration layer.
struct EngineOptions {
  /// Byte budget of the probe memo (0 disables memoization).
  size_t probe_cache_bytes = 8u << 20;
  /// Threads for the per-attribute parallel index build; 0 picks the
  /// process-wide thread-pool size.
  size_t build_threads = 0;
};

/// \brief Full-text search engine over one database instance.
///
/// Indexes are built eagerly (and in parallel across attributes) at
/// construction for every `searchable` string attribute. Verified
/// per-(attribute, sample) match sets are memoized in a byte-bounded LRU
/// ProbeCache, mirroring how a production engine caches hot keyword queries
/// during an interactive session.
class FullTextEngine {
 public:
  /// \brief Builds inverted indexes over `db`. The database must outlive the
  /// engine and must not grow afterwards.
  FullTextEngine(const storage::Database* db, MatchPolicy policy,
                 EngineOptions options = {});

  const storage::Database& db() const { return *db_; }
  const MatchPolicy& policy() const { return policy_; }

  /// \brief All attributes containing `sample`, with their verified matching
  /// rows — one call per sample implements Algorithm 1's location map entry.
  /// `counters`, when given, accumulates probe/memo statistics.
  std::vector<Occurrence> FindOccurrences(
      const std::string& sample, ProbeCounters* counters = nullptr) const;

  /// \brief Verified rows of one attribute that noisily contain `sample`
  /// (sorted, never null). Returns the empty set for non-indexed attributes.
  RowSet MatchingRows(const AttributeRef& attr, const std::string& sample,
                      ProbeCounters* counters = nullptr) const;

  /// \brief True iff the given row's attribute value noisily contains
  /// `sample`.
  bool RowContains(const AttributeRef& attr, storage::RowId row,
                   const std::string& sample) const;

  /// \brief Match score of one cell against a sample (0 when not contained).
  double RowMatchScore(const AttributeRef& attr, storage::RowId row,
                       const std::string& sample) const;

  /// \brief "relation.attribute" display name.
  std::string AttributeName(const AttributeRef& attr) const;

  /// \brief Number of indexed (relation, attribute) columns.
  size_t num_indexed_attributes() const { return indexes_.size(); }
  /// \brief Searchable numeric columns considered when the policy enables
  /// numeric-sample matching.
  size_t num_numeric_attributes() const { return numeric_attrs_.size(); }

  /// \brief Dense slot of `attr` among this engine's searchable attributes
  /// (indexed string attributes first, then numeric ones), or -1 when not
  /// searchable. Stable for the engine's lifetime and < num_attr_slots();
  /// backs LocationMap's bitset membership probe.
  int AttrSlot(const AttributeRef& attr) const {
    auto it = slot_of_attr_.find(attr);
    return it == slot_of_attr_.end() ? -1 : it->second;
  }
  size_t num_attr_slots() const {
    return indexed_attrs_.size() + numeric_attrs_.size();
  }

  /// \brief Approximate heap footprint of all attribute indexes.
  size_t index_bytes() const;
  /// \brief Lifetime probe statistics across every caller of this engine
  /// (callers passing their own ProbeCounters are counted here too).
  ProbeStats probe_totals() const { return probe_totals_.Snapshot(); }
  ProbeCache::Stats probe_cache_stats() const { return probe_cache_.stats(); }

 private:
  std::string CellText(const AttributeRef& attr, storage::RowId row) const;
  bool IsNumericAttr(const AttributeRef& attr) const;
  // Verified rows of a numeric attribute matching a numeric sample.
  std::vector<storage::RowId> NumericMatches(const AttributeRef& attr,
                                             double sample) const;

  const storage::Database* db_;
  MatchPolicy policy_;
  uint64_t policy_fp_;  // fingerprint of policy_, part of the memo key
  // Index storage aligned with `indexed_attrs_`.
  std::vector<AttributeRef> indexed_attrs_;
  std::vector<std::unique_ptr<InvertedIndex>> indexes_;
  std::map<AttributeRef, size_t> index_of_attr_;
  // Searchable int64/double columns (no inverted index; matched by scan).
  std::vector<AttributeRef> numeric_attrs_;
  // Dense AttrSlot() numbering over indexed + numeric attributes.
  std::map<AttributeRef, int> slot_of_attr_;
  // Byte-bounded memo of verified results (thread safety is needed by the
  // parallel pairwise step, core/pairwise.h). Punctuation-only fallback
  // results are never inserted — see CandidateRows' all_rows_ contract.
  mutable ProbeCache probe_cache_;
  mutable ProbeCounters probe_totals_;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_FULLTEXT_ENGINE_H_
