#include "text/tokenizer.h"

#include <cctype>

namespace mweaver::text {

std::vector<std::string> Tokenize(std::string_view s, size_t min_length) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      if (current.size() >= min_length) tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (current.size() >= min_length) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace mweaver::text
