#include "text/deletion_index.h"

#include <algorithm>

namespace mweaver::text {

namespace {

// Appends the FNV-1a hash of `token` with the characters at (sorted,
// distinct) positions `skip1` and optionally `skip2` removed.
uint64_t HashSkipping(std::string_view token, size_t skip1, size_t skip2) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < token.size(); ++i) {
    if (i == skip1 || i == skip2) continue;
    h ^= static_cast<unsigned char>(token[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr size_t kNoSkip = static_cast<size_t>(-1);

}  // namespace

uint64_t DeletionIndex::HashVariant(std::string_view variant) {
  return HashSkipping(variant, kNoSkip, kNoSkip);
}

void DeletionIndex::CollectVariantHashes(std::string_view token,
                                         size_t budget,
                                         std::vector<uint64_t>* out) {
  out->clear();
  out->push_back(HashSkipping(token, kNoSkip, kNoSkip));
  if (budget >= 1) {
    for (size_t i = 0; i < token.size(); ++i) {
      out->push_back(HashSkipping(token, i, kNoSkip));
    }
  }
  if (budget >= 2) {
    for (size_t i = 0; i < token.size(); ++i) {
      for (size_t j = i + 1; j < token.size(); ++j) {
        out->push_back(HashSkipping(token, i, j));
      }
    }
  }
  // Distinct deletions can coincide ("aab" minus either 'a' is "ab").
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void DeletionIndex::Build(const std::vector<std::string>& tokens) {
  variant_lists_.clear();
  table_.clear();
  long_tokens_.Reset();
  // Accumulate the variant posting lists; a node map is fine at build time,
  // the flat probe table below is what lookups touch.
  std::unordered_map<uint64_t, uint32_t> index_of_hash;
  std::vector<uint64_t> hashes;
  for (TokenId id = 0; id < tokens.size(); ++id) {
    const std::string& t = tokens[id];
    if (t.size() > kMaxIndexedLength) {
      long_tokens_.Append(id);
      continue;
    }
    CollectVariantHashes(t, kMaxEdit, &hashes);
    for (uint64_t h : hashes) {
      auto [it, inserted] = index_of_hash.emplace(
          h, static_cast<uint32_t>(variant_lists_.size()));
      if (inserted) variant_lists_.emplace_back();
      BlockPostingList& list = variant_lists_[it->second];
      if (list.empty() || list.back() != id) list.Append(id);
    }
  }
  // Flat table at load factor <= 0.5, power-of-two size for mask probing.
  size_t table_size = 16;
  while (table_size < index_of_hash.size() * 2) table_size *= 2;
  table_.assign(table_size, Slot{});
  const size_t mask = table_size - 1;
  for (const auto& [h, idx] : index_of_hash) {
    size_t i = static_cast<size_t>(h) & mask;
    while (table_[i].idx != kEmptySlot) i = (i + 1) & mask;
    table_[i] = Slot{h, idx};
  }
  num_keys_ = index_of_hash.size();
  RecomputeBytes();
}

void DeletionIndex::Rehash(size_t new_size) {
  std::vector<Slot> old = std::move(table_);
  table_.assign(new_size, Slot{});
  const size_t mask = new_size - 1;
  for (const Slot& slot : old) {
    if (slot.idx == kEmptySlot) continue;
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (table_[i].idx != kEmptySlot) i = (i + 1) & mask;
    table_[i] = slot;
  }
}

uint32_t DeletionIndex::InsertHash(uint64_t hash) {
  if (table_.empty()) table_.assign(16, Slot{});
  if ((num_keys_ + 1) * 2 > table_.size()) Rehash(table_.size() * 2);
  const size_t mask = table_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  while (table_[i].idx != kEmptySlot) {
    if (table_[i].hash == hash) return table_[i].idx;
    i = (i + 1) & mask;
  }
  const auto idx = static_cast<uint32_t>(variant_lists_.size());
  variant_lists_.emplace_back();
  table_[i] = Slot{hash, idx};
  ++num_keys_;
  return idx;
}

void DeletionIndex::AddToken(TokenId id, std::string_view token) {
  if (token.size() > kMaxIndexedLength) {
    long_tokens_.Append(id);
    return;
  }
  thread_local std::vector<uint64_t> hashes;
  CollectVariantHashes(token, kMaxEdit, &hashes);
  for (uint64_t h : hashes) {
    BlockPostingList& list = variant_lists_[InsertHash(h)];
    if (list.empty() || list.back() != id) list.Append(id);
  }
}

void DeletionIndex::RecomputeBytes() {
  bytes_ = long_tokens_.bytes() + table_.capacity() * sizeof(Slot);
  for (const BlockPostingList& list : variant_lists_) {
    bytes_ += sizeof(list) + list.bytes();
  }
}

void DeletionIndex::Candidates(std::string_view token, size_t max_edit,
                               std::vector<TokenId>* out, uint64_t* examined,
                               KernelStats* kernels) const {
  out->clear();
  thread_local std::vector<uint64_t> hashes;
  CollectVariantHashes(token, std::min(max_edit, kMaxEdit), &hashes);
  thread_local std::vector<const BlockPostingList*> lists;
  lists.clear();
  for (uint64_t h : hashes) {
    if (const BlockPostingList* list = FindVariant(h)) lists.push_back(list);
  }
  // Long tokens bypass the variant table; the caller's edit-distance
  // verification rejects them cheaply (length gap short-circuits).
  if (!long_tokens_.empty()) lists.push_back(&long_tokens_);
  // Union decoded straight into the candidate vector — no intermediate
  // posting list (see UnionBlocksTo).
  UnionBlocksTo(lists, out, kernels);
  if (examined != nullptr) *examined += out->size();
}

}  // namespace mweaver::text
