#include "text/deletion_index.h"

#include <algorithm>

namespace mweaver::text {

namespace {

// Appends the FNV-1a hash of `token` with the characters at (sorted,
// distinct) positions `skip1` and optionally `skip2` removed.
uint64_t HashSkipping(std::string_view token, size_t skip1, size_t skip2) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < token.size(); ++i) {
    if (i == skip1 || i == skip2) continue;
    h ^= static_cast<unsigned char>(token[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr size_t kNoSkip = static_cast<size_t>(-1);

}  // namespace

uint64_t DeletionIndex::HashVariant(std::string_view variant) {
  return HashSkipping(variant, kNoSkip, kNoSkip);
}

void DeletionIndex::CollectVariantHashes(std::string_view token,
                                         size_t budget,
                                         std::vector<uint64_t>* out) {
  out->clear();
  out->push_back(HashSkipping(token, kNoSkip, kNoSkip));
  if (budget >= 1) {
    for (size_t i = 0; i < token.size(); ++i) {
      out->push_back(HashSkipping(token, i, kNoSkip));
    }
  }
  if (budget >= 2) {
    for (size_t i = 0; i < token.size(); ++i) {
      for (size_t j = i + 1; j < token.size(); ++j) {
        out->push_back(HashSkipping(token, i, j));
      }
    }
  }
  // Distinct deletions can coincide ("aab" minus either 'a' is "ab").
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void DeletionIndex::Build(const std::vector<std::string>& tokens) {
  variants_.clear();
  long_tokens_.clear();
  std::vector<uint64_t> hashes;
  for (TokenId id = 0; id < tokens.size(); ++id) {
    const std::string& t = tokens[id];
    if (t.size() > kMaxIndexedLength) {
      long_tokens_.push_back(id);
      continue;
    }
    CollectVariantHashes(t, kMaxEdit, &hashes);
    for (uint64_t h : hashes) {
      std::vector<TokenId>& list = variants_[h];
      if (list.empty() || list.back() != id) list.push_back(id);
    }
  }
  bytes_ = long_tokens_.capacity() * sizeof(TokenId);
  for (const auto& [key, list] : variants_) {
    bytes_ += sizeof(key) + sizeof(list) + list.capacity() * sizeof(TokenId);
  }
}

void DeletionIndex::Candidates(std::string_view token, size_t max_edit,
                               std::vector<TokenId>* out,
                               uint64_t* examined) const {
  out->clear();
  thread_local std::vector<uint64_t> hashes;
  CollectVariantHashes(token, std::min(max_edit, kMaxEdit), &hashes);
  for (uint64_t h : hashes) {
    auto it = variants_.find(h);
    if (it == variants_.end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  // Long tokens bypass the variant table; the caller's edit-distance
  // verification rejects them cheaply (length gap short-circuits).
  out->insert(out->end(), long_tokens_.begin(), long_tokens_.end());
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  if (examined != nullptr) *examined += out->size();
}

}  // namespace mweaver::text
