#include "text/posting_block.h"

#include <algorithm>
#include <cstring>

#include "common/simd.h"

namespace mweaver::text {

namespace internal {

size_t IntersectU16Scalar(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb, uint16_t* out) {
  // Iterate the smaller array; gallop through the larger when skewed.
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  size_t n = 0;
  if (na * 16 < nb) {
    size_t j = 0;
    for (size_t i = 0; i < na; ++i) {
      const uint16_t x = a[i];
      // Gallop: doubling probe from j, then binary search the bracket.
      size_t step = 1;
      size_t lo = j;
      size_t hi = j;
      while (hi < nb && b[hi] < x) {
        lo = hi + 1;
        hi += step;
        step *= 2;
      }
      hi = std::min(hi, nb);
      j = static_cast<size_t>(std::lower_bound(b + lo, b + hi, x) - b);
      if (j == nb) break;
      if (b[j] == x) {
        out[n++] = x;
        ++j;
      }
    }
    return n;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const uint16_t x = a[i];
    const uint16_t y = b[j];
    out[n] = x;
    n += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return n;
}

#if MWEAVER_SIMD_LEVEL >= 1
namespace {

// Broadcast-compare kernel: for each value of the (smaller) array `a`,
// skip whole vector-width blocks of `b` whose maximum is still below it,
// then test membership with one wide equality compare. Both arrays ascend,
// so the block cursor only moves forward — the inner skip loop is the only
// branch and it is perfectly predicted on dense runs.
size_t IntersectU16Vector(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb, uint16_t* out) {
#if MWEAVER_SIMD_LEVEL >= 2
  constexpr size_t kLanes = 16;
#else
  constexpr size_t kLanes = 8;
#endif
  size_t n = 0;
  size_t j = 0;
  size_t i = 0;
  for (; i < na && j + kLanes <= nb; ++i) {
    const uint16_t x = a[i];
    while (j + kLanes <= nb && b[j + kLanes - 1] < x) j += kLanes;
    if (j + kLanes > nb) break;
#if MWEAVER_SIMD_LEVEL >= 2
    const __m256i vx = _mm256_set1_epi16(static_cast<short>(x));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi16(vb, vx));
#else
    const __m128i vx = _mm_set1_epi16(static_cast<short>(x));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi16(vb, vx));
#endif
    out[n] = x;
    n += (mask != 0);
  }
  // Scalar tail: fewer than kLanes values left in b.
  for (; i < na; ++i) {
    const uint16_t x = a[i];
    while (j < nb && b[j] < x) ++j;
    if (j == nb) break;
    out[n] = x;
    n += (b[j] == x);
  }
  return n;
}

}  // namespace
#endif  // MWEAVER_SIMD_LEVEL >= 1

size_t IntersectU16(const uint16_t* a, size_t na, const uint16_t* b, size_t nb,
                    uint16_t* out, uint64_t* scalar_fallback) {
#if MWEAVER_SIMD_LEVEL >= 1
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  // Skewed sizes: galloping visits O(small * log gap) elements, which beats
  // scanning the large array even 16 lanes at a time.
  if (na * 16 < nb) {
    if (scalar_fallback != nullptr) ++(*scalar_fallback);
    return IntersectU16Scalar(a, na, b, nb, out);
  }
  return IntersectU16Vector(a, na, b, nb, out);
#else
  if (scalar_fallback != nullptr) ++(*scalar_fallback);
  return IntersectU16Scalar(a, na, b, nb, out);
#endif
}

size_t UnionU16Scalar(const uint16_t* a, size_t na, const uint16_t* b,
                      size_t nb, uint16_t* out) {
  size_t i = 0;
  size_t j = 0;
  size_t n = 0;
  while (i < na && j < nb) {
    const uint16_t x = a[i];
    const uint16_t y = b[j];
    out[n++] = std::min(x, y);
    i += (x <= y);
    j += (y <= x);
  }
  while (i < na) out[n++] = a[i++];
  while (j < nb) out[n++] = b[j++];
  return n;
}

uint32_t AndBitmaps(const uint64_t* a, const uint64_t* b, uint64_t* out) {
  uint32_t card = 0;
#if MWEAVER_SIMD_LEVEL >= 2
  for (size_t w = 0; w < BlockPostingList::kBitmapWords; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i vo = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), vo);
    card += static_cast<uint32_t>(
        std::popcount(out[w]) + std::popcount(out[w + 1]) +
        std::popcount(out[w + 2]) + std::popcount(out[w + 3]));
  }
#elif MWEAVER_SIMD_LEVEL >= 1
  for (size_t w = 0; w < BlockPostingList::kBitmapWords; w += 2) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + w));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + w),
                     _mm_and_si128(va, vb));
    card += static_cast<uint32_t>(std::popcount(out[w]) +
                                  std::popcount(out[w + 1]));
  }
#else
  for (size_t w = 0; w < BlockPostingList::kBitmapWords; ++w) {
    out[w] = a[w] & b[w];
    card += static_cast<uint32_t>(std::popcount(out[w]));
  }
#endif
  return card;
}

void OrBitmapInto(const uint64_t* src, uint64_t* out) {
#if MWEAVER_SIMD_LEVEL >= 2
  for (size_t w = 0; w < BlockPostingList::kBitmapWords; w += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i vo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w),
                        _mm256_or_si256(vs, vo));
  }
#elif MWEAVER_SIMD_LEVEL >= 1
  for (size_t w = 0; w < BlockPostingList::kBitmapWords; w += 2) {
    const __m128i vs =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    const __m128i vo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + w),
                     _mm_or_si128(vs, vo));
  }
#else
  for (size_t w = 0; w < BlockPostingList::kBitmapWords; ++w) {
    out[w] |= src[w];
  }
#endif
}

size_t IntersectArrayBitmap(const uint16_t* a, size_t na, const uint64_t* bm,
                            uint16_t* out) {
  size_t n = 0;
  for (size_t i = 0; i < na; ++i) {
    const uint16_t x = a[i];
    out[n] = x;
    n += (bm[x >> 6] >> (x & 63)) & 1;
  }
  return n;
}

}  // namespace internal

BlockPostingList::Container& BlockPostingList::AddContainer(uint16_t key) {
  MW_DCHECK(num_active_ == 0 || containers_[num_active_ - 1].key < key);
  if (num_active_ == containers_.size()) containers_.emplace_back();
  Container& ct = containers_[num_active_++];
  ct.key = key;
  ct.is_bitmap = false;
  ct.cardinality = 0;
  ct.array.clear();
  return ct;
}

void BlockPostingList::ToBitmap(Container* ct) {
  ct->bitmap.assign(kBitmapWords, 0);
  for (uint16_t low : ct->array) {
    ct->bitmap[low >> 6] |= uint64_t{1} << (low & 63);
  }
  ct->array.clear();
  ct->is_bitmap = true;
}

void BlockPostingList::ToArrayIfSparse(Container* ct) {
  if (!ct->is_bitmap || ct->cardinality > kArrayMaxCardinality) return;
  ct->array.clear();
  ct->array.reserve(ct->cardinality);
  for (size_t w = 0; w < kBitmapWords; ++w) {
    uint64_t word = ct->bitmap[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      ct->array.push_back(
          static_cast<uint16_t>(w * 64 + static_cast<size_t>(b)));
      word &= word - 1;
    }
  }
  ct->is_bitmap = false;
}

void BlockPostingList::Append(uint32_t value) {
  MW_DCHECK(size_ == 0 || value > last_value_);
  const uint16_t key = static_cast<uint16_t>(value >> 16);
  const uint16_t low = static_cast<uint16_t>(value & 0xFFFF);
  Container* ct = num_active_ > 0 ? &containers_[num_active_ - 1] : nullptr;
  if (ct == nullptr || ct->key != key) ct = &AddContainer(key);
  if (ct->is_bitmap) {
    ct->bitmap[low >> 6] |= uint64_t{1} << (low & 63);
  } else {
    ct->array.push_back(low);
    if (ct->array.size() > kArrayMaxCardinality) ToBitmap(ct);
  }
  ++ct->cardinality;
  ++size_;
  last_value_ = value;
}

bool BlockPostingList::Remove(uint32_t value) {
  const uint16_t key = static_cast<uint16_t>(value >> 16);
  const uint16_t low = static_cast<uint16_t>(value & 0xFFFF);
  Container* begin = containers_.data();
  Container* end = begin + num_active_;
  Container* it = std::lower_bound(
      begin, end, key,
      [](const Container& ct, uint16_t k) { return ct.key < k; });
  if (it == end || it->key != key) return false;
  if (it->is_bitmap) {
    uint64_t& word = it->bitmap[low >> 6];
    const uint64_t bit = uint64_t{1} << (low & 63);
    if ((word & bit) == 0) return false;
    word &= ~bit;
    --it->cardinality;
    // Density dropped through the break-even: convert back down so merges
    // see the same representation a fresh build of this set would use.
    ToArrayIfSparse(it);
  } else {
    auto pos = std::lower_bound(it->array.begin(), it->array.end(), low);
    if (pos == it->array.end() || *pos != low) return false;
    it->array.erase(pos);
    --it->cardinality;
  }
  --size_;
  if (it->cardinality == 0) {
    // Deactivate without losing the pooled buffers: rotate the dead slot
    // past the remaining active containers so it parks at num_active_.
    std::rotate(it, it + 1, begin + num_active_);
    --num_active_;
  }
  if (size_ > 0 && value == last_value_) {
    const Container& last = containers_[num_active_ - 1];
    const uint32_t base = static_cast<uint32_t>(last.key) << 16;
    if (last.is_bitmap) {
      for (size_t w = kBitmapWords; w-- > 0;) {
        if (last.bitmap[w] == 0) continue;
        const int b = 63 - std::countl_zero(last.bitmap[w]);
        last_value_ =
            base + static_cast<uint32_t>(w * 64 + static_cast<size_t>(b));
        break;
      }
    } else {
      last_value_ = base + last.array.back();
    }
  }
  return true;
}

void BlockPostingList::CopyFrom(const BlockPostingList& other) {
  Reset();
  for (size_t c = 0; c < other.num_active_; ++c) {
    const Container& src = other.containers_[c];
    Container& dst = AddContainer(src.key);
    dst.is_bitmap = src.is_bitmap;
    dst.cardinality = src.cardinality;
    if (src.is_bitmap) {
      dst.bitmap = src.bitmap;
    } else {
      dst.array = src.array;
    }
    size_ += src.cardinality;
  }
  last_value_ = other.last_value_;
}

bool BlockPostingList::Contains(uint32_t value) const {
  const uint16_t key = static_cast<uint16_t>(value >> 16);
  const uint16_t low = static_cast<uint16_t>(value & 0xFFFF);
  const Container* begin = containers_.data();
  const Container* end = begin + num_active_;
  const Container* it = std::lower_bound(
      begin, end, key,
      [](const Container& ct, uint16_t k) { return ct.key < k; });
  if (it == end || it->key != key) return false;
  if (it->is_bitmap) return (it->bitmap[low >> 6] >> (low & 63)) & 1;
  return std::binary_search(it->array.begin(), it->array.end(), low);
}

size_t BlockPostingList::bytes() const {
  size_t bytes = containers_.capacity() * sizeof(Container);
  for (const Container& ct : containers_) {
    bytes += ct.array.capacity() * sizeof(uint16_t) +
             ct.bitmap.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

namespace {

using internal::AndBitmaps;
using internal::IntersectArrayBitmap;
using internal::IntersectU16;
using internal::UnionU16Scalar;

// Scratch buffers for container-level merges. Thread-local: the pairwise
// stage probes the same engine from ParallelFor workers.
struct BlockScratch {
  std::vector<uint16_t> a16;
  std::vector<uint16_t> b16;
  std::vector<uint64_t> bits;
  std::vector<size_t> pos;
  std::vector<const BlockPostingList::Container*> contrib;
  // Flattened (key, container) directory across all union inputs.
  std::vector<std::pair<uint16_t, const BlockPostingList::Container*>> entries;
};

BlockScratch& LocalBlockScratch() {
  thread_local BlockScratch scratch;
  return scratch;
}

}  // namespace

void IntersectBlocks(const BlockPostingList& a, const BlockPostingList& b,
                     BlockPostingList* out, KernelStats* stats) {
  out->Reset();
  if (a.empty() || b.empty()) return;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.num_containers() && ib < b.num_containers()) {
    const BlockPostingList::Container& ca = a.container(ia);
    const BlockPostingList::Container& cb = b.container(ib);
    if (ca.key < cb.key) {
      ++ia;
      continue;
    }
    if (cb.key < ca.key) {
      ++ib;
      continue;
    }
    if (ca.is_bitmap && cb.is_bitmap) {
      if (stats != nullptr) ++stats->bitmap_bitmap;
      BlockPostingList::Container& ct = out->AddContainer(ca.key);
      ct.bitmap.resize(BlockPostingList::kBitmapWords);
      ct.is_bitmap = true;
      ct.cardinality =
          AndBitmaps(ca.bitmap.data(), cb.bitmap.data(), ct.bitmap.data());
      if (ct.cardinality == 0) {
        --out->num_active_;  // drop the empty container
      } else {
        BlockPostingList::ToArrayIfSparse(&ct);
        out->size_ += ct.cardinality;
      }
    } else if (ca.is_bitmap || cb.is_bitmap) {
      // The kernel writes straight into the output container's pooled
      // array buffer — no scratch copy. Empty results just deactivate the
      // container again.
      if (stats != nullptr) ++stats->array_bitmap;
      const auto& arr = ca.is_bitmap ? cb.array : ca.array;
      const auto& bm = ca.is_bitmap ? ca.bitmap : cb.bitmap;
      BlockPostingList::Container& ct = out->AddContainer(ca.key);
      ct.array.resize(arr.size());
      const size_t n = IntersectArrayBitmap(arr.data(), arr.size(), bm.data(),
                                            ct.array.data());
      if (n == 0) {
        --out->num_active_;
      } else {
        ct.array.resize(n);
        ct.cardinality = static_cast<uint32_t>(n);
        out->size_ += n;
      }
    } else {
      if (stats != nullptr) ++stats->array_array;
      BlockPostingList::Container& ct = out->AddContainer(ca.key);
      ct.array.resize(std::min(ca.array.size(), cb.array.size()));
      const size_t n = IntersectU16(
          ca.array.data(), ca.array.size(), cb.array.data(), cb.array.size(),
          ct.array.data(), stats != nullptr ? &stats->scalar_fallback
                                            : nullptr);
      if (n == 0) {
        --out->num_active_;
      } else {
        ct.array.resize(n);
        ct.cardinality = static_cast<uint32_t>(n);
        out->size_ += n;
      }
    }
    ++ia;
    ++ib;
  }
  if (out->size_ > 0) {
    const BlockPostingList::Container& ct =
        out->container(out->num_containers() - 1);
    const uint32_t base = static_cast<uint32_t>(ct.key) << 16;
    if (ct.is_bitmap) {
      for (size_t w = BlockPostingList::kBitmapWords; w-- > 0;) {
        if (ct.bitmap[w] != 0) {
          out->last_value_ = base +
                             static_cast<uint32_t>(w * 64 + 63 -
                                                   static_cast<size_t>(
                                                       std::countl_zero(
                                                           ct.bitmap[w])));
          break;
        }
      }
    } else {
      out->last_value_ = base + ct.array.back();
    }
  }
}

void UnionBlocks(const std::vector<const BlockPostingList*>& lists,
                 BlockPostingList* out, KernelStats* stats) {
  out->Reset();
  if (lists.empty()) return;
  if (lists.size() == 1) {
    out->CopyFrom(*lists[0]);
    return;
  }
  BlockScratch& scratch = LocalBlockScratch();
  std::vector<size_t>& pos = scratch.pos;
  pos.assign(lists.size(), 0);
  while (true) {
    // Next key = min over each list's current container.
    uint32_t key = BlockPostingList::kContainerSpan;  // sentinel > any u16
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] < lists[i]->num_containers()) {
        key = std::min(key,
                       static_cast<uint32_t>(lists[i]->container(pos[i]).key));
      }
    }
    if (key == BlockPostingList::kContainerSpan) break;
    // Single gather pass: record the contributors for this key into a flat
    // pointer vector (everything downstream iterates that, not the k list
    // cursors), fold in the totals and touched word range, and advance the
    // cursors. The k-way cursor walk runs once per key instead of once per
    // strategy stage.
    std::vector<const BlockPostingList::Container*>& contrib = scratch.contrib;
    contrib.clear();
    size_t total = 0;
    bool any_bitmap = false;
    size_t lo_word = BlockPostingList::kBitmapWords;
    size_t hi_word = 0;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (pos[i] >= lists[i]->num_containers()) continue;
      const BlockPostingList::Container& ct = lists[i]->container(pos[i]);
      if (ct.key != key) continue;
      contrib.push_back(&ct);
      total += ct.cardinality;
      if (ct.is_bitmap) {
        any_bitmap = true;
        lo_word = 0;
        hi_word = BlockPostingList::kBitmapWords - 1;
      } else if (!ct.array.empty()) {
        lo_word = std::min(lo_word, static_cast<size_t>(ct.array.front() >> 6));
        hi_word = std::max(hi_word, static_cast<size_t>(ct.array.back() >> 6));
      }
      ++pos[i];
    }
    if (contrib.size() == 1) {
      // Copy-through: no merge kernel runs.
      const BlockPostingList::Container* single = contrib[0];
      BlockPostingList::Container& ct =
          out->AddContainer(static_cast<uint16_t>(key));
      ct.is_bitmap = single->is_bitmap;
      ct.cardinality = single->cardinality;
      if (single->is_bitmap) {
        ct.bitmap = single->bitmap;
      } else {
        ct.array = single->array;
      }
      out->size_ += ct.cardinality;
    } else if (!any_bitmap && contrib.size() <= kUnionArrayMergeMaxLists &&
               total <= BlockPostingList::kArrayMaxCardinality) {
      // Few sparse arrays whose union stays sparse: cascade of two-pointer
      // merges, no bitmap round trip. The final merge (the only one, for
      // the dominant 2-contributor case) lands straight in the output
      // container's pooled buffer.
      BlockPostingList::Container& ct =
          out->AddContainer(static_cast<uint16_t>(key));
      if (contrib.size() == 2) {
        if (stats != nullptr) {
          ++stats->array_array;
          ++stats->scalar_fallback;
        }
        ct.array.resize(contrib[0]->array.size() + contrib[1]->array.size());
        const size_t n = UnionU16Scalar(
            contrib[0]->array.data(), contrib[0]->array.size(),
            contrib[1]->array.data(), contrib[1]->array.size(),
            ct.array.data());
        ct.array.resize(n);
      } else {
        std::vector<uint16_t>& acc = scratch.a16;
        std::vector<uint16_t>& tmp = scratch.b16;
        acc.assign(contrib[0]->array.begin(), contrib[0]->array.end());
        for (size_t c = 1; c + 1 < contrib.size(); ++c) {
          if (stats != nullptr) {
            ++stats->array_array;
            ++stats->scalar_fallback;
          }
          tmp.resize(acc.size() + contrib[c]->array.size());
          const size_t n = UnionU16Scalar(acc.data(), acc.size(),
                                          contrib[c]->array.data(),
                                          contrib[c]->array.size(),
                                          tmp.data());
          tmp.resize(n);
          acc.swap(tmp);
        }
        if (stats != nullptr) {
          ++stats->array_array;
          ++stats->scalar_fallback;
        }
        const BlockPostingList::Container* last = contrib.back();
        ct.array.resize(acc.size() + last->array.size());
        const size_t n = UnionU16Scalar(acc.data(), acc.size(),
                                        last->array.data(),
                                        last->array.size(), ct.array.data());
        ct.array.resize(n);
      }
      ct.cardinality = static_cast<uint32_t>(ct.array.size());
      out->size_ += ct.cardinality;
    } else {
      // Many or dense contributors: accumulate into a bitmap scratch. Each
      // bitmap contributor ORs word-parallel; each array contributor sets
      // its bits. All the fixed-cost passes (zeroing, popcount, extraction)
      // are bounded to the word range the contributors actually touch —
      // small dictionaries use a sliver of the 64K container span, and an
      // 8 KiB sweep per union would dwarf the merge itself.
      std::vector<uint64_t>& bits = scratch.bits;
      bits.resize(BlockPostingList::kBitmapWords);
      if (lo_word > hi_word) {  // all contributors empty
        lo_word = 0;
        hi_word = 0;
      }
      std::memset(bits.data() + lo_word, 0, (hi_word - lo_word + 1) * 8);
      for (const BlockPostingList::Container* c : contrib) {
        if (c->is_bitmap) {
          if (stats != nullptr) ++stats->bitmap_bitmap;
          internal::OrBitmapInto(c->bitmap.data(), bits.data());
        } else {
          if (stats != nullptr) ++stats->array_bitmap;
          for (uint16_t low : c->array) {
            bits[low >> 6] |= uint64_t{1} << (low & 63);
          }
        }
      }
      uint32_t card = 0;
      for (size_t w = lo_word; w <= hi_word; ++w) {
        card += static_cast<uint32_t>(std::popcount(bits[w]));
      }
      BlockPostingList::Container& ct =
          out->AddContainer(static_cast<uint16_t>(key));
      if (card <= BlockPostingList::kArrayMaxCardinality) {
        // Sparse union: extract straight into the array container, never
        // materializing a bitmap copy.
        ct.array.reserve(card);
        for (size_t w = lo_word; w <= hi_word; ++w) {
          uint64_t word = bits[w];
          while (word != 0) {
            const int b = std::countr_zero(word);
            ct.array.push_back(
                static_cast<uint16_t>(w * 64 + static_cast<size_t>(b)));
            word &= word - 1;
          }
        }
      } else {
        // Dense union: the result container owns a full bitmap, so the
        // words outside the touched range must really be zero.
        std::memset(bits.data(), 0, lo_word * 8);
        std::memset(bits.data() + hi_word + 1, 0,
                    (BlockPostingList::kBitmapWords - hi_word - 1) * 8);
        ct.bitmap = bits;
        ct.is_bitmap = true;
      }
      ct.cardinality = card;
      out->size_ += card;
    }
  }
  if (out->size_ > 0) {
    const BlockPostingList::Container& ct =
        out->container(out->num_containers() - 1);
    const uint32_t base = static_cast<uint32_t>(ct.key) << 16;
    if (ct.is_bitmap) {
      for (size_t w = BlockPostingList::kBitmapWords; w-- > 0;) {
        if (ct.bitmap[w] != 0) {
          out->last_value_ = base +
                             static_cast<uint32_t>(w * 64 + 63 -
                                                   static_cast<size_t>(
                                                       std::countl_zero(
                                                           ct.bitmap[w])));
          break;
        }
      }
    } else {
      out->last_value_ = base + ct.array.back();
    }
  }
}

namespace {

// Decodes one container's values (offset by its key base) onto `out`.
template <typename T>
void DecodeContainer(const BlockPostingList::Container& ct,
                     std::vector<T>* out) {
  const uint32_t base = static_cast<uint32_t>(ct.key) << 16;
  if (ct.is_bitmap) {
    out->reserve(out->size() + ct.cardinality);
    for (size_t w = 0; w < BlockPostingList::kBitmapWords; ++w) {
      uint64_t word = ct.bitmap[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        out->push_back(static_cast<T>(
            base + static_cast<uint32_t>(w * 64 + static_cast<size_t>(b))));
        word &= word - 1;
      }
    }
  } else {
    const size_t old = out->size();
    out->resize(old + ct.array.size());
    T* dst = out->data() + old;
    const uint16_t* src = ct.array.data();
    const size_t n = ct.array.size();
    for (size_t i = 0; i < n; ++i) dst[i] = static_cast<T>(base + src[i]);
  }
}

}  // namespace

template <typename T>
void UnionBlocksTo(const std::vector<const BlockPostingList*>& lists,
                   std::vector<T>* out, KernelStats* stats) {
  out->clear();
  if (lists.empty()) return;
  if (lists.size() == 1) {
    lists[0]->AppendTo(out);
    return;
  }
  BlockScratch& scratch = LocalBlockScratch();
  // One flattening pass over every input's container directory — a
  // high-fanout union touches each of the k scattered list objects once,
  // instead of the k-cursor min-key walk re-chasing all of them per key.
  // Directories are key-ascending per list, so the flat view is already
  // grouped whenever all inputs share one key (every dictionary under 64K
  // rows); only genuinely multi-container mixes pay the sort.
  auto& entries = scratch.entries;
  entries.clear();
  bool grouped = true;
  for (const BlockPostingList* list : lists) {
    const size_t n = list->num_containers();
    for (size_t c = 0; c < n; ++c) {
      const BlockPostingList::Container& ct = list->container(c);
      if (!entries.empty() && ct.key < entries.back().first) grouped = false;
      entries.emplace_back(ct.key, &ct);
    }
  }
  if (!grouped) {
    std::stable_sort(
        entries.begin(), entries.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  for (size_t g = 0; g < entries.size();) {
    const uint16_t key = entries[g].first;
    size_t end = g + 1;
    while (end < entries.size() && entries[end].first == key) ++end;
    // Contributor sweep: totals and the touched word range.
    size_t total = 0;
    bool any_bitmap = false;
    size_t lo_word = BlockPostingList::kBitmapWords;
    size_t hi_word = 0;
    for (size_t e = g; e < end; ++e) {
      const BlockPostingList::Container& ct = *entries[e].second;
      total += ct.cardinality;
      if (ct.is_bitmap) {
        any_bitmap = true;
        lo_word = 0;
        hi_word = BlockPostingList::kBitmapWords - 1;
      } else if (!ct.array.empty()) {
        lo_word = std::min(lo_word, static_cast<size_t>(ct.array.front() >> 6));
        hi_word = std::max(hi_word, static_cast<size_t>(ct.array.back() >> 6));
      }
    }
    const size_t first = g;
    const size_t count = end - g;
    g = end;
    const uint32_t base = static_cast<uint32_t>(key) << 16;
    if (count == 1) {
      DecodeContainer(*entries[first].second, out);
    } else if (!any_bitmap && count <= kUnionArrayMergeMaxLists &&
               total <= BlockPostingList::kArrayMaxCardinality) {
      // Merge cascade over scratch, widened once at the end.
      std::vector<uint16_t>& acc = scratch.a16;
      std::vector<uint16_t>& tmp = scratch.b16;
      const std::vector<uint16_t>& head = entries[first].second->array;
      acc.assign(head.begin(), head.end());
      for (size_t c = 1; c < count; ++c) {
        if (stats != nullptr) {
          ++stats->array_array;
          ++stats->scalar_fallback;
        }
        const std::vector<uint16_t>& next = entries[first + c].second->array;
        tmp.resize(acc.size() + next.size());
        const size_t n = UnionU16Scalar(acc.data(), acc.size(), next.data(),
                                        next.size(), tmp.data());
        tmp.resize(n);
        acc.swap(tmp);
      }
      const size_t old = out->size();
      out->resize(old + acc.size());
      T* dst = out->data() + old;
      for (size_t i = 0; i < acc.size(); ++i) {
        dst[i] = static_cast<T>(base + acc[i]);
      }
    } else {
      // Range-bounded bitmap accumulation, decoded straight to values —
      // no sparse-array extraction or bitmap container copy.
      std::vector<uint64_t>& bits = scratch.bits;
      bits.resize(BlockPostingList::kBitmapWords);
      if (lo_word > hi_word) {  // all contributors empty
        lo_word = 0;
        hi_word = 0;
      }
      std::memset(bits.data() + lo_word, 0, (hi_word - lo_word + 1) * 8);
      for (size_t e = first; e < first + count; ++e) {
        const BlockPostingList::Container* c = entries[e].second;
        if (c->is_bitmap) {
          if (stats != nullptr) ++stats->bitmap_bitmap;
          internal::OrBitmapInto(c->bitmap.data(), bits.data());
        } else {
          if (stats != nullptr) ++stats->array_bitmap;
          for (uint16_t low : c->array) {
            bits[low >> 6] |= uint64_t{1} << (low & 63);
          }
        }
      }
      out->reserve(out->size() + total);
      for (size_t w = lo_word; w <= hi_word; ++w) {
        uint64_t word = bits[w];
        while (word != 0) {
          const int b = std::countr_zero(word);
          out->push_back(static_cast<T>(
              base + static_cast<uint32_t>(w * 64 + static_cast<size_t>(b))));
          word &= word - 1;
        }
      }
    }
  }
}

template void UnionBlocksTo<uint32_t>(
    const std::vector<const BlockPostingList*>&, std::vector<uint32_t>*,
    KernelStats*);
template void UnionBlocksTo<int64_t>(
    const std::vector<const BlockPostingList*>&, std::vector<int64_t>*,
    KernelStats*);

}  // namespace mweaver::text
