// Allocation-free merge kernels for sorted posting lists, shared by the
// inverted index and its n-gram / deletion-neighborhood sub-indexes.
//
// The old per-probe code allocated a fresh vector per query token (one for
// the set_intersection output, one for the sort-based union). These kernels
// write into caller-owned scratch buffers instead, so a warm probe performs
// no heap allocation beyond its returned result, and the intersection
// gallops (doubling binary search) when one list is much shorter than the
// other — the common shape when a selective token meets a stop-word-sized
// posting list.
#ifndef MWEAVER_TEXT_POSTINGS_H_
#define MWEAVER_TEXT_POSTINGS_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mweaver::text {

namespace internal {

/// First index in [lo, hi) of sorted `v` with v[i] >= x, found by galloping
/// from `lo` (amortized O(log gap) instead of O(log n)).
template <typename T>
size_t GallopLowerBound(const std::vector<T>& v, size_t lo, T x) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < v.size() && v[hi] < x) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, v.size());
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), x) -
      v.begin());
}

}  // namespace internal

/// \brief Intersection of two sorted, duplicate-free lists into `*out`
/// (cleared first; must not alias the inputs). Gallops through the longer
/// list when the sizes are skewed by >= kGallopRatio.
template <typename T>
void IntersectSorted(const std::vector<T>& a, const std::vector<T>& b,
                     std::vector<T>* out) {
  constexpr size_t kGallopRatio = 16;
  out->clear();
  if (a.empty() || b.empty()) return;
  const std::vector<T>& small = a.size() <= b.size() ? a : b;
  const std::vector<T>& large = a.size() <= b.size() ? b : a;
  if (small.size() * kGallopRatio < large.size()) {
    size_t pos = 0;
    for (const T& x : small) {
      pos = internal::GallopLowerBound(large, pos, x);
      if (pos == large.size()) break;
      if (large[pos] == x) {
        out->push_back(x);
        ++pos;
      }
    }
    return;
  }
  std::set_intersection(small.begin(), small.end(), large.begin(),
                        large.end(), std::back_inserter(*out));
}

/// \brief Sorted, deduplicated union of `lists` into `*out` (cleared first)
/// over a caller-owned scratch buffer: a k-way heap merge for few lists
/// (linear in output, no sort), a concatenate + sort + unique into the
/// scratch for many (std::sort on a flat buffer beats per-element heap
/// operations once k is large). Each input list must be sorted and
/// duplicate-free.
template <typename T>
struct MergeScratch {
  std::vector<std::pair<T, size_t>> heap;
  std::vector<size_t> pos;
  std::vector<T> flat;
};

/// Above this many input lists the union concatenates and sorts instead of
/// heap-merging.
inline constexpr size_t kUnionHeapMaxLists = 16;

template <typename T>
void UnionSorted(const std::vector<const std::vector<T>*>& lists,
                 std::vector<T>* out, MergeScratch<T>* scratch) {
  out->clear();
  if (lists.empty()) return;
  if (lists.size() == 1) {
    out->assign(lists[0]->begin(), lists[0]->end());
    return;
  }
  if (lists.size() > kUnionHeapMaxLists) {
    std::vector<T>& flat = scratch->flat;
    flat.clear();
    for (const std::vector<T>* list : lists) {
      flat.insert(flat.end(), list->begin(), list->end());
    }
    std::sort(flat.begin(), flat.end());
    flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
    out->assign(flat.begin(), flat.end());
    return;
  }
  // Heap entries: (next value of list i, i). Min-heap via greater-than.
  auto greater = [](const std::pair<T, size_t>& x,
                    const std::pair<T, size_t>& y) {
    return x.first > y.first;
  };
  std::vector<std::pair<T, size_t>>& heap = scratch->heap;
  std::vector<size_t>& pos = scratch->pos;
  heap.clear();
  pos.assign(lists.size(), 0);
  size_t total = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    total += lists[i]->size();
    if (!lists[i]->empty()) heap.emplace_back((*lists[i])[0], i);
  }
  out->reserve(total);
  std::make_heap(heap.begin(), heap.end(), greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const auto [value, i] = heap.back();
    heap.pop_back();
    if (out->empty() || out->back() != value) out->push_back(value);
    if (++pos[i] < lists[i]->size()) {
      heap.emplace_back((*lists[i])[pos[i]], i);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
}

/// \brief Union of `lists` via a reusable bitmap over the value universe
/// [0, universe): O(total elements + universe/64), independent of the list
/// count. The right kernel for high-fanout unions (hundreds of short
/// posting lists) where even a flat sort pays an O(n log n) factor. Values
/// must be < universe.
template <typename T>
void UnionSortedBitmap(const std::vector<const std::vector<T>*>& lists,
                       size_t universe, std::vector<T>* out,
                       std::vector<uint64_t>* bits) {
  const size_t words = (universe + 63) / 64;
  bits->assign(words, 0);
  size_t total = 0;
  for (const std::vector<T>* list : lists) {
    total += list->size();
    for (const T& x : *list) {
      (*bits)[static_cast<size_t>(x) >> 6] |=
          uint64_t{1} << (static_cast<size_t>(x) & 63);
    }
  }
  out->clear();
  out->reserve(total);
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = (*bits)[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out->push_back(static_cast<T>(w * 64 + static_cast<size_t>(b)));
      word &= word - 1;
    }
  }
}

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_POSTINGS_H_
