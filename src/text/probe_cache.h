// ProbeCache: the bounded probe memo of the full-text engine. One
// interactive session re-probes the same user sample across every indexed
// attribute (Algorithm 1's location map) and again on every pruning
// iteration, so after the first weave nearly all probes repeat; the memo
// answers them without touching the indexes.
//
// Keyed on (relation, attribute, policy fingerprint, sample); bounded by a
// byte budget with LRU eviction. Entries hold shared_ptr-backed row sets so
// handles returned to callers survive eviction. Two guards keep degenerate
// probes from flushing the useful working set:
//  * the engine never inserts punctuation-only fallback results (they are
//    all_rows_-sized and recomputing them is a trivial copy anyway);
//  * the cache itself rejects any single entry larger than a quarter of
//    the budget.
#ifndef MWEAVER_TEXT_PROBE_CACHE_H_
#define MWEAVER_TEXT_PROBE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"

namespace mweaver::text {

/// \brief A shared, immutable, sorted set of matching row ids. Shared
/// ownership keeps handles valid after the cache evicts the entry.
using RowSet = std::shared_ptr<const std::vector<storage::RowId>>;

/// \brief The canonical empty row set (never null).
const RowSet& EmptyRowSet();

/// \brief Thread-safe byte-bounded LRU memo of verified probe results.
class ProbeCache {
 public:
  struct Stats {
    size_t entries = 0;
    size_t bytes_used = 0;
    uint64_t evictions = 0;
    uint64_t rejected_oversize = 0;
  };

  /// \brief `budget_bytes` caps the summed entry footprints (0 disables
  /// caching entirely: every Lookup misses, every Insert is dropped).
  explicit ProbeCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

  ProbeCache(const ProbeCache&) = delete;
  ProbeCache& operator=(const ProbeCache&) = delete;

  /// \brief Returns the cached row set or nullptr; a hit refreshes LRU
  /// recency. `version` is the relation's update epoch (see
  /// FullTextEngine::relation_version): an entry cached against an older
  /// version of the relation simply never matches again — stale results
  /// die by construction, no sweep required, while entries for untouched
  /// relations keep hitting.
  RowSet Lookup(storage::RelationId relation, storage::AttributeId attribute,
                uint64_t policy_fp, uint64_t version, std::string_view sample);

  /// \brief Inserts (replacing any stale entry), then evicts least-recently
  /// used entries until within budget. Oversized entries (> budget/4) are
  /// rejected outright.
  void Insert(storage::RelationId relation, storage::AttributeId attribute,
              uint64_t policy_fp, uint64_t version, std::string_view sample,
              RowSet rows);

  Stats stats() const;
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Key {
    storage::RelationId relation;
    storage::AttributeId attribute;
    uint64_t policy_fp;
    uint64_t version;
    std::string sample;

    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    RowSet rows;
    size_t bytes = 0;
    std::list<const Key*>::iterator lru_it;
  };

  static size_t EntryBytes(const Key& key, const RowSet& rows);
  // Drops `it`'s entry; caller holds mu_.
  void EvictLocked(std::unordered_map<Key, Entry, KeyHash>::iterator it);

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  // Most-recent first; points at the map's stable key storage.
  std::list<const Key*> lru_;
  size_t bytes_used_ = 0;
  uint64_t evictions_ = 0;
  uint64_t rejected_oversize_ = 0;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_PROBE_CACHE_H_
