// Value auto-completion over the source instance. The paper's input
// spreadsheet aids the user with completions ("MWEAVER requires only target
// sample entry aided by auto-completion", §6.2), and its future work asks
// for "features that will automatically suggest relevant data" (§7): this
// dictionary suggests source values for a typed prefix.
#ifndef MWEAVER_TEXT_AUTOCOMPLETE_H_
#define MWEAVER_TEXT_AUTOCOMPLETE_H_

#include <string>
#include <vector>

#include "storage/database.h"

namespace mweaver::text {

/// \brief A sorted dictionary of every distinct display value of a
/// database's searchable string attributes.
class ValueDictionary {
 public:
  /// \brief Builds the dictionary (O(total values log distinct values)).
  /// `db` must outlive the dictionary.
  explicit ValueDictionary(const storage::Database* db);

  /// \brief Up to `limit` distinct values starting with `prefix`
  /// (case-insensitively), lexicographically ordered. An empty prefix
  /// returns the dictionary's head.
  std::vector<std::string> Suggest(const std::string& prefix,
                                   size_t limit = 8) const;

  /// \brief True iff `value` appears verbatim somewhere in the source — the
  /// relevance signal behind Session's irrelevant-sample warning.
  bool Contains(const std::string& value) const;

  size_t size() const { return entries_.size(); }

 private:
  // (lowercased key, original value), sorted by key then value.
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_AUTOCOMPLETE_H_
