#include "text/probe_cache.h"

#include "common/failpoint.h"
#include "common/hash_util.h"
#include "common/logging.h"

namespace mweaver::text {

const RowSet& EmptyRowSet() {
  static const RowSet empty =
      std::make_shared<const std::vector<storage::RowId>>();
  return empty;
}

size_t ProbeCache::KeyHash::operator()(const Key& k) const {
  size_t seed = std::hash<std::string>{}(k.sample);
  HashCombine(&seed, k.relation);
  HashCombine(&seed, k.attribute);
  HashCombine(&seed, k.policy_fp);
  HashCombine(&seed, k.version);
  return seed;
}

size_t ProbeCache::EntryBytes(const Key& key, const RowSet& rows) {
  // Key string + row payload + map/list node overhead (approximate).
  constexpr size_t kNodeOverhead = 96;
  return key.sample.size() + rows->size() * sizeof(storage::RowId) +
         kNodeOverhead;
}

RowSet ProbeCache::Lookup(storage::RelationId relation,
                          storage::AttributeId attribute, uint64_t policy_fp,
                          uint64_t version, std::string_view sample) {
  const Key key{relation, attribute, policy_fp, version, std::string(sample)};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // refresh recency
  return it->second.rows;
}

void ProbeCache::Insert(storage::RelationId relation,
                        storage::AttributeId attribute, uint64_t policy_fp,
                        uint64_t version, std::string_view sample,
                        RowSet rows) {
  MW_CHECK(rows != nullptr);
  // Chaos site: a dropped memo insert. The cache is purely an accelerator,
  // so losing an insert must only cost recomputation, never correctness.
  if (MW_FAILPOINT_TRIGGERED("text.probe_cache.insert")) return;
  Key key{relation, attribute, policy_fp, version, std::string(sample)};
  const size_t bytes = EntryBytes(key, rows);
  std::lock_guard<std::mutex> lock(mu_);
  // Chaos site: a forced full eviction (cache-pressure overflow) right
  // before this insert lands — exercises cold-probe paths under load.
  if (MW_FAILPOINT_TRIGGERED("text.probe_cache.evict")) {
    while (!lru_.empty()) {
      auto victim = entries_.find(*lru_.back());
      MW_CHECK(victim != entries_.end());
      EvictLocked(victim);
      ++evictions_;
    }
  }
  if (budget_bytes_ == 0 || bytes > budget_bytes_ / 4) {
    ++rejected_oversize_;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) EvictLocked(it);
  auto [slot, inserted] = entries_.emplace(std::move(key), Entry{});
  MW_CHECK(inserted);
  lru_.push_front(&slot->first);
  slot->second.rows = std::move(rows);
  slot->second.bytes = bytes;
  slot->second.lru_it = lru_.begin();
  bytes_used_ += bytes;
  while (bytes_used_ > budget_bytes_ && lru_.size() > 1) {
    auto victim = entries_.find(*lru_.back());
    MW_CHECK(victim != entries_.end());
    EvictLocked(victim);
    ++evictions_;
  }
}

void ProbeCache::EvictLocked(
    std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  bytes_used_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

ProbeCache::Stats ProbeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.entries = entries_.size();
  s.bytes_used = bytes_used_;
  s.evictions = evictions_;
  s.rejected_oversize = rejected_oversize_;
  return s;
}

}  // namespace mweaver::text
