// Block-encoded posting lists (roaring-style) and the SIMD merge kernels
// that operate on them. A list partitions its sorted u32 values into
// containers of 64K consecutive values keyed by `value >> 16`; each
// container is either a sorted u16 array (sparse, <= kArrayMaxCardinality
// values) or a 1024-word bitmap (dense), converting between the two as its
// density crosses the threshold. Merges then work container-against-
// container — an 8/16-lane vector compare for array x array, a branchless
// bit probe for array x bitmap, and word-parallel AND/OR for bitmap x
// bitmap — instead of element-against-element over std::vector<RowId>.
//
// Dispatch is compile-time via common/simd.h (MWEAVER_SIMD_LEVEL): the
// scalar kernels are always compiled and remain the reference — the
// property tests assert the SIMD paths produce byte-identical output, and
// a forced-scalar CI build (-DMWEAVER_DISABLE_SIMD=ON) keeps the fallback
// executable. The pre-block merge kernels in text/postings.h are retained
// unchanged as the frozen flat-vector reference implementation.
#ifndef MWEAVER_TEXT_POSTING_BLOCK_H_
#define MWEAVER_TEXT_POSTING_BLOCK_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mweaver::text {

/// \brief Per-kernel hit counters: which container-pair shape each block
/// merge dispatched to, and how often the scalar fallback ran instead of a
/// vector path (always, in a -DMWEAVER_DISABLE_SIMD build; on skewed-size
/// galloping bailouts otherwise). Plain and copyable; flows into
/// text::ProbeStats and out through bench_text_lookup.
struct KernelStats {
  uint64_t array_array = 0;
  uint64_t array_bitmap = 0;
  uint64_t bitmap_bitmap = 0;
  uint64_t scalar_fallback = 0;

  void Add(const KernelStats& other) {
    array_array += other.array_array;
    array_bitmap += other.array_bitmap;
    bitmap_bitmap += other.bitmap_bitmap;
    scalar_fallback += other.scalar_fallback;
  }
};

/// \brief A sorted, duplicate-free set of u32 values stored as roaring-style
/// containers. Built by appending strictly increasing values; reusable via
/// Reset() (container buffers are pooled, so a warm probe's scratch lists
/// allocate nothing).
class BlockPostingList {
 public:
  /// Values per container (the low 16 bits address within a container).
  static constexpr size_t kContainerSpan = size_t{1} << 16;
  /// Above this cardinality a container converts from sorted-array to
  /// bitmap; at or below it, merge results convert back down. 4096 u16
  /// values = 8 KiB, the same footprint as the bitmap, which is the
  /// classic roaring break-even point.
  static constexpr size_t kArrayMaxCardinality = 4096;
  static constexpr size_t kBitmapWords = kContainerSpan / 64;

  struct Container {
    uint16_t key = 0;  // value >> 16
    bool is_bitmap = false;
    uint32_t cardinality = 0;
    std::vector<uint16_t> array;   // sorted, duplicate-free; iff !is_bitmap
    std::vector<uint64_t> bitmap;  // kBitmapWords words; iff is_bitmap
  };

  /// \brief Empties the list but keeps every container's buffers for reuse.
  void Reset() {
    num_active_ = 0;
    size_ = 0;
  }

  /// \brief Appends `value`, which must be strictly greater than every value
  /// already present.
  void Append(uint32_t value);

  /// \brief Removes `value` if present; returns whether it was. A bitmap
  /// container whose cardinality drops back to kArrayMaxCardinality
  /// re-converts to a sorted array (the same break-even as the upward
  /// conversion), and a container emptied entirely is deactivated with its
  /// buffers returned to the pool. After removing the maximum, Append
  /// accepts any value greater than the new maximum.
  bool Remove(uint32_t value);

  /// \brief Builds from a sorted, duplicate-free range.
  static BlockPostingList FromSorted(const uint32_t* values, size_t n) {
    BlockPostingList list;
    for (size_t i = 0; i < n; ++i) list.Append(values[i]);
    return list;
  }
  static BlockPostingList FromSorted(const std::vector<uint32_t>& values) {
    return FromSorted(values.data(), values.size());
  }

  /// \brief Replaces this list's contents with a copy of `other`, reusing
  /// buffers.
  void CopyFrom(const BlockPostingList& other);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_containers() const { return num_active_; }
  const Container& container(size_t i) const {
    MW_DCHECK(i < num_active_);
    return containers_[i];
  }

  /// \brief Largest value in the list; requires !empty().
  uint32_t back() const {
    MW_DCHECK(size_ > 0);
    return last_value_;
  }

  /// \brief Membership test: binary search over container keys, then a
  /// binary search (array) or single bit probe (bitmap).
  bool Contains(uint32_t value) const;

  /// \brief Appends every value in ascending order, cast to T.
  template <typename T>
  void AppendTo(std::vector<T>* out) const {
    out->reserve(out->size() + size_);
    for (size_t c = 0; c < num_active_; ++c) {
      const Container& ct = containers_[c];
      const uint32_t base = static_cast<uint32_t>(ct.key) << 16;
      if (ct.is_bitmap) {
        for (size_t w = 0; w < kBitmapWords; ++w) {
          uint64_t word = ct.bitmap[w];
          while (word != 0) {
            const int b = std::countr_zero(word);
            out->push_back(static_cast<T>(
                base + static_cast<uint32_t>(w * 64 + static_cast<size_t>(b))));
            word &= word - 1;
          }
        }
      } else {
        // Bulk decode: resize once and write through a raw pointer — the
        // widening base+low loop auto-vectorizes, where per-element
        // push_back re-checks capacity on every value. Hot dictionaries
        // decode hundreds of rows per probe through this path.
        const size_t old = out->size();
        out->resize(old + ct.array.size());
        T* dst = out->data() + old;
        const uint16_t* src = ct.array.data();
        const size_t n = ct.array.size();
        for (size_t i = 0; i < n; ++i) {
          dst[i] = static_cast<T>(base + src[i]);
        }
      }
    }
  }

  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    out.reserve(size_);
    AppendTo(&out);
    return out;
  }

  /// \brief Approximate heap footprint (container buffers, pooled ones
  /// included).
  size_t bytes() const;

 private:
  friend void IntersectBlocks(const BlockPostingList&, const BlockPostingList&,
                              BlockPostingList*, KernelStats*);
  friend void UnionBlocks(const std::vector<const BlockPostingList*>&,
                          BlockPostingList*, KernelStats*);

  // Activates (reusing a pooled slot when available) a container for `key`,
  // which must exceed every active key.
  Container& AddContainer(uint16_t key);
  static void ToBitmap(Container* ct);
  static void ToArrayIfSparse(Container* ct);

  std::vector<Container> containers_;  // first num_active_ are live
  size_t num_active_ = 0;
  size_t size_ = 0;
  uint32_t last_value_ = 0;
};

/// \brief Above this many input lists, a per-key block union accumulates
/// into a bitmap scratch container instead of cascading two-pointer array
/// merges. Measured on this format by bench/measure_union_crossover.cpp
/// (sparse array containers, 64-value average cardinality, the shape the
/// fuzzy/substring probes produce): over the full 64K container span the
/// merge cascade wins decisively for few lists (19.2x at k=2, 3.25x at
/// k=4, 1.59x at k=6) but its cost grows ~quadratically with k (the
/// accumulator is re-walked per merge), while the bitmap's range-bounded
/// scatter+extract is near-constant (~7-8 us here); the curves tie at
/// k = 8 and the bitmap wins from k = 10. Lower than the flat-vector
/// kernels' heap-merge crossover of 16 because a heap merge is O(total
/// log k), not quadratic. On narrow containers (MWEAVER_BENCH_VALUE_RANGE
/// = 2048, the small-dictionary shape) the range bounding shrinks the
/// bitmap epilogue to ~1 us and it wins from k = 4 already — those dense
/// cases are routed anyway by the total-cardinality gate (see
/// UnionBlocks): whenever the result must be a bitmap container, or the
/// contributors' combined cardinality exceeds an array's, accumulating in
/// a bitmap is strictly cheaper.
inline constexpr size_t kUnionArrayMergeMaxLists = 8;

/// \brief Intersection of `a` and `b` into `*out` (Reset first; must not
/// alias the inputs). Walks the two container directories in key order and
/// dispatches per pair: SIMD compare for array x array, branchless bit
/// probe for array x bitmap, word-parallel AND for bitmap x bitmap. `stats`,
/// when given, tallies which kernels ran.
void IntersectBlocks(const BlockPostingList& a, const BlockPostingList& b,
                     BlockPostingList* out, KernelStats* stats = nullptr);

/// \brief Sorted, duplicate-free union of `lists` into `*out` (Reset
/// first; must not alias any input). Containers sharing a key merge via
/// k-way array merge when few and sparse, bitmap accumulation otherwise
/// (see kUnionArrayMergeMaxLists).
void UnionBlocks(const std::vector<const BlockPostingList*>& lists,
                 BlockPostingList* out, KernelStats* stats = nullptr);

/// \brief Sorted, duplicate-free union of `lists` decoded straight into a
/// flat value vector (cleared first). Same merge strategy as UnionBlocks,
/// but skips materializing an output posting list: no container
/// activation, no bitmap-to-array conversion, one decode pass instead of
/// two. This is the shape every terminal union takes — candidate-token
/// unions (NGramIndex / DeletionIndex) and the single-token probe's row
/// union all immediately flatten their result. Templated on the output
/// value type so callers decode into their natural width (u32 token ids,
/// i64 row ids) with no widening re-copy; instantiated in the .cc for
/// uint32_t and int64_t only.
template <typename T>
void UnionBlocksTo(const std::vector<const BlockPostingList*>& lists,
                   std::vector<T>* out, KernelStats* stats = nullptr);

extern template void UnionBlocksTo<uint32_t>(
    const std::vector<const BlockPostingList*>&, std::vector<uint32_t>*,
    KernelStats*);
extern template void UnionBlocksTo<int64_t>(
    const std::vector<const BlockPostingList*>&, std::vector<int64_t>*,
    KernelStats*);

namespace internal {

// Container-level primitives, exposed for the unit/property tests: each
// SIMD kernel is asserted byte-identical to its *Scalar reference on random
// inputs. `out` must have room for min(na, nb) (intersections) or na + nb
// (unions) values and must not alias the inputs. All return the number of
// values written.

// Sorted u16 set intersection: two-pointer merge, galloping when the sizes
// are skewed by >= 16x. The reference for IntersectU16.
size_t IntersectU16Scalar(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb, uint16_t* out);

// Dispatching intersection: broadcast-compare vector kernel (SSE2 8-lane /
// AVX2 16-lane) iterating the smaller array against block-skipped chunks of
// the larger; falls back to IntersectU16Scalar for skewed sizes (galloping
// beats vector scanning there) and in forced-scalar builds.
// `*scalar_fallback`, when given, is incremented if the scalar path ran.
size_t IntersectU16(const uint16_t* a, size_t na, const uint16_t* b,
                    size_t nb, uint16_t* out, uint64_t* scalar_fallback);

// Sorted u16 set union (two-pointer merge); scalar only — the union kernels
// go wide via bitmap accumulation instead.
size_t UnionU16Scalar(const uint16_t* a, size_t na, const uint16_t* b,
                      size_t nb, uint16_t* out);

// out[i] = a[i] & b[i] over kBitmapWords words; returns the cardinality.
// Vector AND under SIMD, plain u64 loop otherwise.
uint32_t AndBitmaps(const uint64_t* a, const uint64_t* b, uint64_t* out);

// out[i] |= src[i] over kBitmapWords words (no cardinality — union
// accumulation popcounts once at the end).
void OrBitmapInto(const uint64_t* src, uint64_t* out);

// Branchless membership filter: keeps the a[i] whose bit is set in bm.
size_t IntersectArrayBitmap(const uint16_t* a, size_t na, const uint64_t* bm,
                            uint16_t* out);

}  // namespace internal

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_POSTING_BLOCK_H_
