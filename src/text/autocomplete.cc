#include "text/autocomplete.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mweaver::text {

ValueDictionary::ValueDictionary(const storage::Database* db) {
  MW_CHECK(db != nullptr);
  for (size_t r = 0; r < db->num_relations(); ++r) {
    const storage::Relation& rel =
        db->relation(static_cast<storage::RelationId>(r));
    for (size_t a = 0; a < rel.schema().num_attributes(); ++a) {
      const storage::AttributeSchema& attr = rel.schema().attributes()[a];
      if (!attr.searchable || attr.type != storage::ValueType::kString) {
        continue;
      }
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (rel.is_deleted(static_cast<storage::RowId>(row))) continue;
        const storage::Value& v = rel.at(
            static_cast<storage::RowId>(row),
            static_cast<storage::AttributeId>(a));
        if (v.is_null() || v.AsString().empty()) continue;
        entries_.emplace_back(ToLower(v.AsString()), v.AsString());
      }
    }
  }
  std::sort(entries_.begin(), entries_.end());
  entries_.erase(std::unique(entries_.begin(), entries_.end()),
                 entries_.end());
}

std::vector<std::string> ValueDictionary::Suggest(const std::string& prefix,
                                                  size_t limit) const {
  const std::string key = ToLower(prefix);
  std::vector<std::string> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  std::string last;
  for (; it != entries_.end() && out.size() < limit; ++it) {
    if (it->first.compare(0, key.size(), key) != 0) break;
    if (it->second == last) continue;  // values differing only in case
    out.push_back(it->second);
    last = it->second;
  }
  return out;
}

bool ValueDictionary::Contains(const std::string& value) const {
  const std::pair<std::string, std::string> probe{ToLower(value), value};
  return std::binary_search(entries_.begin(), entries_.end(), probe);
}

}  // namespace mweaver::text
