// Character n-gram index over a token dictionary, powering sublinear
// kSubstring candidate lookup: instead of scanning every dictionary token
// per query token (O(|dict|)), a probe intersects the posting lists of the
// query's trigrams and verifies only the intersection.
//
// Grams of length 1, 2 and 3 are indexed so that 1- and 2-character query
// tokens resolve exactly (the gram IS the query), and >= 3-character query
// tokens resolve by trigram intersection + residual substring
// verification (trigram containment is necessary but not sufficient:
// "abcxbcd" holds both trigrams of "abcd" without containing it).
//
// Posting lists are block-encoded (text/posting_block.h): stop-gram lists
// (e.g. "the") densify into bitmap containers and intersect word-parallel
// against the rare gram that actually narrows the probe.
#ifndef MWEAVER_TEXT_NGRAM_INDEX_H_
#define MWEAVER_TEXT_NGRAM_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/posting_block.h"

namespace mweaver::text {

/// \brief Index of every 1/2/3-gram of a fixed token dictionary. Token ids
/// are dense indices into the dictionary the caller built it from.
class NGramIndex {
 public:
  using TokenId = uint32_t;

  /// \brief Indexes `tokens` (each lowercase alphanumeric). Posting lists
  /// end up sorted because token ids are visited in increasing order.
  void Build(const std::vector<std::string>& tokens);

  /// \brief Incrementally indexes one new dictionary token. `id` must
  /// exceed every id already indexed (dictionaries only grow — removing a
  /// token merely leaves its posting lists pointing at an id the caller no
  /// longer surfaces). New grams are inserted into the flat table, which
  /// rehashes (doubling) when the insert would push the load factor past
  /// 0.5. Call RecomputeBytes() after a batch of AddToken calls.
  void AddToken(TokenId id, std::string_view token);

  /// \brief Refreshes the bytes() accounting after incremental AddToken
  /// calls (Build computes it inline; per-token recompute would be
  /// quadratic in batch size).
  void RecomputeBytes();

  /// \brief Token ids that may contain `token` as a substring, sorted and
  /// duplicate-free, written to `*out` (cleared first). For 1- and
  /// 2-character tokens the result is exact; for longer tokens it is a
  /// superset and the caller must verify with find(). `*examined` is
  /// incremented by the number of candidate ids produced; `kernels`, when
  /// given, tallies the block-merge kernels the intersection dispatched to.
  void Candidates(std::string_view token, std::vector<TokenId>* out,
                  uint64_t* examined, KernelStats* kernels = nullptr) const;

  /// \brief Approximate heap footprint of the gram table.
  size_t bytes() const { return bytes_; }
  size_t num_grams() const { return gram_lists_.size(); }

 private:
  // The gram table is a flat open-addressed hash table (linear probing,
  // load factor <= 0.5) over the packed gram keys. A substring probe over a
  // length-L token performs L-2 trigram lookups against a cold table (the
  // engine round-robins across one index per attribute), and the node-based
  // unordered_map paid two dependent cache misses per lookup — bucket
  // pointer, then node — where the flat slot is one.
  struct Slot {
    uint32_t key = 0;
    uint32_t idx = kEmptySlot;  // into gram_lists_
  };
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  // A gram is at most 3 bytes; packed little-endian with its length tagged
  // in the top byte so "ab" and "ab\0" cannot collide.
  static uint32_t PackGram(std::string_view gram);

  const BlockPostingList* Postings(std::string_view gram) const {
    if (table_.empty()) return nullptr;
    const uint32_t key = PackGram(gram);
    const size_t mask = table_.size() - 1;
    // Fibonacci mix, high bits: the packed keys differ mostly in low
    // character bits, which a plain mask would collide heavily.
    size_t i = static_cast<size_t>(
                   (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >>
                   32) &
               mask;
    while (table_[i].idx != kEmptySlot) {
      if (table_[i].key == key) return &gram_lists_[table_[i].idx];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  // Find-or-insert for incremental adds; grows the table as needed and
  // returns the gram's posting-list index.
  uint32_t InsertKey(uint32_t key);
  void Rehash(size_t new_size);

  std::vector<BlockPostingList> gram_lists_;
  std::vector<Slot> table_;  // power-of-two size
  size_t num_keys_ = 0;      // occupied slots, for the load-factor check
  size_t bytes_ = 0;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_NGRAM_INDEX_H_
