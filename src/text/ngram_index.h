// Character n-gram index over a token dictionary, powering sublinear
// kSubstring candidate lookup: instead of scanning every dictionary token
// per query token (O(|dict|)), a probe intersects the posting lists of the
// query's trigrams and verifies only the intersection.
//
// Grams of length 1, 2 and 3 are indexed so that 1- and 2-character query
// tokens resolve exactly (the gram IS the query), and >= 3-character query
// tokens resolve by trigram intersection + residual substring
// verification (trigram containment is necessary but not sufficient:
// "abcxbcd" holds both trigrams of "abcd" without containing it).
#ifndef MWEAVER_TEXT_NGRAM_INDEX_H_
#define MWEAVER_TEXT_NGRAM_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mweaver::text {

/// \brief Index of every 1/2/3-gram of a fixed token dictionary. Token ids
/// are dense indices into the dictionary the caller built it from.
class NGramIndex {
 public:
  using TokenId = uint32_t;

  /// \brief Indexes `tokens` (each lowercase alphanumeric). Posting lists
  /// end up sorted because token ids are visited in increasing order.
  void Build(const std::vector<std::string>& tokens);

  /// \brief Token ids that may contain `token` as a substring, sorted and
  /// duplicate-free, written to `*out` (cleared first). For 1- and
  /// 2-character tokens the result is exact; for longer tokens it is a
  /// superset and the caller must verify with find(). `*examined` is
  /// incremented by the number of candidate ids produced.
  void Candidates(std::string_view token, std::vector<TokenId>* out,
                  uint64_t* examined) const;

  /// \brief Approximate heap footprint of the gram table.
  size_t bytes() const { return bytes_; }
  size_t num_grams() const { return grams_.size(); }

 private:
  // A gram is at most 3 bytes; packed little-endian with its length tagged
  // in the top byte so "ab" and "ab\0" cannot collide.
  static uint32_t PackGram(std::string_view gram);

  const std::vector<TokenId>* Postings(std::string_view gram) const;

  std::unordered_map<uint32_t, std::vector<TokenId>> grams_;
  size_t bytes_ = 0;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_NGRAM_INDEX_H_
