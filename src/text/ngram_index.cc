#include "text/ngram_index.h"

#include <algorithm>

namespace mweaver::text {

uint32_t NGramIndex::PackGram(std::string_view gram) {
  uint32_t key = static_cast<uint32_t>(gram.size()) << 24;
  for (size_t i = 0; i < gram.size(); ++i) {
    key |= static_cast<uint32_t>(static_cast<unsigned char>(gram[i]))
           << (8 * i);
  }
  return key;
}

void NGramIndex::Build(const std::vector<std::string>& tokens) {
  gram_lists_.clear();
  table_.clear();
  // Accumulate the per-gram posting lists; a node map is fine at build
  // time, the flat probe table below is what lookups touch.
  std::unordered_map<uint32_t, uint32_t> index_of_key;
  for (TokenId id = 0; id < tokens.size(); ++id) {
    const std::string& t = tokens[id];
    for (size_t n = 1; n <= 3 && n <= t.size(); ++n) {
      for (size_t i = 0; i + n <= t.size(); ++i) {
        auto [it, inserted] = index_of_key.emplace(
            PackGram(std::string_view(t).substr(i, n)),
            static_cast<uint32_t>(gram_lists_.size()));
        if (inserted) gram_lists_.emplace_back();
        BlockPostingList& list = gram_lists_[it->second];
        // The same gram recurs within one token ("aaa"); ids arrive in
        // increasing order, so dedup is a back() check.
        if (list.empty() || list.back() != id) list.Append(id);
      }
    }
  }
  // Flat table at load factor <= 0.5, power-of-two size for mask probing.
  size_t table_size = 16;
  while (table_size < index_of_key.size() * 2) table_size *= 2;
  table_.assign(table_size, Slot{});
  const size_t mask = table_size - 1;
  for (const auto& [key, idx] : index_of_key) {
    size_t i = static_cast<size_t>(
                   (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >>
                   32) &
               mask;
    while (table_[i].idx != kEmptySlot) i = (i + 1) & mask;
    table_[i] = Slot{key, idx};
  }
  num_keys_ = index_of_key.size();
  RecomputeBytes();
}

void NGramIndex::Rehash(size_t new_size) {
  std::vector<Slot> old = std::move(table_);
  table_.assign(new_size, Slot{});
  const size_t mask = new_size - 1;
  for (const Slot& slot : old) {
    if (slot.idx == kEmptySlot) continue;
    size_t i = static_cast<size_t>(
                   (static_cast<uint64_t>(slot.key) * 0x9E3779B97F4A7C15ull) >>
                   32) &
               mask;
    while (table_[i].idx != kEmptySlot) i = (i + 1) & mask;
    table_[i] = slot;
  }
}

uint32_t NGramIndex::InsertKey(uint32_t key) {
  if (table_.empty()) table_.assign(16, Slot{});
  // Keep the load factor <= 0.5 the probe loop was designed around.
  if ((num_keys_ + 1) * 2 > table_.size()) Rehash(table_.size() * 2);
  const size_t mask = table_.size() - 1;
  size_t i = static_cast<size_t>(
                 (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 32) &
             mask;
  while (table_[i].idx != kEmptySlot) {
    if (table_[i].key == key) return table_[i].idx;
    i = (i + 1) & mask;
  }
  const auto idx = static_cast<uint32_t>(gram_lists_.size());
  gram_lists_.emplace_back();
  table_[i] = Slot{key, idx};
  ++num_keys_;
  return idx;
}

void NGramIndex::AddToken(TokenId id, std::string_view token) {
  for (size_t n = 1; n <= 3 && n <= token.size(); ++n) {
    for (size_t i = 0; i + n <= token.size(); ++i) {
      const uint32_t idx = InsertKey(PackGram(token.substr(i, n)));
      BlockPostingList& list = gram_lists_[idx];
      if (list.empty() || list.back() != id) list.Append(id);
    }
  }
}

void NGramIndex::RecomputeBytes() {
  bytes_ = table_.capacity() * sizeof(Slot);
  for (const BlockPostingList& list : gram_lists_) {
    bytes_ += sizeof(list) + list.bytes();
  }
}

void NGramIndex::Candidates(std::string_view token,
                            std::vector<TokenId>* out, uint64_t* examined,
                            KernelStats* kernels) const {
  out->clear();
  if (token.empty()) return;
  if (token.size() <= 2) {
    if (const BlockPostingList* list = Postings(token)) list->AppendTo(out);
    if (examined != nullptr) *examined += out->size();
    return;
  }
  // Collect the posting list of every trigram; any absent trigram proves no
  // dictionary token contains the query.
  thread_local std::vector<const BlockPostingList*> lists;
  lists.clear();
  for (size_t i = 0; i + 3 <= token.size(); ++i) {
    const BlockPostingList* list = Postings(token.substr(i, 3));
    if (list == nullptr) return;
    lists.push_back(list);
  }
  // Intersect smallest-first so the accumulator only shrinks; the rare gram
  // x stop-gram case dispatches to the galloping / array-x-bitmap kernels.
  // Repeated grams ("aaa" twice in "aaaa") resolve to the same list — drop
  // the duplicates, intersecting a set with itself is a no-op.
  std::sort(lists.begin(), lists.end(), [](const auto* a, const auto* b) {
    return a->size() != b->size() ? a->size() < b->size() : a < b;
  });
  lists.erase(std::unique(lists.begin(), lists.end()), lists.end());
  // The cascade is a pre-filter: tokens of length > 3 (the only ones with
  // two or more trigrams) are residually verified by an exact substring
  // find in the caller, so stopping early just hands back a slightly
  // larger superset. Once the accumulator is this small, verifying the
  // stragglers is cheaper than more block intersections.
  constexpr size_t kSelectiveEnough = 32;
  if (lists.size() == 1 || lists[0]->size() <= kSelectiveEnough) {
    lists[0]->AppendTo(out);
    if (examined != nullptr) *examined += out->size();
    return;
  }
  thread_local BlockPostingList acc;
  thread_local BlockPostingList tmp;
  IntersectBlocks(*lists[0], *lists[1], &acc, kernels);
  for (size_t i = 2;
       i < lists.size() && acc.size() > kSelectiveEnough; ++i) {
    IntersectBlocks(acc, *lists[i], &tmp, kernels);
    std::swap(acc, tmp);
  }
  acc.AppendTo(out);
  if (examined != nullptr) *examined += out->size();
}

}  // namespace mweaver::text
