#include "text/ngram_index.h"

#include <algorithm>

#include "text/postings.h"

namespace mweaver::text {

uint32_t NGramIndex::PackGram(std::string_view gram) {
  uint32_t key = static_cast<uint32_t>(gram.size()) << 24;
  for (size_t i = 0; i < gram.size(); ++i) {
    key |= static_cast<uint32_t>(static_cast<unsigned char>(gram[i]))
           << (8 * i);
  }
  return key;
}

void NGramIndex::Build(const std::vector<std::string>& tokens) {
  grams_.clear();
  for (TokenId id = 0; id < tokens.size(); ++id) {
    const std::string& t = tokens[id];
    for (size_t n = 1; n <= 3 && n <= t.size(); ++n) {
      for (size_t i = 0; i + n <= t.size(); ++i) {
        std::vector<TokenId>& list =
            grams_[PackGram(std::string_view(t).substr(i, n))];
        // The same gram recurs within one token ("aaa"); ids arrive in
        // increasing order, so dedup is a back() check.
        if (list.empty() || list.back() != id) list.push_back(id);
      }
    }
  }
  bytes_ = 0;
  for (const auto& [key, list] : grams_) {
    bytes_ += sizeof(key) + sizeof(list) + list.capacity() * sizeof(TokenId);
  }
}

const std::vector<NGramIndex::TokenId>* NGramIndex::Postings(
    std::string_view gram) const {
  auto it = grams_.find(PackGram(gram));
  return it == grams_.end() ? nullptr : &it->second;
}

void NGramIndex::Candidates(std::string_view token,
                            std::vector<TokenId>* out,
                            uint64_t* examined) const {
  out->clear();
  if (token.empty()) return;
  if (token.size() <= 2) {
    if (const std::vector<TokenId>* list = Postings(token)) *out = *list;
    if (examined != nullptr) *examined += out->size();
    return;
  }
  // Collect the posting list of every trigram; any absent trigram proves no
  // dictionary token contains the query.
  thread_local std::vector<const std::vector<TokenId>*> lists;
  lists.clear();
  for (size_t i = 0; i + 3 <= token.size(); ++i) {
    const std::vector<TokenId>* list = Postings(token.substr(i, 3));
    if (list == nullptr) return;
    lists.push_back(list);
  }
  // Intersect smallest-first so the accumulator only shrinks; galloping
  // inside IntersectSorted handles the skewed (rare gram x stop-gram) case.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  thread_local std::vector<TokenId> acc;
  *out = *lists[0];
  for (size_t i = 1; i < lists.size() && !out->empty(); ++i) {
    IntersectSorted(*out, *lists[i], &acc);
    out->swap(acc);
  }
  if (examined != nullptr) *examined += out->size();
}

}  // namespace mweaver::text
