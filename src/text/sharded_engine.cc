#include "text/sharded_engine.h"

#include <algorithm>

#include "common/hash_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/thread_pool.h"

namespace mweaver::text {

void ShardedTextEngine::Init(const storage::Database* db, MatchPolicy policy,
                             uint32_t shard_count,
                             const EngineOptions& options,
                             const ShardedTextEngine* previous,
                             const std::vector<bool>& reuse,
                             size_t* shards_rebuilt) {
  // The facade's own metadata (numeric scan path, merged-result memo) spans
  // the whole database: shard scope belongs to the shard engines only.
  EngineOptions facade_options = options;
  facade_options.shard_index = 0;
  facade_options.shard_count = 1;
  InitMetadata(db, policy, facade_options);

  const uint32_t n = std::max<uint32_t>(1, shard_count);
  shards_.resize(n);
  mutable_shards_.assign(n, false);
  EngineOptions shard_options = options;
  shard_options.shard_count = n;
  if (shard_options.probe_cache_bytes > 0) {
    // Split the memo budget across shards (floored well above useless) so a
    // sharded tenant's total stays in the same ballpark as a monolithic one.
    shard_options.probe_cache_bytes =
        std::max<size_t>(shard_options.probe_cache_bytes / n, 64u << 10);
  }
  std::vector<uint32_t> to_build;
  to_build.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    if (previous != nullptr && s < reuse.size() && reuse[s]) {
      // Carried over unchanged: rebind to the new database at the shard's
      // old relation versions, sharing indexes and probe memo.
      shards_[s] = previous->shard(s)->CloneForDelta(db, {}, 0);
    } else {
      to_build.push_back(s);
    }
  }
  // Shard builds are independent; fan them out (each one additionally fans
  // its per-attribute index builds out — ParallelFor nests safely).
  ParallelFor(to_build.size(), ThreadPool::Shared().num_threads(),
              [&](size_t i) {
                EngineOptions so = shard_options;
                so.shard_index = to_build[i];
                shards_[to_build[i]] =
                    std::make_shared<FullTextEngine>(db, policy, so);
              });
  if (shards_rebuilt != nullptr) *shards_rebuilt = to_build.size();
}

ShardedTextEngine::ShardedTextEngine(const storage::Database* db,
                                     MatchPolicy policy, uint32_t shard_count,
                                     EngineOptions options) {
  Init(db, policy, shard_count, options, /*previous=*/nullptr, {},
       /*shards_rebuilt=*/nullptr);
}

std::unique_ptr<ShardedTextEngine> ShardedTextEngine::BuildReusing(
    const storage::Database* db, MatchPolicy policy, uint32_t shard_count,
    EngineOptions options, const ShardedTextEngine* previous,
    const std::vector<bool>& reuse, size_t* shards_rebuilt) {
  auto bundle = std::unique_ptr<ShardedTextEngine>(new ShardedTextEngine());
  bundle->Init(db, policy, shard_count, options, previous, reuse,
               shards_rebuilt);
  return bundle;
}

ShardedTextEngine::ShardedTextEngine(
    const storage::Database* db, MatchPolicy policy,
    std::vector<std::shared_ptr<FullTextEngine>> shards, EngineOptions options)
    : ShardedTextEngine() {
  MW_CHECK(!shards.empty());
  EngineOptions facade_options = options;
  facade_options.shard_index = 0;
  facade_options.shard_count = 1;
  InitMetadata(db, policy, facade_options);
  shards_ = std::move(shards);
  mutable_shards_.assign(shards_.size(), false);
}

std::unique_ptr<ShardedTextEngine> ShardedTextEngine::CloneForShardedDelta(
    const storage::Database* db,
    const std::vector<storage::RelationId>& touched,
    const std::vector<uint32_t>& touched_shards, uint64_t new_version) const {
  MW_CHECK(db != nullptr);
  auto clone = std::unique_ptr<ShardedTextEngine>(new ShardedTextEngine());
  clone->db_ = db;
  clone->policy_ = policy_;
  clone->policy_fp_ = policy_fp_;
  clone->indexed_attrs_ = indexed_attrs_;
  clone->index_of_attr_ = index_of_attr_;
  clone->numeric_attrs_ = numeric_attrs_;
  clone->slot_of_attr_ = slot_of_attr_;
  clone->rel_versions_ = rel_versions_;
  clone->probe_cache_ = probe_cache_;  // shared; versions fence staleness
  clone->shards_.resize(shards_.size());
  clone->mutable_shards_.assign(shards_.size(), false);
  static const std::vector<storage::RelationId> kNoRelations;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const bool is_touched =
        std::find(touched_shards.begin(), touched_shards.end(),
                  static_cast<uint32_t>(s)) != touched_shards.end();
    // Untouched shards are shallow-rebound to the delta's database at their
    // old relation versions (their content is unchanged — the shard hash
    // routed no batch row to them), keeping their probe memos warm.
    clone->shards_[s] = shards_[s]->CloneForDelta(
        db, is_touched ? touched : kNoRelations, new_version);
    clone->mutable_shards_[s] = is_touched;
  }
  // The facade's own versions (numeric memo + merged-result memo keys) bump
  // for every touched relation: merged results depend on all shards.
  for (storage::RelationId rel : touched) {
    clone->rel_versions_[static_cast<size_t>(rel)] = new_version;
  }
  return clone;
}

RowSet ShardedTextEngine::MatchingRows(const AttributeRef& attr,
                                       const std::string& sample,
                                       ProbeCounters* counters) const {
  if (index_of_attr_.find(attr) == index_of_attr_.end()) {
    // Numeric (or unknown) attribute: the whole-database scan+memo path.
    return FullTextEngine::MatchingRows(attr, sample, counters);
  }
  ProbeStats stats;
  stats.probes = 1;
  const uint64_t version = relation_version(attr.relation);
  if (RowSet cached = probe_cache_->Lookup(attr.relation, attr.attribute,
                                           policy_fp_, version, sample)) {
    stats.memo_hits = 1;
    probe_totals_.Record(stats);
    if (counters != nullptr) counters->Record(stats);
    return cached;
  }
  stats.memo_misses = 1;

  // Fan the probe out; each shard memoizes its own slice. `shard_stats`
  // (atomic) aggregates the shards' candidate/fallback tallies so they flow
  // into the caller's trace and the facade's cacheability rule.
  std::vector<RowSet> per_shard(shards_.size());
  ProbeCounters shard_stats;
  ParallelFor(shards_.size(), ThreadPool::Shared().num_threads(),
              [&](size_t s) {
                per_shard[s] = shards_[s]->MatchingRows(attr, sample,
                                                        &shard_stats);
              });
  stats.Add(shard_stats.Snapshot());

  // Per-shard row sets are sorted and pairwise disjoint (the shard hash
  // partitions rows), so concatenating in shard order and sorting yields
  // exactly the monolithic engine's sorted result.
  size_t total = 0;
  size_t nonempty = 0;
  const RowSet* only = nullptr;
  for (const RowSet& rows : per_shard) {
    if (rows->empty()) continue;
    ++nonempty;
    only = &rows;
    total += rows->size();
  }
  RowSet result;
  if (total == 0) {
    result = EmptyRowSet();
  } else if (nonempty == 1) {
    result = *only;  // share the single shard's vector
  } else {
    std::vector<storage::RowId> merged;
    merged.reserve(total);
    for (const RowSet& rows : per_shard) {
      merged.insert(merged.end(), rows->begin(), rows->end());
    }
    std::sort(merged.begin(), merged.end());
    result = std::make_shared<const std::vector<storage::RowId>>(
        std::move(merged));
  }

  probe_totals_.Record(stats);
  if (counters != nullptr) counters->Record(stats);
  // Same rule as the monolithic engine: punctuation-only samples degrade to
  // all-rows candidate sets; never cache those.
  if (stats.all_rows_fallbacks == 0) {
    probe_cache_->Insert(attr.relation, attr.attribute, policy_fp_, version,
                         sample, result);
  }
  return result;
}

void ShardedTextEngine::ApplyRowInsert(storage::RelationId relation,
                                       storage::RowId row) {
  const uint32_t s = ShardOfRow(row, shards_.size());
  MW_CHECK(mutable_shards_[s]);
  shards_[s]->ApplyRowInsert(relation, row);
}

void ShardedTextEngine::ApplyRowDelete(storage::RelationId relation,
                                       storage::RowId row) {
  const uint32_t s = ShardOfRow(row, shards_.size());
  MW_CHECK(mutable_shards_[s]);
  shards_[s]->ApplyRowDelete(relation, row);
}

void ShardedTextEngine::FinalizeDelta(
    const std::vector<storage::RelationId>& touched) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (mutable_shards_[s]) shards_[s]->FinalizeDelta(touched);
  }
}

size_t ShardedTextEngine::MaxRemovedRows(storage::RelationId relation) const {
  const bool in_delta = std::find(mutable_shards_.begin(),
                                  mutable_shards_.end(),
                                  true) != mutable_shards_.end();
  size_t max_removed = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (in_delta && !mutable_shards_[s]) continue;
    max_removed = std::max(max_removed, shards_[s]->MaxRemovedRows(relation));
  }
  return max_removed;
}

void ShardedTextEngine::CompactRelationIndexes(storage::RelationId relation) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (mutable_shards_[s]) shards_[s]->CompactRelationIndexes(relation);
  }
}

size_t ShardedTextEngine::index_bytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->index_bytes();
  return bytes;
}

}  // namespace mweaver::text
