// Numeric sample support (the paper's §7: "If the source contains many
// numerical attributes, a numerical sample may be contained by multiple
// source attributes"). When a policy opts in, samples that parse as numbers
// also match numeric (int64/double) attribute values, so users can type
// quantities, years or ratings as samples.
#ifndef MWEAVER_TEXT_NUMERIC_H_
#define MWEAVER_TEXT_NUMERIC_H_

#include <optional>
#include <string_view>

#include "storage/value.h"

namespace mweaver::text {

/// \brief Parses `s` as a number (integer or decimal, optional sign);
/// nullopt when `s` is not entirely numeric.
std::optional<double> ParseNumeric(std::string_view s);

/// \brief True iff numeric `value` equals `sample` (int64: exactly;
/// double: within relative tolerance 1e-9). Non-numeric and null values
/// never match.
bool NumericEquals(const storage::Value& value, double sample);

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_NUMERIC_H_
