// Probe counters for the approximate-keyword lookup layer: how many
// per-attribute probes ran, how many were answered by the probe memo, how
// many dictionary tokens the n-gram / deletion-neighborhood indexes had to
// examine, and how often a probe fell back to a full dictionary scan.
//
// Two shapes, one set of fields:
//  * ProbeStats — a plain copyable tally. One lives on the stack of each
//    lookup call; snapshots of the atomic form embed into
//    core::ExecutionTrace and flow into service::ServiceMetrics.
//  * ProbeCounters — the atomic accumulator. One lives inside each
//    core::ExecutionContext (probes run concurrently from the pairwise
//    stage's ParallelFor workers) and one inside FullTextEngine for
//    engine-lifetime totals.
#ifndef MWEAVER_TEXT_LOOKUP_STATS_H_
#define MWEAVER_TEXT_LOOKUP_STATS_H_

#include <atomic>
#include <cstdint>

namespace mweaver::text {

/// \brief Plain tally of one (or many summed) approximate-lookup probes.
struct ProbeStats {
  /// Per-(attribute, sample) probes answered, memo hits included.
  uint64_t probes = 0;
  /// Probes answered straight from the probe memo.
  uint64_t memo_hits = 0;
  /// Probes that had to run a candidate lookup + verification pass.
  uint64_t memo_misses = 0;
  /// Dictionary tokens the candidate indexes examined (n-gram candidates
  /// verified, deletion-neighborhood candidates verified, or tokens touched
  /// by a scan fallback). The linear-scan baseline would examine
  /// |dictionary| per query token.
  uint64_t candidates_examined = 0;
  /// Query tokens that fell back to a full dictionary scan (edit bound
  /// beyond what the deletion index covers).
  uint64_t scan_fallbacks = 0;
  /// Probes whose sample tokenized to nothing (punctuation-only): the
  /// index returns every indexed row and the memo must not cache it.
  uint64_t all_rows_fallbacks = 0;
  // Block-posting kernel dispatch counters (see text/posting_block.h):
  // which container-pair shape each merge hit, and how often the scalar
  // fallback ran instead of a vector kernel (every merge, in a
  // -DMWEAVER_DISABLE_SIMD build).
  uint64_t kernel_array_array = 0;
  uint64_t kernel_array_bitmap = 0;
  uint64_t kernel_bitmap_bitmap = 0;
  uint64_t kernel_scalar_fallback = 0;

  void Add(const ProbeStats& other) {
    probes += other.probes;
    memo_hits += other.memo_hits;
    memo_misses += other.memo_misses;
    candidates_examined += other.candidates_examined;
    scan_fallbacks += other.scan_fallbacks;
    all_rows_fallbacks += other.all_rows_fallbacks;
    kernel_array_array += other.kernel_array_array;
    kernel_array_bitmap += other.kernel_array_bitmap;
    kernel_bitmap_bitmap += other.kernel_bitmap_bitmap;
    kernel_scalar_fallback += other.kernel_scalar_fallback;
  }
};

/// \brief Thread-safe accumulator of ProbeStats.
class ProbeCounters {
 public:
  void Record(const ProbeStats& s) {
    probes_.fetch_add(s.probes, std::memory_order_relaxed);
    memo_hits_.fetch_add(s.memo_hits, std::memory_order_relaxed);
    memo_misses_.fetch_add(s.memo_misses, std::memory_order_relaxed);
    candidates_examined_.fetch_add(s.candidates_examined,
                                   std::memory_order_relaxed);
    scan_fallbacks_.fetch_add(s.scan_fallbacks, std::memory_order_relaxed);
    all_rows_fallbacks_.fetch_add(s.all_rows_fallbacks,
                                  std::memory_order_relaxed);
    kernel_array_array_.fetch_add(s.kernel_array_array,
                                  std::memory_order_relaxed);
    kernel_array_bitmap_.fetch_add(s.kernel_array_bitmap,
                                   std::memory_order_relaxed);
    kernel_bitmap_bitmap_.fetch_add(s.kernel_bitmap_bitmap,
                                    std::memory_order_relaxed);
    kernel_scalar_fallback_.fetch_add(s.kernel_scalar_fallback,
                                      std::memory_order_relaxed);
  }

  ProbeStats Snapshot() const {
    ProbeStats s;
    s.probes = probes_.load(std::memory_order_relaxed);
    s.memo_hits = memo_hits_.load(std::memory_order_relaxed);
    s.memo_misses = memo_misses_.load(std::memory_order_relaxed);
    s.candidates_examined =
        candidates_examined_.load(std::memory_order_relaxed);
    s.scan_fallbacks = scan_fallbacks_.load(std::memory_order_relaxed);
    s.all_rows_fallbacks =
        all_rows_fallbacks_.load(std::memory_order_relaxed);
    s.kernel_array_array = kernel_array_array_.load(std::memory_order_relaxed);
    s.kernel_array_bitmap =
        kernel_array_bitmap_.load(std::memory_order_relaxed);
    s.kernel_bitmap_bitmap =
        kernel_bitmap_bitmap_.load(std::memory_order_relaxed);
    s.kernel_scalar_fallback =
        kernel_scalar_fallback_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    probes_.store(0, std::memory_order_relaxed);
    memo_hits_.store(0, std::memory_order_relaxed);
    memo_misses_.store(0, std::memory_order_relaxed);
    candidates_examined_.store(0, std::memory_order_relaxed);
    scan_fallbacks_.store(0, std::memory_order_relaxed);
    all_rows_fallbacks_.store(0, std::memory_order_relaxed);
    kernel_array_array_.store(0, std::memory_order_relaxed);
    kernel_array_bitmap_.store(0, std::memory_order_relaxed);
    kernel_bitmap_bitmap_.store(0, std::memory_order_relaxed);
    kernel_scalar_fallback_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> memo_hits_{0};
  std::atomic<uint64_t> memo_misses_{0};
  std::atomic<uint64_t> candidates_examined_{0};
  std::atomic<uint64_t> scan_fallbacks_{0};
  std::atomic<uint64_t> all_rows_fallbacks_{0};
  std::atomic<uint64_t> kernel_array_array_{0};
  std::atomic<uint64_t> kernel_array_bitmap_{0};
  std::atomic<uint64_t> kernel_bitmap_bitmap_{0};
  std::atomic<uint64_t> kernel_scalar_fallback_{0};
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_LOOKUP_STATS_H_
