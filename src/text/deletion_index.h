// SymSpell-style deletion-neighborhood index for sublinear fuzzy token
// lookup (kFuzzyTokenSubset): map every dictionary token's deletion
// variants (up to kMaxEdit character deletions) to the token. A query
// within edit distance d of a dictionary token shares at least one
// deletion variant with it, so a probe looks up only the query's own
// deletion variants and verifies the small candidate set with the bounded
// edit-distance routine — instead of edit-distancing the whole dictionary.
//
// Chosen over a BK-tree (see DESIGN.md): lookups are pure hash probes with
// edit distance computed only on final candidates, whereas a BK-tree pays
// an edit-distance evaluation at every visited node and degrades badly at
// d = 2 on short tokens; the deletion table's extra memory (~O(len^2)
// variants per token at d = 2) is cheap at our dictionary sizes and its
// build is embarrassingly parallel across attributes.
//
// Variants are stored as 64-bit FNV-1a hashes, not strings: a hash
// collision only widens the candidate set, never loses a match, so the
// verification pass preserves exactness.
#ifndef MWEAVER_TEXT_DELETION_INDEX_H_
#define MWEAVER_TEXT_DELETION_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/posting_block.h"

namespace mweaver::text {

/// \brief Deletion-neighborhood index over a fixed token dictionary.
class DeletionIndex {
 public:
  using TokenId = uint32_t;

  /// Largest per-token edit distance the index can answer; probes beyond it
  /// must fall back to a dictionary scan.
  static constexpr size_t kMaxEdit = 2;
  /// Tokens longer than this are kept in a side list (their deletion
  /// neighborhoods are quadratically large) and verified on every probe.
  static constexpr size_t kMaxIndexedLength = 32;

  /// \brief Indexes `tokens`.
  void Build(const std::vector<std::string>& tokens);

  /// \brief Incrementally indexes one new dictionary token. `id` must
  /// exceed every id already indexed. New variant hashes are inserted into
  /// the flat table, which rehashes (doubling) when the insert would push
  /// the load factor past 0.5. Call RecomputeBytes() after a batch.
  void AddToken(TokenId id, std::string_view token);

  /// \brief Refreshes the bytes() accounting after incremental AddToken
  /// calls.
  void RecomputeBytes();

  bool Supports(size_t max_edit) const { return max_edit <= kMaxEdit; }

  /// \brief Token ids possibly within edit distance `max_edit` of `token`
  /// (requires Supports(max_edit)), sorted and duplicate-free, written to
  /// `*out` (cleared first). A superset: the caller verifies each candidate
  /// with BoundedEditDistance. `*examined` is incremented by the number of
  /// candidates produced; `kernels`, when given, tallies the block-merge
  /// kernels the variant-list union dispatched to.
  void Candidates(std::string_view token, size_t max_edit,
                  std::vector<TokenId>* out, uint64_t* examined,
                  KernelStats* kernels = nullptr) const;

  /// \brief Approximate heap footprint of the variant table.
  size_t bytes() const { return bytes_; }
  size_t num_variants() const { return variant_lists_.size(); }

 private:
  // The variant table is a flat open-addressed hash table (linear probing,
  // load factor <= 0.5) over the 64-bit variant hashes. A fuzzy probe
  // performs ~|token|^2/2 lookups, most of which miss — each is then one
  // cache line touch and an average of ~1.5 probe steps, where the
  // node-based unordered_map paid a bucket indirection plus a chain chase
  // per lookup. Probe-path profiling showed those finds dominating
  // DeletionIndex::Candidates' self time.
  struct Slot {
    uint64_t hash = 0;
    uint32_t idx = kEmptySlot;  // into variant_lists_
  };
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;

  static uint64_t HashVariant(std::string_view variant);
  // Collects the hashes of every variant of `token` reachable by deleting
  // up to `budget` characters (the token itself included), deduplicated.
  static void CollectVariantHashes(std::string_view token, size_t budget,
                                   std::vector<uint64_t>* out);

  const BlockPostingList* FindVariant(uint64_t hash) const {
    if (table_.empty()) return nullptr;
    const size_t mask = table_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (table_[i].idx != kEmptySlot) {
      if (table_[i].hash == hash) return &variant_lists_[table_[i].idx];
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  // Find-or-insert for incremental adds; grows the table as needed and
  // returns the variant's posting-list index.
  uint32_t InsertHash(uint64_t hash);
  void Rehash(size_t new_size);

  std::vector<BlockPostingList> variant_lists_;
  std::vector<Slot> table_;  // power-of-two size
  size_t num_keys_ = 0;      // occupied slots, for the load-factor check
  BlockPostingList long_tokens_;  // length > kMaxIndexedLength
  size_t bytes_ = 0;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_DELETION_INDEX_H_
