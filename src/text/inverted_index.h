// Per-(relation, attribute) inverted index: token -> sorted posting list of
// row ids. Stands in for the MySQL full-text indexes the paper's
// implementation relied on ("which has a pre-computed inverted-index",
// Appendix A.1).
//
// Every match mode resolves sublinearly in the dictionary size:
//  * exact / token-subset probes hash straight to the token's postings;
//  * kSubstring probes intersect the query's trigram posting lists
//    (NGramIndex) and verify only the residue;
//  * kFuzzyTokenSubset probes look up the query's deletion neighborhood
//    (DeletionIndex, SymSpell-style) and edit-distance only the candidates,
//    falling back to a counted full scan beyond the indexed edit bound.
// ScanCandidateRows preserves the original O(|dict|)-per-token linear scan
// as the reference implementation: property tests assert the accelerated
// path returns exactly its candidate set, and the lookup bench measures the
// speedup against it.
#ifndef MWEAVER_TEXT_INVERTED_INDEX_H_
#define MWEAVER_TEXT_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "text/deletion_index.h"
#include "text/lookup_stats.h"
#include "text/match.h"
#include "text/ngram_index.h"
#include "text/posting_block.h"

namespace mweaver::text {

/// \brief Inverted index over the display strings of one attribute column.
class InvertedIndex {
 public:
  using TokenId = uint32_t;

  /// \brief Indexes every non-null, non-deleted value of `attribute` in
  /// `relation`. With `shard_count` > 1 the index covers only the rows the
  /// shard hash (common::ShardOfRow) assigns to `shard_index` — the unit of
  /// the catalog's intra-tenant sharding; posting row ids stay physical
  /// (relation-global), so per-shard results union losslessly.
  InvertedIndex(const storage::Relation& relation,
                storage::AttributeId attribute, uint32_t shard_index = 0,
                uint32_t shard_count = 1);

  /// \brief Incrementally indexes the value `v` of a freshly appended row.
  /// `row` must exceed every row id already indexed (appends assign
  /// physically increasing ids, so this holds by construction). New tokens
  /// extend the dictionary and the gram/deletion sub-indexes in place.
  void AddRow(storage::RowId row, const storage::Value& v);

  /// \brief Removes a tombstoned row's value from every posting list it
  /// appears in. Dictionary entries whose postings empty out are retained
  /// (they resolve to empty row sets, which is indistinguishable from a
  /// missing token to every probe); Compact() rebuilds without them.
  void RemoveRow(storage::RowId row, const storage::Value& v);

  /// \brief Refreshes sub-index byte accounting after a batch of
  /// AddRow/RemoveRow calls.
  void FinalizeDelta();

  /// \brief Rows removed since construction (or the last Compact): the
  /// delta-compaction policy input — each removal leaves dictionary
  /// garbage that only a rebuild reclaims.
  size_t num_removed_rows() const { return num_removed_rows_; }

  /// \brief Rebuilds from scratch over the relation's live rows (of this
  /// index's shard, if sharded), dropping tokens whose postings emptied
  /// out. Equivalent to constructing fresh.
  void Compact(const storage::Relation& relation,
               storage::AttributeId attribute) {
    *this = InvertedIndex(relation, attribute, shard_index_, shard_count_);
  }

  /// \brief Sorted, duplicate-free row ids whose value could noisily contain
  /// `sample` under `policy`. Guaranteed to be a superset of the true match
  /// set; callers verify candidates against the raw values. Identical to
  /// ScanCandidateRows' result, computed sublinearly. `stats`, when given,
  /// accumulates candidate/fallback counters for this probe.
  std::vector<storage::RowId> CandidateRows(const std::string& sample,
                                            const MatchPolicy& policy,
                                            ProbeStats* stats = nullptr) const;

  /// \brief Linear-scan reference implementation of CandidateRows (the
  /// pre-acceleration code path): O(|dict|) per query token. Kept for the
  /// property tests and the lookup benchmark.
  std::vector<storage::RowId> ScanCandidateRows(
      const std::string& sample, const MatchPolicy& policy) const;

  size_t num_tokens() const { return tokens_.size(); }
  size_t num_indexed_rows() const { return num_indexed_rows_; }
  /// \brief Approximate heap footprint of all index structures.
  size_t index_bytes() const;

 private:
  // Postings of an exactly-matching token, or nullptr.
  const BlockPostingList* PostingsOf(const std::string& token) const;

  // Candidate token ids (sorted, verified) for one query token under
  // `policy`. `kernels` tallies the block-merge kernels the sub-index
  // lookups dispatched to.
  void SubstringTokenIds(const std::string& token, std::vector<TokenId>* out,
                         ProbeStats* stats, KernelStats* kernels) const;
  void FuzzyTokenIds(const std::string& token, size_t max_edit,
                     std::vector<TokenId>* out, ProbeStats* stats,
                     KernelStats* kernels) const;

  // Token dictionary; postings_[id] aligns with tokens_[id], sorted by
  // construction (rows visited in increasing order) and block-encoded
  // (text/posting_block.h) so probes merge containers, not elements.
  std::vector<std::string> tokens_;
  std::vector<BlockPostingList> postings_;
  std::unordered_map<std::string, TokenId> token_ids_;

  NGramIndex grams_;
  DeletionIndex deletions_;

  // Rows whose value tokenized to nothing (e.g. punctuation-only); substring
  // candidates must include them conservatively only when the sample itself
  // has no tokens, in which case we fall back to all indexed rows.
  std::vector<storage::RowId> all_rows_;
  size_t num_indexed_rows_ = 0;
  size_t num_removed_rows_ = 0;
  // Shard scope of this index (0 of 1 = the whole relation); Compact()
  // must rebuild the same slice it was constructed over.
  uint32_t shard_index_ = 0;
  uint32_t shard_count_ = 1;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_INVERTED_INDEX_H_
