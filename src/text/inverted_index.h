// Per-(relation, attribute) inverted index: token -> sorted posting list of
// row ids. Stands in for the MySQL full-text indexes the paper's
// implementation relied on ("which has a pre-computed inverted-index",
// Appendix A.1).
#ifndef MWEAVER_TEXT_INVERTED_INDEX_H_
#define MWEAVER_TEXT_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "text/match.h"

namespace mweaver::text {

/// \brief Inverted index over the display strings of one attribute column.
class InvertedIndex {
 public:
  /// \brief Indexes every non-null value of `attribute` in `relation`.
  InvertedIndex(const storage::Relation& relation,
                storage::AttributeId attribute);

  /// \brief Sorted, duplicate-free row ids whose value could noisily contain
  /// `sample` under `policy`. Guaranteed to be a superset of the true match
  /// set; callers verify candidates against the raw values.
  std::vector<storage::RowId> CandidateRows(const std::string& sample,
                                            const MatchPolicy& policy) const;

  size_t num_tokens() const { return postings_.size(); }
  size_t num_indexed_rows() const { return num_indexed_rows_; }

 private:
  const std::vector<storage::RowId>& Postings(const std::string& token) const;

  /// Tokens t in the dictionary such that `token` is a substring of t.
  std::vector<const std::vector<storage::RowId>*> TokensContaining(
      const std::string& token) const;
  /// Tokens t within edit distance `max_edit` of `token`.
  std::vector<const std::vector<storage::RowId>*> TokensNear(
      const std::string& token, size_t max_edit) const;

  std::unordered_map<std::string, std::vector<storage::RowId>> postings_;
  // Rows whose value tokenized to nothing (e.g. punctuation-only); substring
  // candidates must include them conservatively only when the sample itself
  // has no tokens, in which case we fall back to all indexed rows.
  std::vector<storage::RowId> all_rows_;
  size_t num_indexed_rows_ = 0;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_INVERTED_INDEX_H_
