#include "text/match.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace mweaver::text {

namespace {

// True iff each sample token matches some value token (each value token
// usable many times: containment, not bijection), with per-token accumulated
// similarity written to *similarity when non-null.
bool TokensContained(std::string_view value, std::string_view sample,
                     size_t max_edit, double* similarity) {
  const std::vector<std::string> sample_tokens = Tokenize(sample);
  if (sample_tokens.empty()) return false;
  const std::vector<std::string> value_tokens = Tokenize(value);
  double total = 0.0;
  for (const std::string& st : sample_tokens) {
    double best = -1.0;
    for (const std::string& vt : value_tokens) {
      if (st == vt) {
        best = 1.0;
        break;
      }
      if (max_edit > 0) {
        const size_t dist = BoundedEditDistance(st, vt, max_edit);
        if (dist <= max_edit) {
          best = std::max(best, EditSimilarity(st, vt));
        }
      }
    }
    if (best < 0.0) return false;
    total += best;
  }
  if (similarity != nullptr) {
    *similarity = total / static_cast<double>(sample_tokens.size());
  }
  return true;
}

}  // namespace

bool NoisyContains(std::string_view value, std::string_view sample,
                   const MatchPolicy& policy) {
  if (sample.empty()) return false;
  switch (policy.mode) {
    case MatchMode::kExact:
      return value == sample;
    case MatchMode::kEqualsIgnoreCase:
      return EqualsIgnoreCase(value, sample);
    case MatchMode::kSubstring:
      return ContainsIgnoreCase(value, sample);
    case MatchMode::kTokenSubset:
      return TokensContained(value, sample, 0, nullptr);
    case MatchMode::kFuzzyTokenSubset:
      return TokensContained(value, sample, policy.max_edit_distance, nullptr);
  }
  return false;
}

double MatchScore(std::string_view value, std::string_view sample,
                  const MatchPolicy& policy) {
  if (sample.empty()) return 0.0;
  switch (policy.mode) {
    case MatchMode::kExact:
      return value == sample ? 1.0 : 0.0;
    case MatchMode::kEqualsIgnoreCase:
      return EqualsIgnoreCase(value, sample) ? 1.0 : 0.0;
    case MatchMode::kSubstring: {
      if (!ContainsIgnoreCase(value, sample)) return 0.0;
      // Exact-length matches score 1; a sample buried in a long value (e.g.
      // a title inside a logline) scores by coverage, never below 0.1.
      const double ratio = static_cast<double>(sample.size()) /
                           static_cast<double>(std::max<size_t>(
                               value.size(), 1));
      return std::max(0.1, ratio);
    }
    case MatchMode::kTokenSubset:
    case MatchMode::kFuzzyTokenSubset: {
      double similarity = 0.0;
      const size_t max_edit = policy.mode == MatchMode::kTokenSubset
                                  ? 0
                                  : policy.max_edit_distance;
      if (!TokensContained(value, sample, max_edit, &similarity)) return 0.0;
      // Weight by token coverage of the value, floored like substring mode.
      const size_t value_tokens = Tokenize(value).size();
      const size_t sample_tokens = Tokenize(sample).size();
      const double coverage =
          static_cast<double>(sample_tokens) /
          static_cast<double>(std::max<size_t>(value_tokens, 1));
      return std::max(0.1, similarity * std::min(1.0, coverage));
    }
  }
  return 0.0;
}

}  // namespace mweaver::text
