#include "text/inverted_index.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "text/postings.h"
#include "text/tokenizer.h"

namespace mweaver::text {

namespace {

// Reusable per-thread probe scratch: warm probes allocate nothing but their
// returned result. Thread-local because the pairwise stage probes the same
// engine from ParallelFor workers.
struct ProbeScratch {
  std::vector<storage::RowId> acc;   // intersection accumulator
  std::vector<storage::RowId> rows;  // per-token row set
  std::vector<storage::RowId> tmp;
  std::vector<InvertedIndex::TokenId> token_ids;
  std::vector<const std::vector<storage::RowId>*> lists;
  MergeScratch<storage::RowId> merge;
  std::vector<uint64_t> bits;  // bitmap scratch for high-fanout unions
};

ProbeScratch& LocalScratch() {
  thread_local ProbeScratch scratch;
  return scratch;
}

}  // namespace

InvertedIndex::InvertedIndex(const storage::Relation& relation,
                             storage::AttributeId attribute)
    : universe_rows_(relation.num_rows()) {
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    const storage::Value& v =
        relation.at(static_cast<storage::RowId>(r), attribute);
    if (v.is_null()) continue;
    const storage::RowId row = static_cast<storage::RowId>(r);
    all_rows_.push_back(row);
    ++num_indexed_rows_;
    std::vector<std::string> row_tokens = Tokenize(v.ToDisplayString());
    std::sort(row_tokens.begin(), row_tokens.end());
    row_tokens.erase(std::unique(row_tokens.begin(), row_tokens.end()),
                     row_tokens.end());
    for (std::string& t : row_tokens) {
      auto [it, inserted] =
          token_ids_.emplace(std::move(t), static_cast<TokenId>(tokens_.size()));
      if (inserted) {
        tokens_.push_back(it->first);
        postings_.emplace_back();
      }
      postings_[it->second].push_back(row);
    }
  }
  grams_.Build(tokens_);
  deletions_.Build(tokens_);
}

const std::vector<storage::RowId>* InvertedIndex::PostingsOf(
    const std::string& token) const {
  auto it = token_ids_.find(token);
  return it == token_ids_.end() ? nullptr : &postings_[it->second];
}

void InvertedIndex::SubstringTokenIds(const std::string& token,
                                      std::vector<TokenId>* out,
                                      ProbeStats* stats) const {
  grams_.Candidates(token, out,
                    stats != nullptr ? &stats->candidates_examined : nullptr);
  // A query of <= 3 chars is a single indexed gram, so its posting list is
  // already the exact containment set — no residual verification needed.
  if (token.size() <= 3) return;
  // Residual verification: trigram containment over-approximates.
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](TokenId id) {
                              return tokens_[id].find(token) ==
                                     std::string::npos;
                            }),
             out->end());
}

void InvertedIndex::FuzzyTokenIds(const std::string& token, size_t max_edit,
                                  std::vector<TokenId>* out,
                                  ProbeStats* stats) const {
  if (deletions_.Supports(max_edit)) {
    deletions_.Candidates(
        token, max_edit, out,
        stats != nullptr ? &stats->candidates_examined : nullptr);
  } else {
    // Edit bound beyond the deletion index: counted full-dictionary scan.
    out->resize(tokens_.size());
    for (TokenId id = 0; id < tokens_.size(); ++id) (*out)[id] = id;
    if (stats != nullptr) {
      ++stats->scan_fallbacks;
      stats->candidates_examined += tokens_.size();
    }
  }
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](TokenId id) {
                              return BoundedEditDistance(tokens_[id], token,
                                                         max_edit) > max_edit;
                            }),
             out->end());
}

std::vector<storage::RowId> InvertedIndex::CandidateRows(
    const std::string& sample, const MatchPolicy& policy,
    ProbeStats* stats) const {
  // Chaos site: the accelerated lookup "faults" and the probe degrades to
  // the frozen linear-scan reference. Graceful by construction — both paths
  // return identical candidate sets (the equivalence the property tests
  // pin down), so callers only see latency, never different rows.
  if (MW_FAILPOINT_TRIGGERED("text.lookup.fast_path")) {
    if (stats != nullptr) ++stats->scan_fallbacks;
    return ScanCandidateRows(sample, policy);
  }
  const std::vector<std::string> sample_tokens = Tokenize(sample);
  if (sample_tokens.empty()) {
    // Punctuation-only samples: the index cannot narrow anything down.
    // Return every indexed row; the caller's verification pass decides
    // (and the probe memo must not cache this all-rows result).
    if (stats != nullptr) ++stats->all_rows_fallbacks;
    return all_rows_;
  }
  ProbeScratch& scratch = LocalScratch();
  std::vector<storage::RowId>& acc = scratch.acc;
  acc.clear();
  bool first = true;
  for (const std::string& t : sample_tokens) {
    // Resolve this query token to a sorted row set in scratch.rows.
    std::vector<storage::RowId>& rows = scratch.rows;
    const bool fuzzy = policy.mode == MatchMode::kFuzzyTokenSubset &&
                       policy.max_edit_distance > 0;
    if (policy.mode == MatchMode::kSubstring || fuzzy) {
      if (policy.mode == MatchMode::kSubstring) {
        SubstringTokenIds(t, &scratch.token_ids, stats);
      } else {
        FuzzyTokenIds(t, policy.max_edit_distance, &scratch.token_ids, stats);
      }
      scratch.lists.clear();
      for (TokenId id : scratch.token_ids) {
        scratch.lists.push_back(&postings_[id]);
      }
      if (scratch.lists.size() > kUnionHeapMaxLists) {
        // High-fanout token (e.g. a short fragment matching hundreds of
        // dictionary entries): a bitmap over the row universe beats both
        // the heap merge and a flat sort.
        UnionSortedBitmap(scratch.lists, universe_rows_, &rows,
                          &scratch.bits);
      } else {
        UnionSorted(scratch.lists, &rows, &scratch.merge);
      }
    } else {
      // kExact / kEqualsIgnoreCase / kTokenSubset (and fuzzy at edit 0):
      // the sample token must appear verbatim.
      const std::vector<storage::RowId>* list = PostingsOf(t);
      if (stats != nullptr && list != nullptr) ++stats->candidates_examined;
      rows.clear();
      if (list != nullptr) rows.assign(list->begin(), list->end());
    }
    if (first) {
      acc.swap(rows);
      first = false;
    } else {
      IntersectSorted(acc, rows, &scratch.tmp);
      acc.swap(scratch.tmp);
    }
    if (acc.empty()) break;
  }
  return std::vector<storage::RowId>(acc.begin(), acc.end());
}

std::vector<storage::RowId> InvertedIndex::ScanCandidateRows(
    const std::string& sample, const MatchPolicy& policy) const {
  const std::vector<std::string> sample_tokens = Tokenize(sample);
  if (sample_tokens.empty()) return all_rows_;
  bool first = true;
  std::vector<storage::RowId> acc;
  for (const std::string& t : sample_tokens) {
    // Gather per-token rows the pre-acceleration way: a full dictionary
    // scan per token, a fresh vector per union/intersection.
    std::vector<const std::vector<storage::RowId>*> lists;
    switch (policy.mode) {
      case MatchMode::kExact:
      case MatchMode::kEqualsIgnoreCase:
      case MatchMode::kTokenSubset:
        if (const std::vector<storage::RowId>* p = PostingsOf(t)) {
          lists.push_back(p);
        }
        break;
      case MatchMode::kSubstring:
        // If the sample is a substring of the value, each maximal
        // alphanumeric run of the sample is contained inside some token of
        // the value (the first/last runs possibly as a proper infix).
        for (TokenId id = 0; id < tokens_.size(); ++id) {
          if (tokens_[id].find(t) != std::string::npos) {
            lists.push_back(&postings_[id]);
          }
        }
        break;
      case MatchMode::kFuzzyTokenSubset:
        for (TokenId id = 0; id < tokens_.size(); ++id) {
          if (BoundedEditDistance(tokens_[id], t, policy.max_edit_distance) <=
              policy.max_edit_distance) {
            lists.push_back(&postings_[id]);
          }
        }
        break;
    }
    std::vector<storage::RowId> rows_for_token;
    for (const auto* list : lists) {
      rows_for_token.insert(rows_for_token.end(), list->begin(), list->end());
    }
    std::sort(rows_for_token.begin(), rows_for_token.end());
    rows_for_token.erase(
        std::unique(rows_for_token.begin(), rows_for_token.end()),
        rows_for_token.end());
    if (first) {
      acc = std::move(rows_for_token);
      first = false;
    } else {
      std::vector<storage::RowId> merged;
      std::set_intersection(acc.begin(), acc.end(), rows_for_token.begin(),
                            rows_for_token.end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
    if (acc.empty()) break;
  }
  return acc;
}

size_t InvertedIndex::index_bytes() const {
  size_t bytes = grams_.bytes() + deletions_.bytes() +
                 all_rows_.capacity() * sizeof(storage::RowId);
  for (size_t i = 0; i < tokens_.size(); ++i) {
    bytes += tokens_[i].capacity() +
             postings_[i].capacity() * sizeof(storage::RowId) +
             sizeof(std::string) + sizeof(std::vector<storage::RowId>);
  }
  return bytes;
}

}  // namespace mweaver::text
