#include "text/inverted_index.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/hash_util.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace mweaver::text {

namespace {

// Reusable per-thread probe scratch: warm probes allocate nothing but their
// returned result. Thread-local because the pairwise stage probes the same
// engine from ParallelFor workers.
struct ProbeScratch {
  BlockPostingList acc;     // intersection accumulator
  BlockPostingList rows;    // per-token row set (union of candidate postings)
  BlockPostingList rows_b;  // second union buffer: the first token's union
                            // stays referenced (never copied) while the
                            // second token's union is built
  BlockPostingList tmp;
  std::vector<InvertedIndex::TokenId> token_ids;
  std::vector<const BlockPostingList*> lists;
};

ProbeScratch& LocalScratch() {
  thread_local ProbeScratch scratch;
  return scratch;
}

}  // namespace

InvertedIndex::InvertedIndex(const storage::Relation& relation,
                             storage::AttributeId attribute,
                             uint32_t shard_index, uint32_t shard_count)
    : shard_index_(shard_index), shard_count_(shard_count) {
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    const storage::RowId row = static_cast<storage::RowId>(r);
    if (relation.is_deleted(row)) continue;
    if (shard_count_ > 1 && ShardOfRow(row, shard_count_) != shard_index_) {
      continue;
    }
    const storage::Value& v = relation.at(row, attribute);
    if (v.is_null()) continue;
    all_rows_.push_back(row);
    ++num_indexed_rows_;
    std::vector<std::string> row_tokens = Tokenize(v.ToDisplayString());
    std::sort(row_tokens.begin(), row_tokens.end());
    row_tokens.erase(std::unique(row_tokens.begin(), row_tokens.end()),
                     row_tokens.end());
    for (std::string& t : row_tokens) {
      auto [it, inserted] =
          token_ids_.emplace(std::move(t), static_cast<TokenId>(tokens_.size()));
      if (inserted) {
        tokens_.push_back(it->first);
        postings_.emplace_back();
      }
      postings_[it->second].Append(static_cast<uint32_t>(r));
    }
  }
  grams_.Build(tokens_);
  deletions_.Build(tokens_);
}

void InvertedIndex::AddRow(storage::RowId row, const storage::Value& v) {
  if (v.is_null()) return;
  MW_DCHECK(all_rows_.empty() || all_rows_.back() < row)
      << "incremental rows must arrive in increasing id order";
  all_rows_.push_back(row);
  ++num_indexed_rows_;
  std::vector<std::string> row_tokens = Tokenize(v.ToDisplayString());
  std::sort(row_tokens.begin(), row_tokens.end());
  row_tokens.erase(std::unique(row_tokens.begin(), row_tokens.end()),
                   row_tokens.end());
  for (std::string& t : row_tokens) {
    auto [it, inserted] =
        token_ids_.emplace(std::move(t), static_cast<TokenId>(tokens_.size()));
    if (inserted) {
      tokens_.push_back(it->first);
      postings_.emplace_back();
      grams_.AddToken(it->second, it->first);
      deletions_.AddToken(it->second, it->first);
    }
    postings_[it->second].Append(static_cast<uint32_t>(row));
  }
}

void InvertedIndex::RemoveRow(storage::RowId row, const storage::Value& v) {
  if (v.is_null()) return;
  auto it = std::lower_bound(all_rows_.begin(), all_rows_.end(), row);
  MW_DCHECK(it != all_rows_.end() && *it == row)
      << "removing a row the index never saw";
  all_rows_.erase(it);
  --num_indexed_rows_;
  ++num_removed_rows_;
  std::vector<std::string> row_tokens = Tokenize(v.ToDisplayString());
  std::sort(row_tokens.begin(), row_tokens.end());
  row_tokens.erase(std::unique(row_tokens.begin(), row_tokens.end()),
                   row_tokens.end());
  for (const std::string& t : row_tokens) {
    auto token = token_ids_.find(t);
    MW_DCHECK(token != token_ids_.end());
    if (token == token_ids_.end()) continue;
    postings_[token->second].Remove(static_cast<uint32_t>(row));
    // An emptied posting list stays in the dictionary: every probe treats
    // an empty row set and an absent token identically, and retaining it
    // keeps the gram/deletion tables append-only. Compact() reclaims.
  }
}

void InvertedIndex::FinalizeDelta() {
  grams_.RecomputeBytes();
  deletions_.RecomputeBytes();
}

const BlockPostingList* InvertedIndex::PostingsOf(
    const std::string& token) const {
  auto it = token_ids_.find(token);
  return it == token_ids_.end() ? nullptr : &postings_[it->second];
}

void InvertedIndex::SubstringTokenIds(const std::string& token,
                                      std::vector<TokenId>* out,
                                      ProbeStats* stats,
                                      KernelStats* kernels) const {
  grams_.Candidates(token, out,
                    stats != nullptr ? &stats->candidates_examined : nullptr,
                    kernels);
  // A query of <= 3 chars is a single indexed gram, so its posting list is
  // already the exact containment set — no residual verification needed.
  if (token.size() <= 3) return;
  // Residual verification: trigram containment over-approximates.
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](TokenId id) {
                              return tokens_[id].find(token) ==
                                     std::string::npos;
                            }),
             out->end());
}

void InvertedIndex::FuzzyTokenIds(const std::string& token, size_t max_edit,
                                  std::vector<TokenId>* out,
                                  ProbeStats* stats,
                                  KernelStats* kernels) const {
  if (deletions_.Supports(max_edit)) {
    deletions_.Candidates(
        token, max_edit, out,
        stats != nullptr ? &stats->candidates_examined : nullptr, kernels);
  } else {
    // Edit bound beyond the deletion index: counted full-dictionary scan.
    out->resize(tokens_.size());
    for (TokenId id = 0; id < tokens_.size(); ++id) (*out)[id] = id;
    if (stats != nullptr) {
      ++stats->scan_fallbacks;
      stats->candidates_examined += tokens_.size();
    }
  }
  out->erase(std::remove_if(out->begin(), out->end(),
                            [&](TokenId id) {
                              return BoundedEditDistance(tokens_[id], token,
                                                         max_edit) > max_edit;
                            }),
             out->end());
}

std::vector<storage::RowId> InvertedIndex::CandidateRows(
    const std::string& sample, const MatchPolicy& policy,
    ProbeStats* stats) const {
  // Chaos site: the accelerated lookup "faults" and the probe degrades to
  // the frozen linear-scan reference. Graceful by construction — both paths
  // return identical candidate sets (the equivalence the property tests
  // pin down), so callers only see latency, never different rows.
  if (MW_FAILPOINT_TRIGGERED("text.lookup.fast_path")) {
    if (stats != nullptr) ++stats->scan_fallbacks;
    return ScanCandidateRows(sample, policy);
  }
  const std::vector<std::string> sample_tokens = Tokenize(sample);
  if (sample_tokens.empty()) {
    // Punctuation-only samples: the index cannot narrow anything down.
    // Return every indexed row; the caller's verification pass decides
    // (and the probe memo must not cache this all-rows result).
    if (stats != nullptr) ++stats->all_rows_fallbacks;
    return all_rows_;
  }
  ProbeScratch& scratch = LocalScratch();
  KernelStats kernels;
  BlockPostingList& acc = scratch.acc;
  // `current` is the intersection so far: the first token's resolved list
  // as-is (no deep copy — the common single-token probe decodes it
  // directly), then `acc` once a real intersection has run. Per-token
  // unions alternate between two scratch buffers so the first token's
  // union survives while the second token's is built.
  const BlockPostingList* current = nullptr;
  BlockPostingList* union_buf = &scratch.rows;
  for (const std::string& t : sample_tokens) {
    // Resolve this query token to a block posting list.
    const BlockPostingList* token_rows = nullptr;
    const bool fuzzy = policy.mode == MatchMode::kFuzzyTokenSubset &&
                       policy.max_edit_distance > 0;
    if (policy.mode == MatchMode::kSubstring || fuzzy) {
      if (policy.mode == MatchMode::kSubstring) {
        SubstringTokenIds(t, &scratch.token_ids, stats, &kernels);
      } else {
        FuzzyTokenIds(t, policy.max_edit_distance, &scratch.token_ids, stats,
                      &kernels);
      }
      scratch.lists.clear();
      for (TokenId id : scratch.token_ids) {
        scratch.lists.push_back(&postings_[id]);
      }
      if (sample_tokens.size() == 1) {
        // Terminal union: decode straight into the returned row vector,
        // never materializing a posting list or an intermediate u32 buffer
        // (the single-token probe is the common case, and its union result
        // is immediately flattened).
        std::vector<storage::RowId> rows;
        UnionBlocksTo(scratch.lists, &rows, &kernels);
        if (stats != nullptr) {
          stats->kernel_array_array += kernels.array_array;
          stats->kernel_array_bitmap += kernels.array_bitmap;
          stats->kernel_bitmap_bitmap += kernels.bitmap_bitmap;
          stats->kernel_scalar_fallback += kernels.scalar_fallback;
        }
        return rows;
      }
      // UnionBlocks picks k-way array merge vs. bitmap accumulation per
      // container (see kUnionArrayMergeMaxLists) — the high-fanout
      // strategy branch the flat-vector path needed is now internal.
      UnionBlocks(scratch.lists, union_buf, &kernels);
      token_rows = union_buf;
      union_buf = union_buf == &scratch.rows ? &scratch.rows_b : &scratch.rows;
    } else {
      // kExact / kEqualsIgnoreCase / kTokenSubset (and fuzzy at edit 0):
      // the sample token must appear verbatim.
      const BlockPostingList* list = PostingsOf(t);
      if (stats != nullptr && list != nullptr) ++stats->candidates_examined;
      if (list == nullptr) {
        union_buf->Reset();
        token_rows = union_buf;
        union_buf = union_buf == &scratch.rows ? &scratch.rows_b : &scratch.rows;
      } else {
        token_rows = list;
      }
    }
    if (current == nullptr) {
      current = token_rows;
    } else {
      IntersectBlocks(*current, *token_rows, &scratch.tmp, &kernels);
      std::swap(acc, scratch.tmp);
      current = &acc;
    }
    if (current->empty()) break;
  }
  if (stats != nullptr) {
    stats->kernel_array_array += kernels.array_array;
    stats->kernel_array_bitmap += kernels.array_bitmap;
    stats->kernel_bitmap_bitmap += kernels.bitmap_bitmap;
    stats->kernel_scalar_fallback += kernels.scalar_fallback;
  }
  std::vector<storage::RowId> result;
  if (current != nullptr) {
    result.reserve(current->size());
    current->AppendTo(&result);
  }
  return result;
}

std::vector<storage::RowId> InvertedIndex::ScanCandidateRows(
    const std::string& sample, const MatchPolicy& policy) const {
  const std::vector<std::string> sample_tokens = Tokenize(sample);
  if (sample_tokens.empty()) return all_rows_;
  bool first = true;
  std::vector<storage::RowId> acc;
  for (const std::string& t : sample_tokens) {
    // Gather per-token rows the pre-acceleration way: a full dictionary
    // scan per token, a fresh vector per union/intersection. Posting lists
    // decode to flat row ids first — this path must not benefit from (or
    // depend on) the block kernels it is the reference for.
    std::vector<const BlockPostingList*> lists;
    switch (policy.mode) {
      case MatchMode::kExact:
      case MatchMode::kEqualsIgnoreCase:
      case MatchMode::kTokenSubset:
        if (const BlockPostingList* p = PostingsOf(t)) {
          lists.push_back(p);
        }
        break;
      case MatchMode::kSubstring:
        // If the sample is a substring of the value, each maximal
        // alphanumeric run of the sample is contained inside some token of
        // the value (the first/last runs possibly as a proper infix).
        for (TokenId id = 0; id < tokens_.size(); ++id) {
          if (tokens_[id].find(t) != std::string::npos) {
            lists.push_back(&postings_[id]);
          }
        }
        break;
      case MatchMode::kFuzzyTokenSubset:
        for (TokenId id = 0; id < tokens_.size(); ++id) {
          if (BoundedEditDistance(tokens_[id], t, policy.max_edit_distance) <=
              policy.max_edit_distance) {
            lists.push_back(&postings_[id]);
          }
        }
        break;
    }
    std::vector<storage::RowId> rows_for_token;
    for (const BlockPostingList* list : lists) {
      list->AppendTo(&rows_for_token);
    }
    std::sort(rows_for_token.begin(), rows_for_token.end());
    rows_for_token.erase(
        std::unique(rows_for_token.begin(), rows_for_token.end()),
        rows_for_token.end());
    if (first) {
      acc = std::move(rows_for_token);
      first = false;
    } else {
      std::vector<storage::RowId> merged;
      std::set_intersection(acc.begin(), acc.end(), rows_for_token.begin(),
                            rows_for_token.end(), std::back_inserter(merged));
      acc = std::move(merged);
    }
    if (acc.empty()) break;
  }
  return acc;
}

size_t InvertedIndex::index_bytes() const {
  size_t bytes = grams_.bytes() + deletions_.bytes() +
                 all_rows_.capacity() * sizeof(storage::RowId);
  for (size_t i = 0; i < tokens_.size(); ++i) {
    bytes += tokens_[i].capacity() + postings_[i].bytes() +
             sizeof(std::string) + sizeof(BlockPostingList);
  }
  return bytes;
}

}  // namespace mweaver::text
