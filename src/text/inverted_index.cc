#include "text/inverted_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace mweaver::text {

namespace {

const std::vector<storage::RowId> kNoRows;

// Sorted-vector set intersection into `*acc`.
void IntersectInto(std::vector<storage::RowId>* acc,
                   const std::vector<storage::RowId>& other) {
  std::vector<storage::RowId> merged;
  merged.reserve(std::min(acc->size(), other.size()));
  std::set_intersection(acc->begin(), acc->end(), other.begin(), other.end(),
                        std::back_inserter(merged));
  *acc = std::move(merged);
}

// Sorted, deduplicated union of several posting lists.
std::vector<storage::RowId> UnionOf(
    const std::vector<const std::vector<storage::RowId>*>& lists) {
  std::vector<storage::RowId> out;
  for (const auto* list : lists) out.insert(out.end(), list->begin(),
                                            list->end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

InvertedIndex::InvertedIndex(const storage::Relation& relation,
                             storage::AttributeId attribute) {
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    const storage::Value& v =
        relation.at(static_cast<storage::RowId>(r), attribute);
    if (v.is_null()) continue;
    const storage::RowId row = static_cast<storage::RowId>(r);
    all_rows_.push_back(row);
    ++num_indexed_rows_;
    std::vector<std::string> tokens = Tokenize(v.ToDisplayString());
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (std::string& t : tokens) {
      postings_[std::move(t)].push_back(row);
    }
  }
  // Rows were visited in increasing order, so posting lists are sorted.
}

const std::vector<storage::RowId>& InvertedIndex::Postings(
    const std::string& token) const {
  auto it = postings_.find(token);
  return it == postings_.end() ? kNoRows : it->second;
}

std::vector<const std::vector<storage::RowId>*> InvertedIndex::TokensContaining(
    const std::string& token) const {
  std::vector<const std::vector<storage::RowId>*> out;
  for (const auto& [dict_token, rows] : postings_) {
    if (dict_token.find(token) != std::string::npos) out.push_back(&rows);
  }
  return out;
}

std::vector<const std::vector<storage::RowId>*> InvertedIndex::TokensNear(
    const std::string& token, size_t max_edit) const {
  std::vector<const std::vector<storage::RowId>*> out;
  for (const auto& [dict_token, rows] : postings_) {
    if (BoundedEditDistance(dict_token, token, max_edit) <= max_edit) {
      out.push_back(&rows);
    }
  }
  return out;
}

std::vector<storage::RowId> InvertedIndex::CandidateRows(
    const std::string& sample, const MatchPolicy& policy) const {
  const std::vector<std::string> tokens = Tokenize(sample);
  if (tokens.empty()) {
    // Punctuation-only samples: the index cannot narrow anything down.
    // Return every indexed row; the caller's verification pass decides.
    return all_rows_;
  }
  bool first = true;
  std::vector<storage::RowId> acc;
  for (const std::string& t : tokens) {
    std::vector<storage::RowId> rows_for_token;
    switch (policy.mode) {
      case MatchMode::kExact:
      case MatchMode::kEqualsIgnoreCase:
      case MatchMode::kTokenSubset:
        rows_for_token = Postings(t);
        break;
      case MatchMode::kSubstring:
        // If the sample is a substring of the value, each maximal
        // alphanumeric run of the sample is contained inside some token of
        // the value (the first/last runs possibly as a proper infix).
        rows_for_token = UnionOf(TokensContaining(t));
        break;
      case MatchMode::kFuzzyTokenSubset: {
        auto lists = TokensNear(t, policy.max_edit_distance);
        rows_for_token = UnionOf(lists);
        break;
      }
    }
    if (first) {
      acc = std::move(rows_for_token);
      first = false;
    } else {
      IntersectInto(&acc, rows_for_token);
    }
    if (acc.empty()) break;
  }
  return acc;
}

}  // namespace mweaver::text
