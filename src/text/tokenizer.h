// Word tokenizer used by the inverted index and the token-level match
// policies: lowercased maximal runs of alphanumeric characters.
#ifndef MWEAVER_TEXT_TOKENIZER_H_
#define MWEAVER_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace mweaver::text {

/// \brief Splits `s` into lowercased alphanumeric tokens ("Ed Wood!" ->
/// ["ed", "wood"]). Tokens shorter than `min_length` are dropped.
std::vector<std::string> Tokenize(std::string_view s, size_t min_length = 1);

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_TOKENIZER_H_
