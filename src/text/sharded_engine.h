// ShardedTextEngine: a FullTextEngine facade over N independently built
// shard engines, the unit of the catalog's intra-tenant sharding.
//
// Each shard engine indexes only the rows common::ShardOfRow assigns to it,
// but keeps physical (relation-global) row ids in its postings, so the
// per-shard verified match sets of one probe are sorted and pairwise
// disjoint. The facade fans a probe out across shards on the shared thread
// pool and merges the row sets back into one sorted vector — the canonical
// form a monolithic engine would produce — so search results are
// byte-identical for any shard count.
//
// Sharding exists to shrink the unit of rebuild, not the unit of serving:
//  * Catalog::Publish reuses the shard engines whose content fingerprint
//    did not change (see catalog/snapshot.h) and rebuilds only the rest;
//  * TenantWriter::Apply delta-clones only the shards owning the batch's
//    rows (CloneForShardedDelta); untouched shards stay shared with the
//    serving base, probe memos warm.
// Numeric attributes have no inverted index (they are matched by a memoized
// verification scan), so the facade answers them itself through the base
// class over the full database rather than fanning out.
#ifndef MWEAVER_TEXT_SHARDED_ENGINE_H_
#define MWEAVER_TEXT_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "text/fulltext_engine.h"

namespace mweaver::text {

/// \brief Shard-bundle facade: one FullTextEngine per row-hash shard, plus
/// the base class' metadata (attribute maps, numeric scan path, a memo of
/// merged results) over the whole database.
class ShardedTextEngine : public FullTextEngine {
 public:
  /// \brief Builds `shard_count` shard engines over `db` (clamped to >= 1).
  /// `options.shard_*` is ignored — the facade assigns each shard its own
  /// scope.
  ShardedTextEngine(const storage::Database* db, MatchPolicy policy,
                    uint32_t shard_count, EngineOptions options = {});

  /// \brief Wraps pre-built shard engines: the publish-time shard-reuse
  /// path, where unchanged shards are carried over from the previous
  /// snapshot (rebound to `db` via CloneForDelta) and only changed shards
  /// were rebuilt. `shards[s]` must index shard s of `shards.size()` over
  /// content identical to `db`'s.
  ShardedTextEngine(const storage::Database* db, MatchPolicy policy,
                    std::vector<std::shared_ptr<FullTextEngine>> shards,
                    EngineOptions options = {});

  /// \brief Publish-time factory: builds a bundle over `db`, carrying over
  /// `previous`'s shard engines where `reuse[s]` is true (the caller
  /// verified shard s's content fingerprint is unchanged; the engine is
  /// rebound to `db` via CloneForDelta, probe memo warm) and building the
  /// rest fresh in parallel. `previous` may be null / `reuse` empty, which
  /// degenerates to a full build. `shards_rebuilt`, when given, receives
  /// how many shard engines were actually constructed.
  static std::unique_ptr<ShardedTextEngine> BuildReusing(
      const storage::Database* db, MatchPolicy policy, uint32_t shard_count,
      EngineOptions options, const ShardedTextEngine* previous,
      const std::vector<bool>& reuse, size_t* shards_rebuilt = nullptr);

  uint32_t shard_count() const override {
    return static_cast<uint32_t>(shards_.size());
  }
  const std::shared_ptr<FullTextEngine>& shard(size_t s) const {
    return shards_[s];
  }

  /// \brief Sharded analogue of CloneForDelta: shards in `touched_shards`
  /// are delta-cloned (deep copies of `touched` relations' indexes, and
  /// only they accept ApplyRow*/Compact calls); every other shard is
  /// shallow-rebound to `db`, sharing its indexes and probe memo with the
  /// serving base at its old relation versions, so its memo stays warm.
  std::unique_ptr<ShardedTextEngine> CloneForShardedDelta(
      const storage::Database* db,
      const std::vector<storage::RelationId>& touched,
      const std::vector<uint32_t>& touched_shards, uint64_t new_version) const;

  /// \brief Fans indexed-attribute probes out across shards and merges the
  /// disjoint sorted row sets in shard order; numeric attributes fall
  /// through to the base class' whole-database scan path. Merged results
  /// are memoized at the facade level, so repeated probes skip the fanout.
  RowSet MatchingRows(const AttributeRef& attr, const std::string& sample,
                      ProbeCounters* counters = nullptr) const override;

  /// \brief Routes the row to its owning shard, which must be one of this
  /// delta's touched (mutable) shards.
  void ApplyRowInsert(storage::RelationId relation,
                      storage::RowId row) override;
  void ApplyRowDelete(storage::RelationId relation,
                      storage::RowId row) override;
  void FinalizeDelta(const std::vector<storage::RelationId>& touched) override;
  /// \brief During a delta, the compaction policy can only act on mutable
  /// shards, so only they are consulted; outside a delta every shard is.
  size_t MaxRemovedRows(storage::RelationId relation) const override;
  void CompactRelationIndexes(storage::RelationId relation) override;
  size_t index_bytes() const override;

 private:
  // For CloneForShardedDelta / BuildReusing, which fill every member.
  ShardedTextEngine() = default;

  // Shared body of the build constructor and BuildReusing.
  void Init(const storage::Database* db, MatchPolicy policy,
            uint32_t shard_count, const EngineOptions& options,
            const ShardedTextEngine* previous, const std::vector<bool>& reuse,
            size_t* shards_rebuilt);

  std::vector<std::shared_ptr<FullTextEngine>> shards_;
  // True for shards delta-cloned by CloneForShardedDelta: the only shards a
  // pre-publication writer may mutate. All-false on a built/adopted bundle.
  std::vector<bool> mutable_shards_;
};

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_SHARDED_ENGINE_H_
