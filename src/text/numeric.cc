#include "text/numeric.h"

#include <cmath>
#include <cstdlib>
#include <string>

namespace mweaver::text {

std::optional<double> ParseNumeric(std::string_view s) {
  if (s.empty()) return std::nullopt;
  const std::string buffer(s);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return std::nullopt;
  }
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

bool NumericEquals(const storage::Value& value, double sample) {
  switch (value.type()) {
    case storage::ValueType::kInt64: {
      // Exact: the sample must be the integer itself.
      const double v = static_cast<double>(value.AsInt64());
      return v == sample &&
             static_cast<int64_t>(sample) == value.AsInt64();
    }
    case storage::ValueType::kDouble: {
      const double v = value.AsDouble();
      if (v == sample) return true;
      const double scale = std::max(std::fabs(v), std::fabs(sample));
      return std::fabs(v - sample) <= 1e-9 * scale;
    }
    default:
      return false;
  }
}

}  // namespace mweaver::text
