// The paper's noisy-containment operator "t[A] ⊙ E" (Section 4.1): decides
// whether an attribute value contains a user-typed sample under a
// configurable error model, and scores how well it matches (used by
// ranking, Section 4.5.5).
#ifndef MWEAVER_TEXT_MATCH_H_
#define MWEAVER_TEXT_MATCH_H_

#include <string>
#include <string_view>

namespace mweaver::text {

/// \brief Error models for the ⊙ operator, from strictest to loosest.
enum class MatchMode {
  /// Byte-for-byte equality of the display string.
  kExact,
  /// Case-insensitive equality.
  kEqualsIgnoreCase,
  /// Case-insensitive substring ("Ed Wood" is contained in the logline
  /// "the Ed Wood story"). This is the paper's default reading of "contains".
  kSubstring,
  /// Every token of the sample appears as a token of the value (full-text
  /// style boolean AND, like the MySQL full-text engine the paper used).
  kTokenSubset,
  /// Like kTokenSubset but each sample token may fuzzily match a value token
  /// within a small edit distance — forgives typos in samples.
  kFuzzyTokenSubset,
};

/// \brief Configuration of the ⊙ operator.
struct MatchPolicy {
  MatchMode mode = MatchMode::kSubstring;
  /// Max per-token edit distance for kFuzzyTokenSubset.
  size_t max_edit_distance = 1;
  /// When true, samples that parse as numbers also match searchable numeric
  /// (int64/double) attributes — the paper's §7 numeric-sample extension.
  bool match_numeric = false;

  static MatchPolicy Exact() { return {MatchMode::kExact, 0, false}; }
  static MatchPolicy IgnoreCase() {
    return {MatchMode::kEqualsIgnoreCase, 0, false};
  }
  static MatchPolicy Substring() {
    return {MatchMode::kSubstring, 0, false};
  }
  static MatchPolicy TokenSubset() {
    return {MatchMode::kTokenSubset, 0, false};
  }
  static MatchPolicy Fuzzy(size_t distance = 1) {
    return {MatchMode::kFuzzyTokenSubset, distance, false};
  }

  /// \brief Same policy with numeric-sample matching enabled.
  MatchPolicy WithNumeric() const {
    MatchPolicy copy = *this;
    copy.match_numeric = true;
    return copy;
  }
};

/// \brief The ⊙ operator: true iff `value` noisily contains `sample` under
/// `policy`. An empty sample matches nothing (the interaction model ignores
/// empty cells).
bool NoisyContains(std::string_view value, std::string_view sample,
                   const MatchPolicy& policy);

/// \brief Match quality in [0,1]; 0 when NoisyContains is false. Exact
/// equality scores 1; looser matches score lower (substring by length ratio,
/// fuzzy tokens by edit similarity).
double MatchScore(std::string_view value, std::string_view sample,
                  const MatchPolicy& policy);

}  // namespace mweaver::text

#endif  // MWEAVER_TEXT_MATCH_H_
