#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace mweaver {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(2, std::thread::hardware_concurrency()));
  return pool[0];
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (stop_) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace mweaver
