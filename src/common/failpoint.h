// Failpoint: deterministic fault injection for chaos and robustness tests.
//
// A failpoint is a string-named site compiled into production code paths
// ("storage.load.relation", "text.lookup.fast_path", ...). Disarmed — the
// only state the production binary ever sees unless a test or the
// MWEAVER_FAILPOINTS environment variable arms one — a site costs a single
// relaxed atomic load behind a function-local static, so instrumenting hot
// paths is safe. Armed, the site consults its policy (seeded per-site RNG,
// fire probability, skip/limit counters) and reports which action fired:
//
//   kError   inject a Status failure (code + message configurable); the
//            default code is kUnavailable, the class the service layer
//            treats as transient and retries once.
//   kDelay   sleep for the configured duration (latency spike).
//   kTrigger generic "misbehave now" boolean, interpreted by the site:
//            forced cache evict/overflow, forced scan fallback, forced
//            queue overload, spurious deadline expiry.
//   kCancel  the site trips its ExecutionContext's stop latch (spurious
//            cooperative cancellation).
//
// Policies are seedable and bounded (skip_first / max_fires), which is what
// makes chaos schedules replayable: the same seed always yields the same
// fire decisions in the same hit order.
//
// Thread-safety: every member of Failpoint and FailpointRegistry is safe to
// call concurrently; the disarmed fast path never takes a lock.
#ifndef MWEAVER_COMMON_FAILPOINT_H_
#define MWEAVER_COMMON_FAILPOINT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mweaver {

/// \brief What an armed failpoint does when it fires.
enum class FailAction : uint8_t {
  kNone = 0,  // not armed, dice miss, or outside the skip/limit window
  kError,     // inject a Status failure
  kDelay,     // sleep (performed inside Fire() before it returns)
  kTrigger,   // site-interpreted misbehaviour (evict, fallback, overload...)
  kCancel,    // site trips its request's cooperative-cancel latch
};

const char* FailActionName(FailAction action);

/// \brief The armed behaviour of one site.
struct FailpointPolicy {
  FailAction action = FailAction::kTrigger;
  /// Chance each hit fires once past `skip_first` and under `max_fires`.
  double probability = 1.0;
  /// Hits ignored before the site starts rolling the dice.
  uint32_t skip_first = 0;
  /// Total fires allowed (0 = unlimited).
  uint32_t max_fires = 0;
  /// Sleep duration for kDelay.
  std::chrono::microseconds delay{0};
  /// Status code injected by kError.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Extra text appended to the injected error message.
  std::string message;
  /// Seed of the per-site dice RNG (re-seeded on every Arm()).
  uint64_t seed = 0;
};

/// \brief One named injection site. Instances are owned by the registry and
/// live for the process lifetime, so site macros can cache references.
class FailpointRegistry;

class Failpoint {
 public:
  /// \brief `registry` is the owner; the back-pointer (rather than a
  /// Global() call in Arm/Disarm) keeps env-driven arming safe while the
  /// singleton's own magic static is still initializing.
  Failpoint(std::string name, FailpointRegistry* registry)
      : name_(std::move(name)), registry_(registry) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// \brief The disarmed fast-path check: a single relaxed load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// \brief Installs `policy` and re-seeds the dice RNG.
  void Arm(FailpointPolicy policy);
  void Disarm();

  /// \brief Evaluates the policy for one hit. Returns the action that
  /// fired (kNone otherwise). kDelay performs its sleep before returning,
  /// so callers needing only latency injection can ignore the result.
  FailAction Fire();

  /// \brief Fire() with kError converted into the injected Status; every
  /// other action (kDelay already slept) maps to OK.
  Status FireStatus();

  /// Counters for the CURRENT arming window (Arm() zeroes them), so tests
  /// can assert exact fire counts without cross-test bleed.
  struct Stats {
    uint64_t hits = 0;   // Fire() calls while armed
    uint64_t fires = 0;  // hits that actually fired an action
  };
  Stats stats() const;

 private:
  const std::string name_;
  FailpointRegistry* const registry_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};

  mutable std::mutex mu_;  // guards policy_, rng_ and the window counters
  FailpointPolicy policy_;
  std::mt19937_64 rng_{0};
  uint64_t armed_hits_ = 0;   // hits since Arm(), drives skip_first
  uint32_t fired_count_ = 0;  // fires since Arm(), drives max_fires
};

/// \brief Process-wide catalog of failpoints. Sites are created lazily the
/// first time they are hit or armed; arming an unknown name simply creates
/// it (the site fires once code reaches it).
class FailpointRegistry {
 public:
  /// \brief The singleton. The first call applies MWEAVER_FAILPOINTS.
  static FailpointRegistry& Global();

  /// \brief True iff any site is armed — the macro fast path (one relaxed
  /// atomic load, no lock).
  static bool AnyArmed() {
    return Global().armed_count_.load(std::memory_order_relaxed) != 0;
  }

  /// \brief Returns the site, creating it if needed. The reference is
  /// stable for the process lifetime.
  Failpoint& GetOrCreate(std::string_view name);

  /// \brief The site, or nullptr if it was never hit nor armed.
  Failpoint* Find(std::string_view name);

  void Arm(std::string_view name, FailpointPolicy policy);
  void Disarm(std::string_view name);
  void DisarmAll();
  std::vector<std::string> ArmedSites() const;

  /// \brief Applies a schedule spec, the MWEAVER_FAILPOINTS syntax:
  ///
  ///   spec   := site '=' action (':' param)* (';' spec)?
  ///   action := 'error' ('(' code ')')? | 'delay' '(' N ('us'|'ms') ')'
  ///           | 'trigger' | 'cancel' | 'off'
  ///   param  := 'p=' FLOAT | 'after=' N | 'limit=' N | 'seed=' N
  ///   code   := 'unavailable' | 'internal' | 'ioerror' | 'resource'
  ///
  /// e.g. "text.lookup.fast_path=trigger:p=0.3;service.search.transient=
  /// error:limit=2:seed=7". Returns InvalidArgument on malformed specs
  /// (sites parsed before the error stay armed).
  Status ConfigureFromString(std::string_view spec);

 private:
  friend class Failpoint;
  FailpointRegistry() = default;

  // Failpoint::Arm/Disarm keep the armed-site count in sync.
  std::atomic<int64_t> armed_count_{0};

  mutable std::mutex mu_;  // guards sites_ (map layout only)
  std::unordered_map<std::string, std::unique_ptr<Failpoint>> sites_;
};

/// \brief RAII arming for tests: disarms the site on scope exit.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view name, FailpointPolicy policy)
      : site_(&FailpointRegistry::Global().GetOrCreate(name)) {
    site_->Arm(std::move(policy));
  }
  ~ScopedFailpoint() { site_->Disarm(); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  Failpoint& site() { return *site_; }

 private:
  Failpoint* site_;
};

}  // namespace mweaver

/// \brief The per-site handle: resolves the name once, then costs a static
/// guard check plus one relaxed load per pass when disarmed.
#define MW_FAILPOINT_SITE(site_name)                                     \
  ([]() -> ::mweaver::Failpoint& {                                       \
    static ::mweaver::Failpoint& fp_site =                               \
        ::mweaver::FailpointRegistry::Global().GetOrCreate(site_name);   \
    return fp_site;                                                      \
  }())

/// \brief Evaluates the site, returning the FailAction that fired (kNone
/// when disarmed). kDelay has already slept by the time this returns.
#define MW_FAILPOINT_FIRE(site_name)              \
  (MW_FAILPOINT_SITE(site_name).armed()           \
       ? MW_FAILPOINT_SITE(site_name).Fire()      \
       : ::mweaver::FailAction::kNone)

/// \brief True iff the site fired a kTrigger this hit.
#define MW_FAILPOINT_TRIGGERED(site_name) \
  (MW_FAILPOINT_FIRE(site_name) == ::mweaver::FailAction::kTrigger)

/// \brief Propagates an injected error out of the enclosing function (which
/// must return Status or Result<T>). kDelay sleeps; other actions pass.
#define MW_FAILPOINT_RETURN_NOT_OK(site_name)                     \
  do {                                                            \
    if (MW_FAILPOINT_SITE(site_name).armed()) {                   \
      ::mweaver::Status fp_status =                               \
          MW_FAILPOINT_SITE(site_name).FireStatus();              \
      if (!fp_status.ok()) return fp_status;                      \
    }                                                             \
  } while (false)

#endif  // MWEAVER_COMMON_FAILPOINT_H_
