// Status: error propagation without exceptions, in the style of
// Arrow/RocksDB. Functions that can fail return a Status (or a
// Result<T>, see result.h); success is Status::OK().
#ifndef MWEAVER_COMMON_STATUS_H_
#define MWEAVER_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace mweaver {

/// \brief Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kIOError,
  kUnimplemented,
  kInternal,
  /// A transient failure worth retrying (injected faults, flaky backends).
  /// The service layer retries exactly once before reporting kFailed.
  kUnavailable,
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief Result of an operation that may fail.
///
/// A Status is cheap to copy in the success case (a single pointer that is
/// null on success). Construct failures via the named factory functions.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// \brief Returns a success status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// \brief Returns the failure message ("" for success statuses).
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff the status is OK.
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Propagates a failing Status out of the enclosing function.
#define MW_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::mweaver::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace mweaver

#endif  // MWEAVER_COMMON_STATUS_H_
