// Wall-clock stopwatch used by the response-time experiments (Tables 2-3).
#ifndef MWEAVER_COMMON_STOPWATCH_H_
#define MWEAVER_COMMON_STOPWATCH_H_

#include <chrono>

namespace mweaver {

/// \brief Measures elapsed wall-clock time from construction or Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mweaver

#endif  // MWEAVER_COMMON_STOPWATCH_H_
