// Reusable fixed-size worker pool: the substrate for both ParallelFor
// (data-parallel loops inside one search) and the service layer's request
// workers. Promoted from the ad-hoc per-call thread spawning that
// ParallelFor used to do, so a long-lived process pays thread start-up
// once instead of per search.
#ifndef MWEAVER_COMMON_THREAD_POOL_H_
#define MWEAVER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mweaver {

/// \brief A fixed set of worker threads draining a FIFO task queue.
///
/// Submit() never blocks and never runs the task inline; tasks run in
/// submission order (started FIFO, completion order depends on task
/// length). Destruction stops the workers after their current task;
/// still-queued tasks are discarded, so owners that must observe every
/// task (e.g. the mapping service) drain their own request queue first.
///
/// A pool with zero threads is valid: tasks queue up and never run
/// (useful for deterministic backpressure tests).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `task`; returns immediately.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// \brief Tasks submitted but not yet started (approximate under
  /// concurrency).
  size_t queue_depth() const;

  /// \brief Process-wide shared pool sized to the hardware concurrency
  /// (at least 2 threads). ParallelFor runs on this pool; callers that
  /// need dedicated workers (the service layer) construct their own.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mweaver

#endif  // MWEAVER_COMMON_THREAD_POOL_H_
