#include "common/random.h"

#include <cmath>

namespace mweaver {

size_t Rng::ZipfIndex(size_t size, double theta) {
  MW_DCHECK(size > 0);
  if (size == 1) return 0;
  // Inverse-CDF sampling over the truncated zipf weights. Sizes used by the
  // generators are modest, so the O(size) normalization is computed lazily
  // per call only for small sizes; larger sizes use the rejection-free
  // approximation via the continuous power-law quantile.
  if (size <= 64) {
    double norm = 0.0;
    for (size_t r = 0; r < size; ++r) norm += std::pow(r + 1.0, -theta);
    double u = UniformDouble() * norm;
    for (size_t r = 0; r < size; ++r) {
      u -= std::pow(r + 1.0, -theta);
      if (u <= 0.0) return r;
    }
    return size - 1;
  }
  // Continuous approximation: X = floor(size^(U)) biased toward small ranks.
  const double u = UniformDouble();
  const double exponent = 1.0 / (1.0 + theta);
  const double x = std::pow(static_cast<double>(size), std::pow(u, exponent));
  size_t idx = static_cast<size_t>(x) - 1;
  return idx >= size ? size - 1 : idx;
}

}  // namespace mweaver
