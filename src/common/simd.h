// Compile-time SIMD dispatch for the hot-path kernels (text/posting_block.h
// and friends). The repo targets three tiers, selected at build time:
//
//   MWEAVER_SIMD_LEVEL 2  AVX2   (256-bit; needs -mavx2 / -march=native)
//   MWEAVER_SIMD_LEVEL 1  SSE2   (128-bit; baseline on every x86-64)
//   MWEAVER_SIMD_LEVEL 0  scalar (any architecture, and the reference the
//                                 property tests compare the SIMD paths to)
//
// Configure with -DMWEAVER_DISABLE_SIMD=ON (CMake option, defines the
// MWEAVER_DISABLE_SIMD macro) to force level 0 regardless of the target —
// CI runs the text/property suites in that mode so the scalar fallback
// stays exercised. Every kernel keeps its scalar implementation compiled in
// unconditionally; the dispatch level only chooses which one runs, so a
// SIMD build can still unit-test SIMD-vs-scalar equality.
#ifndef MWEAVER_COMMON_SIMD_H_
#define MWEAVER_COMMON_SIMD_H_

#if defined(MWEAVER_DISABLE_SIMD)
#define MWEAVER_SIMD_LEVEL 0
#elif defined(__AVX2__)
#define MWEAVER_SIMD_LEVEL 2
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define MWEAVER_SIMD_LEVEL 1
#include <emmintrin.h>
#else
#define MWEAVER_SIMD_LEVEL 0
#endif

namespace mweaver {

/// \brief Human-readable name of the compiled-in kernel tier (benchmarks
/// stamp it into their JSON so baselines from different builds are not
/// compared blindly).
inline const char* SimdLevelName() {
#if MWEAVER_SIMD_LEVEL == 2
  return "avx2";
#elif MWEAVER_SIMD_LEVEL == 1
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace mweaver

#endif  // MWEAVER_COMMON_SIMD_H_
