// String helpers shared across the library: case folding, tokenizing,
// joining, trimming, and bounded edit distance (used by the noisy-contain
// match policies).
#ifndef MWEAVER_COMMON_STRING_UTIL_H_
#define MWEAVER_COMMON_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mweaver {

/// \brief ASCII lowercase copy of `s`.
std::string ToLower(std::string_view s);

/// \brief Removes leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// \brief Splits on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief True iff `haystack` contains `needle` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// \brief True iff the two strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Levenshtein distance, early-exiting once it would exceed
/// `max_distance`; returns max_distance + 1 in that case.
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t max_distance);

/// \brief Edit-distance similarity in [0,1]: 1 - dist/max(len); 1.0 for two
/// empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mweaver

#endif  // MWEAVER_COMMON_STRING_UTIL_H_
