#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace mweaver {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Emits one fully formatted line with a single stdio call. POSIX stdio
// streams lock around each call, so concurrent log lines from service
// worker threads interleave whole-line rather than mid-line (writing via
// std::cerr's operator<< chains gave no such guarantee).
void EmitLine(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    EmitLine(stream_.str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace mweaver
