#include "common/failpoint.h"

#include <cctype>
#include <cstdlib>
#include <thread>

#include "common/logging.h"

namespace mweaver {

const char* FailActionName(FailAction action) {
  switch (action) {
    case FailAction::kNone:
      return "none";
    case FailAction::kError:
      return "error";
    case FailAction::kDelay:
      return "delay";
    case FailAction::kTrigger:
      return "trigger";
    case FailAction::kCancel:
      return "cancel";
  }
  return "?";
}

void Failpoint::Arm(FailpointPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = std::move(policy);
  rng_.seed(policy_.seed);
  armed_hits_ = 0;
  fired_count_ = 0;
  // Stats describe the current arming window, not the process lifetime —
  // tests assert exact fire counts and must not see earlier armings.
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  if (!armed_.exchange(true, std::memory_order_relaxed)) {
    registry_->armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.exchange(false, std::memory_order_relaxed)) {
    registry_->armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

FailAction Failpoint::Fire() {
  std::chrono::microseconds delay{0};
  FailAction action = FailAction::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return FailAction::kNone;
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (armed_hits_++ < policy_.skip_first) return FailAction::kNone;
    if (policy_.max_fires != 0 && fired_count_ >= policy_.max_fires) {
      return FailAction::kNone;
    }
    if (policy_.probability < 1.0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(rng_) >=
            policy_.probability) {
      return FailAction::kNone;
    }
    ++fired_count_;
    fires_.fetch_add(1, std::memory_order_relaxed);
    action = policy_.action;
    delay = policy_.delay;
  }
  // Sleep outside the lock so concurrent hits on the same site don't
  // serialize behind an injected latency spike.
  if (action == FailAction::kDelay && delay.count() > 0) {
    std::this_thread::sleep_for(delay);
  }
  return action;
}

Status Failpoint::FireStatus() {
  if (Fire() != FailAction::kError) return Status::OK();
  StatusCode code;
  std::string message;
  {
    std::lock_guard<std::mutex> lock(mu_);
    code = policy_.error_code;
    message = policy_.message;
  }
  std::string text = "injected failure at " + name_;
  if (!message.empty()) {
    text += ": ";
    text += message;
  }
  return Status(code, std::move(text));
}

Failpoint::Stats Failpoint::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.fires = fires_.load(std::memory_order_relaxed);
  return s;
}

FailpointRegistry& FailpointRegistry::Global() {
  // Leaked singleton: site macros cache references that may be used during
  // static destruction (e.g. by test fixtures torn down at exit).
  static FailpointRegistry* registry = []() {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("MWEAVER_FAILPOINTS")) {
      const Status status = r->ConfigureFromString(env);
      if (!status.ok()) {
        MW_LOG(Warning) << "ignoring malformed MWEAVER_FAILPOINTS: "
                        << status.ToString();
      }
    }
    return r;
  }();
  return *registry;
}

Failpoint& FailpointRegistry::GetOrCreate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(name));
  if (it == sites_.end()) {
    it = sites_
             .emplace(std::string(name),
                      std::make_unique<Failpoint>(std::string(name), this))
             .first;
  }
  return *it->second;
}

Failpoint* FailpointRegistry::Find(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(std::string(name));
  return it == sites_.end() ? nullptr : it->second.get();
}

void FailpointRegistry::Arm(std::string_view name, FailpointPolicy policy) {
  GetOrCreate(name).Arm(std::move(policy));
}

void FailpointRegistry::Disarm(std::string_view name) {
  if (Failpoint* site = Find(name)) site->Disarm();
}

void FailpointRegistry::DisarmAll() {
  std::vector<Failpoint*> armed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, site] : sites_) {
      if (site->armed()) armed.push_back(site.get());
    }
  }
  for (Failpoint* site : armed) site->Disarm();
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, site] : sites_) {
    if (site->armed()) out.push_back(name);
  }
  return out;
}

namespace {

Status ParseErrorCode(std::string_view text, StatusCode* code) {
  if (text == "unavailable") {
    *code = StatusCode::kUnavailable;
  } else if (text == "internal") {
    *code = StatusCode::kInternal;
  } else if (text == "ioerror") {
    *code = StatusCode::kIOError;
  } else if (text == "resource") {
    *code = StatusCode::kResourceExhausted;
  } else {
    return Status::InvalidArgument("unknown injected error code '" +
                                   std::string(text) + "'");
  }
  return Status::OK();
}

// "delay(250us)" / "delay(3ms)" argument -> microseconds.
Status ParseDelayArg(std::string_view arg, std::chrono::microseconds* out) {
  size_t digits = 0;
  while (digits < arg.size() &&
         std::isdigit(static_cast<unsigned char>(arg[digits]))) {
    ++digits;
  }
  if (digits == 0) {
    return Status::InvalidArgument("bad delay '" + std::string(arg) + "'");
  }
  const uint64_t value = std::strtoull(std::string(arg, 0, digits).c_str(),
                                       nullptr, 10);
  const std::string_view unit = arg.substr(digits);
  if (unit == "us") {
    *out = std::chrono::microseconds(value);
  } else if (unit == "ms") {
    *out = std::chrono::milliseconds(value);
  } else {
    return Status::InvalidArgument("bad delay unit '" + std::string(unit) +
                                   "' (want us or ms)");
  }
  return Status::OK();
}

Status ParseFloat(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number '" + text + "'");
  }
  return Status::OK();
}

Status ParseUint(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad integer '" + text + "'");
  }
  return Status::OK();
}

}  // namespace

Status FailpointRegistry::ConfigureFromString(std::string_view spec) {
  for (std::string_view rest = spec; !rest.empty();) {
    const size_t sep = rest.find(';');
    std::string_view entry = rest.substr(0, sep);
    rest = sep == std::string_view::npos ? std::string_view()
                                         : rest.substr(sep + 1);
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("missing '=' in failpoint spec '" +
                                     std::string(entry) + "'");
    }
    const std::string_view name = entry.substr(0, eq);
    std::string_view config = entry.substr(eq + 1);

    // First ':'-separated field is the action, the rest are params.
    FailpointPolicy policy;
    bool disarm = false;
    bool first = true;
    while (!config.empty() || first) {
      const size_t colon = config.find(':');
      std::string_view field = config.substr(0, colon);
      config = colon == std::string_view::npos ? std::string_view()
                                               : config.substr(colon + 1);
      if (first) {
        first = false;
        std::string_view action = field;
        std::string_view arg;
        const size_t paren = field.find('(');
        if (paren != std::string_view::npos) {
          if (field.back() != ')') {
            return Status::InvalidArgument("unclosed '(' in '" +
                                           std::string(field) + "'");
          }
          action = field.substr(0, paren);
          arg = field.substr(paren + 1, field.size() - paren - 2);
        }
        if (action == "error") {
          policy.action = FailAction::kError;
          if (!arg.empty()) {
            MW_RETURN_NOT_OK(ParseErrorCode(arg, &policy.error_code));
          }
        } else if (action == "delay") {
          policy.action = FailAction::kDelay;
          MW_RETURN_NOT_OK(ParseDelayArg(arg, &policy.delay));
        } else if (action == "trigger") {
          policy.action = FailAction::kTrigger;
        } else if (action == "cancel") {
          policy.action = FailAction::kCancel;
        } else if (action == "off") {
          disarm = true;
        } else {
          return Status::InvalidArgument("unknown failpoint action '" +
                                         std::string(action) + "'");
        }
        continue;
      }
      const size_t peq = field.find('=');
      if (peq == std::string_view::npos) {
        return Status::InvalidArgument("bad failpoint param '" +
                                       std::string(field) + "'");
      }
      const std::string_view key = field.substr(0, peq);
      const std::string value(field.substr(peq + 1));
      uint64_t number = 0;
      if (key == "p") {
        MW_RETURN_NOT_OK(ParseFloat(value, &policy.probability));
      } else if (key == "after") {
        MW_RETURN_NOT_OK(ParseUint(value, &number));
        policy.skip_first = static_cast<uint32_t>(number);
      } else if (key == "limit") {
        MW_RETURN_NOT_OK(ParseUint(value, &number));
        policy.max_fires = static_cast<uint32_t>(number);
      } else if (key == "seed") {
        MW_RETURN_NOT_OK(ParseUint(value, &number));
        policy.seed = number;
      } else {
        return Status::InvalidArgument("unknown failpoint param '" +
                                       std::string(key) + "'");
      }
    }
    if (disarm) {
      Disarm(name);
    } else {
      Arm(name, std::move(policy));
    }
  }
  return Status::OK();
}

}  // namespace mweaver
