// Minimal data-parallel helper: run a function over [0, n) on a fixed
// number of worker threads. Used to parallelize the per-mapping approximate
// search queries of TPW's pairwise step (by far its dominant cost).
#ifndef MWEAVER_COMMON_PARALLEL_H_
#define MWEAVER_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>

namespace mweaver {

/// \brief Invokes `fn(i)` for every i in [0, n), distributing work-stealing
/// style over at most `num_threads` runners (<= 1 runs inline on the
/// caller). Blocks until all invocations finish. `fn` must be safe to call
/// concurrently from multiple threads for distinct i.
///
/// Runs on the process-wide common::ThreadPool (the caller participates as
/// one runner), so no threads are created per call and concurrent
/// ParallelFor calls from different service workers share the same pool.
/// Each i is invoked exactly once regardless of the thread count, so
/// callers that write results indexed by i stay deterministic.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace mweaver

#endif  // MWEAVER_COMMON_PARALLEL_H_
