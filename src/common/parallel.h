// Minimal data-parallel helper: run a function over [0, n) on a fixed
// number of worker threads. Used to parallelize the TPW search core —
// the per-column location probes, the per-mapping approximate search
// queries of the pairwise step (by far its dominant cost), and the
// per-candidate pruning probes of the interactive path.
#ifndef MWEAVER_COMMON_PARALLEL_H_
#define MWEAVER_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>

namespace mweaver {

/// \brief Invokes `fn(i)` for every i in [0, n), distributing work-stealing
/// style over at most `num_threads` runners (<= 1 runs inline on the
/// caller). Blocks until all invocations finish. `fn` must be safe to call
/// concurrently from multiple threads for distinct i.
///
/// Runs on the process-wide common::ThreadPool (the caller participates as
/// one runner), so no threads are created per call and concurrent
/// ParallelFor calls from different service workers share the same pool.
/// Each i is invoked exactly once regardless of the thread count, so
/// callers that write results indexed by i stay deterministic.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// \brief Worker-identified variant: invokes `fn(worker, i)` where `worker`
/// is a dense id in [0, min(num_threads, n)) unique to the runner claiming
/// index i. All indices claimed by one runner see the same worker id, and
/// no two concurrent runners share one — the hook that lets callers hand
/// each runner its own accumulator (e.g. a child ExecutionContext view)
/// and merge them deterministically after the call returns. The serial
/// path (num_threads <= 1 or n == 1) always reports worker 0.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn);

/// \brief The number of worker slots the worker-identified overload would
/// use: min(num_threads, n), at least 1 for n > 0 (0 for n == 0).
size_t ParallelWorkerCount(size_t n, size_t num_threads);

}  // namespace mweaver

#endif  // MWEAVER_COMMON_PARALLEL_H_
