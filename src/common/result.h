// Result<T>: a value or a failing Status, in the style of arrow::Result.
#ifndef MWEAVER_COMMON_RESULT_H_
#define MWEAVER_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace mweaver {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Access the value with ValueOrDie()/operator* only after checking ok();
/// accessing the value of a failed Result aborts the process (see MW_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a failing Status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    MW_CHECK(!this->status().ok())
        << "Result constructed from an OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief Returns the error (or OK if this result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    MW_CHECK(ok()) << "ValueOrDie on failed Result: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    MW_CHECK(ok()) << "ValueOrDie on failed Result: " << status().ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    MW_CHECK(ok()) << "ValueOrDie on failed Result: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Returns the value, or `alternative` if this Result failed.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

/// \brief Assigns the value of a Result expression to `lhs`, or propagates
/// its error out of the enclosing function.
#define MW_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  MW_ASSIGN_OR_RETURN_IMPL(                              \
      MW_CONCAT_NAME(_result_, __LINE__), lhs, rexpr)

#define MW_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).ValueOrDie()

#define MW_CONCAT_NAME_INNER(x, y) x##y
#define MW_CONCAT_NAME(x, y) MW_CONCAT_NAME_INNER(x, y)

}  // namespace mweaver

#endif  // MWEAVER_COMMON_RESULT_H_
