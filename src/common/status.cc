#include "common/status.h"

namespace mweaver {

namespace {
const std::string kEmptyMessage;
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyMessage;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mweaver
