// Minimal leveled logging and invariant checks (MW_CHECK aborts with a
// message; MW_DCHECK compiles out of release builds).
#ifndef MWEAVER_COMMON_LOGGING_H_
#define MWEAVER_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace mweaver {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level below which log statements are dropped.
/// Backed by an atomic: Get/Set are safe to call from any thread while
/// service workers are logging.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction with a
/// single (stdio-locked) write, so concurrent lines never interleave
/// mid-line.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define MW_LOG(level)                                               \
  ::mweaver::internal::LogMessage(::mweaver::LogLevel::k##level,    \
                                  __FILE__, __LINE__)

/// Aborts with a diagnostic when `condition` is false.
#define MW_CHECK(condition)                                         \
  for (bool _mw_ok = static_cast<bool>(condition); !_mw_ok;)        \
  ::mweaver::internal::FatalMessage(__FILE__, __LINE__, #condition)

#define MW_CHECK_EQ(a, b) MW_CHECK((a) == (b))
#define MW_CHECK_NE(a, b) MW_CHECK((a) != (b))
#define MW_CHECK_LT(a, b) MW_CHECK((a) < (b))
#define MW_CHECK_LE(a, b) MW_CHECK((a) <= (b))
#define MW_CHECK_GT(a, b) MW_CHECK((a) > (b))
#define MW_CHECK_GE(a, b) MW_CHECK((a) >= (b))

#ifdef NDEBUG
#define MW_DCHECK(condition) \
  while (false) MW_CHECK(condition)
#else
#define MW_DCHECK(condition) MW_CHECK(condition)
#endif

}  // namespace mweaver

#endif  // MWEAVER_COMMON_LOGGING_H_
