#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace mweaver {

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t workers = std::min(num_threads, n);
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&]() {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace mweaver
