#include "common/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/thread_pool.h"

namespace mweaver {

namespace {

// State shared between the caller and its pool helpers. Held by
// shared_ptr: a helper that only gets scheduled after the loop already
// finished (every pool thread was busy) finds no work and must not touch
// a dead stack frame.
struct LoopState {
  LoopState(size_t n_in, std::function<void(size_t, size_t)> fn_in)
      : n(n_in), fn(std::move(fn_in)) {}

  const size_t n;
  const std::function<void(size_t, size_t)> fn;
  std::atomic<size_t> next{0};
  // Dense worker-slot allocator: each runner claims one id on entry. The
  // runner population is exactly (helpers + caller) = min(num_threads, n),
  // so ids stay below the advertised ParallelWorkerCount.
  std::atomic<size_t> next_worker{0};
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;  // guarded by mu

  // Claims a worker slot, then claims and runs indices until none remain.
  void Run() {
    const size_t worker = next_worker.fetch_add(1, std::memory_order_relaxed);
    size_t mine = 0;
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(worker, i);
      ++mine;
    }
    if (mine == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    completed += mine;
    if (completed == n) cv.notify_one();
  }
};

}  // namespace

size_t ParallelWorkerCount(size_t n, size_t num_threads) {
  if (n == 0) return 0;
  if (num_threads <= 1 || n == 1) return 1;
  return std::min(num_threads, n);
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  auto state = std::make_shared<LoopState>(n, fn);
  // Up to workers-1 helpers on the shared pool; the caller is always a
  // runner itself, so the loop completes even if no helper ever gets a
  // pool thread (e.g. nested ParallelFor with every pool thread busy).
  // The wait below is on WORK completion, not helper completion, which is
  // what makes that progress guarantee deadlock-free.
  const size_t workers = std::min(num_threads, n);
  ThreadPool& pool = ThreadPool::Shared();
  for (size_t w = 0; w + 1 < workers; ++w) {
    pool.Submit([state]() { state->Run(); });
  }
  state->Run();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&]() { return state->completed == n; });
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(n, num_threads, [&fn](size_t, size_t i) { fn(i); });
}

}  // namespace mweaver
