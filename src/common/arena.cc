#include "common/arena.h"

#include <algorithm>
#include <cstdint>

#include "common/failpoint.h"
#include "common/logging.h"

namespace mweaver {

Arena::Arena(size_t initial_block_bytes)
    : initial_block_bytes_(std::max<size_t>(initial_block_bytes, 64)) {}

Arena::Block& Arena::AddBlock(size_t min_bytes) {
  // Chaos site: a latency spike exactly when the tuple-path arena grows
  // (the moment a real allocator would stall on a new mapping).
  (void)MW_FAILPOINT_FIRE("common.arena.grow");
  size_t capacity = blocks_.empty()
                        ? initial_block_bytes_
                        : std::min(blocks_.back().capacity * 2, kMaxBlockBytes);
  capacity = std::max(capacity, min_bytes);
  Block block;
  block.data = std::make_unique<std::byte[]>(capacity);
  block.capacity = capacity;
  bytes_reserved_ += capacity;
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

void* Arena::do_allocate(size_t bytes, size_t alignment) {
  MW_CHECK((alignment & (alignment - 1)) == 0) << "non-power-of-two alignment";
  // Align the address, not the offset: operator new[] only guarantees
  // __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block base, so over-aligned
  // requests must account for where the block actually landed.
  const auto align_in = [alignment](const Block& b) {
    const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
    const uintptr_t addr =
        (base + b.used + alignment - 1) & ~(uintptr_t{alignment} - 1);
    return static_cast<size_t>(addr - base);
  };
  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  size_t aligned = 0;
  if (block != nullptr) {
    aligned = align_in(*block);
    if (aligned + bytes > block->capacity) block = nullptr;
  }
  if (block == nullptr) {
    block = &AddBlock(bytes + alignment);
    aligned = align_in(*block);
    MW_CHECK(aligned + bytes <= block->capacity);
  }
  void* p = block->data.get() + aligned;
  bytes_used_ += (aligned - block->used) + bytes;
  block->used = aligned + bytes;
  ++num_allocations_;
  ++total_allocations_;
  return p;
}

void Arena::do_deallocate(void* /*p*/, size_t /*bytes*/,
                          size_t /*alignment*/) {
  // Bump allocator: memory is reclaimed wholesale by Reset().
}

void Arena::Reset() {
  if (!blocks_.empty()) {
    // Keep only the largest block so a steady stream of similar searches
    // stops hitting malloc after warm-up.
    auto largest = std::max_element(
        blocks_.begin(), blocks_.end(),
        [](const Block& a, const Block& b) { return a.capacity < b.capacity; });
    Block kept = std::move(*largest);
    kept.used = 0;
    bytes_reserved_ = kept.capacity;
    blocks_.clear();
    blocks_.push_back(std::move(kept));
  }
  bytes_used_ = 0;
  num_allocations_ = 0;
  ++num_resets_;
}

}  // namespace mweaver
