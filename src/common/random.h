// Deterministic pseudo-random helpers. Every experiment seeds its own Rng so
// that benchmarks and tests are reproducible run-to-run.
#ifndef MWEAVER_COMMON_RANDOM_H_
#define MWEAVER_COMMON_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace mweaver {

/// \brief Seeded wrapper around std::mt19937_64 with the sampling helpers the
/// generators and simulated users need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MW_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// \brief Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// \brief True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// \brief Uniformly chosen index into a non-empty container size.
  size_t Index(size_t size) {
    MW_DCHECK(size > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(size) - 1));
  }

  /// \brief Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  /// \brief Zipf-like skewed index in [0, size): rank r with weight
  /// 1/(r+1)^theta. Used to give generated values realistic popularity skew.
  size_t ZipfIndex(size_t size, double theta);

  template <typename T>
  void Shuffle(std::vector<T>* items) {
    std::shuffle(items->begin(), items->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mweaver

#endif  // MWEAVER_COMMON_RANDOM_H_
