// Hash helpers: combine in the Boost style; hash ranges of hashable values.
#ifndef MWEAVER_COMMON_HASH_UTIL_H_
#define MWEAVER_COMMON_HASH_UTIL_H_

#include <cstddef>
#include <functional>

namespace mweaver {

/// \brief Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// \brief Hash of a range of hashable elements.
template <typename Iter>
size_t HashRange(Iter begin, Iter end) {
  size_t seed = 0;
  for (Iter it = begin; it != end; ++it) HashCombine(&seed, *it);
  return seed;
}

}  // namespace mweaver

#endif  // MWEAVER_COMMON_HASH_UTIL_H_
