// Hash helpers: combine in the Boost style; hash ranges of hashable values.
#ifndef MWEAVER_COMMON_HASH_UTIL_H_
#define MWEAVER_COMMON_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mweaver {

/// \brief SplitMix64 finalizer: a full-avalanche 64-bit mix, so consecutive
/// inputs land on uncorrelated outputs.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief The shard owning one physical row: a pure function of (row id,
/// shard count), shared by index builds, streaming updates and publish-time
/// shard fingerprints so every layer agrees on row placement. Deliberately
/// NOT a function of the row's values — a row keeps its shard for life, and
/// consecutive appended ids spread across shards (SplitMix64 avalanche),
/// which is what lets a small update batch touch few shards. `shard_count`
/// 0 or 1 maps everything to shard 0.
inline uint32_t ShardOfRow(int64_t row, size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<uint32_t>(Mix64(static_cast<uint64_t>(row)) %
                               shard_count);
}

/// \brief Mixes `value`'s hash into `seed` (boost::hash_combine recipe).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
           (*seed >> 2);
}

/// \brief Hash of a range of hashable elements.
template <typename Iter>
size_t HashRange(Iter begin, Iter end) {
  size_t seed = 0;
  for (Iter it = begin; it != end; ++it) HashCombine(&seed, *it);
  return seed;
}

}  // namespace mweaver

#endif  // MWEAVER_COMMON_HASH_UTIL_H_
