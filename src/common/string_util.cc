#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mweaver {

namespace {
inline char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiLower);
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const size_t limit = haystack.size() - needle.size();
  for (size_t i = 0; i <= limit; ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           AsciiLower(haystack[i + j]) == AsciiLower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t max_distance) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_distance) return max_distance + 1;

  // One-row dynamic program over the shorter string. The row buffer is
  // thread-local: fuzzy candidate verification calls this once per
  // candidate, and a per-call allocation dominates the DP itself.
  thread_local std::vector<size_t> row;
  row.resize(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    size_t row_min = row[0];
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      row_min = std::min(row_min, row[i]);
    }
    if (row_min > max_distance) return max_distance + 1;
  }
  return std::min(row[a.size()], max_distance + 1);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const size_t dist = BoundedEditDistance(a, b, longest);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mweaver
