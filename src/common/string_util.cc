#include "common/string_util.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace mweaver {

namespace {
inline char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// Myers/Hyyrö bit-parallel Levenshtein distance for patterns of at most 64
// characters (every call from fuzzy candidate verification: indexed tokens
// cap at 32 chars). One u64 of vertical deltas replaces the DP row, so a
// d<=2 verification runs |b| constant-time word steps instead of |a|*|b|
// cell updates. Requires 1 <= a.size() <= 64 and a.size() <= b.size().
//
// The Peq table is thread-local and cleaned by re-zeroing only the pattern's
// own characters afterwards — a 2 KiB memset per call would cost more than
// the distance computation itself.
size_t MyersBoundedDistance(std::string_view a, std::string_view b,
                            size_t max_distance) {
  thread_local std::array<uint64_t, 256> peq{};
  const size_t m = a.size();
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= uint64_t{1} << i;
  }
  const uint64_t high = uint64_t{1} << (m - 1);
  uint64_t vp = m == 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  uint64_t vn = 0;
  size_t score = m;
  bool cut_off = false;
  for (size_t j = 0; j < b.size(); ++j) {
    const uint64_t eq = peq[static_cast<unsigned char>(b[j])];
    const uint64_t d0 = (((eq & vp) + vp) ^ vp) | eq | vn;
    uint64_t hp = vn | ~(d0 | vp);
    uint64_t hn = d0 & vp;
    score += (hp & high) != 0;
    score -= (hn & high) != 0;
    hp = (hp << 1) | 1;
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = hp & d0;
    // The score drops by at most 1 per remaining text character, so once it
    // cannot get back under the bound the exact value no longer matters.
    const size_t remaining = b.size() - j - 1;
    if (score > max_distance && score - max_distance > remaining) {
      cut_off = true;
      break;
    }
  }
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] = 0;
  }
  if (cut_off) return max_distance + 1;
  return std::min(score, max_distance + 1);
}

// One-row dynamic program, the pre-bit-parallel implementation: kept as the
// fallback for patterns longer than 64 characters and as the reference the
// unit tests compare MyersBoundedDistance against.
size_t RowBoundedDistance(std::string_view a, std::string_view b,
                          size_t max_distance) {
  // The row buffer is thread-local: fuzzy candidate verification calls this
  // once per candidate, and a per-call allocation dominates the DP itself.
  thread_local std::vector<size_t> row;
  row.resize(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev_diag = row[0];
    row[0] = j;
    size_t row_min = row[0];
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, subst});
      row_min = std::min(row_min, row[i]);
    }
    if (row_min > max_distance) return max_distance + 1;
  }
  return std::min(row[a.size()], max_distance + 1);
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), AsciiLower);
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const size_t limit = haystack.size() - needle.size();
  for (size_t i = 0; i <= limit; ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           AsciiLower(haystack[i + j]) == AsciiLower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t max_distance) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_distance) return max_distance + 1;
  if (a.empty()) return std::min(b.size(), max_distance + 1);
  if (a.size() <= 64) return MyersBoundedDistance(a, b, max_distance);
  return RowBoundedDistance(a, b, max_distance);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  const size_t dist = BoundedEditDistance(a, b, longest);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mweaver
