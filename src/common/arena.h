// Arena: a bump-pointer allocation region implementing
// std::pmr::memory_resource, so std::pmr containers can draw from it
// directly. Built for the request-scoped allocation pattern of the TPW
// pipeline: the weave stage creates millions of small vectors (tuple-path
// vertex/row/projection arrays) that all die together when the search
// finishes, so individual deallocation is a no-op and the whole region is
// recycled with Reset() between searches.
//
// Not thread-safe: one Arena belongs to one request (ExecutionContext) and
// is only touched from the stage that owns it. Parallel stages (pairwise
// execution) allocate from the default heap instead.
#ifndef MWEAVER_COMMON_ARENA_H_
#define MWEAVER_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

namespace mweaver {

/// \brief A growing bump-pointer arena. Allocation is a pointer increment;
/// deallocation is a no-op; Reset() recycles every block for the next
/// request (the largest block is kept so steady-state serving does not
/// touch malloc at all).
class Arena : public std::pmr::memory_resource {
 public:
  /// \brief First block size; subsequent blocks double up to kMaxBlockBytes.
  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes);
  ~Arena() override = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// \brief Recycles the arena: every allocation made so far is invalidated,
  /// and the largest existing block is kept for reuse (the rest are freed).
  void Reset();

  /// Bytes handed out since construction or the last Reset() (including
  /// alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Total capacity currently reserved across blocks.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Allocations served since construction or the last Reset().
  uint64_t num_allocations() const { return num_allocations_; }
  /// Lifetime counters (not cleared by Reset), for arena-reuse assertions.
  uint64_t total_allocations() const { return total_allocations_; }
  uint64_t num_resets() const { return num_resets_; }

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kMaxBlockBytes = 4 * 1024 * 1024;

 protected:
  void* do_allocate(size_t bytes, size_t alignment) override;
  void do_deallocate(void* p, size_t bytes, size_t alignment) override;
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  Block& AddBlock(size_t min_bytes);

  const size_t initial_block_bytes_;
  std::vector<Block> blocks_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  uint64_t num_allocations_ = 0;
  uint64_t total_allocations_ = 0;
  uint64_t num_resets_ = 0;
};

}  // namespace mweaver

#endif  // MWEAVER_COMMON_ARENA_H_
