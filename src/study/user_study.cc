#include "study/user_study.h"

#include <algorithm>
#include <set>

#include "common/hash_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/path_internal.h"
#include "query/executor.h"

namespace mweaver::study {

namespace {

// Per-subject seed so different subjects make different (deterministic)
// sample choices.
uint64_t MixSeed(uint64_t seed, const Subject& subject) {
  size_t h = seed;
  HashCombine(&h, subject.id);
  return static_cast<uint64_t>(h);
}

}  // namespace

UserStudy::UserStudy(const text::FullTextEngine* engine,
                     const graph::SchemaGraph* schema_graph)
    : engine_(engine), schema_graph_(schema_graph) {
  MW_CHECK(engine != nullptr);
  MW_CHECK(schema_graph != nullptr);
}

Result<ToolRun> UserStudy::RunMWeaver(const Subject& subject,
                                      const datagen::TaskMapping& task,
                                      uint64_t seed) const {
  datagen::SimulationOptions options;
  options.seed = MixSeed(seed, subject);
  MW_ASSIGN_OR_RETURN(
      datagen::SimulationResult sim,
      datagen::SimulateUserSession(*engine_, *schema_graph_, task, options));

  ToolRun run;
  run.subject = subject.id;
  run.tool = "MWeaver";
  run.success = sim.discovered && sim.converged_to_goal;
  InteractionCost& cost = run.cost;
  cost.setup_s = subject.expert ? 5.0 : 10.0;

  // Define the target spreadsheet: type each column header.
  for (const std::string& name : task.column_names) {
    cost.AddTyping(KeystrokesPlain(name));
    cost.AddClicks(1);
  }
  // Type the samples; navigation between cells is a hot key (1 keystroke),
  // which is why MWeaver needs so few clicks.
  const size_t m = task.column_names.size();
  for (const std::string& value : sim.typed_values) {
    cost.AddTyping(KeystrokesWithAutocomplete(value) + 1);
    cost.AddDecision(kRecallSampleWeight);
  }
  // Glance at the mapping-status bar after each row of samples.
  const size_t rows = (sim.typed_values.size() + m - 1) / m;
  for (size_t r = 0; r < rows; ++r) cost.AddDecision(kCheckStatusWeight);
  // Expand the mapping list once, inspect the final mapping, accept it.
  cost.AddClicks(3);
  cost.AddDecision(kJudgeJoinPathWeight);  // read the converged mapping once

  run.time_s = cost.TimeSeconds(subject);
  return run;
}

Result<ToolRun> UserStudy::RunEirene(const Subject& subject,
                                     const datagen::TaskMapping& task,
                                     uint64_t seed) const {
  const storage::Database& db = engine_->db();
  query::PathExecutor executor(engine_);

  // The pool of ground-truth tuple paths the simulated user draws its
  // examples from (the user "knows" the data they want mapped).
  query::ExecOptions exec_options;
  exec_options.max_results = 64;
  MW_ASSIGN_OR_RETURN(
      std::vector<core::TuplePath> paths,
      executor.Execute(task.mapping, query::SampleMap{}, exec_options));
  if (paths.empty()) {
    return Status::FailedPrecondition("goal mapping has no tuple paths");
  }
  Rng rng(MixSeed(seed, subject));
  rng.Shuffle(&paths);

  ToolRun run;
  run.subject = subject.id;
  run.tool = "Eirene";
  InteractionCost& cost = run.cost;
  cost.setup_s = subject.expert ? 15.0 : 25.0;

  // Define the target schema (as every tool must).
  for (const std::string& name : task.column_names) {
    cost.AddTyping(KeystrokesPlain(name));
    cost.AddClicks(1);
  }

  baselines::EireneFitter fitter(&db);
  std::vector<baselines::DataExample> examples;
  const std::string goal_canonical = task.mapping.Canonical();
  std::vector<core::MappingPath> fitted;

  for (const core::TuplePath& tp : paths) {
    // Build the example from the tuple path: the user locates each source
    // tuple, adds it to the canvas, and types its join/projection values.
    baselines::DataExample example;
    std::set<std::pair<storage::RelationId, storage::RowId>> tuples;
    const auto adj =
        core::internal::BuildAdjacency(tp.parents(), tp.fks(), tp.from_sides());
    for (size_t v = 0; v < tp.num_vertices(); ++v) {
      const core::VertexId vid = static_cast<core::VertexId>(v);
      const storage::RelationId rel_id = tp.vertex(vid).relation;
      const storage::RowId row = tp.row(vid);
      if (!tuples.insert({rel_id, row}).second) continue;
      example.source_tuples.emplace_back(rel_id, row);

      // Attributes the user must fill in: the FK attributes of every
      // incident edge, plus any projected attributes of this vertex.
      std::set<storage::AttributeId> attrs;
      for (const core::internal::AdjEdge& e : adj[v]) {
        const storage::ForeignKey& fk =
            db.foreign_keys()[static_cast<size_t>(e.fk)];
        attrs.insert(e.neighbor_is_from_side ? fk.to_attribute
                                             : fk.from_attribute);
      }
      for (const core::Projection& p : tp.projections()) {
        if (p.vertex == vid) attrs.insert(p.attribute);
      }
      cost.AddDecision(kLocateSourceTupleWeight);
      // Find the tuple in the source instance: type an identifying value
      // into the search box (the longest display string of the row, e.g. a
      // title or name), then pick the relation and add the row.
      std::string lookup;
      const storage::Relation& rel = db.relation(rel_id);
      for (size_t a = 0; a < rel.schema().num_attributes(); ++a) {
        const std::string text =
            rel.at(row, static_cast<storage::AttributeId>(a))
                .ToDisplayString();
        if (text.size() > lookup.size()) lookup = text;
      }
      cost.AddTyping(KeystrokesPlain(lookup));
      cost.AddClicks(3);  // search, add the row to the canvas, focus it
      for (storage::AttributeId a : attrs) {
        cost.AddTyping(KeystrokesPlain(
            db.relation(rel_id).at(row, a).ToDisplayString()));
        cost.AddClicks(1);  // focus the field
      }
    }
    // Verify the join linkage: for each edge of the example the user must
    // check that the two tuples agree on the key values they just typed —
    // Eirene's core burden ("the user has to ... explicitly specify join
    // paths by linking related tables using data with the same value", §2).
    for (size_t e = 0; e + 1 < example.source_tuples.size(); ++e) {
      cost.AddDecision(kJudgeJoinPathWeight);
    }
    // Type the target tuple of the example.
    example.target_tuple = tp.ProjectTargetValues(db);
    for (const std::string& v : example.target_tuple) {
      cost.AddTyping(KeystrokesPlain(v));
    }
    cost.AddClicks(2);  // add example, run fitting
    cost.AddDecision(kCheckStatusWeight);

    examples.push_back(std::move(example));
    MW_ASSIGN_OR_RETURN(fitted, fitter.Fit(examples));
    if (fitted.size() <= 1) break;
  }

  run.success = fitted.size() == 1 &&
                fitted.front().Canonical() == goal_canonical;
  cost.AddClicks(1);  // accept the fitted mapping
  cost.AddDecision(kJudgeJoinPathWeight);
  run.time_s = cost.TimeSeconds(subject);
  return run;
}

Result<ToolRun> UserStudy::RunInfoSphere(const Subject& subject,
                                         const datagen::TaskMapping& task,
                                         uint64_t seed) const {
  (void)seed;  // the match-driven flow is deterministic
  const storage::Database& db = engine_->db();
  baselines::MatchDrivenMapper mapper(engine_, schema_graph_);

  ToolRun run;
  run.subject = subject.id;
  run.tool = "InfoSphere";
  InteractionCost& cost = run.cost;
  cost.setup_s = subject.expert ? 20.0 : 35.0;

  // Define the target schema (as every tool must).
  for (const std::string& name : task.column_names) {
    cost.AddTyping(KeystrokesPlain(name));
    cost.AddClicks(1);
  }

  // The goal correspondences, per target column.
  std::vector<baselines::Correspondence> confirmed;
  const auto proposals = mapper.ProposeCorrespondences(task.column_names);
  for (size_t col = 0; col < task.column_names.size(); ++col) {
    const core::Projection* p =
        task.mapping.FindProjection(static_cast<int>(col));
    MW_CHECK(p != nullptr);
    const text::AttributeRef goal_attr{
        task.mapping.vertex(p->vertex).relation, p->attribute};

    // Filter the (large) source schema tree down before reviewing: the
    // user types the attribute name they expect into the search box.
    cost.AddTyping(KeystrokesPlain(task.column_names[col]));
    cost.AddClicks(1);

    // Review proposals in order until the right one appears.
    size_t rank = proposals[col].size();
    for (size_t r = 0; r < proposals[col].size(); ++r) {
      if (proposals[col][r].attr == goal_attr) {
        rank = r;
        break;
      }
    }
    if (rank < proposals[col].size()) {
      for (size_t r = 0; r <= rank; ++r) {
        cost.AddDecision(kJudgeCorrespondenceWeight);
        cost.AddClicks(1);
      }
      cost.AddClicks(1);  // accept
    } else {
      // The matcher missed: review everything proposed, then hunt through
      // the source schema tree by hand.
      for (size_t r = 0; r < proposals[col].size(); ++r) {
        cost.AddDecision(kJudgeCorrespondenceWeight);
        cost.AddClicks(1);
      }
      cost.AddTyping(KeystrokesPlain(
          db.relation(goal_attr.relation)
              .schema()
              .attribute(goal_attr.attribute)
              .name));  // search box
      cost.AddClicks(db.num_relations() / 3);  // expand schema tree nodes
      cost.AddDecision(2.0 * kJudgeCorrespondenceWeight);
      cost.AddClicks(2);  // select + connect
    }
    // Draw the correspondence line on the canvas.
    cost.AddClicks(2);
    confirmed.push_back(baselines::Correspondence{
        static_cast<int>(col), goal_attr, 1.0});
  }

  // Mapping phase: the tool enumerates join structures; the user inspects
  // the alternatives until the desired one is found.
  MW_ASSIGN_OR_RETURN(std::vector<core::MappingPath> mappings,
                      mapper.EnumerateMappings(confirmed));
  const std::string goal_canonical = task.mapping.Canonical();
  size_t index = mappings.size();
  for (size_t i = 0; i < mappings.size(); ++i) {
    if (mappings[i].Canonical() == goal_canonical) {
      index = i;
      break;
    }
  }
  run.success = index < mappings.size();
  const size_t inspected = run.success ? index + 1 : mappings.size();
  for (size_t i = 0; i < inspected; ++i) {
    cost.AddDecision(kJudgeJoinPathWeight);
    cost.AddClicks(1);  // expand the alternative; judging it is think time
  }
  cost.AddClicks(1);  // confirm
  run.time_s = cost.TimeSeconds(subject);
  return run;
}

Result<std::vector<ToolRun>> UserStudy::RunAll(
    const datagen::TaskMapping& task, uint64_t seed) const {
  std::vector<ToolRun> runs;
  for (const Subject& subject : DefaultSubjects()) {
    MW_ASSIGN_OR_RETURN(ToolRun mweaver, RunMWeaver(subject, task, seed));
    runs.push_back(std::move(mweaver));
    MW_ASSIGN_OR_RETURN(ToolRun eirene, RunEirene(subject, task, seed));
    runs.push_back(std::move(eirene));
    MW_ASSIGN_OR_RETURN(ToolRun infosphere,
                        RunInfoSphere(subject, task, seed));
    runs.push_back(std::move(infosphere));
  }
  return runs;
}

}  // namespace mweaver::study
