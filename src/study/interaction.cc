#include "study/interaction.h"

#include <algorithm>

#include "common/random.h"

namespace mweaver::study {

std::vector<Subject> DefaultSubjects() {
  std::vector<Subject> subjects;
  Rng rng(2012);  // deterministic panel
  auto jitter = [&](double base, double spread) {
    return base * (1.0 + spread * (rng.UniformDouble() - 0.5));
  };
  for (int d = 1; d <= 2; ++d) {
    Subject s;
    s.id = "D" + std::to_string(d);
    s.expert = true;
    s.keystroke_s = jitter(0.16, 0.3);
    s.click_s = jitter(0.85, 0.3);
    s.decision_s = jitter(2.0, 0.3);
    subjects.push_back(s);
  }
  for (int n = 1; n <= 8; ++n) {
    Subject s;
    s.id = "N" + std::to_string(n);
    s.expert = false;
    s.keystroke_s = jitter(0.26, 0.5);
    s.click_s = jitter(1.2, 0.5);
    s.decision_s = jitter(3.2, 0.6);
    subjects.push_back(s);
  }
  return subjects;
}

size_t KeystrokesWithAutocomplete(const std::string& text) {
  if (text.empty()) return 1;
  // The completion list is backed by the source's value dictionary: typing
  // about a third of the value (at least 3 characters) narrows it to a
  // handful, then one arrow key + one accept.
  const size_t typed = std::min(text.size(),
                                std::max<size_t>(3, text.size() / 3));
  return typed + 2;
}

size_t KeystrokesPlain(const std::string& text) { return text.size() + 1; }

}  // namespace mweaver::study
