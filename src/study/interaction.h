// The simulated-user substrate for the usability study (Section 6.2).
//
// The paper measured ten human subjects (two database experts D1-D2, eight
// non-technical users N1-N8) with a stopwatch and an event logger. We
// cannot reproduce humans; we reproduce the *mechanics*: every keystroke
// and mouse click is derived from the actual strings typed into and the
// actual UI operations performed against our real tool implementations,
// and wall-clock time is modeled as
//
//   time = keystrokes * typing_speed + clicks * click_speed
//        + decision_weight_sum * decision_speed + tool_setup_time
//
// with per-subject speeds. Decisions carry weights reflecting cognitive
// burden: recalling a known sample value is cheap; judging an unfamiliar
// schema correspondence or join path is expensive. The constants are
// documented here and in DESIGN.md; the *ratios* between tools emerge from
// the interaction structure, not from per-tool fudge factors.
#ifndef MWEAVER_STUDY_INTERACTION_H_
#define MWEAVER_STUDY_INTERACTION_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mweaver::study {

/// \brief One study participant.
struct Subject {
  std::string id;      // "D1", "N3", ...
  bool expert = false;
  double keystroke_s = 0.25;  // seconds per keystroke
  double click_s = 1.1;       // seconds per mouse click (incl. pointing)
  double decision_s = 3.0;    // seconds per unit-weight decision
};

/// \brief The paper's panel: D1, D2 experts and N1..N8 end-users, with
/// deterministic per-subject speed variation.
std::vector<Subject> DefaultSubjects();

/// \brief Accumulated interaction cost of one tool run.
struct InteractionCost {
  size_t keystrokes = 0;
  size_t clicks = 0;
  double decision_weight = 0.0;
  double setup_s = 0.0;

  void AddTyping(size_t n) { keystrokes += n; }
  void AddClicks(size_t n) { clicks += n; }
  void AddDecision(double weight) { decision_weight += weight; }

  double TimeSeconds(const Subject& subject) const {
    return setup_s + TypingSeconds(subject) + ClickingSeconds(subject) +
           ThinkingSeconds(subject);
  }

  /// Per-phase breakdown (the paper attributes the bulk of the tool gap to
  /// "the (not directly measurable) cognitive burden" — ThinkingSeconds
  /// makes that component explicit in our model).
  double TypingSeconds(const Subject& subject) const {
    return static_cast<double>(keystrokes) * subject.keystroke_s;
  }
  double ClickingSeconds(const Subject& subject) const {
    return static_cast<double>(clicks) * subject.click_s;
  }
  double ThinkingSeconds(const Subject& subject) const {
    return decision_weight * subject.decision_s;
  }
};

/// \brief Keystrokes to enter `text` into MWeaver's input spreadsheet,
/// which offers value auto-completion: the user types a prefix, then one
/// key accepts the completion. Long values therefore cost ~half their
/// length (the paper credits auto-completion for MWeaver needing about
/// half of Eirene's keystrokes).
size_t KeystrokesWithAutocomplete(const std::string& text);

/// \brief Keystrokes to type `text` in full (no completion), plus one
/// confirming key.
size_t KeystrokesPlain(const std::string& text);

/// Decision weights (unitless; multiplied by the subject's decision_s).
/// The heavy weights model exactly what the paper attributes the time gap
/// to: "the (not directly measurable) cognitive burden on the user in
/// reasoning with unfamiliar source schema in the other tools" (§6.2).
inline constexpr double kRecallSampleWeight = 0.4;   // recall a known value
inline constexpr double kCheckStatusWeight = 0.3;    // glance at mapping bar
inline constexpr double kJudgeCorrespondenceWeight = 2.5;  // foreign schema
inline constexpr double kJudgeJoinPathWeight = 3.0;  // reason about joins
inline constexpr double kLocateSourceTupleWeight = 3.0;  // browse source data

}  // namespace mweaver::study

#endif  // MWEAVER_STUDY_INTERACTION_H_
