// The user-study harness (Section 6.2 / Figure 10): drives the Figure-11
// mapping task through all three tools — MWeaver (core::Session), Eirene
// (baselines::EireneFitter), and an InfoSphere-style match-driven tool
// (baselines::MatchDrivenMapper) — with a simulated subject, recording
// overall time, keystrokes and mouse clicks per run.
#ifndef MWEAVER_STUDY_USER_STUDY_H_
#define MWEAVER_STUDY_USER_STUDY_H_

#include <string>
#include <vector>

#include "baselines/eirene.h"
#include "baselines/matchdriven.h"
#include "common/result.h"
#include "core/session.h"
#include "datagen/workload.h"
#include "graph/schema_graph.h"
#include "study/interaction.h"
#include "text/fulltext_engine.h"

namespace mweaver::study {

/// \brief Outcome of one (subject, tool, task) run.
struct ToolRun {
  std::string subject;
  std::string tool;  // "MWeaver" | "Eirene" | "InfoSphere"
  InteractionCost cost;
  double time_s = 0.0;
  /// The run ended with the goal mapping identified.
  bool success = false;
};

/// \brief Drives the three tools over one database.
class UserStudy {
 public:
  /// \brief `engine` and `schema_graph` must outlive the study; both wrap
  /// the same database.
  UserStudy(const text::FullTextEngine* engine,
            const graph::SchemaGraph* schema_graph);

  /// \brief MWeaver: the subject types target samples into the input
  /// spreadsheet until the candidate list converges (Session +
  /// SimulateUserSession drive the real TPW pipeline).
  Result<ToolRun> RunMWeaver(const Subject& subject,
                             const datagen::TaskMapping& task,
                             uint64_t seed) const;

  /// \brief Eirene: the subject assembles fully-specified data examples —
  /// locating and typing complete source tuples plus the target tuple —
  /// until the fitter pins down a single mapping.
  Result<ToolRun> RunEirene(const Subject& subject,
                            const datagen::TaskMapping& task,
                            uint64_t seed) const;

  /// \brief InfoSphere-style: the subject reviews proposed attribute
  /// correspondences for each target column (falling back to browsing the
  /// source schema when the right attribute is not proposed), then
  /// disambiguates among the enumerated join paths.
  Result<ToolRun> RunInfoSphere(const Subject& subject,
                                const datagen::TaskMapping& task,
                                uint64_t seed) const;

  /// \brief Runs all tools for all subjects; rows ordered subject-major
  /// (D1, D2, N1..N8), tool order MWeaver, Eirene, InfoSphere.
  Result<std::vector<ToolRun>> RunAll(const datagen::TaskMapping& task,
                                      uint64_t seed) const;

 private:
  const text::FullTextEngine* engine_;
  const graph::SchemaGraph* schema_graph_;
};

}  // namespace mweaver::study

#endif  // MWEAVER_STUDY_USER_STUDY_H_
