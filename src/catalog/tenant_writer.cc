#include "catalog/tenant_writer.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "common/failpoint.h"
#include "common/hash_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "graph/schema_graph.h"
#include "text/sharded_engine.h"

namespace mweaver::catalog {

TenantWriter::TenantWriter(Catalog* catalog, TenantWriterOptions options)
    : catalog_(catalog), options_(options) {
  MW_CHECK(catalog_ != nullptr) << "a tenant writer needs a catalog";
}

Result<UpdateResult> TenantWriter::Apply(std::string_view tenant,
                                         const UpdateBatch& batch) {
  if (batch.empty()) {
    return Status::InvalidArgument("update batch must not be empty");
  }
  // Chaos site: the update flaking before the delta build starts (source
  // feed unreachable, quota trip). Nothing has been built yet; the tenant
  // keeps serving its current snapshot untouched.
  MW_FAILPOINT_RETURN_NOT_OK("catalog.tenant.apply_update");

  // Serialize against other writers to this tenant for the WHOLE build:
  // two concurrent batches cloning the same base would each build a delta
  // missing the other's rows, and the CAS install would reject one of them
  // anyway — holding the lock turns that wasted build into a short wait.
  auto lock_result = catalog_->WriterLock(tenant);
  if (!lock_result.ok()) return lock_result.status();
  std::lock_guard<std::mutex> write_lock(*lock_result.ValueOrDie());

  auto base_result = catalog_->Pin(tenant);
  if (!base_result.ok()) return base_result.status();
  const SnapshotPtr base = base_result.ValueOrDie();

  // Resolve every named relation against the base schema and collect the
  // touched set (sorted, deduped) before cloning anything.
  std::vector<storage::RelationId> touched;
  const auto resolve =
      [&](const std::string& name) -> Result<storage::RelationId> {
    const storage::RelationId id = base->db().FindRelation(name);
    if (id == storage::kInvalidRelation) {
      return Status::NotFound(
          StrFormat("no relation '%s' in tenant '%.*s'", name.c_str(),
                    static_cast<int>(tenant.size()), tenant.data()));
    }
    touched.push_back(id);
    return id;
  };
  std::vector<storage::RelationId> insert_rels;
  insert_rels.reserve(batch.inserts.size());
  for (const RowInsert& ins : batch.inserts) {
    auto id = resolve(ins.relation);
    if (!id.ok()) return id.status();
    insert_rels.push_back(id.ValueOrDie());
  }
  std::vector<storage::RelationId> delete_rels;
  delete_rels.reserve(batch.deletes.size());
  for (const RowDelete& del : batch.deletes) {
    auto id = resolve(del.relation);
    if (!id.ok()) return id.status();
    delete_rels.push_back(id.ValueOrDie());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // ---- From here on everything happens on private clones; any failure
  // ---- discards them whole and the serving snapshot is untouched.

  auto db = std::make_unique<storage::Database>(base->db().CloneCow(touched));

  // Rows first: Append validates arity/types against the schema, Delete
  // validates range/liveness — deletes run after inserts so a batch may
  // remove rows it inserted itself.
  UpdateResult result;
  result.inserted_rows.reserve(batch.inserts.size());
  for (size_t i = 0; i < batch.inserts.size(); ++i) {
    storage::Relation* rel = db->mutable_relation(insert_rels[i]);
    Status s = rel->Append(batch.inserts[i].row);
    if (!s.ok()) return s;
    result.inserted_rows.push_back(
        static_cast<storage::RowId>(rel->num_rows() - 1));
  }
  for (size_t i = 0; i < batch.deletes.size(); ++i) {
    Status s =
        db->mutable_relation(delete_rels[i])->Delete(batch.deletes[i].row);
    if (!s.ok()) return s;
  }

  // Index delta: copy-on-write engine over the new database, then replay
  // the same rows in the same order into the touched relations' indexes.
  // On a sharded tenant only the shards the batch's rows hash into are
  // delta-cloned; every other shard stays shared with the base, probe
  // memos warm — the unit of invalidation shrinks from the tenant to the
  // touched shards.
  const uint64_t minor = base->minor_epoch() + 1;
  const text::ShardedTextEngine* base_sharded = base->sharded_engine();
  std::vector<uint32_t> touched_shards;
  std::vector<uint64_t> shard_minors;
  std::vector<uint64_t> shard_fingerprints;
  std::unique_ptr<text::FullTextEngine> engine;
  if (base_sharded != nullptr) {
    const uint32_t n = base->shard_count();
    for (const storage::RowId row : result.inserted_rows) {
      touched_shards.push_back(ShardOfRow(row, n));
    }
    for (const RowDelete& del : batch.deletes) {
      touched_shards.push_back(ShardOfRow(del.row, n));
    }
    std::sort(touched_shards.begin(), touched_shards.end());
    touched_shards.erase(
        std::unique(touched_shards.begin(), touched_shards.end()),
        touched_shards.end());
    engine = base_sharded->CloneForShardedDelta(db.get(), touched,
                                                touched_shards, minor);
    // Per-shard bookkeeping: touched shards move to this minor epoch, and
    // their content fingerprints are poisoned with a unique nonce so the
    // next Publish rebuilds them instead of falsely reusing stale engines.
    shard_minors = base->shard_minor_epochs();
    shard_fingerprints = base->shard_fingerprints();
    shard_fingerprints.resize(n, 0);
    for (const uint32_t s : touched_shards) {
      shard_minors[s] = minor;
      size_t nonce = 0x5ca4ded;
      HashCombine(&nonce, base->epoch());
      HashCombine(&nonce, minor);
      HashCombine(&nonce, s);
      shard_fingerprints[s] = nonce;
    }
  } else {
    engine = base->engine().CloneForDelta(db.get(), touched, minor);
  }
  for (size_t i = 0; i < batch.inserts.size(); ++i) {
    engine->ApplyRowInsert(insert_rels[i], result.inserted_rows[i]);
  }
  for (size_t i = 0; i < batch.deletes.size(); ++i) {
    engine->ApplyRowDelete(delete_rels[i], batch.deletes[i].row);
  }

  // Delta compaction: relations that accumulated enough removals get their
  // indexes rebuilt from live rows while we still own the clones. Chaos
  // site "text.index.delta_compact" models the rebuild failing (allocation
  // pressure, torn source read): the whole side build is discarded.
  for (const storage::RelationId rel : touched) {
    if (engine->MaxRemovedRows(rel) < options_.compact_removed_rows_threshold) {
      continue;
    }
    MW_FAILPOINT_RETURN_NOT_OK("text.index.delta_compact");
    engine->CompactRelationIndexes(rel);
    ++result.relations_compacted;
  }
  engine->FinalizeDelta(touched);

  // FK endpoints and edge shapes are schema-level, but the graph holds a
  // database back-pointer, so the delta gets its own instance.
  auto graph = std::make_unique<graph::SchemaGraph>(db.get());

  auto next = std::make_shared<const Snapshot>(
      std::string(tenant), base->epoch(), minor, std::move(db),
      std::move(engine), std::move(graph), std::move(shard_minors),
      std::move(shard_fingerprints));

  Status installed = catalog_->InstallDelta(tenant, base, next);
  if (!installed.ok()) return installed;

  result.snapshot = std::move(next);
  result.rows_inserted = batch.inserts.size();
  result.rows_deleted = batch.deletes.size();
  result.shards_touched =
      base_sharded != nullptr ? touched_shards.size() : 1;
  return result;
}

}  // namespace mweaver::catalog
