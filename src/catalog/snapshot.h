// Snapshot: one tenant's immutable serving state at one epoch — the source
// Database together with the FullTextEngine and SchemaGraph built over it.
// A snapshot never changes after construction; it is shared by refcount
// (SnapshotPtr) between the catalog's "current" slot and every session /
// request pinning it. Publishing a new epoch swaps the catalog's pointer;
// readers pinned on the old epoch keep searching it, byte-for-byte
// unchanged, and the old bundle is destroyed only when the last pin drops.
#ifndef MWEAVER_CATALOG_SNAPSHOT_H_
#define MWEAVER_CATALOG_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/schema_graph.h"
#include "storage/database.h"
#include "text/fulltext_engine.h"
#include "text/match.h"

namespace mweaver::text {
class ShardedTextEngine;
}  // namespace mweaver::text

namespace mweaver::catalog {

/// \brief Per-shard content fingerprints of a database: shard s hashes the
/// schema plus every live (row id, values) pair common::ShardOfRow assigns
/// to s. Two databases with equal fingerprints for shard s would build
/// byte-identical shard-s indexes, which is what lets Publish carry
/// unchanged shard engines over from the previous snapshot and rebuild only
/// the rest.
std::vector<uint64_t> ComputeShardFingerprints(const storage::Database& db,
                                               uint32_t shard_count);

/// \brief An immutable, refcounted bundle of per-tenant serving state.
///
/// The database is held behind a unique_ptr so its address stays stable for
/// the engine's and graph's back-pointers regardless of where the snapshot
/// itself is moved or shared. Construction is the expensive step (the
/// engine builds its inverted / n-gram / deletion indexes eagerly): the
/// catalog runs it outside any lock so publishing never stalls readers.
class Snapshot {
 public:
  /// \brief Builds the bundle from scratch. With `shard_count` > 1 the
  /// engine is a ShardedTextEngine over that many row-hash shards, and the
  /// snapshot records per-shard content fingerprints so the next Publish
  /// can reuse unchanged shards.
  Snapshot(std::string tenant, uint64_t epoch,
           std::unique_ptr<storage::Database> db, text::MatchPolicy policy,
           text::EngineOptions engine_options = {}, uint32_t shard_count = 1);

  /// \brief Delta constructor for streaming updates (and the publish-time
  /// shard-reuse path): adopts a pre-built bundle (CoW database,
  /// CloneForDelta engine, rebuilt graph) instead of constructing one from
  /// scratch. Same publish epoch as the base it was derived from;
  /// `minor_epoch` distinguishes successive update batches within that
  /// epoch (base snapshots are minor 0). `shard_minor_epochs` /
  /// `shard_fingerprints` carry the per-shard bookkeeping forward (sized to
  /// the engine's shard count, or empty for an unsharded engine).
  Snapshot(std::string tenant, uint64_t epoch, uint64_t minor_epoch,
           std::unique_ptr<storage::Database> db,
           std::unique_ptr<text::FullTextEngine> engine,
           std::unique_ptr<graph::SchemaGraph> graph,
           std::vector<uint64_t> shard_minor_epochs = {},
           std::vector<uint64_t> shard_fingerprints = {});

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// \brief The owning tenant's name.
  const std::string& tenant() const { return tenant_; }
  /// \brief Monotonic publish epoch, unique across the whole catalog (so a
  /// tenant evicted and later republished can never alias an old epoch in
  /// result-cache fingerprints).
  uint64_t epoch() const { return epoch_; }
  /// \brief Update sequence number within the publish epoch: 0 for a full
  /// Publish, incremented by every installed streaming update batch. The
  /// (epoch, minor_epoch) pair totally orders a tenant's serving states
  /// and extends result-cache fingerprints so entries computed before an
  /// update die by construction.
  uint64_t minor_epoch() const { return minor_epoch_; }

  const storage::Database& db() const { return *db_; }
  const text::FullTextEngine& engine() const { return *engine_; }
  const graph::SchemaGraph& graph() const { return *graph_; }

  /// \brief Shard topology of the bundle: 1 for a monolithic engine. Part
  /// of the service result-cache fingerprint (results are byte-identical
  /// across shard counts, but rebinding the key keeps the fingerprint an
  /// honest function of the serving configuration).
  uint32_t shard_count() const { return engine_->shard_count(); }
  /// \brief The engine as a shard bundle, or nullptr when monolithic.
  const text::ShardedTextEngine* sharded_engine() const;

  /// \brief Per-shard update sequence numbers, sized shard_count(): shard s
  /// was last rebuilt or delta-touched at minor epoch
  /// shard_minor_epochs()[s] (0 = untouched since publish). The tenant
  /// minor_epoch() is their roll-up: max over shards.
  const std::vector<uint64_t>& shard_minor_epochs() const {
    return shard_minor_epochs_;
  }
  /// \brief Per-shard content fingerprints (see ComputeShardFingerprints);
  /// delta snapshots poison touched shards' entries with a unique nonce so
  /// a later Publish never falsely reuses them.
  const std::vector<uint64_t>& shard_fingerprints() const {
    return shard_fingerprints_;
  }

  /// \brief Approximate heap footprint of the text indexes (capacity
  /// accounting for eviction policies and per-tenant metrics).
  size_t index_bytes() const { return engine_->index_bytes(); }

 private:
  const std::string tenant_;
  const uint64_t epoch_;
  const uint64_t minor_epoch_;
  const std::unique_ptr<storage::Database> db_;
  const std::unique_ptr<text::FullTextEngine> engine_;
  const std::unique_ptr<graph::SchemaGraph> graph_;
  std::vector<uint64_t> shard_minor_epochs_;
  std::vector<uint64_t> shard_fingerprints_;
};

/// \brief The pin: holding one keeps the whole bundle alive. Searches that
/// must see one consistent instance for their full duration copy the
/// tenant's current SnapshotPtr once and use only that.
using SnapshotPtr = std::shared_ptr<const Snapshot>;

}  // namespace mweaver::catalog

#endif  // MWEAVER_CATALOG_SNAPSHOT_H_
