#include "catalog/snapshot.h"

#include "common/logging.h"

namespace mweaver::catalog {

Snapshot::Snapshot(std::string tenant, uint64_t epoch,
                   std::unique_ptr<storage::Database> db,
                   text::MatchPolicy policy,
                   text::EngineOptions engine_options)
    : tenant_(std::move(tenant)),
      epoch_(epoch),
      minor_epoch_(0),
      db_(std::move(db)),
      engine_(std::make_unique<text::FullTextEngine>(db_.get(), policy,
                                                     engine_options)),
      graph_(std::make_unique<graph::SchemaGraph>(db_.get())) {
  MW_CHECK(db_ != nullptr) << "a snapshot needs a database";
}

Snapshot::Snapshot(std::string tenant, uint64_t epoch, uint64_t minor_epoch,
                   std::unique_ptr<storage::Database> db,
                   std::unique_ptr<text::FullTextEngine> engine,
                   std::unique_ptr<graph::SchemaGraph> graph)
    : tenant_(std::move(tenant)),
      epoch_(epoch),
      minor_epoch_(minor_epoch),
      db_(std::move(db)),
      engine_(std::move(engine)),
      graph_(std::move(graph)) {
  MW_CHECK(db_ != nullptr) << "a snapshot needs a database";
  MW_CHECK(engine_ != nullptr) << "a delta snapshot needs a pre-built engine";
  MW_CHECK(graph_ != nullptr) << "a delta snapshot needs a schema graph";
}

}  // namespace mweaver::catalog
