#include "catalog/snapshot.h"

#include "common/logging.h"

namespace mweaver::catalog {

Snapshot::Snapshot(std::string tenant, uint64_t epoch,
                   std::unique_ptr<storage::Database> db,
                   text::MatchPolicy policy,
                   text::EngineOptions engine_options)
    : tenant_(std::move(tenant)),
      epoch_(epoch),
      db_(std::move(db)),
      engine_(std::make_unique<text::FullTextEngine>(db_.get(), policy,
                                                     engine_options)),
      graph_(std::make_unique<graph::SchemaGraph>(db_.get())) {
  MW_CHECK(db_ != nullptr) << "a snapshot needs a database";
}

}  // namespace mweaver::catalog
