#include "catalog/snapshot.h"

#include <algorithm>

#include "common/hash_util.h"
#include "common/logging.h"
#include "text/sharded_engine.h"

namespace mweaver::catalog {

namespace {

std::unique_ptr<text::FullTextEngine> BuildEngine(
    const storage::Database* db, text::MatchPolicy policy,
    const text::EngineOptions& options, uint32_t shard_count) {
  if (shard_count > 1) {
    return std::make_unique<text::ShardedTextEngine>(db, policy, shard_count,
                                                     options);
  }
  return std::make_unique<text::FullTextEngine>(db, policy, options);
}

}  // namespace

std::vector<uint64_t> ComputeShardFingerprints(const storage::Database& db,
                                               uint32_t shard_count) {
  const uint32_t n = std::max<uint32_t>(1, shard_count);
  // Every shard's hash starts from the schema: a schema change (relation or
  // attribute added/renamed/retyped) invalidates all of them.
  size_t schema_seed = 0;
  for (size_t r = 0; r < db.num_relations(); ++r) {
    const storage::Relation& rel =
        db.relation(static_cast<storage::RelationId>(r));
    HashCombine(&schema_seed, rel.name());
    for (const storage::AttributeSchema& attr : rel.schema().attributes()) {
      HashCombine(&schema_seed, attr.name);
      HashCombine(&schema_seed, static_cast<int>(attr.type));
      HashCombine(&schema_seed, attr.searchable);
    }
  }
  std::vector<size_t> seeds(n, schema_seed);
  // One pass over the live rows: each row folds (relation, row id, values)
  // into its owning shard's hash. Row ids capture deletions (a vanished row
  // no longer contributes) and appends; values capture in-place edits.
  for (size_t r = 0; r < db.num_relations(); ++r) {
    const storage::Relation& rel =
        db.relation(static_cast<storage::RelationId>(r));
    const size_t num_attrs = rel.schema().num_attributes();
    for (size_t row = 0; row < rel.num_rows(); ++row) {
      const auto row_id = static_cast<storage::RowId>(row);
      if (rel.is_deleted(row_id)) continue;
      size_t* seed = &seeds[ShardOfRow(row_id, n)];
      HashCombine(seed, static_cast<int64_t>(r));
      HashCombine(seed, row_id);
      for (size_t a = 0; a < num_attrs; ++a) {
        HashCombine(seed,
                    rel.at(row_id, static_cast<storage::AttributeId>(a)));
      }
    }
  }
  return std::vector<uint64_t>(seeds.begin(), seeds.end());
}

Snapshot::Snapshot(std::string tenant, uint64_t epoch,
                   std::unique_ptr<storage::Database> db,
                   text::MatchPolicy policy,
                   text::EngineOptions engine_options, uint32_t shard_count)
    : tenant_(std::move(tenant)),
      epoch_(epoch),
      minor_epoch_(0),
      db_(std::move(db)),
      engine_(BuildEngine(db_.get(), policy, engine_options, shard_count)),
      graph_(std::make_unique<graph::SchemaGraph>(db_.get())) {
  MW_CHECK(db_ != nullptr) << "a snapshot needs a database";
  const uint32_t n = engine_->shard_count();
  shard_minor_epochs_.assign(n, 0);
  shard_fingerprints_ = ComputeShardFingerprints(*db_, n);
}

Snapshot::Snapshot(std::string tenant, uint64_t epoch, uint64_t minor_epoch,
                   std::unique_ptr<storage::Database> db,
                   std::unique_ptr<text::FullTextEngine> engine,
                   std::unique_ptr<graph::SchemaGraph> graph,
                   std::vector<uint64_t> shard_minor_epochs,
                   std::vector<uint64_t> shard_fingerprints)
    : tenant_(std::move(tenant)),
      epoch_(epoch),
      minor_epoch_(minor_epoch),
      db_(std::move(db)),
      engine_(std::move(engine)),
      graph_(std::move(graph)),
      shard_minor_epochs_(std::move(shard_minor_epochs)),
      shard_fingerprints_(std::move(shard_fingerprints)) {
  MW_CHECK(db_ != nullptr) << "a snapshot needs a database";
  MW_CHECK(engine_ != nullptr) << "a delta snapshot needs a pre-built engine";
  MW_CHECK(graph_ != nullptr) << "a delta snapshot needs a schema graph";
  const uint32_t n = engine_->shard_count();
  if (shard_minor_epochs_.empty()) shard_minor_epochs_.assign(n, minor_epoch_);
  MW_CHECK(shard_minor_epochs_.size() == n)
      << "shard minor epochs must match the engine's shard count";
  MW_CHECK(shard_fingerprints_.empty() || shard_fingerprints_.size() == n)
      << "shard fingerprints must match the engine's shard count";
}

const text::ShardedTextEngine* Snapshot::sharded_engine() const {
  return dynamic_cast<const text::ShardedTextEngine*>(engine_.get());
}

}  // namespace mweaver::catalog
