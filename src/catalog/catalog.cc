#include "catalog/catalog.h"

#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace mweaver::catalog {

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {}

int64_t Catalog::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<SnapshotPtr> Catalog::Publish(std::string_view tenant,
                                     storage::Database db) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  // Chaos site: ingestion flaking before the build starts (source dump
  // unreachable, quota trip). The tenant keeps serving its old epoch; the
  // default injected code is Unavailable, the retryable class.
  MW_FAILPOINT_RETURN_NOT_OK("catalog.tenant.publish");

  // Claim the epoch before the build: concurrent publishers to one tenant
  // build in parallel and install in claim order (a slower build holding
  // an older epoch must not clobber a newer one — see the install check).
  const uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);

  // The expensive step — index construction over the new instance — runs
  // with NO catalog lock held: readers keep pinning the previous epoch at
  // full speed for the whole build.
  auto snapshot = std::make_shared<const Snapshot>(
      std::string(tenant), epoch,
      std::make_unique<storage::Database>(std::move(db)),
      options_.match_policy, options_.engine_options);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    if (tenants_.size() >= options_.max_tenants) {
      return Status::ResourceExhausted(
          StrFormat("tenant limit reached (%zu live tenants)",
                    tenants_.size()));
    }
    it = tenants_.emplace(std::string(tenant), std::make_shared<Tenant>())
             .first;
  }
  Tenant& entry = *it->second;
  if (entry.current != nullptr && entry.current->epoch() > epoch) {
    // A concurrent publish claimed a later epoch and finished first; this
    // build is already stale. The built snapshot is discarded here (its
    // only reference), never exposed.
    return Status::FailedPrecondition(
        StrFormat("publish of tenant '%.*s' superseded by epoch %llu",
                  static_cast<int>(tenant.size()), tenant.data(),
                  static_cast<unsigned long long>(entry.current->epoch())));
  }
  entry.current = snapshot;  // the atomic swap: one pointer assignment
  entry.publishes += 1;
  entry.last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return snapshot;
}

Status Catalog::InstallDelta(std::string_view tenant,
                             const SnapshotPtr& expected_base,
                             SnapshotPtr next) {
  if (next == nullptr) {
    return Status::InvalidArgument("delta snapshot must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second->current == nullptr) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  Tenant& entry = *it->second;
  if (entry.current != expected_base) {
    // A full Publish (or a writer that bypassed the lock) swapped the
    // serving snapshot while this delta was being built. The delta was
    // derived from a superseded base, so it must not be installed.
    return Status::FailedPrecondition(
        StrFormat("update to tenant '%.*s' superseded: base epoch %llu.%llu "
                  "is no longer current",
                  static_cast<int>(tenant.size()), tenant.data(),
                  static_cast<unsigned long long>(expected_base->epoch()),
                  static_cast<unsigned long long>(
                      expected_base->minor_epoch())));
  }
  entry.current = std::move(next);
  entry.updates += 1;
  entry.last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return Status::OK();
}

Result<std::shared_ptr<std::mutex>> Catalog::WriterLock(
    std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  return it->second->write_mu;
}

Result<SnapshotPtr> Catalog::Pin(std::string_view tenant) const {
  SnapshotPtr pinned;
  std::shared_ptr<Tenant> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) {
      entry = it->second;
      pinned = entry->current;
    }
  }
  if (pinned == nullptr) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  entry->last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return pinned;
}

Result<uint64_t> Catalog::CurrentEpoch(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second->current == nullptr) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  return it->second->current->epoch();
}

Status Catalog::Drop(std::string_view tenant) {
  SnapshotPtr released;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      return Status::NotFound(StrFormat("no tenant '%.*s'",
                                        static_cast<int>(tenant.size()),
                                        tenant.data()));
    }
    released = std::move(it->second->current);
    tenants_.erase(it);
  }
  // `released` (possibly the last reference to a large index bundle)
  // destructs here, outside the registry lock.
  return Status::OK();
}

size_t Catalog::EvictIdle() {
  const int64_t cutoff_ns =
      NowNs() - std::chrono::duration_cast<std::chrono::nanoseconds>(
                    options_.idle_ttl)
                    .count();
  std::vector<SnapshotPtr> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = tenants_.begin(); it != tenants_.end();) {
      Tenant& entry = *it->second;
      if (entry.last_used_ns.load(std::memory_order_relaxed) > cutoff_ns) {
        ++it;
        continue;
      }
      evicted.push_back(std::move(entry.current));
      it = tenants_.erase(it);
    }
  }
  // Cold snapshots destruct here, outside the lock. Sessions still holding
  // pins are unaffected: their SnapshotPtr keeps the bundle alive.
  return evicted.size();
}

size_t Catalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

std::vector<TenantInfo> Catalog::ListTenants() const {
  std::vector<TenantInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) {
    TenantInfo info;
    info.name = name;
    info.publishes = entry->publishes;
    info.updates = entry->updates;
    if (entry->current != nullptr) {
      info.epoch = entry->current->epoch();
      info.minor_epoch = entry->current->minor_epoch();
      info.rows = entry->current->db().TotalRows();
      info.index_bytes = entry->current->index_bytes();
      // One reference is the catalog's own; anything beyond it is a pin.
      info.pins = entry->current.use_count() - 1;
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace mweaver::catalog
