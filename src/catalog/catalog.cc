#include "catalog/catalog.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "text/sharded_engine.h"

namespace mweaver::catalog {

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {}

int64_t Catalog::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<SnapshotPtr> Catalog::Publish(std::string_view tenant,
                                     storage::Database db) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  // Chaos site: ingestion flaking before the build starts (source dump
  // unreachable, quota trip). The tenant keeps serving its old epoch; the
  // default injected code is Unavailable, the retryable class.
  MW_FAILPOINT_RETURN_NOT_OK("catalog.tenant.publish");

  // Claim the epoch before the build: concurrent publishers to one tenant
  // build in parallel and install in claim order (a slower build holding
  // an older epoch must not clobber a newer one — see the install check).
  const uint64_t epoch = next_epoch_.fetch_add(1, std::memory_order_relaxed);

  // The previous snapshot (if any) is the candidate source of reusable
  // shard engines; pinning it here keeps it alive across the build.
  SnapshotPtr prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto prev_it = tenants_.find(tenant);
    if (prev_it != tenants_.end()) prev = prev_it->second->current;
  }

  // The expensive step — index construction over the new instance — runs
  // with NO catalog lock held: readers keep pinning the previous epoch at
  // full speed for the whole build.
  const uint32_t shard_count = std::max<uint32_t>(1, options_.shard_count);
  auto owned_db = std::make_unique<storage::Database>(std::move(db));
  std::shared_ptr<const Snapshot> snapshot;
  size_t shards_rebuilt = 1;
  if (shard_count <= 1) {
    snapshot = std::make_shared<const Snapshot>(
        std::string(tenant), epoch, std::move(owned_db),
        options_.match_policy, options_.engine_options);
  } else {
    // Sharded publish: fingerprint the new instance per shard and rebuild
    // only the shards whose content changed since the previous snapshot —
    // the rest are carried over with warm probe memos. Delta snapshots
    // poison touched shards' fingerprints, so streaming-updated shards
    // always rebuild here.
    std::vector<uint64_t> fingerprints =
        ComputeShardFingerprints(*owned_db, shard_count);
    const text::ShardedTextEngine* prev_engine =
        prev != nullptr ? prev->sharded_engine() : nullptr;
    std::vector<bool> reuse(shard_count, false);
    if (prev_engine != nullptr && prev->shard_count() == shard_count &&
        prev->shard_fingerprints().size() == shard_count) {
      for (uint32_t s = 0; s < shard_count; ++s) {
        reuse[s] = prev->shard_fingerprints()[s] == fingerprints[s];
      }
    }
    auto engine = text::ShardedTextEngine::BuildReusing(
        owned_db.get(), options_.match_policy, shard_count,
        options_.engine_options, prev_engine, reuse, &shards_rebuilt);
    auto graph = std::make_unique<graph::SchemaGraph>(owned_db.get());
    snapshot = std::make_shared<const Snapshot>(
        std::string(tenant), epoch, /*minor_epoch=*/0, std::move(owned_db),
        std::move(engine), std::move(graph),
        std::vector<uint64_t>(shard_count, 0), std::move(fingerprints));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    if (tenants_.size() >= options_.max_tenants) {
      return Status::ResourceExhausted(
          StrFormat("tenant limit reached (%zu live tenants)",
                    tenants_.size()));
    }
    it = tenants_.emplace(std::string(tenant), std::make_shared<Tenant>())
             .first;
  }
  Tenant& entry = *it->second;
  if (entry.current != nullptr && entry.current->epoch() > epoch) {
    // A concurrent publish claimed a later epoch and finished first; this
    // build is already stale. The built snapshot is discarded here (its
    // only reference), never exposed.
    return Status::FailedPrecondition(
        StrFormat("publish of tenant '%.*s' superseded by epoch %llu",
                  static_cast<int>(tenant.size()), tenant.data(),
                  static_cast<unsigned long long>(entry.current->epoch())));
  }
  entry.current = snapshot;  // the atomic swap: one pointer assignment
  entry.publishes += 1;
  entry.shards_rebuilt_last = shards_rebuilt;
  entry.shards_rebuilt_total += shards_rebuilt;
  entry.last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return snapshot;
}

Status Catalog::InstallDelta(std::string_view tenant,
                             const SnapshotPtr& expected_base,
                             SnapshotPtr next) {
  if (next == nullptr) {
    return Status::InvalidArgument("delta snapshot must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second->current == nullptr) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  Tenant& entry = *it->second;
  if (entry.current != expected_base) {
    // A full Publish (or a writer that bypassed the lock) swapped the
    // serving snapshot while this delta was being built. The delta was
    // derived from a superseded base, so it must not be installed.
    return Status::FailedPrecondition(
        StrFormat("update to tenant '%.*s' superseded: base epoch %llu.%llu "
                  "is no longer current",
                  static_cast<int>(tenant.size()), tenant.data(),
                  static_cast<unsigned long long>(expected_base->epoch()),
                  static_cast<unsigned long long>(
                      expected_base->minor_epoch())));
  }
  // Shard accounting: a delta "rebuilds" the shards whose minor epoch moved
  // (the writer delta-cloned them); everything else was carried over.
  uint64_t shards_touched = next->shard_count();
  const std::vector<uint64_t>& base_minors =
      expected_base->shard_minor_epochs();
  const std::vector<uint64_t>& next_minors = next->shard_minor_epochs();
  if (next_minors.size() == base_minors.size()) {
    shards_touched = 0;
    for (size_t s = 0; s < next_minors.size(); ++s) {
      if (next_minors[s] != base_minors[s]) ++shards_touched;
    }
  }
  entry.current = std::move(next);
  entry.updates += 1;
  entry.shards_rebuilt_last = shards_touched;
  entry.shards_rebuilt_total += shards_touched;
  entry.last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return Status::OK();
}

Result<std::shared_ptr<std::mutex>> Catalog::WriterLock(
    std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  return it->second->write_mu;
}

Result<SnapshotPtr> Catalog::Pin(std::string_view tenant) const {
  SnapshotPtr pinned;
  std::shared_ptr<Tenant> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) {
      entry = it->second;
      pinned = entry->current;
    }
  }
  if (pinned == nullptr) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  entry->last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return pinned;
}

Result<uint64_t> Catalog::CurrentEpoch(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second->current == nullptr) {
    return Status::NotFound(StrFormat("no tenant '%.*s'",
                                      static_cast<int>(tenant.size()),
                                      tenant.data()));
  }
  return it->second->current->epoch();
}

Status Catalog::Drop(std::string_view tenant) {
  SnapshotPtr released;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      return Status::NotFound(StrFormat("no tenant '%.*s'",
                                        static_cast<int>(tenant.size()),
                                        tenant.data()));
    }
    released = std::move(it->second->current);
    tenants_.erase(it);
  }
  // `released` (possibly the last reference to a large index bundle)
  // destructs here, outside the registry lock.
  return Status::OK();
}

std::vector<Catalog::EvictedTenant> Catalog::EvictIdle() {
  const int64_t cutoff_ns =
      NowNs() - std::chrono::duration_cast<std::chrono::nanoseconds>(
                    options_.idle_ttl)
                    .count();
  std::vector<EvictedTenant> evicted;
  std::vector<SnapshotPtr> released;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = tenants_.begin(); it != tenants_.end();) {
      Tenant& entry = *it->second;
      if (entry.last_used_ns.load(std::memory_order_relaxed) > cutoff_ns) {
        ++it;
        continue;
      }
      evicted.push_back(EvictedTenant{
          it->first,
          entry.current != nullptr ? entry.current->epoch() : 0});
      released.push_back(std::move(entry.current));
      it = tenants_.erase(it);
    }
  }
  // Cold snapshots destruct here, outside the lock. Sessions still holding
  // pins are unaffected: their SnapshotPtr keeps the bundle alive.
  return evicted;
}

size_t Catalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

std::vector<TenantInfo> Catalog::ListTenants() const {
  std::vector<TenantInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) {
    TenantInfo info;
    info.name = name;
    info.publishes = entry->publishes;
    info.updates = entry->updates;
    info.shards_rebuilt_last = entry->shards_rebuilt_last;
    info.shards_rebuilt_total = entry->shards_rebuilt_total;
    if (entry->current != nullptr) {
      info.epoch = entry->current->epoch();
      info.minor_epoch = entry->current->minor_epoch();
      info.rows = entry->current->db().TotalRows();
      info.index_bytes = entry->current->index_bytes();
      info.shards = entry->current->shard_count();
      // One reference is the catalog's own; anything beyond it is a pin.
      info.pins = entry->current.use_count() - 1;
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace mweaver::catalog
