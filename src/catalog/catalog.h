// Catalog: the multi-tenant registry of copy-on-write snapshots. Each named
// tenant owns one current Snapshot (database + full-text engine + schema
// graph at a monotonic epoch). Reads never block ingestion:
//
//   readers ----> Pin(tenant) ----> SnapshotPtr (refcounted, immutable)
//                                        ^
//   bulk load --> build next epoch  -----+-- Publish() swaps the pointer
//                 (indexes built         |   atomically under a short
//                  OUTSIDE the lock)     v   registry critical section
//                              old snapshot freed when the last pin drops
//
// Epochs come from one catalog-wide monotonic counter, so an epoch value
// is never reused — not across republishes, not across tenants, not even
// after a tenant is evicted and later recreated. Downstream fingerprints
// (the service result cache) rely on that uniqueness.
//
// Cold tenants are reclaimed by EvictIdle() after an idle TTL, mirroring
// the session TTL eviction in service::SessionManager: eviction drops the
// catalog's reference only — sessions still pinning the tenant's snapshot
// keep serving until they close.
#ifndef MWEAVER_CATALOG_CATALOG_H_
#define MWEAVER_CATALOG_CATALOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "catalog/snapshot.h"
#include "storage/database.h"
#include "text/fulltext_engine.h"
#include "text/match.h"

namespace mweaver::catalog {

struct CatalogOptions {
  /// Match policy for every published engine (one policy per catalog keeps
  /// cross-tenant result semantics uniform; per-tenant policies would also
  /// have to enter the result-cache fingerprint).
  text::MatchPolicy match_policy = text::MatchPolicy::Substring();
  /// Engine build/acceleration knobs applied to every publish.
  text::EngineOptions engine_options;
  /// Row-hash shards per tenant (>= 1). With N > 1 every snapshot is a
  /// ShardedTextEngine bundle of N independently built shard engines;
  /// Publish rebuilds only the shards whose content fingerprint changed and
  /// TenantWriter delta-clones only the shards owning the batch's rows.
  /// Search results are byte-identical for every value of N.
  uint32_t shard_count = 1;
  /// Tenants with no Pin/Publish for this long are reclaimed by
  /// EvictIdle().
  std::chrono::milliseconds idle_ttl{std::chrono::minutes(30)};
  /// Publish() fails with ResourceExhausted beyond this many live tenants.
  size_t max_tenants = 1024;
};

/// \brief A point-in-time row of ListTenants() for monitoring / metrics.
struct TenantInfo {
  std::string name;
  uint64_t epoch = 0;
  uint64_t minor_epoch = 0;  // streaming updates applied since last publish
  uint64_t publishes = 0;  // lifetime publish count of this registration
  uint64_t updates = 0;    // lifetime streaming-update count
  size_t rows = 0;
  size_t index_bytes = 0;
  uint32_t shards = 1;               // shard topology of the current snapshot
  uint64_t shards_rebuilt_last = 0;  // shards (re)built by the latest
                                     // publish or streaming update
  uint64_t shards_rebuilt_total = 0;  // lifetime shard (re)builds
  /// Pins outstanding beyond the catalog's own reference (sessions,
  /// in-flight requests, still-draining old epochs are NOT counted — this
  /// is the current snapshot's refcount only, an approximation for ops).
  long pins = 0;
};

/// \brief Thread-safe multi-tenant snapshot registry. All public methods
/// may be called concurrently; Pin() is a map lookup plus a shared_ptr
/// copy, Publish() does its expensive index build outside the lock.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// \brief Builds the next epoch of `tenant` from `db` (creating the
  /// tenant on first publish) and atomically makes it current. The index
  /// build runs on the caller's thread without holding the registry lock,
  /// so concurrent Pin()s keep returning the previous epoch until the
  /// swap. Returns the newly current snapshot.
  ///
  /// Failpoint "catalog.tenant.publish" injects a pre-build failure (the
  /// tenant keeps serving its old epoch untouched).
  Result<SnapshotPtr> Publish(std::string_view tenant, storage::Database db);

  /// \brief Atomically replaces the tenant's current snapshot with a delta
  /// derived from `expected_base` — the streaming-update install step used
  /// by TenantWriter. The swap succeeds only if `expected_base` is still
  /// the serving snapshot: if a concurrent Publish (or another writer that
  /// slipped past the write lock) installed something newer, returns
  /// FailedPrecondition and `next` is discarded by the caller. NotFound if
  /// the tenant vanished (Drop / EvictIdle) while the delta was built.
  Status InstallDelta(std::string_view tenant,
                      const SnapshotPtr& expected_base, SnapshotPtr next);

  /// \brief The tenant's writer lock, serializing streaming update batches
  /// against each other (Publish does NOT take it — a racing publish wins
  /// via the InstallDelta precondition instead). Returned by shared_ptr so
  /// a writer holding it survives the tenant being dropped mid-batch.
  /// NotFound for unknown tenants.
  Result<std::shared_ptr<std::mutex>> WriterLock(std::string_view tenant);

  /// \brief Pins the tenant's current snapshot: the returned handle stays
  /// valid (and its contents immutable) regardless of later publishes or
  /// evictions. NotFound for unknown / evicted tenants. Refreshes the
  /// tenant's idle clock.
  Result<SnapshotPtr> Pin(std::string_view tenant) const;

  /// \brief The tenant's current epoch without pinning. NotFound when the
  /// tenant does not exist.
  Result<uint64_t> CurrentEpoch(std::string_view tenant) const;

  /// \brief Unregisters the tenant. Outstanding pins keep their snapshot;
  /// later Pin()s return NotFound until a new Publish().
  Status Drop(std::string_view tenant);

  /// \brief One tenant reclaimed by EvictIdle: its name and the epoch it
  /// was serving when evicted. Callers invalidating downstream state (the
  /// service result cache) must scope the invalidation to epochs <= this
  /// one — a republish of the same name that lands concurrently has a
  /// strictly greater epoch (catalog-wide monotonic counter) and must keep
  /// its entries.
  struct EvictedTenant {
    std::string name;
    uint64_t epoch = 0;
  };

  /// \brief Evicts every tenant idle (no Pin/Publish) longer than the TTL;
  /// returns who was reclaimed and at which epoch. The eviction policy
  /// mirrors SessionManager::EvictIdle: drop the registry reference, let
  /// refcounting drain stragglers.
  std::vector<EvictedTenant> EvictIdle();

  /// \brief Live tenant count.
  size_t size() const;

  /// \brief Stable-ordered (by name) snapshot of every live tenant.
  std::vector<TenantInfo> ListTenants() const;

  const CatalogOptions& options() const { return options_; }

 private:
  struct Tenant {
    SnapshotPtr current;      // guarded by Catalog::mu_
    uint64_t publishes = 0;   // guarded by Catalog::mu_
    uint64_t updates = 0;     // guarded by Catalog::mu_
    /// Shard (re)build accounting, guarded by Catalog::mu_: how many shard
    /// engines the latest Publish/InstallDelta actually constructed (the
    /// rest were carried over), and the lifetime sum.
    uint64_t shards_rebuilt_last = 0;
    uint64_t shards_rebuilt_total = 0;
    /// Serializes streaming writers to this tenant (held across the whole
    /// delta build, NOT just the install — see WriterLock()). shared_ptr so
    /// a writer keeps a valid mutex even if the tenant is dropped.
    std::shared_ptr<std::mutex> write_mu = std::make_shared<std::mutex>();
    /// steady_clock nanos of the last Pin/Publish (atomic so EvictIdle and
    /// the const Pin() path touch it without write-locking the registry).
    std::atomic<int64_t> last_used_ns{0};
  };

  static int64_t NowNs();

  const CatalogOptions options_;

  mutable std::mutex mu_;  // guards tenants_ and Tenant::current/publishes
  std::map<std::string, std::shared_ptr<Tenant>, std::less<>> tenants_;
  /// Catalog-wide epoch source; see file comment for why it is global.
  std::atomic<uint64_t> next_epoch_{1};
};

}  // namespace mweaver::catalog

#endif  // MWEAVER_CATALOG_CATALOG_H_
