// TenantWriter: streaming updates to a live tenant. A writer applies a
// batch of row inserts / deletes to the tenant's current snapshot without a
// full Publish rebuild:
//
//   Pin base ──> CloneCow(touched relations)         (db: O(touched rows))
//            ──> CloneForDelta(touched relations)    (engine: shares the
//                + ApplyRowInsert / ApplyRowDelete    untouched indexes and
//                                                     the probe memo)
//            ──> delta Snapshot at (epoch, minor+1)
//            ──> Catalog::InstallDelta  (CAS against the pinned base)
//
// The whole build happens on private clones; readers pinned on the base
// keep serving it byte-for-byte unchanged, and any failure at any step
// simply discards the clones — a failed update can never disturb the
// serving snapshot. Writers to one tenant are serialized by the catalog's
// per-tenant writer lock; a concurrent full Publish wins by making the
// final InstallDelta fail its precondition.
#ifndef MWEAVER_CATALOG_TENANT_WRITER_H_
#define MWEAVER_CATALOG_TENANT_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace mweaver::catalog {

/// \brief One row appended to a named relation.
struct RowInsert {
  std::string relation;
  storage::Row row;
};

/// \brief One row tombstoned in a named relation. `row` may name a row that
/// existed in the base snapshot or one inserted earlier in the same batch.
struct RowDelete {
  std::string relation;
  storage::RowId row = -1;
};

/// \brief An atomic unit of streaming change: either every insert and
/// delete lands in the new minor epoch, or none do.
struct UpdateBatch {
  std::vector<RowInsert> inserts;
  std::vector<RowDelete> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

/// \brief What a successful Apply() did.
struct UpdateResult {
  /// The newly serving delta snapshot (minor epoch = base's + 1).
  SnapshotPtr snapshot;
  /// RowIds assigned to `batch.inserts`, in order — how an updater learns
  /// the ids of its own rows so it can delete them later.
  std::vector<storage::RowId> inserted_rows;
  size_t rows_inserted = 0;
  size_t rows_deleted = 0;
  /// Relations whose indexes were rebuilt by the delta-compaction policy.
  size_t relations_compacted = 0;
  /// Shards the batch's rows hashed into — the only shards delta-cloned
  /// (the rest stayed shared with the base, memos warm). 1 for an
  /// unsharded tenant.
  size_t shards_touched = 1;
};

struct TenantWriterOptions {
  /// A touched relation whose largest per-index removed-row count reaches
  /// this threshold gets its indexes rebuilt from live rows during the
  /// batch, reclaiming posting-list and dictionary garbage. 0 compacts on
  /// every delete-carrying batch.
  size_t compact_removed_rows_threshold = 1024;
};

/// \brief Applies update batches to live tenants. Stateless between calls;
/// one writer instance may serve any number of tenants and threads (batches
/// to one tenant serialize on the catalog's per-tenant writer lock).
///
/// Failpoints: "catalog.tenant.apply_update" injects a failure before the
/// delta build starts; "text.index.delta_compact" injects one at the
/// delta-compaction step. Either way the side build is discarded whole and
/// the tenant keeps serving its current snapshot.
class TenantWriter {
 public:
  explicit TenantWriter(Catalog* catalog, TenantWriterOptions options = {});

  TenantWriter(const TenantWriter&) = delete;
  TenantWriter& operator=(const TenantWriter&) = delete;

  /// \brief Atomically applies `batch` to `tenant`'s current snapshot and
  /// installs the result as the new serving state at the next minor epoch.
  ///
  /// Validation (any failure discards the whole batch):
  ///  - every named relation must exist (NotFound),
  ///  - inserts must match the relation schema's arity and types
  ///    (InvalidArgument, via Relation::Append),
  ///  - deletes must name an in-range, live row — base rows and rows
  ///    inserted earlier in this same batch are both fair game
  ///    (InvalidArgument on double-delete or out-of-range).
  ///
  /// FailedPrecondition when a concurrent Publish superseded the base
  /// snapshot mid-build; callers may re-Pin and retry on the new epoch.
  Result<UpdateResult> Apply(std::string_view tenant, const UpdateBatch& batch);

  const TenantWriterOptions& options() const { return options_; }

 private:
  Catalog* const catalog_;
  const TenantWriterOptions options_;
};

}  // namespace mweaver::catalog

#endif  // MWEAVER_CATALOG_TENANT_WRITER_H_
