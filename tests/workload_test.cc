// Tests for the phased workload harness (src/workload/): scenario parsing
// (including every diagnostic the checked-in scenarios rely on), the
// latency aggregator, the in-tree JSON writer/parser, baseline gating, and
// — the part that needs a live service — deterministic count-bounded runs
// with failpoint-forced degraded/overloaded outcomes landing in the right
// buckets.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/failpoint.h"
#include "graph/schema_graph.h"
#include "service/mapping_service.h"
#include "storage/database.h"
#include "test_util.h"
#include "text/fulltext_engine.h"
#include "workload/baseline.h"
#include "workload/event_recorder.h"
#include "workload/json_util.h"
#include "workload/runner.h"
#include "workload/scenario_parser.h"

namespace mweaver::workload {
namespace {

using service::RequestOutcome;

// ------------------------------ parser ------------------------------------

constexpr char kMinimalScenario[] = R"(# minimal
name: mini
seed: 9

[phase only]
iterations: 2
actors: searcher=1
)";

TEST(ScenarioParserTest, ParsesMinimalScenario) {
  auto parsed = ScenarioParser::Parse(kMinimalScenario);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Scenario& s = *parsed;
  EXPECT_EQ(s.name, "mini");
  EXPECT_EQ(s.seed, 9u);
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].name, "only");
  EXPECT_EQ(s.phases[0].iterations, 2u);
  EXPECT_EQ(s.phases[0].duration.count(), 0);
  EXPECT_EQ(s.phases[0].ActorCount(ActorType::kSearcher), 1u);
  EXPECT_EQ(s.phases[0].TotalActors(), 1u);
}

TEST(ScenarioParserTest, ParsesAllKnobs) {
  auto parsed = ScenarioParser::Parse(R"(name: full
seed: 7
movies: 50
workers: 3
queue: 16
cache: 32
script_rows: 5

[phase spike]
duration_ms: 250
arrival: open
rate_per_sec: 123.5
deadline_ms: 20
actors: searcher=2 pruner=1 bulk_loader=3 cache_buster=4
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Scenario& s = *parsed;
  EXPECT_EQ(s.movies, 50u);
  EXPECT_EQ(s.workers, 3u);
  EXPECT_EQ(s.queue_depth, 16u);
  EXPECT_EQ(s.cache_capacity, 32u);
  EXPECT_EQ(s.max_script_rows, 5u);
  ASSERT_EQ(s.phases.size(), 1u);
  const PhaseSpec& p = s.phases[0];
  EXPECT_EQ(p.arrival, ArrivalModel::kOpen);
  EXPECT_DOUBLE_EQ(p.rate_per_sec, 123.5);
  EXPECT_EQ(p.duration.count(), 250);
  EXPECT_EQ(p.request_deadline.count(), 20);
  EXPECT_EQ(p.ActorCount(ActorType::kBulkLoader), 3u);
  EXPECT_EQ(p.ActorCount(ActorType::kCacheBuster), 4u);
  EXPECT_EQ(p.TotalActors(), 10u);
}

// Every diagnostic must be InvalidArgument and carry the 1-based line
// number, so a broken checked-in scenario points at itself.
void ExpectParseError(std::string_view text, const std::string& line_tag,
                      const std::string& fragment) {
  auto parsed = ScenarioParser::Parse(text);
  ASSERT_FALSE(parsed.ok()) << "expected failure: " << fragment;
  EXPECT_TRUE(parsed.status().IsInvalidArgument()) << parsed.status();
  const std::string message = parsed.status().ToString();
  EXPECT_NE(message.find(line_tag), std::string::npos) << message;
  EXPECT_NE(message.find(fragment), std::string::npos) << message;
}

TEST(ScenarioParserTest, UnknownActorTypeReportsLine) {
  ExpectParseError(
      "name: x\n\n[phase p]\niterations: 1\nactors: frobber=2\n",
      "line 5", "unknown actor type");
}

TEST(ScenarioParserTest, ZeroDurationPhaseReportsLine) {
  // Neither duration_ms nor iterations: the phase would never run.
  ExpectParseError("name: x\n\n[phase p]\nactors: searcher=1\n", "line 3",
                   "duration_ms > 0 or iterations > 0");
}

TEST(ScenarioParserTest, ExplicitZeroDurationReportsLine) {
  // duration_ms: 0 means "unset": the phase still has no bound.
  ExpectParseError(
      "name: x\n\n[phase p]\nduration_ms: 0\nactors: searcher=1\n",
      "line 3", "duration_ms > 0");
}

TEST(ScenarioParserTest, NegativeRateReportsLine) {
  ExpectParseError(
      "name: x\n\n[phase p]\nduration_ms: 10\narrival: open\n"
      "rate_per_sec: -3\nactors: searcher=1\n",
      "line 6", "rate_per_sec");
}

TEST(ScenarioParserTest, OpenArrivalNeedsRate) {
  ExpectParseError(
      "name: x\n\n[phase p]\nduration_ms: 10\narrival: open\n"
      "actors: searcher=1\n",
      "line 3", "rate_per_sec");
}

TEST(ScenarioParserTest, DurationAndIterationsAreExclusive) {
  ExpectParseError(
      "name: x\n\n[phase p]\nduration_ms: 10\niterations: 5\n"
      "actors: searcher=1\n",
      "line 3", "both duration_ms and iterations");
}

TEST(ScenarioParserTest, PhaseWithoutActorsReportsLine) {
  ExpectParseError("name: x\n\n[phase p]\nduration_ms: 10\n", "line 3",
                   "actor");
}

TEST(ScenarioParserTest, DuplicatePhaseNameReportsLine) {
  ExpectParseError(
      "name: x\n\n[phase p]\niterations: 1\nactors: searcher=1\n\n"
      "[phase p]\niterations: 1\nactors: searcher=1\n",
      "line 7", "duplicate");
}

TEST(ScenarioParserTest, UnknownKeyReportsLine) {
  ExpectParseError("name: x\nbogus_knob: 3\n", "line 2", "unknown");
}

TEST(ScenarioParserTest, MissingNameFails) {
  auto parsed =
      ScenarioParser::Parse("[phase p]\niterations: 1\nactors: searcher=1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(ScenarioParserTest, NoPhasesFails) {
  auto parsed = ScenarioParser::Parse("name: empty\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

// The shipped scenarios must stay parseable — they are the public
// surface of the harness (and the CI smoke gate reads smoke.scenario).
TEST(ScenarioParserTest, ShippedScenariosRoundTrip) {
  const std::string dir = MWEAVER_SCENARIO_DIR;
  struct Expected {
    const char* file;
    const char* name;
    size_t phases;
  };
  for (const Expected& e :
       {Expected{"/smoke.scenario", "smoke", 3},
        Expected{"/soak.scenario", "soak", 3},
        Expected{"/overload-spike.scenario", "overload-spike", 3},
        Expected{"/multi-tenant.scenario", "multi-tenant", 3},
        Expected{"/streaming.scenario", "streaming", 3}}) {
    auto parsed = ScenarioParser::ParseFile(dir + e.file);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->name, e.name);
    EXPECT_EQ(parsed->phases.size(), e.phases);
    // Config invariants the runner depends on.
    EXPECT_GT(parsed->movies, 0u);
    EXPECT_GT(parsed->workers, 0u);
    for (const PhaseSpec& phase : parsed->phases) {
      EXPECT_GT(phase.TotalActors(), 0u);
      EXPECT_TRUE(phase.duration.count() > 0 || phase.iterations > 0);
      if (phase.arrival == ArrivalModel::kOpen) {
        EXPECT_GT(phase.rate_per_sec, 0.0);
      }
    }
  }
  // The smoke scenario is the CI gate for interactive traffic: it must
  // exercise every session-based actor type so the baseline covers each
  // traffic shape. Updaters have their own gate (streaming.scenario).
  auto smoke = ScenarioParser::ParseFile(dir + "/smoke.scenario");
  ASSERT_TRUE(smoke.ok());
  auto max_counts = smoke->MaxActorCounts();
  for (size_t t = 0; t < kNumActorTypes; ++t) {
    if (static_cast<ActorType>(t) == ActorType::kUpdater) continue;
    EXPECT_GT(max_counts[t], 0u)
        << "smoke.scenario never runs actor type "
        << ActorTypeName(static_cast<ActorType>(t));
  }
  // The streaming scenario is the update path's CI gate: updaters must
  // churn minor epochs while searchers read across them.
  auto streaming = ScenarioParser::ParseFile(dir + "/streaming.scenario");
  ASSERT_TRUE(streaming.ok());
  EXPECT_GT(
      streaming->MaxActorCounts()[static_cast<size_t>(ActorType::kUpdater)],
      0u);
  EXPECT_GT(
      streaming->MaxActorCounts()[static_cast<size_t>(ActorType::kSearcher)],
      0u);
  // The multi-tenant scenario is the catalog's CI gate: several tenants
  // plus publish churn, with bulk loaders present to drive the churn.
  auto mt = ScenarioParser::ParseFile(dir + "/multi-tenant.scenario");
  ASSERT_TRUE(mt.ok());
  EXPECT_GT(mt->tenants, 1u);
  EXPECT_TRUE(mt->publish_churn);
  EXPECT_GT(mt->MaxActorCounts()[static_cast<size_t>(
                ActorType::kBulkLoader)],
            0u);
}

// --------------------------- aggregator ------------------------------------

TEST(PercentileTest, PercentileSortedMatchesDefinition) {
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.5), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 0.99), 42.0);
  std::vector<double> ramp;
  for (int i = 1; i <= 100; ++i) ramp.push_back(i);
  EXPECT_DOUBLE_EQ(PercentileSorted(ramp, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(ramp, 0.50), 50.0);   // floor(0.5*99)=49
  EXPECT_DOUBLE_EQ(PercentileSorted(ramp, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(ramp, 1.0), 100.0);
}

TEST(LatencyReservoirTest, ExactBelowCapacity) {
  LatencyReservoir reservoir(/*seed=*/1, /*capacity=*/256);
  for (int i = 100; i >= 1; --i) reservoir.Add(i);
  EXPECT_EQ(reservoir.count(), 100u);
  EXPECT_DOUBLE_EQ(reservoir.max_ms(), 100.0);
  EXPECT_DOUBLE_EQ(reservoir.MeanMs(), 50.5);
  EXPECT_DOUBLE_EQ(reservoir.PercentileMs(0.50), 50.0);
  EXPECT_DOUBLE_EQ(reservoir.PercentileMs(0.99), 99.0);
}

TEST(LatencyReservoirTest, BoundedAboveCapacityKeepsExactMoments) {
  LatencyReservoir reservoir(/*seed=*/7, /*capacity=*/64);
  double sum = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    reservoir.Add(i);
    sum += i;
  }
  EXPECT_EQ(reservoir.count(), 1000u);
  EXPECT_EQ(reservoir.samples().size(), 64u);  // bounded memory
  EXPECT_DOUBLE_EQ(reservoir.max_ms(), 1000.0);  // exact despite sampling
  EXPECT_DOUBLE_EQ(reservoir.sum_ms(), sum);
  // The subsampled median is approximate but must land inside the range.
  const double p50 = reservoir.PercentileMs(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1000.0);
}

TEST(EventRecorderTest, AggregatesByPhaseAndType) {
  std::vector<EventRecorder> recorders;
  recorders.emplace_back(/*num_phases=*/2, ActorType::kSearcher, /*seed=*/1);
  recorders.emplace_back(/*num_phases=*/2, ActorType::kSearcher, /*seed=*/2);
  recorders.emplace_back(/*num_phases=*/2, ActorType::kPruner, /*seed=*/3);

  recorders[0].Record(0, RequestOutcome::kOk, 1.0);
  recorders[0].Record(0, RequestOutcome::kDegraded, 2.0);
  recorders[1].Record(0, RequestOutcome::kOk, 3.0);
  recorders[1].RecordOverloadRetry(0);
  recorders[2].Record(0, RequestOutcome::kTruncated, 4.0);
  recorders[2].Record(1, RequestOutcome::kOk, 5.0);
  recorders[2].RecordSessionFailure(1);

  const std::vector<PhaseStats> phases = AggregateRecorders(recorders, 2);
  ASSERT_EQ(phases.size(), 2u);

  const CellStats& searchers0 =
      phases[0].by_actor[static_cast<size_t>(ActorType::kSearcher)];
  EXPECT_EQ(searchers0.outcomes.ok, 2u);
  EXPECT_EQ(searchers0.outcomes.degraded, 1u);
  EXPECT_EQ(searchers0.overload_retries, 1u);
  EXPECT_EQ(searchers0.latency.count(), 3u);

  const CellStats& pruners0 =
      phases[0].by_actor[static_cast<size_t>(ActorType::kPruner)];
  EXPECT_EQ(pruners0.outcomes.timeout, 1u);  // truncated -> timeout bucket

  EXPECT_EQ(phases[0].total.outcomes.Total(), 4u);
  EXPECT_EQ(phases[1].total.outcomes.Total(), 1u);
  EXPECT_EQ(phases[1].total.session_failures, 1u);
  EXPECT_DOUBLE_EQ(phases[1].total.latency.max_ms(), 5.0);
}

TEST(EventRecorderTest, OverloadedRecordsNoLatencySample) {
  EventRecorder recorder(1, ActorType::kSearcher, /*seed=*/1);
  recorder.Record(0, RequestOutcome::kOverloaded, 123.0);
  EXPECT_EQ(recorder.phase_stats(0).outcomes.overloaded, 1u);
  // A shed request never ran: its latency would poison the percentiles.
  EXPECT_EQ(recorder.phase_stats(0).latency.count(), 0u);
}

// ------------------------------ JSON ---------------------------------------

TEST(JsonTest, WriterEmitsOrderedDocument) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("name", "smo\"ke\n");  // const char*: must emit a string,
                                   // not the bool overload
  writer.KV("count", uint64_t{3});
  writer.KV("ratio", 0.5);
  writer.KV("flag", true);
  writer.Key("items").BeginArray();
  writer.UInt(1).UInt(2);
  writer.EndArray();
  writer.Key("nested").BeginObject().KV("x", 1.5).EndObject();
  writer.EndObject();
  EXPECT_EQ(writer.Finish(),
            "{\"name\":\"smo\\\"ke\\n\",\"count\":3,\"ratio\":0.5,"
            "\"flag\":true,\"items\":[1,2],\"nested\":{\"x\":1.5}}");
}

TEST(JsonTest, ParserRoundTripsWriterOutput) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("s", "héllo \\ world");
  writer.KV("n", 2.25);
  writer.Key("a").BeginArray().Number(1.0).String("two").EndArray();
  writer.EndObject();
  auto parsed = ParseJson(writer.Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->StringOr("s", ""), "héllo \\ world");
  EXPECT_DOUBLE_EQ(parsed->NumberOr("n", 0.0), 2.25);
  const JsonValue* array = parsed->Find("a");
  ASSERT_NE(array, nullptr);
  ASSERT_TRUE(array->is_array());
  ASSERT_EQ(array->array().size(), 2u);
  EXPECT_DOUBLE_EQ(array->array()[0].number(), 1.0);
  EXPECT_EQ(array->array()[1].string(), "two");
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"a\"}", "{\"a\":}", "[1,]", "{\"a\":1,}", "tru",
        "\"unterminated", "{\"a\":1} trailing"}) {
    auto parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
  }
}

// ---------------------------- baseline -------------------------------------

// A minimal report document with one phase and a configurable p95.
std::string ReportJson(double total_p95, double searcher_p95) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("scenario", "t");
  writer.Key("phases").BeginArray();
  writer.BeginObject();
  writer.KV("name", "p0");
  writer.Key("actors").BeginArray();
  writer.BeginObject();
  writer.KV("type", "searcher");
  writer.Key("latency_ms").BeginObject();
  writer.KV("p95_ms", searcher_p95);
  writer.EndObject();
  writer.EndObject();
  writer.EndArray();
  writer.Key("total").BeginObject();
  writer.Key("latency_ms").BeginObject();
  writer.KV("p95_ms", total_p95);
  writer.EndObject();
  writer.EndObject();
  writer.EndObject();
  writer.EndArray();
  writer.EndObject();
  return writer.Finish();
}

TEST(BaselineTest, IdenticalReportsPass) {
  const std::string report = ReportJson(10.0, 12.0);
  auto comparison = CompareToBaseline(report, report);
  ASSERT_TRUE(comparison.ok()) << comparison.status();
  EXPECT_TRUE(comparison->ok);
  EXPECT_EQ(comparison->entries.size(), 2u);
}

TEST(BaselineTest, RegressionBeyondBandFails) {
  BaselineCheckOptions options;
  options.tolerance = 0.25;
  options.abs_floor_ms = 1.0;
  // allowed = max(100 * 1.25, 100 + 1) = 125; 130 regresses.
  auto comparison = CompareToBaseline(ReportJson(130.0, 100.0),
                                      ReportJson(100.0, 100.0), options);
  ASSERT_TRUE(comparison.ok()) << comparison.status();
  EXPECT_FALSE(comparison->ok);
  size_t regressed = 0;
  for (const BaselineEntry& entry : comparison->entries) {
    if (entry.regressed) {
      ++regressed;
      EXPECT_EQ(entry.cell, "total");
    }
  }
  EXPECT_EQ(regressed, 1u);
}

TEST(BaselineTest, AbsoluteFloorAbsorbsSmallLatencies) {
  BaselineCheckOptions options;
  options.tolerance = 0.25;
  options.abs_floor_ms = 10.0;
  // 0.02 vs 0.01 is +100% relative but far under the 10 ms floor.
  auto comparison = CompareToBaseline(ReportJson(0.02, 0.02),
                                      ReportJson(0.01, 0.01), options);
  ASSERT_TRUE(comparison.ok());
  EXPECT_TRUE(comparison->ok);
}

TEST(BaselineTest, CellMissingFromCurrentFails) {
  // Baseline knows phase p0; current run renamed it — that must fail
  // loudly rather than silently passing an empty comparison.
  auto comparison = CompareToBaseline(
      ReportJson(1.0, 1.0), ReportJson(1.0, 1.0));
  ASSERT_TRUE(comparison.ok());
  std::string renamed = ReportJson(1.0, 1.0);
  const size_t at = renamed.find("\"p0\"");
  ASSERT_NE(at, std::string::npos);
  renamed.replace(at, 4, "\"p1\"");
  auto missing = CompareToBaseline(renamed, ReportJson(1.0, 1.0));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->ok);
}

TEST(BaselineTest, NewCellsInCurrentPass) {
  // The current run has cells the baseline lacks (new actor type): pass —
  // the next baseline refresh picks them up.
  std::string baseline = ReportJson(1.0, 1.0);
  const size_t at = baseline.find("\"type\":\"searcher\"");
  ASSERT_NE(at, std::string::npos);
  baseline.replace(at, std::strlen("\"type\":\"searcher\""),
                   "\"type\":\"missing0\"");
  auto comparison = CompareToBaseline(ReportJson(1.0, 1.0), baseline);
  ASSERT_TRUE(comparison.ok());
  // The renamed baseline cell is reported missing from the current run.
  EXPECT_FALSE(comparison->ok);
  auto reversed = CompareToBaseline(baseline, ReportJson(1.0, 1.0));
  ASSERT_TRUE(reversed.ok());
  // ...but extra current-only cells alone do not fail the gate: the
  // baseline-known cells all pass.
  std::string wider = ReportJson(1.0, 1.0);
  auto extra = CompareToBaseline(wider, wider);
  ASSERT_TRUE(extra.ok());
  EXPECT_TRUE(extra->ok);
}

// --------------------------- live runner -----------------------------------

struct ServiceFixture {
  explicit ServiceFixture(service::ServiceOptions options)
      : service(PublishFigure2(&catalog), options) {
    // One hand-written script over the Figure-2 data: two fully populated
    // (Name, Director) rows. Row 0 fires the sample search.
    ReplayScript script;
    script.column_names = {"Name", "Director"};
    script.rows = {{"Avatar", "James Cameron"},
                   {"Harry Potter", "David Yates"}};
    scripts.push_back(std::move(script));
  }

  static catalog::Catalog* PublishFigure2(catalog::Catalog* cat) {
    cat->Publish(service::kDefaultTenant,
                 ::mweaver::testing::MakeFigure2Db())
        .ValueOrDie();
    return cat;
  }

  catalog::Catalog catalog;
  service::MappingService service;
  std::vector<ReplayScript> scripts;
};

Scenario CountBoundedScenario() {
  Scenario scenario;
  scenario.name = "deterministic";
  scenario.seed = 5;

  PhaseSpec mixed;
  mixed.name = "mixed";
  mixed.iterations = 3;
  mixed.actor_counts[static_cast<size_t>(ActorType::kSearcher)] = 2;
  mixed.actor_counts[static_cast<size_t>(ActorType::kPruner)] = 1;
  mixed.actor_counts[static_cast<size_t>(ActorType::kBulkLoader)] = 1;
  mixed.actor_counts[static_cast<size_t>(ActorType::kCacheBuster)] = 1;
  scenario.phases.push_back(mixed);

  PhaseSpec tail;
  tail.name = "tail";
  tail.iterations = 2;
  tail.actor_counts[static_cast<size_t>(ActorType::kSearcher)] = 1;
  scenario.phases.push_back(tail);
  return scenario;
}

TEST(ScenarioRunnerTest, CountBoundedPhasesYieldExactRequestCounts) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 64;
  options.cache_capacity = 64;
  ServiceFixture fixture(options);

  // Reference: how many requests one pruner iteration issues (it stops at
  // the row whose input converges the session, so the count depends on
  // the data, not on timing).
  uint64_t pruner_requests_per_iteration = 0;
  {
    Scenario one;
    one.name = "reference";
    one.seed = 5;
    PhaseSpec phase;
    phase.name = "ref";
    phase.iterations = 1;
    phase.actor_counts[static_cast<size_t>(ActorType::kPruner)] = 1;
    one.phases.push_back(phase);
    ScenarioRunner runner(&fixture.service, &fixture.scripts);
    auto report = runner.Run(one);
    ASSERT_TRUE(report.ok()) << report.status();
    pruner_requests_per_iteration =
        report->phases[0]
            .stats.by_actor[static_cast<size_t>(ActorType::kPruner)]
            .outcomes.Total();
    ASSERT_GT(pruner_requests_per_iteration, 0u);
  }

  ScenarioRunner runner(&fixture.service, &fixture.scripts);
  auto report = runner.Run(CountBoundedScenario());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->phases.size(), 2u);

  const PhaseStats& mixed = report->phases[0].stats;
  auto cell = [&](const PhaseStats& stats, ActorType type) -> const CellStats& {
    return stats.by_actor[static_cast<size_t>(type)];
  };
  // The script's first row has 2 cells; the full script has 4.
  // searcher: 2 actors x 3 iterations x 2 first-row cells.
  EXPECT_EQ(cell(mixed, ActorType::kSearcher).outcomes.Total(), 12u);
  // cache_buster: 1 actor x 3 iterations x 2 first-row cells.
  EXPECT_EQ(cell(mixed, ActorType::kCacheBuster).outcomes.Total(), 6u);
  // bulk_loader: 1 actor x 3 iterations x all 4 cells.
  EXPECT_EQ(cell(mixed, ActorType::kBulkLoader).outcomes.Total(), 12u);
  // pruner: 1 actor x 3 iterations x the reference per-iteration count.
  EXPECT_EQ(cell(mixed, ActorType::kPruner).outcomes.Total(),
            3 * pruner_requests_per_iteration);

  // Unthrottled and failpoint-free, every request must be plain ok.
  EXPECT_EQ(mixed.total.outcomes.ok, mixed.total.outcomes.Total());
  EXPECT_EQ(report->TotalFailures(), 0u);

  // Second phase: only the lone searcher runs; everyone else parks.
  const PhaseStats& tail = report->phases[1].stats;
  EXPECT_EQ(cell(tail, ActorType::kSearcher).outcomes.Total(), 4u);
  EXPECT_EQ(cell(tail, ActorType::kPruner).outcomes.Total(), 0u);
  EXPECT_EQ(cell(tail, ActorType::kBulkLoader).outcomes.Total(), 0u);
  EXPECT_EQ(cell(tail, ActorType::kCacheBuster).outcomes.Total(), 0u);

  // The per-interval service view must agree with the harness tally.
  EXPECT_EQ(report->phases[1].service.TotalRequests(),
            tail.total.outcomes.Total());

  // The JSON report round-trips through the in-tree parser and carries
  // the per-phase structure the baseline gate reads.
  auto parsed = ParseJson(report->ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->StringOr("scenario", ""), "deterministic");
  const JsonValue* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array().size(), 2u);
  EXPECT_DOUBLE_EQ(
      phases->array()[0].Find("total")->NumberOr("requests", 0.0),
      static_cast<double>(mixed.total.outcomes.Total()));
}

TEST(ScenarioRunnerTest, TransientSearchErrorLandsInDegradedBucket) {
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;  // every search takes the failpoint path
  ServiceFixture fixture(options);

  // One searcher, one iteration: exactly one first-row search. The armed
  // transient error fires once; the service absorbs it with its single
  // retry and reports the request kDegraded.
  Scenario scenario;
  scenario.name = "degraded";
  scenario.seed = 5;
  PhaseSpec phase;
  phase.name = "p0";
  phase.iterations = 1;
  phase.actor_counts[static_cast<size_t>(ActorType::kSearcher)] = 1;
  scenario.phases.push_back(phase);

  FailpointPolicy policy;
  policy.action = FailAction::kError;  // defaults to kUnavailable
  policy.max_fires = 1;
  ScopedFailpoint transient("service.search.transient", policy);

  ScenarioRunner runner(&fixture.service, &fixture.scripts);
  auto report = runner.Run(scenario);
  ASSERT_TRUE(report.ok()) << report.status();

  const CellStats& searcher =
      report->phases[0]
          .stats.by_actor[static_cast<size_t>(ActorType::kSearcher)];
  EXPECT_EQ(searcher.outcomes.Total(), 2u);  // two first-row cells
  EXPECT_EQ(searcher.outcomes.degraded, 1u);
  EXPECT_EQ(searcher.outcomes.ok, 1u);
  EXPECT_EQ(searcher.outcomes.failed, 0u);
  EXPECT_EQ(report->phases[0].service.requests_degraded, 1u);
  EXPECT_EQ(report->phases[0].service.search_retries, 1u);
}

TEST(ScenarioRunnerTest, ForcedAdmissionRejectionsLandInOverloadedBucket) {
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 64;
  ServiceFixture fixture(options);

  // Open loop: overloaded responses are recorded and the iteration is
  // abandoned (no retry), so each forced rejection is exactly one
  // overloaded outcome.
  Scenario scenario;
  scenario.name = "overloaded";
  scenario.seed = 5;
  PhaseSpec phase;
  phase.name = "p0";
  phase.iterations = 4;
  phase.arrival = ArrivalModel::kOpen;
  phase.rate_per_sec = 2000.0;
  phase.actor_counts[static_cast<size_t>(ActorType::kSearcher)] = 1;
  scenario.phases.push_back(phase);

  FailpointPolicy policy;
  policy.action = FailAction::kTrigger;
  policy.max_fires = 2;
  ScopedFailpoint admit("service.queue.admit", policy);

  ScenarioRunner runner(&fixture.service, &fixture.scripts);
  auto report = runner.Run(scenario);
  ASSERT_TRUE(report.ok()) << report.status();

  const CellStats& searcher =
      report->phases[0]
          .stats.by_actor[static_cast<size_t>(ActorType::kSearcher)];
  // Iterations 0 and 1 are rejected at their first cell and abandoned;
  // iterations 2 and 3 complete both first-row cells.
  EXPECT_EQ(searcher.outcomes.overloaded, 2u);
  EXPECT_EQ(searcher.outcomes.ok, 4u);
  EXPECT_EQ(searcher.outcomes.Total(), 6u);
  EXPECT_EQ(searcher.outcomes.failed, 0u);
  // Shed requests contribute no latency samples.
  EXPECT_EQ(searcher.latency.count(), 4u);
  EXPECT_EQ(report->phases[0].service.requests_overloaded, 2u);
}

TEST(ScenarioRunnerTest, MultiTenantChurnSpreadsLoadAndReportsPerTenant) {
  catalog::Catalog cat;
  const std::vector<std::string> tenant_names{"t0", "t1"};
  for (const std::string& tenant : tenant_names) {
    ASSERT_TRUE(
        cat.Publish(tenant, ::mweaver::testing::MakeFigure2Db()).ok());
  }

  service::ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 64;
  options.cache_capacity = 64;
  service::MappingService service(&cat, options);

  ReplayScript script;
  script.column_names = {"Name", "Director"};
  script.rows = {{"Avatar", "James Cameron"},
                 {"Harry Potter", "David Yates"}};
  std::vector<ReplayScript> scripts{script};

  TenantTopology topology;
  topology.catalog = &cat;
  topology.tenants = tenant_names;
  topology.make_database = []() {
    return ::mweaver::testing::MakeFigure2Db();
  };

  Scenario scenario;
  scenario.name = "mt";
  scenario.seed = 5;
  scenario.tenants = 2;
  scenario.publish_churn = true;
  PhaseSpec phase;
  phase.name = "churn";
  phase.iterations = 3;
  // Two searchers land one per tenant (round-robin); the bulk loader
  // republishes its tenant before every load iteration.
  phase.actor_counts[static_cast<size_t>(ActorType::kSearcher)] = 2;
  phase.actor_counts[static_cast<size_t>(ActorType::kBulkLoader)] = 1;
  scenario.phases.push_back(phase);

  ScenarioRunner runner(&service, &scripts, std::move(topology));
  auto report = runner.Run(scenario);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->TotalFailures(), 0u);

  // Publish churn really happened: the loader's tenant moved past its
  // first epoch while the catalog still serves both tenants.
  EXPECT_EQ(cat.size(), 2u);
  const uint64_t t0_epoch = *cat.CurrentEpoch("t0");
  const uint64_t t1_epoch = *cat.CurrentEpoch("t1");
  EXPECT_NE(t0_epoch, t1_epoch);

  // Both tenants took traffic and the rollup made it into the report.
  const auto per_tenant = service.PerTenantMetrics();
  ASSERT_TRUE(per_tenant.count("t0"));
  ASSERT_TRUE(per_tenant.count("t1"));
  EXPECT_GT(per_tenant.at("t0").requests_ok, 0u);
  EXPECT_GT(per_tenant.at("t1").requests_ok, 0u);

  auto parsed = ParseJson(report->ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(
      parsed->Find("config")->NumberOr("tenants", 0.0), 2.0);
  const JsonValue* rollup = parsed->Find("service_per_tenant");
  ASSERT_NE(rollup, nullptr);
  EXPECT_NE(rollup->Find("t0"), nullptr);
  EXPECT_NE(rollup->Find("t1"), nullptr);
}

TEST(ScenarioRunnerTest, MultiTenantScenarioNeedsMatchingTopology) {
  service::ServiceOptions options;
  options.num_workers = 1;
  ServiceFixture fixture(options);

  Scenario scenario;
  scenario.name = "mt";
  scenario.tenants = 2;  // but the runner has no topology
  PhaseSpec phase;
  phase.name = "p0";
  phase.iterations = 1;
  phase.actor_counts[static_cast<size_t>(ActorType::kSearcher)] = 1;
  scenario.phases.push_back(phase);

  ScenarioRunner runner(&fixture.service, &fixture.scripts);
  auto report = runner.Run(scenario);
  EXPECT_TRUE(report.status().IsFailedPrecondition()) << report.status();
}

// ------------------------- service metrics ---------------------------------

TEST(ServiceMetricsJsonTest, SnapshotJsonParsesAndResetsPerInterval) {
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 64;
  ServiceFixture fixture(options);

  auto created = fixture.service.CreateSession({"Name", "Director"});
  ASSERT_TRUE(created.ok());
  service::InputRequest request;
  request.session_id = *created;
  request.row = 0;
  request.col = 0;
  request.value = "Avatar";
  ASSERT_TRUE(fixture.service.Call(request).status.ok());
  request.col = 1;
  request.value = "James Cameron";
  ASSERT_TRUE(fixture.service.Call(request).status.ok());

  auto parsed = ParseJson(fixture.service.SnapshotMetricsJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->NumberOr("requests_ok", 0.0), 2.0);
  EXPECT_GT(parsed->NumberOr("approx_latency_p99_ms", -1.0), 0.0);
  ASSERT_NE(parsed->Find("stages"), nullptr);

  // Interval reset: histograms go back to zero, counters do not.
  fixture.service.ResetMetricsHistograms();
  auto after = ParseJson(fixture.service.SnapshotMetricsJson());
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->NumberOr("requests_ok", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(after->NumberOr("approx_latency_p99_ms", -1.0), 0.0);

  // Delta between snapshots isolates one interval's counters.
  const service::MetricsSnapshot before = fixture.service.SnapshotMetrics();
  request.row = 1;
  request.col = 0;
  request.value = "Harry Potter";
  ASSERT_TRUE(fixture.service.Call(request).status.ok());
  const service::MetricsSnapshot delta =
      fixture.service.SnapshotMetrics().Delta(before);
  EXPECT_EQ(delta.TotalRequests(), 1u);
}

}  // namespace
}  // namespace mweaver::workload
