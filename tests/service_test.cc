// Tests for the service layer: SessionManager lifecycle and eviction, the
// LRU result cache, deadline/backpressure semantics of MappingService, and
// the bounds-hardened core::Session accessors the service relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/sample_search.h"
#include "core/session.h"
#include "graph/schema_graph.h"
#include "service/mapping_service.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/session_manager.h"
#include "test_util.h"
#include "text/fulltext_engine.h"

namespace mweaver::service {
namespace {

using core::SearchClock;
using core::SearchOptions;
using core::SessionState;

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : snapshot_(PublishFigure2(&catalog_)),
        engine_(snapshot_->engine()),
        graph_(snapshot_->graph()) {}

  static catalog::SnapshotPtr PublishFigure2(catalog::Catalog* cat) {
    return cat->Publish(kDefaultTenant, testing::MakeFigure2Db())
        .ValueOrDie();
  }

  catalog::Catalog catalog_;
  catalog::SnapshotPtr snapshot_;
  // Convenience aliases into the snapshot for tests that drive the core
  // layers directly.
  const text::FullTextEngine& engine_;
  const graph::SchemaGraph& graph_;
};

// ------------------------------------------------------- SessionManager --

TEST_F(ServiceTest, SessionIdsAreMonotonicAndNeverReused) {
  SessionManager manager;
  const SessionId a = *manager.Create(snapshot_, {"Name", "Director"});
  const SessionId b = *manager.Create(snapshot_, {"Name", "Director"});
  EXPECT_LT(a, b);
  ASSERT_TRUE(manager.Close(a).ok());
  const SessionId c = *manager.Create(snapshot_, {"Name", "Director"});
  EXPECT_LT(b, c);  // closing never recycles ids
  EXPECT_EQ(manager.size(), 2u);
}

TEST_F(ServiceTest, WithSessionRunsUnderTheSessionAndRefreshesIdleClock) {
  SessionManager manager;
  const SessionId id = *manager.Create(snapshot_, {"Name", "Director"});
  Status status = manager.WithSession(id, [](core::Session& session) {
    return session.Input(0, 0, "Avatar");
  });
  EXPECT_TRUE(status.ok());
  status = manager.WithSession(id, [](core::Session& session) {
    EXPECT_EQ(session.cell(0, 0), "Avatar");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
}

TEST_F(ServiceTest, UnknownAndClosedSessionsReturnNotFound) {
  SessionManager manager;
  EXPECT_TRUE(manager
                  .WithSession(42, [](core::Session&) {
                    ADD_FAILURE() << "must not run";
                    return Status::OK();
                  })
                  .IsNotFound());
  const SessionId id = *manager.Create(snapshot_, {"Name"});
  ASSERT_TRUE(manager.Close(id).ok());
  EXPECT_TRUE(manager.Close(id).IsNotFound());
  EXPECT_TRUE(
      manager.WithSession(id, [](core::Session&) { return Status::OK(); })
          .IsNotFound());
}

TEST_F(ServiceTest, CreateFailsBeyondMaxSessions) {
  SessionManagerOptions options;
  options.max_sessions = 2;
  SessionManager manager(options);
  ASSERT_TRUE(manager.Create(snapshot_, {"Name"}).ok());
  ASSERT_TRUE(manager.Create(snapshot_, {"Name"}).ok());
  EXPECT_TRUE(manager.Create(snapshot_, {"Name"}).status().IsResourceExhausted());
}

TEST_F(ServiceTest, EvictIdleReclaimsOnlyExpiredSessions) {
  SessionManagerOptions options;
  options.idle_ttl = std::chrono::milliseconds(0);  // everything is idle
  SessionManager manager(options);
  const SessionId a = *manager.Create(snapshot_, {"Name"});
  const SessionId b = *manager.Create(snapshot_, {"Name"});
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_EQ(manager.EvictIdle(), 2u);
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_TRUE(
      manager.WithSession(a, [](core::Session&) { return Status::OK(); })
          .IsNotFound());
  EXPECT_TRUE(
      manager.WithSession(b, [](core::Session&) { return Status::OK(); })
          .IsNotFound());

  // A long TTL keeps fresh sessions alive.
  SessionManagerOptions fresh_options;
  fresh_options.idle_ttl = std::chrono::hours(1);
  SessionManager fresh(fresh_options);
  (void)*fresh.Create(snapshot_, {"Name"});
  EXPECT_EQ(fresh.EvictIdle(), 0u);
  EXPECT_EQ(fresh.size(), 1u);
}

// ----------------------------------------------- Session accessor bounds --

TEST_F(ServiceTest, SessionCellOutOfRangeReadsAsEmpty) {
  core::Session session(&engine_, &graph_, {"Name", "Director"});
  EXPECT_EQ(session.cell(0, 0), "");
  EXPECT_EQ(session.cell(99, 99), "");
  ASSERT_TRUE(session.Input(0, 0, "Avatar").ok());
  EXPECT_EQ(session.cell(0, 0), "Avatar");
  EXPECT_EQ(session.cell(0, 5), "");  // column beyond the grid row
}

TEST_F(ServiceTest, SessionBestBeforeConvergenceIsEmptyNotFatal) {
  core::Session session(&engine_, &graph_, {"Name", "Director"});
  const core::CandidateMapping& none = session.best();
  EXPECT_EQ(none.support, 0u);
  EXPECT_EQ(none.score, 0.0);
  EXPECT_TRUE(none.mapping.vertices().empty());

  // After a search with several surviving candidates (not converged),
  // best() reports the leader rather than aborting.
  ASSERT_TRUE(session.Input(0, 0, "Avatar").ok());
  ASSERT_TRUE(session.Input(0, 1, "James Cameron").ok());
  ASSERT_EQ(session.state(), SessionState::kRefining);
  EXPECT_GT(session.best().support, 0u);
}

// ------------------------------------------------------------- Deadline --

TEST_F(ServiceTest, ExpiredDeadlineSearchReturnsPromptlyAndTruncated) {
  SearchOptions options;
  core::ExecutionContext ctx;
  ctx.set_deadline(SearchClock::now() - std::chrono::milliseconds(1));
  const auto started = SearchClock::now();
  auto result = core::SampleSearch(engine_, graph_,
                                   {"Avatar", "James Cameron"}, options, ctx);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(SearchClock::now() - started)
          .count();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.truncated);
  EXPECT_TRUE(result->stats.deadline_expired);
  EXPECT_TRUE(result->candidates.empty());
  EXPECT_LT(elapsed_ms, 250.0);  // prompt even on a loaded CI machine
}

TEST_F(ServiceTest, CancellationTokenStopsTheSearch) {
  SearchOptions options;
  std::atomic<bool> cancel{true};  // already cancelled
  core::ExecutionContext ctx;
  ctx.set_cancel_token(&cancel);
  auto result = core::SampleSearch(engine_, graph_,
                                   {"Avatar", "James Cameron"}, options, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.truncated);
  EXPECT_TRUE(result->stats.deadline_expired);
}

TEST_F(ServiceTest, NoDeadlineSearchIsNotTruncated) {
  auto result =
      core::SampleSearch(engine_, graph_, {"Avatar", "James Cameron"}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.truncated);
  EXPECT_FALSE(result->stats.deadline_expired);
  EXPECT_FALSE(result->candidates.empty());
}

TEST_F(ServiceTest, ServiceRequestWithExpiredDeadlineAnswersImmediately) {
  ServiceOptions options;
  options.num_workers = 1;
  MappingService svc(&catalog_, options);
  const SessionId id = *svc.CreateSession({"Name", "Director"});

  InputRequest request;
  request.session_id = id;
  request.value = "Avatar";
  // A negative budget is expired the moment it is admitted.
  request.deadline = std::chrono::milliseconds(-1);
  RequestResult result = svc.Call(request);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.outcome, RequestOutcome::kTruncated);
  EXPECT_TRUE(result.truncated);
}

// ---------------------------------------------------------- ResultCache --

TEST_F(ServiceTest, CacheKeyNormalizesCaseButNotWhitespace) {
  const SearchOptions options;
  EXPECT_EQ(ResultCache::MakeKey("t", 1, 0, 1, {"Avatar", "CAMERON"}, options),
            ResultCache::MakeKey("t", 1, 0, 1, {"avatar", "cameron"}, options));
  EXPECT_NE(ResultCache::MakeKey("t", 1, 0, 1, {"Avatar "}, options),
            ResultCache::MakeKey("t", 1, 0, 1, {"Avatar"}, options));
  EXPECT_NE(ResultCache::MakeKey("t", 1, 0, 1, {"a", "b"}, options),
            ResultCache::MakeKey("t", 1, 0, 1, {"ab"}, options));
  SearchOptions other = options;
  other.pmnj = 3;  // different search space -> different key
  EXPECT_NE(ResultCache::MakeKey("t", 1, 0, 1, {"Avatar"}, options),
            ResultCache::MakeKey("t", 1, 0, 1, {"Avatar"}, other));
  other = options;
  other.num_threads = 8;  // timing-only knob -> same key
  EXPECT_EQ(ResultCache::MakeKey("t", 1, 0, 1, {"Avatar"}, options),
            ResultCache::MakeKey("t", 1, 0, 1, {"Avatar"}, other));
}

TEST_F(ServiceTest, CacheKeyIsTenantAndEpochScoped) {
  const SearchOptions options;
  // Identical queries on different tenants never share an entry.
  EXPECT_NE(ResultCache::MakeKey("alpha", 1, 0, 1, {"Avatar"}, options),
            ResultCache::MakeKey("beta", 1, 0, 1, {"Avatar"}, options));
  // A republish bumps the epoch, invalidating every prior key.
  EXPECT_NE(ResultCache::MakeKey("alpha", 1, 0, 1, {"Avatar"}, options),
            ResultCache::MakeKey("alpha", 2, 0, 1, {"Avatar"}, options));
  // A streaming update bumps only the minor epoch — also a fresh key, and
  // distinct from the next full epoch.
  EXPECT_NE(ResultCache::MakeKey("alpha", 1, 1, 1, {"Avatar"}, options),
            ResultCache::MakeKey("alpha", 1, 0, 1, {"Avatar"}, options));
  EXPECT_NE(ResultCache::MakeKey("alpha", 1, 1, 1, {"Avatar"}, options),
            ResultCache::MakeKey("alpha", 2, 0, 1, {"Avatar"}, options));
  // Tenant names are length-prefixed, so crafted names cannot splice into
  // a different tenant's key space.
  EXPECT_NE(ResultCache::MakeKey("a;e=1", 1, 0, 1, {"x"}, options),
            ResultCache::MakeKey("a", 1, 0, 1, {"x"}, options));
}

TEST_F(ServiceTest, EvictTenantEntriesDropsOnlyThatTenant) {
  ResultCache cache(8);
  const SearchOptions options;
  core::SearchResult result;
  cache.Insert(ResultCache::MakeKey("alpha", 1, 0, 1, {"a"}, options), result);
  cache.Insert(ResultCache::MakeKey("alpha", 1, 0, 1, {"b"}, options), result);
  cache.Insert(ResultCache::MakeKey("beta", 1, 0, 1, {"a"}, options), result);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.EvictTenantEntries("alpha"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(
      cache.Lookup(ResultCache::MakeKey("beta", 1, 0, 1, {"a"}, options))
          .has_value());
  EXPECT_EQ(cache.EvictTenantEntries("alpha"), 0u);
}

TEST_F(ServiceTest, IdenticalQueriesOnDifferentTenantsNeverShareCache) {
  ASSERT_TRUE(catalog_.Publish("other", testing::MakeFigure2Db()).ok());
  MappingService svc(&catalog_);
  const auto first_row = [&](std::string_view tenant) {
    const SessionId id = *svc.CreateSession(tenant, {"Name"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    return svc.Call(request);
  };
  RequestResult a = first_row(kDefaultTenant);
  ASSERT_TRUE(a.status.ok()) << a.status;
  EXPECT_FALSE(a.cache_hit);
  // Same tenant again: served from cache.
  RequestResult a2 = first_row(kDefaultTenant);
  ASSERT_TRUE(a2.status.ok()) << a2.status;
  EXPECT_TRUE(a2.cache_hit);
  // Different tenant, identical data and query: MUST miss.
  RequestResult b = first_row("other");
  ASSERT_TRUE(b.status.ok()) << b.status;
  EXPECT_FALSE(b.cache_hit);
}

TEST_F(ServiceTest, RepublishInvalidatesCachedResultsViaEpoch) {
  MappingService svc(&catalog_);
  const auto first_row = [&]() {
    const SessionId id = *svc.CreateSession({"Name"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    return svc.Call(request);
  };
  RequestResult before = first_row();
  ASSERT_TRUE(before.status.ok()) << before.status;
  EXPECT_FALSE(before.cache_hit);
  RequestResult warm = first_row();
  ASSERT_TRUE(warm.status.ok()) << warm.status;
  EXPECT_TRUE(warm.cache_hit);

  // Republish the tenant: sessions created afterwards pin the new epoch,
  // so the warm entry from the old epoch can never be returned.
  ASSERT_TRUE(catalog_.Publish(kDefaultTenant, testing::MakeFigure2Db()).ok());
  RequestResult after = first_row();
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_FALSE(after.cache_hit);
}

TEST_F(ServiceTest, StreamingUpdateInvalidatesCachedResultsViaMinorEpoch) {
  MappingService svc(&catalog_);
  const auto first_row = [&]() {
    const SessionId id = *svc.CreateSession({"Name"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    return svc.Call(request);
  };
  RequestResult before = first_row();
  ASSERT_TRUE(before.status.ok()) << before.status;
  EXPECT_FALSE(before.cache_hit);
  RequestResult warm = first_row();
  ASSERT_TRUE(warm.status.ok()) << warm.status;
  EXPECT_TRUE(warm.cache_hit);

  // A streaming update through the service's admission path: no full
  // republish, but the installed delta carries a fresh minor epoch.
  UpdateRequest update;
  update.tenant = std::string(kDefaultTenant);
  update.batch.inserts.push_back(catalog::RowInsert{
      "movie", {testing::I(50), testing::S("Fresh Movie")}});
  RequestResult applied = svc.ApplyUpdate(update);
  ASSERT_TRUE(applied.status.ok()) << applied.status;
  EXPECT_EQ(applied.outcome, RequestOutcome::kOk);
  EXPECT_EQ(applied.update_minor_epoch, 1u);
  ASSERT_EQ(applied.inserted_rows.size(), 1u);

  // Sessions created afterwards pin the delta: the warm epoch-N.0 entry
  // can never serve an epoch-N.1 query.
  RequestResult after = first_row();
  ASSERT_TRUE(after.status.ok()) << after.status;
  EXPECT_FALSE(after.cache_hit);
  // And the new minor epoch warms its own key space as usual.
  RequestResult rewarmed = first_row();
  ASSERT_TRUE(rewarmed.status.ok()) << rewarmed.status;
  EXPECT_TRUE(rewarmed.cache_hit);

  const MetricsSnapshot metrics = svc.SnapshotMetrics();
  EXPECT_EQ(metrics.updates_ok, 1u);
  EXPECT_EQ(metrics.updates_failed, 0u);
  EXPECT_EQ(metrics.update_rows_inserted, 1u);
}

TEST_F(ServiceTest, StreamingUpdateLeavesUnrelatedTenantCacheWarm) {
  ASSERT_TRUE(catalog_.Publish("other", testing::MakeFigure2Db()).ok());
  MappingService svc(&catalog_);
  const auto first_row = [&](std::string_view tenant) {
    const SessionId id = *svc.CreateSession(tenant, {"Name"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    return svc.Call(request);
  };
  // Warm both tenants.
  ASSERT_TRUE(first_row(kDefaultTenant).status.ok());
  ASSERT_TRUE(first_row("other").status.ok());
  ASSERT_TRUE(first_row("other").cache_hit);

  // Update only the default tenant.
  UpdateRequest update;
  update.tenant = std::string(kDefaultTenant);
  update.batch.inserts.push_back(catalog::RowInsert{
      "movie", {testing::I(51), testing::S("Another Fresh Movie")}});
  RequestResult applied = svc.ApplyUpdate(update);
  ASSERT_TRUE(applied.status.ok()) << applied.status;

  // The updated tenant's warm entry is dead (minor epoch moved on)...
  EXPECT_FALSE(first_row(kDefaultTenant).cache_hit);
  // ...while the unrelated tenant still serves from cache.
  EXPECT_TRUE(first_row("other").cache_hit);
}

TEST_F(ServiceTest, PinnedSessionServesFrozenEpochAcrossUpdates) {
  MappingService svc(&catalog_);
  // Completes a session's first sample row {Avatar, James Cameron}; the
  // search runs on the second keystroke.
  const auto type_first_row = [&](SessionId id) {
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    RequestResult r = svc.Call(request);
    EXPECT_TRUE(r.status.ok()) << r.status;
    request.col = 1;
    request.value = "James Cameron";
    return svc.Call(request);
  };
  const SessionId pinned = *svc.CreateSession({"Name", "Director"});
  RequestResult first = type_first_row(pinned);
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_GT(first.num_candidates, 0u);

  // Delete the Avatar row out from under the session.
  UpdateRequest update;
  update.tenant = std::string(kDefaultTenant);
  update.batch.deletes.push_back(catalog::RowDelete{"movie", 0});
  RequestResult applied = svc.ApplyUpdate(update);
  ASSERT_TRUE(applied.status.ok()) << applied.status;
  EXPECT_EQ(applied.update_minor_epoch, 1u);

  // The pinned session keeps pruning against its frozen snapshot: the
  // goal-target row still weaves through the tombstoned-elsewhere Avatar
  // row, so candidates survive mid-update.
  InputRequest prune_request;
  prune_request.session_id = pinned;
  prune_request.row = 1;
  prune_request.value = "Harry Potter";
  RequestResult prune = svc.Call(prune_request);
  ASSERT_TRUE(prune.status.ok()) << prune.status;
  prune_request.col = 1;
  prune_request.value = "David Yates";
  RequestResult second = svc.Call(prune_request);
  ASSERT_TRUE(second.status.ok()) << second.status;
  EXPECT_GT(second.num_candidates, 0u);

  // A session created after the update pins the delta, where the Avatar
  // row is gone: the same first row finds strictly less.
  const SessionId fresh = *svc.CreateSession({"Name", "Director"});
  RequestResult post_delete = type_first_row(fresh);
  ASSERT_TRUE(post_delete.status.ok()) << post_delete.status;
  EXPECT_FALSE(post_delete.cache_hit);
  EXPECT_LT(post_delete.num_candidates, first.num_candidates);
}

TEST_F(ServiceTest, UpdateFailuresSurfaceAndCountWithoutSideEffects) {
  MappingService svc(&catalog_);
  // Empty batch: rejected before anything runs.
  UpdateRequest empty;
  empty.tenant = std::string(kDefaultTenant);
  RequestResult rejected = svc.ApplyUpdate(empty);
  EXPECT_FALSE(rejected.status.ok());
  EXPECT_EQ(rejected.outcome, RequestOutcome::kFailed);

  // Unknown relation: NotFound, nothing installed.
  UpdateRequest bogus;
  bogus.tenant = std::string(kDefaultTenant);
  bogus.batch.deletes.push_back(catalog::RowDelete{"no_such_relation", 0});
  RequestResult failed = svc.ApplyUpdate(bogus);
  EXPECT_FALSE(failed.status.ok());
  EXPECT_EQ(failed.outcome, RequestOutcome::kFailed);
  EXPECT_EQ(failed.update_minor_epoch, 0u);

  const MetricsSnapshot metrics = svc.SnapshotMetrics();
  EXPECT_EQ(metrics.updates_ok, 0u);
  EXPECT_EQ(metrics.updates_failed, 2u);
  EXPECT_EQ(metrics.update_rows_inserted, 0u);
  EXPECT_EQ(metrics.update_rows_deleted, 0u);
  // The tenant still serves its original publish.
  EXPECT_EQ(catalog_.Pin(kDefaultTenant).ValueOrDie()->minor_epoch(), 0u);
}

TEST_F(ServiceTest, CacheLruEvictsOldestAndCountsHits) {
  ResultCache cache(2);
  core::SearchResult result;
  cache.Insert("a", result);
  cache.Insert("b", result);
  EXPECT_TRUE(cache.Lookup("a").has_value());  // refreshes "a"
  cache.Insert("c", result);                   // evicts "b"
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(ServiceTest, CacheRejectsTruncatedResults) {
  ResultCache cache(4);
  core::SearchResult truncated;
  truncated.stats.truncated = true;
  cache.Insert("partial", truncated);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("partial").has_value());
}

TEST_F(ServiceTest, CachedAndFreshSearchesReturnIdenticalCandidates) {
  ServiceOptions options;
  options.num_workers = 2;
  MappingService svc(&catalog_, options);

  const auto run_first_row = [&](const char* name, const char* director) {
    const SessionId id = *svc.CreateSession({"Name", "Director"});
    InputRequest request;
    request.session_id = id;
    request.value = name;
    RequestResult r0 = svc.Call(request);
    EXPECT_TRUE(r0.status.ok()) << r0.status;
    request.col = 1;
    request.value = director;
    return std::make_pair(id, svc.Call(request));
  };

  auto [fresh_id, fresh] = run_first_row("Avatar", "James Cameron");
  ASSERT_TRUE(fresh.status.ok()) << fresh.status;
  EXPECT_FALSE(fresh.cache_hit);
  auto [cached_id, cached] = run_first_row("AVATAR", "james cameron");
  ASSERT_TRUE(cached.status.ok()) << cached.status;
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(fresh.num_candidates, cached.num_candidates);

  // The ranked candidate lists must be identical, mapping by mapping.
  std::vector<std::string> fresh_forms, cached_forms;
  std::vector<double> fresh_scores, cached_scores;
  ASSERT_TRUE(svc.sessions()
                  .WithSession(fresh_id,
                               [&](core::Session& session) {
                                 for (const auto& c : session.candidates()) {
                                   fresh_forms.push_back(
                                       c.mapping.Canonical());
                                   fresh_scores.push_back(c.score);
                                 }
                                 return Status::OK();
                               })
                  .ok());
  ASSERT_TRUE(svc.sessions()
                  .WithSession(cached_id,
                               [&](core::Session& session) {
                                 for (const auto& c : session.candidates()) {
                                   cached_forms.push_back(
                                       c.mapping.Canonical());
                                   cached_scores.push_back(c.score);
                                 }
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_FALSE(fresh_forms.empty());
  EXPECT_EQ(fresh_forms, cached_forms);
  EXPECT_EQ(fresh_scores, cached_scores);

  const MetricsSnapshot snapshot = svc.SnapshotMetrics();
  EXPECT_EQ(snapshot.cache_hits, 1u);
  EXPECT_EQ(snapshot.cache_misses, 1u);
  EXPECT_GT(snapshot.CacheHitRate(), 0.0);
}

// --------------------------------------------------------- Backpressure --

TEST_F(ServiceTest, FullQueueRejectsWithOverloadNotBlocking) {
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains: deterministic overload
  options.max_queue_depth = 2;
  options.max_tenant_queue_share = 1.0;  // exercise the GLOBAL bound only
  std::vector<Status> callback_statuses;
  {
    MappingService svc(&catalog_, options);
    const SessionId id = *svc.CreateSession({"Name", "Director"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    const auto record = [&](RequestResult r) {
      callback_statuses.push_back(r.status);
    };
    EXPECT_TRUE(svc.Enqueue(request, record).ok());
    EXPECT_TRUE(svc.Enqueue(request, record).ok());
    Status overflow = svc.Enqueue(request, record);
    EXPECT_TRUE(overflow.IsResourceExhausted()) << overflow;

    const MetricsSnapshot snapshot = svc.SnapshotMetrics();
    EXPECT_EQ(snapshot.requests_overloaded, 1u);
    EXPECT_EQ(snapshot.queue_high_water, 2u);
    // Destructor fails the two admitted-but-unprocessed requests.
  }
  ASSERT_EQ(callback_statuses.size(), 2u);
  EXPECT_TRUE(callback_statuses[0].IsInternal());
  EXPECT_TRUE(callback_statuses[1].IsInternal());
}

TEST_F(ServiceTest, RequestForUnknownSessionFails) {
  MappingService svc(&catalog_);
  InputRequest request;
  request.session_id = 999;
  request.value = "Avatar";
  RequestResult result = svc.Call(request);
  EXPECT_TRUE(result.status.IsNotFound());
  EXPECT_EQ(result.outcome, RequestOutcome::kFailed);
}

TEST_F(ServiceTest, EndToEndConvergenceThroughTheService) {
  MappingService svc(&catalog_);
  const SessionId id = *svc.CreateSession({"Name", "Director"});
  const std::vector<std::tuple<size_t, size_t, const char*>> keystrokes{
      {0, 0, "Avatar"},
      {0, 1, "James Cameron"},
      {1, 0, "Harry Potter"},
      {1, 1, "David Yates"},
  };
  RequestResult last;
  for (const auto& [row, col, value] : keystrokes) {
    InputRequest request;
    request.session_id = id;
    request.row = row;
    request.col = col;
    request.value = value;
    last = svc.Call(request);
    ASSERT_TRUE(last.status.ok()) << last.status;
  }
  EXPECT_EQ(last.state, SessionState::kConverged);
  EXPECT_EQ(last.num_candidates, 1u);
  const MetricsSnapshot snapshot = svc.SnapshotMetrics();
  EXPECT_EQ(snapshot.requests_ok, 4u);
  EXPECT_EQ(snapshot.requests_failed, 0u);
}

// ------------------------------------------------- Tenant admission/metrics --

TEST_F(ServiceTest, HotTenantCannotStarveTheQueueForOthers) {
  ASSERT_TRUE(catalog_.Publish("other", testing::MakeFigure2Db()).ok());
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains: queue occupancy is exact
  options.max_queue_depth = 4;
  options.max_tenant_queue_share = 0.5;  // per-tenant cap = 2
  {
    MappingService svc(&catalog_, options);
    EXPECT_EQ(svc.TenantQueueCap(), 2u);
    const SessionId hot = *svc.CreateSession({"Name"});
    const SessionId cold = *svc.CreateSession("other", {"Name"});
    InputRequest request;
    request.session_id = hot;
    request.value = "Avatar";
    const auto sink = [](RequestResult) {};
    EXPECT_TRUE(svc.Enqueue(request, sink).ok());
    EXPECT_TRUE(svc.Enqueue(request, sink).ok());
    // The hot tenant hits its share while the global queue still has room.
    Status rejected = svc.Enqueue(request, sink);
    EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected;
    // The other tenant still has headroom.
    request.session_id = cold;
    EXPECT_TRUE(svc.Enqueue(request, sink).ok());
    EXPECT_TRUE(svc.Enqueue(request, sink).ok());

    const auto per_tenant = svc.PerTenantMetrics();
    ASSERT_TRUE(per_tenant.count(std::string(kDefaultTenant)));
    EXPECT_EQ(per_tenant.at(std::string(kDefaultTenant)).share_rejections,
              1u);
    EXPECT_EQ(per_tenant.at("other").share_rejections, 0u);
    // Destructor fails the admitted-but-unprocessed requests.
  }
}

TEST_F(ServiceTest, TinyQueueShareStillAdmitsOneRequestPerTenant) {
  // Regression guard: share * depth below one slot (0.2 * 4 = 0.8) must
  // clamp to a single queued slot, not truncate to zero — a zero cap
  // would reject every request of every tenant on a small queue.
  ServiceOptions options;
  options.num_workers = 0;  // nothing drains: queue occupancy is exact
  options.max_queue_depth = 4;
  options.max_tenant_queue_share = 0.2;
  {
    MappingService svc(&catalog_, options);
    EXPECT_EQ(svc.TenantQueueCap(), 1u);
    const SessionId id = *svc.CreateSession({"Name"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    const auto sink = [](RequestResult) {};
    // Exactly one slot: the first enqueue is admitted, the second is
    // share-rejected.
    EXPECT_TRUE(svc.Enqueue(request, sink).ok());
    EXPECT_TRUE(svc.Enqueue(request, sink).IsResourceExhausted());
    // Destructor fails the admitted-but-unprocessed request.
  }
}

TEST_F(ServiceTest, PerTenantMetricsRollUpByTenant) {
  ASSERT_TRUE(catalog_.Publish("other", testing::MakeFigure2Db()).ok());
  MappingService svc(&catalog_);
  const auto run = [&](std::string_view tenant) {
    const SessionId id = *svc.CreateSession(tenant, {"Name"});
    InputRequest request;
    request.session_id = id;
    request.value = "Avatar";
    RequestResult result = svc.Call(request);
    ASSERT_TRUE(result.status.ok()) << result.status;
  };
  run(kDefaultTenant);
  run(kDefaultTenant);
  run("other");

  const auto per_tenant = svc.PerTenantMetrics();
  ASSERT_TRUE(per_tenant.count(std::string(kDefaultTenant)));
  ASSERT_TRUE(per_tenant.count("other"));
  const TenantMetricsSnapshot& hot =
      per_tenant.at(std::string(kDefaultTenant));
  EXPECT_EQ(hot.sessions_created, 2u);
  EXPECT_EQ(hot.requests_ok, 2u);
  EXPECT_EQ(hot.cache_misses, 1u);
  EXPECT_EQ(hot.cache_hits, 1u);  // second identical first row
  const TenantMetricsSnapshot& cold = per_tenant.at("other");
  EXPECT_EQ(cold.sessions_created, 1u);
  EXPECT_EQ(cold.requests_ok, 1u);
  EXPECT_EQ(cold.cache_misses, 1u);
  EXPECT_EQ(cold.cache_hits, 0u);

  const std::string json = svc.PerTenantMetricsJson();
  EXPECT_NE(json.find("\"default\""), std::string::npos);
  EXPECT_NE(json.find("\"other\""), std::string::npos);
}

TEST(ServiceTenantEvictionTest, IdleTenantsAreEvictedAndCachePurged) {
  catalog::CatalogOptions catalog_options;
  catalog_options.idle_ttl = std::chrono::milliseconds(0);
  catalog::Catalog catalog(catalog_options);
  ASSERT_TRUE(
      catalog.Publish(kDefaultTenant, testing::MakeFigure2Db()).ok());
  MappingService svc(&catalog);
  const SessionId id = *svc.CreateSession({"Name"});
  InputRequest request;
  request.session_id = id;
  request.value = "Avatar";
  ASSERT_TRUE(svc.Call(request).status.ok());
  EXPECT_GT(svc.cache().size(), 0u);
  ASSERT_TRUE(svc.CloseSession(id).ok());

  EXPECT_EQ(svc.EvictIdleTenants(), 1u);
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(svc.cache().size(), 0u);  // tenant entries purged with it
  // New sessions on the evicted tenant now fail cleanly.
  EXPECT_TRUE(svc.CreateSession({"Name"}).status().IsNotFound());
}

TEST(ServiceTenantEvictionTest, EvictionPurgeSparesARacingRepublish) {
  // Regression guard for the eviction/republish race: the sweep evicts
  // tenant "t" while it serves epoch E1, but before the cache purge runs
  // a republish installs E2 and repopulates entries. Purging by name
  // alone would drop the republished (perfectly valid) entries; the purge
  // is bounded by the epoch the eviction observed, and catalog epochs are
  // globally monotonic, so E2's entries must survive.
  catalog::CatalogOptions catalog_options;
  catalog_options.idle_ttl = std::chrono::milliseconds(0);
  catalog::Catalog catalog(catalog_options);
  auto first = catalog.Publish("t", testing::MakeFigure2Db());
  ASSERT_TRUE(first.ok());
  const uint64_t e1 = (*first)->epoch();

  ResultCache cache(8);
  const SearchOptions options;
  core::SearchResult result;
  cache.Insert(ResultCache::MakeKey("t", e1, 0, 1, {"avatar"}, options),
               result);

  // The eviction sweep observes E1...
  const std::vector<catalog::Catalog::EvictedTenant> evicted =
      catalog.EvictIdle();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].name, "t");
  EXPECT_EQ(evicted[0].epoch, e1);

  // ...then the republish wins the race and repopulates the cache.
  auto second = catalog.Publish("t", testing::MakeFigure2Db());
  ASSERT_TRUE(second.ok());
  const uint64_t e2 = (*second)->epoch();
  ASSERT_GT(e2, e1);
  cache.Insert(ResultCache::MakeKey("t", e2, 0, 1, {"avatar"}, options),
               result);

  // The purge lands last, scoped to epochs <= E1: only the stale entry
  // goes.
  EXPECT_EQ(cache.EvictTenantEntries("t", evicted[0].epoch), 1u);
  EXPECT_TRUE(
      cache
          .Lookup(ResultCache::MakeKey("t", e2, 0, 1, {"avatar"}, options))
          .has_value());
  // The unbounded overload (tenant Drop, not eviction) still clears all.
  EXPECT_EQ(cache.EvictTenantEntries("t"), 1u);
}

TEST(ServiceTenantEvictionTest, ConcurrentRepublishAndEvictionStayCoherent) {
  // Thread-level smoke for the same race: one thread sweeps evictions
  // while another republishes and searches. Nothing may crash, and every
  // completed search must succeed — a purge that raced a republish shows
  // up here (under TSan) as a stale cache entry or a torn catalog state.
  catalog::CatalogOptions catalog_options;
  catalog_options.idle_ttl = std::chrono::milliseconds(0);
  catalog::Catalog catalog(catalog_options);
  ASSERT_TRUE(
      catalog.Publish(kDefaultTenant, testing::MakeFigure2Db()).ok());
  MappingService svc(&catalog);

  std::atomic<bool> stop{false};
  std::thread sweeper([&]() {
    while (!stop.load()) svc.EvictIdleTenants();
  });
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(
        catalog.Publish(kDefaultTenant, testing::MakeFigure2Db()).ok());
    auto created = svc.CreateSession({"Name"});
    if (!created.ok()) continue;  // the sweeper won this round
    InputRequest request;
    request.session_id = *created;
    request.value = "Avatar";
    const RequestResult result = svc.Call(request);
    EXPECT_TRUE(result.status.ok()) << result.status;
    (void)svc.CloseSession(*created);
  }
  stop.store(true);
  sweeper.join();
}

TEST_F(ServiceTest, SessionsKeepServingTheirPinnedEpochAcrossRepublish) {
  MappingService svc(&catalog_);
  const SessionId id = *svc.CreateSession({"Name", "Director"});
  const auto type = [&](size_t row, size_t col, const char* value) {
    InputRequest request;
    request.session_id = id;
    request.row = row;
    request.col = col;
    request.value = value;
    RequestResult result = svc.Call(request);
    ASSERT_TRUE(result.status.ok()) << result.status;
  };
  type(0, 0, "Avatar");
  type(0, 1, "James Cameron");

  // Republish the tenant mid-session: the open session keeps its pinned
  // snapshot, so the remaining keystrokes prune against the same epoch
  // and still converge.
  ASSERT_TRUE(catalog_.Publish(kDefaultTenant, testing::MakeFigure2Db()).ok());
  type(1, 0, "Harry Potter");
  type(1, 1, "David Yates");
  Status status = svc.sessions().WithSession(id, [](core::Session& session) {
    EXPECT_EQ(session.state(), SessionState::kConverged);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
}

// -------------------------------------------------------------- Metrics --

TEST(ServiceMetricsTest, OutcomeCountersAndHistogram) {
  ServiceMetrics metrics;
  metrics.RecordRequest(RequestOutcome::kOk, 0.1);
  metrics.RecordRequest(RequestOutcome::kOk, 3.0);
  metrics.RecordRequest(RequestOutcome::kTruncated, 100.0);
  metrics.RecordRequest(RequestOutcome::kFailed, 0.2);
  metrics.RecordRequest(RequestOutcome::kOverloaded, 0.0);
  metrics.RecordQueueDepth(3);
  metrics.RecordQueueDepth(7);
  metrics.RecordQueueDepth(2);

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.requests_ok, 2u);
  EXPECT_EQ(snapshot.requests_truncated, 1u);
  EXPECT_EQ(snapshot.requests_failed, 1u);
  EXPECT_EQ(snapshot.requests_overloaded, 1u);
  EXPECT_EQ(snapshot.TotalRequests(), 5u);
  EXPECT_EQ(snapshot.CompletedRequests(), 4u);
  EXPECT_EQ(snapshot.queue_high_water, 7u);
  uint64_t histogram_total = 0;
  for (uint64_t count : snapshot.latency_buckets) histogram_total += count;
  EXPECT_EQ(histogram_total, 4u);  // overloaded requests record no latency
  EXPECT_LE(snapshot.ApproxLatencyPercentileMs(0.5),
            snapshot.ApproxLatencyPercentileMs(0.99));
  EXPECT_FALSE(snapshot.ToString().empty());
}

TEST(ServiceMetricsTest, DegradedOutcomeAndRetryCounters) {
  ServiceMetrics metrics;
  metrics.RecordRequest(RequestOutcome::kOk, 0.1);
  metrics.RecordRequest(RequestOutcome::kDegraded, 5.0);
  metrics.RecordRequest(RequestOutcome::kDegraded, 6.0);
  metrics.RecordSearchRetry();
  metrics.RecordSearchRetry();
  metrics.RecordSearchRetry();

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.requests_ok, 1u);
  EXPECT_EQ(snapshot.requests_degraded, 2u);
  EXPECT_EQ(snapshot.search_retries, 3u);
  EXPECT_EQ(snapshot.TotalRequests(), 3u);
  EXPECT_EQ(snapshot.CompletedRequests(), 3u);
  EXPECT_STREQ(RequestOutcomeName(RequestOutcome::kDegraded), "degraded");
  EXPECT_NE(snapshot.ToString().find("degraded"), std::string::npos);
}

// ------------------------------------------- Degradation (fault-injected) --

TEST_F(ServiceTest, TransientSearchFailureRetriedOnceAndReportedDegraded) {
  MappingService svc(&catalog_);
  const SessionId id = *svc.CreateSession({"Name"});
  InputRequest request;
  request.session_id = id;
  request.value = "Avatar";

  FailpointPolicy policy;
  policy.action = FailAction::kError;  // injects kUnavailable by default
  policy.max_fires = 1;                // first attempt fails, retry succeeds
  RequestResult result;
  {
    ScopedFailpoint armed("service.search.transient", policy);
    result = svc.Call(request);
  }
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.outcome, RequestOutcome::kDegraded);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.num_candidates, 0u);

  const MetricsSnapshot snapshot = svc.SnapshotMetrics();
  EXPECT_EQ(snapshot.requests_degraded, 1u);
  EXPECT_EQ(snapshot.search_retries, 1u);
  EXPECT_EQ(snapshot.requests_failed, 0u);
  EXPECT_EQ(snapshot.requests_ok, 0u);
  // Both attempts consulted the cache and missed.
  EXPECT_EQ(snapshot.cache_misses, 2u);
  EXPECT_EQ(snapshot.cache_hits, 0u);

  // The degraded result matches a clean-run search exactly.
  auto clean = core::SampleSearch(engine_, graph_, {"Avatar"});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(result.num_candidates, clean->candidates.size());
}

TEST_F(ServiceTest, PersistentTransientFailureFailsAfterOneRetry) {
  MappingService svc(&catalog_);
  const SessionId id = *svc.CreateSession({"Name"});
  InputRequest request;
  request.session_id = id;
  request.value = "Avatar";

  FailpointPolicy policy;
  policy.action = FailAction::kError;  // unlimited: the retry fails too
  RequestResult result;
  uint64_t injected = 0;
  {
    ScopedFailpoint armed("service.search.transient", policy);
    result = svc.Call(request);
    injected = armed.site().stats().fires;
  }
  EXPECT_TRUE(result.status.IsUnavailable()) << result.status;
  EXPECT_EQ(result.outcome, RequestOutcome::kFailed);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(injected, 2u);  // exactly one retry: two injected failures

  const MetricsSnapshot snapshot = svc.SnapshotMetrics();
  EXPECT_EQ(snapshot.requests_failed, 1u);
  EXPECT_EQ(snapshot.search_retries, 1u);
  EXPECT_EQ(snapshot.requests_degraded, 0u);

  // The failure left the session replayable: the same keystroke now
  // succeeds cleanly (no stale grid or half-run search state).
  RequestResult replay = svc.Call(request);
  ASSERT_TRUE(replay.status.ok()) << replay.status;
  EXPECT_EQ(replay.outcome, RequestOutcome::kOk);
  EXPECT_GT(replay.num_candidates, 0u);
}

TEST_F(ServiceTest, ForcedAdmissionRejectionCountsAsOverloaded) {
  MappingService svc(&catalog_);
  const SessionId id = *svc.CreateSession({"Name"});
  InputRequest request;
  request.session_id = id;
  request.value = "Avatar";

  FailpointPolicy policy;
  policy.action = FailAction::kTrigger;
  policy.max_fires = 1;
  {
    ScopedFailpoint armed("service.queue.admit", policy);
    Status rejected = svc.Enqueue(request, [](RequestResult) {});
    EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected;
  }
  const MetricsSnapshot snapshot = svc.SnapshotMetrics();
  EXPECT_EQ(snapshot.requests_overloaded, 1u);

  // Disarmed, the same request sails through.
  RequestResult result = svc.Call(request);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.outcome, RequestOutcome::kOk);
}

TEST_F(ServiceTest, ForcedScanFallbackKeepsResultsAndCountsInMetrics) {
  // Degraded text path: the accelerated lookup faults and every probe runs
  // the frozen linear scan. Results must be identical; the degradation is
  // visible only in the scan-fallback counter.
  MappingService svc(&catalog_);
  const SessionId id = *svc.CreateSession({"Name"});
  InputRequest request;
  request.session_id = id;
  request.value = "Avatar";

  RequestResult result;
  {
    FailpointPolicy force_scan;
    force_scan.action = FailAction::kTrigger;
    ScopedFailpoint armed("text.lookup.fast_path", force_scan);
    result = svc.Call(request);
  }
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_EQ(result.outcome, RequestOutcome::kOk);

  const MetricsSnapshot snapshot = svc.SnapshotMetrics();
  EXPECT_GT(snapshot.text_scan_fallbacks, 0u);

  auto clean = core::SampleSearch(engine_, graph_, {"Avatar"});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(result.num_candidates, clean->candidates.size());
}

}  // namespace
}  // namespace mweaver::service
