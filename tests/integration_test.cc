// Cross-module property tests: TPW's soundness and completeness (Section
// 4.6), checked against the brute-force naive baseline on a controlled toy
// schema (where exhaustive enumeration stays small) and against known goal
// mappings on the synthetic Yahoo-Movies database.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>

#include "baselines/eirene.h"
#include "baselines/naive_search.h"
#include "common/random.h"
#include "core/sample_search.h"
#include "core/session.h"
#include "datagen/movie_gen.h"
#include "datagen/workload.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "storage/dump.h"
#include "test_util.h"
#include "text/fulltext_engine.h"

namespace mweaver {
namespace {

using ::mweaver::testing::AddRow;
using ::mweaver::testing::I;
using ::mweaver::testing::IdAttr;
using ::mweaver::testing::MakeUniversityDb;
using ::mweaver::testing::S;
using ::mweaver::testing::StrAttr;

// Shared-builder shorthands (tests/test_util.h).
std::string RandomValue(const storage::Database& db, Rng* rng) {
  return testing::RandomSearchableValue(db, rng);
}
std::set<std::string> CanonicalSet(
    const std::vector<core::CandidateMapping>& candidates) {
  return testing::CanonicalMappingSet(candidates);
}

// --------------------- TPW == Naive (sound + complete, Section 4.6) -------

// Parameterized over (target size m, random seed): random sample tuples of
// existing values over the university schema; the two algorithms must
// return exactly the same set of valid complete mapping paths.
class TpwVsNaiveTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TpwVsNaiveTest, SameValidMappingSetOnRandomTuples) {
  const auto [m, seed] = GetParam();
  const storage::Database db = MakeUniversityDb(100 + seed);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  const graph::SchemaGraph graph(&db);
  Rng rng(9'000 + seed * 131 + m);

  for (int round = 0; round < 4; ++round) {
    std::vector<std::string> sample_tuple;
    for (int i = 0; i < m; ++i) sample_tuple.push_back(RandomValue(db, &rng));

    auto tpw = core::SampleSearch(engine, graph, sample_tuple);
    ASSERT_TRUE(tpw.ok()) << tpw.status().ToString();

    baselines::NaiveOptions naive_options;
    naive_options.enumeration.max_candidates = 500'000;
    baselines::NaiveStats naive_stats;
    auto naive = baselines::NaiveSampleSearch(engine, graph, sample_tuple,
                                              naive_options, &naive_stats);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();

    std::set<std::string> naive_canon;
    for (const auto& mp : *naive) naive_canon.insert(mp.Canonical());
    EXPECT_EQ(CanonicalSet(tpw->candidates), naive_canon)
        << "m=" << m << " samples: " << sample_tuple[0] << " ...";
    EXPECT_GE(naive_stats.enumeration.num_candidates, naive->size());
    EXPECT_EQ(naive->size(), tpw->candidates.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTuples, TpwVsNaiveTest,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// One Yahoo-scale equivalence spot check (m=3; larger m is the naive
// blowup regime that bench_table3/bench_table4 demonstrate instead).
TEST(TpwVsNaiveYahooTest, AgreesAtM3) {
  datagen::YahooMoviesConfig config;
  config.num_movies = 25;
  config.num_locations = 10;
  const storage::Database db = datagen::MakeYahooMovies(config);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  const graph::SchemaGraph graph(&db);
  const auto sets = datagen::MakeYahooTaskSets(db);
  ASSERT_TRUE(sets.ok());
  const auto& task = (*sets)[2].tasks[0];  // J=4, m=3

  query::PathExecutor executor(&engine);
  auto target = executor.EvaluateTarget(task.mapping, 100);
  ASSERT_TRUE(target.ok());
  ASSERT_FALSE(target->empty());

  auto tpw = core::SampleSearch(engine, graph, target->front());
  ASSERT_TRUE(tpw.ok());
  baselines::NaiveOptions naive_options;
  naive_options.enumeration.max_candidates = 500'000;
  auto naive = baselines::NaiveSampleSearch(engine, graph, target->front(),
                                            naive_options, nullptr);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  std::set<std::string> naive_canon;
  for (const auto& mp : *naive) naive_canon.insert(mp.Canonical());
  EXPECT_EQ(CanonicalSet(tpw->candidates), naive_canon);
}

// ----------------------------------------- Completeness w.r.t. the goal --

class GoalCompletenessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static const storage::Database& Db() {
    static const storage::Database& db = *new storage::Database(MakeDb());
    return db;
  }
  static storage::Database MakeDb() {
    datagen::YahooMoviesConfig config;
    config.num_movies = 40;
    config.num_locations = 12;
    return datagen::MakeYahooMovies(config);
  }
  static const text::FullTextEngine& Engine() {
    static const text::FullTextEngine& engine = *new text::FullTextEngine(
        &Db(), text::MatchPolicy::Substring());
    return engine;
  }
  static const graph::SchemaGraph& Graph() {
    static const graph::SchemaGraph& graph = *new graph::SchemaGraph(&Db());
    return graph;
  }
  static const std::vector<datagen::TaskSet>& TaskSets() {
    static const std::vector<datagen::TaskSet>& sets =
        *new std::vector<datagen::TaskSet>(
            datagen::MakeYahooTaskSets(Db()).ValueOrDie());
    return sets;
  }
};

TEST_P(GoalCompletenessTest, GoalAlwaysAmongCandidates) {
  const auto [set_index, task_index] = GetParam();
  const datagen::TaskMapping& task =
      TaskSets()[static_cast<size_t>(set_index)]
          .tasks[static_cast<size_t>(task_index)];
  const std::string goal = task.mapping.Canonical();

  query::PathExecutor executor(&Engine());
  auto target = executor.EvaluateTarget(task.mapping, 300);
  ASSERT_TRUE(target.ok());
  ASSERT_FALSE(target->empty());
  Rng rng(99 + set_index * 17 + task_index);
  for (int round = 0; round < 3; ++round) {
    const auto& row = rng.Pick(*target);
    auto tpw = core::SampleSearch(Engine(), Graph(), row);
    ASSERT_TRUE(tpw.ok());
    EXPECT_TRUE(CanonicalSet(tpw->candidates).count(goal))
        << "goal missing for a sample row of task " << task.name;
    // Soundness in the same pass: every candidate has support.
    query::SampleMap samples;
    for (size_t i = 0; i < row.size(); ++i) {
      samples.emplace(static_cast<int>(i), row[i]);
    }
    for (const auto& candidate : tpw->candidates) {
      auto supported = executor.HasSupport(candidate.mapping, samples);
      ASSERT_TRUE(supported.ok());
      EXPECT_TRUE(*supported) << candidate.mapping.ToString(Db());
      EXPECT_TRUE(candidate.mapping.TerminalsProjected());
      EXPECT_GT(candidate.support, 0u);
      // Every retained woven tuple path is instance-consistent.
      for (const core::TuplePath& tp : candidate.example_tuple_paths) {
        EXPECT_TRUE(tp.IsConsistent(Db())) << tp.ToString(Db());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, GoalCompletenessTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "set" + std::to_string(std::get<0>(info.param) + 1) + "_m" +
             std::to_string(std::get<1>(info.param) + 3);
    });

// -------------------------------------------- Session-level convergence --

TEST(ConvergenceTest, SimulatedUsersReachTheGoalAcrossTaskSets) {
  datagen::YahooMoviesConfig config;
  config.num_movies = 40;
  config.num_locations = 12;
  const storage::Database db = datagen::MakeYahooMovies(config);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  const graph::SchemaGraph graph(&db);
  const auto sets = datagen::MakeYahooTaskSets(db);
  ASSERT_TRUE(sets.ok());

  size_t discovered = 0, total = 0;
  for (const auto& set : *sets) {
    for (size_t t = 0; t < 2; ++t) {  // m = 3, 4 keeps the suite fast
      datagen::SimulationOptions options;
      options.seed = 1000 + total;
      // Generous budget: the paper's own worst case is ~8m samples.
      options.max_samples = 24 * set.tasks[t].mapping.size();
      auto sim = datagen::SimulateUserSession(engine, graph, set.tasks[t],
                                              options);
      ASSERT_TRUE(sim.ok()) << sim.status().ToString();
      ++total;
      if (sim->discovered) {
        ++discovered;
        EXPECT_TRUE(sim->converged_to_goal) << set.tasks[t].name;
        // The candidate count never increases after the first search.
        const auto& series = sim->candidates_after_sample;
        const size_t m = set.tasks[t].mapping.size();
        for (size_t i = m; i + 1 < series.size(); ++i) {
          EXPECT_LE(series[i + 1], series[i]);
        }
      }
    }
  }
  EXPECT_GE(discovered, total - 1);
}

// ----------------------------------------- Eirene fitting completeness --

// Property: an example assembled from a tuple path of mapping M always
// fits M (among possibly others) — Eirene's analogue of completeness.
TEST(EireneFittingPropertyTest, GoalAlwaysFitsItsOwnExamples) {
  const storage::Database db = MakeUniversityDb(21);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  query::PathExecutor executor(&engine);
  baselines::EireneFitter fitter(&db);

  const std::vector<std::vector<std::string>> chains{
      {"prof", "teaches", "course"},
      {"prof", "worksin", "dept"},
      {"dept", "offers", "course"},
  };
  const std::vector<std::vector<std::tuple<int, int, std::string>>> projs{
      {{0, 0, "name"}, {1, 2, "title"}},
      {{0, 0, "name"}, {1, 2, "name"}},
      {{0, 0, "name"}, {1, 2, "title"}},
  };
  for (size_t i = 0; i < chains.size(); ++i) {
    auto goal = datagen::BuildChainMapping(db, chains[i], projs[i]);
    ASSERT_TRUE(goal.ok()) << goal.status().ToString();
    query::ExecOptions exec_options;
    exec_options.max_results = 5;
    auto paths = executor.Execute(*goal, {}, exec_options);
    ASSERT_TRUE(paths.ok());
    for (const core::TuplePath& tp : *paths) {
      baselines::DataExample example;
      std::set<std::pair<storage::RelationId, storage::RowId>> seen;
      for (size_t v = 0; v < tp.num_vertices(); ++v) {
        const auto key = std::make_pair(
            tp.vertex(static_cast<core::VertexId>(v)).relation,
            tp.row(static_cast<core::VertexId>(v)));
        if (seen.insert(key).second) example.source_tuples.push_back(key);
      }
      example.target_tuple = tp.ProjectTargetValues(db);
      auto fitted = fitter.FitOne(example);
      ASSERT_TRUE(fitted.ok()) << fitted.status().ToString();
      std::set<std::string> canon;
      for (const auto& mp : *fitted) canon.insert(mp.Canonical());
      EXPECT_TRUE(canon.count(goal->Canonical()))
          << "chain " << i << ": goal missing from fit";
    }
  }
}

// -------------------------------- Executor vs brute force, randomized --

namespace {

// Nested-loop reference: all consistent (IsConsistent) assignments whose
// constrained cells contain the samples.
std::set<std::string> BruteForce(const text::FullTextEngine& engine,
                                 const core::MappingPath& mapping,
                                 const query::SampleMap& samples) {
  const storage::Database& db = engine.db();
  const size_t n = mapping.num_vertices();
  std::vector<storage::RowId> rows(n, 0);
  std::set<std::string> out;
  std::function<void(size_t)> rec = [&](size_t v) {
    if (v == n) {
      core::TuplePath tp = core::TuplePath::SingleVertex(
          mapping.vertex(0).relation, rows[0]);
      for (size_t i = 1; i < n; ++i) {
        const core::PathVertex& pv =
            mapping.vertex(static_cast<core::VertexId>(i));
        tp.AddVertex(pv.relation, rows[i], pv.parent, pv.fk_to_parent,
                     pv.is_from_side);
      }
      for (const core::Projection& p : mapping.projections()) {
        tp.AddProjection(p.target_column, p.vertex, p.attribute, 1.0);
      }
      if (!tp.IsConsistent(db)) return;
      for (const core::Projection& p : mapping.projections()) {
        auto it = samples.find(p.target_column);
        if (it == samples.end()) continue;
        if (!engine.RowContains(
                text::AttributeRef{mapping.vertex(p.vertex).relation,
                                   p.attribute},
                rows[static_cast<size_t>(p.vertex)], it->second)) {
          return;
        }
      }
      out.insert(tp.Canonical());
      return;
    }
    const storage::Relation& rel =
        db.relation(mapping.vertex(static_cast<core::VertexId>(v)).relation);
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      rows[v] = static_cast<storage::RowId>(r);
      rec(v + 1);
    }
  };
  rec(0);
  return out;
}

}  // namespace

class ExecutorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorFuzzTest, AgreesWithBruteForceOnRandomChains) {
  const storage::Database db = MakeUniversityDb(200 + GetParam(),
                                                /*people=*/8);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  query::PathExecutor executor(&engine);
  Rng rng(900 + GetParam());

  const std::vector<std::vector<std::string>> chains{
      {"prof", "teaches", "course"},
      {"course", "teaches", "prof", "worksin", "dept"},
      {"dept", "offers", "course", "teaches", "prof"},
  };
  const std::vector<std::vector<std::tuple<int, int, std::string>>> projs{
      {{0, 0, "name"}, {1, 2, "title"}},
      {{0, 0, "title"}, {1, 2, "name"}, {2, 4, "name"}},
      {{0, 0, "name"}, {1, 2, "title"}, {2, 4, "name"}},
  };
  for (size_t i = 0; i < chains.size(); ++i) {
    auto mapping = datagen::BuildChainMapping(db, chains[i], projs[i]);
    ASSERT_TRUE(mapping.ok()) << mapping.status().ToString();
    // Random constraint subsets, including none.
    for (int round = 0; round < 3; ++round) {
      query::SampleMap samples;
      for (int col = 0; col < static_cast<int>(mapping->size()); ++col) {
        if (rng.Bernoulli(0.5)) {
          samples.emplace(col, RandomValue(db, &rng));
        }
      }
      const auto expected = BruteForce(engine, *mapping, samples);
      auto actual = executor.Execute(*mapping, samples);
      ASSERT_TRUE(actual.ok());
      std::set<std::string> got;
      for (const auto& tp : *actual) got.insert(tp.Canonical());
      EXPECT_EQ(got, expected) << "chain " << i << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzzTest, ::testing::Range(0, 4));

// -------------------------------------------- Serialization round trip --

TEST(DumpSearchTest, SearchResultsIdenticalAfterDumpReload) {
  const storage::Database original = MakeUniversityDb(31);
  std::stringstream buffer;
  ASSERT_TRUE(storage::DumpDatabase(original, &buffer).ok());
  auto reloaded = storage::LoadDatabase(&buffer);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  const text::FullTextEngine engine_a(&original,
                                      text::MatchPolicy::Substring());
  const text::FullTextEngine engine_b(&*reloaded,
                                      text::MatchPolicy::Substring());
  const graph::SchemaGraph graph_a(&original);
  const graph::SchemaGraph graph_b(&*reloaded);

  Rng rng(5);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::string> sample_tuple;
    for (int i = 0; i < 3; ++i) {
      sample_tuple.push_back(RandomValue(original, &rng));
    }
    auto a = core::SampleSearch(engine_a, graph_a, sample_tuple);
    auto b = core::SampleSearch(engine_b, graph_b, sample_tuple);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(CanonicalSet(a->candidates), CanonicalSet(b->candidates));
  }
}

// ----------------------------------------------------- Parallel search --

TEST(ParallelSearchTest, ThreadCountDoesNotChangeResults) {
  const storage::Database db = MakeUniversityDb(55);
  const text::FullTextEngine engine(&db, text::MatchPolicy::Substring());
  const graph::SchemaGraph graph(&db);
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::string> sample_tuple;
    for (int i = 0; i < 3; ++i) sample_tuple.push_back(RandomValue(db, &rng));

    core::SearchOptions sequential;
    sequential.num_threads = 1;
    core::SearchOptions parallel;
    parallel.num_threads = 4;

    auto a = core::SampleSearch(engine, graph, sample_tuple, sequential);
    auto b = core::SampleSearch(engine, graph, sample_tuple, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->candidates.size(), b->candidates.size());
    for (size_t c = 0; c < a->candidates.size(); ++c) {
      EXPECT_EQ(a->candidates[c].mapping.Canonical(),
                b->candidates[c].mapping.Canonical());
      EXPECT_EQ(a->candidates[c].support, b->candidates[c].support);
      EXPECT_DOUBLE_EQ(a->candidates[c].score, b->candidates[c].score);
    }
    EXPECT_EQ(a->stats.pairwise.num_tuple_paths,
              b->stats.pairwise.num_tuple_paths);
    EXPECT_EQ(a->stats.weave.total_tuple_paths,
              b->stats.weave.total_tuple_paths);
  }
}

// ------------------------------------------------- Numeric-sample search --

TEST(NumericSearchTest, NumericSampleDrivesMappingDiscovery) {
  // Payroll schema with searchable numeric columns: the user types a salary
  // as a sample (§7's numeric-sample extension).
  storage::Database db("payroll");
  db.AddRelation(storage::RelationSchema(
                     "employee",
                     {IdAttr("eid"), StrAttr("name"),
                      storage::AttributeSchema{
                          "salary", storage::ValueType::kDouble, true}}))
      .ValueOrDie();
  db.AddRelation(storage::RelationSchema(
                     "dept", {IdAttr("did"), StrAttr("dname")}))
      .ValueOrDie();
  db.AddRelation(storage::RelationSchema(
                     "worksin", {IdAttr("eid"), IdAttr("did")}))
      .ValueOrDie();
  db.AddForeignKey("worksin", "eid", "employee", "eid").ValueOrDie();
  db.AddForeignKey("worksin", "did", "dept", "did").ValueOrDie();
  AddRow(&db, "employee", {I(0), S("Ada"), storage::Value(95000.0)});
  AddRow(&db, "employee", {I(1), S("Grace"), storage::Value(120000.0)});
  AddRow(&db, "dept", {I(0), S("Compilers")});
  AddRow(&db, "dept", {I(1), S("Systems")});
  AddRow(&db, "worksin", {I(0), I(0)});
  AddRow(&db, "worksin", {I(1), I(1)});

  const text::FullTextEngine engine(
      &db, text::MatchPolicy::Substring().WithNumeric());
  const graph::SchemaGraph graph(&db);

  // Target: (dept name, salary). The salary sample is numeric.
  auto tpw = core::SampleSearch(engine, graph, {"Compilers", "95000"});
  ASSERT_TRUE(tpw.ok()) << tpw.status().ToString();
  ASSERT_EQ(tpw->candidates.size(), 1u);
  const std::string str = tpw->candidates[0].mapping.ToString(db);
  EXPECT_NE(str.find("salary"), std::string::npos);
  EXPECT_NE(str.find("dname"), std::string::npos);

  // Wrong pairing finds nothing: Grace's salary is in Systems.
  auto none = core::SampleSearch(engine, graph, {"Compilers", "120000"});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->candidates.empty());
}

// ----------------------------------------------------- MatchPolicy sweep --

class PolicySweepTest : public ::testing::TestWithParam<text::MatchPolicy> {};

TEST_P(PolicySweepTest, GoalDiscoverableUnderEveryErrorModel) {
  const storage::Database db = MakeUniversityDb(7);
  const text::FullTextEngine engine(&db, GetParam());
  const graph::SchemaGraph graph(&db);

  // Goal: prof.name x course.title via teaches.
  auto goal = datagen::BuildChainMapping(
      db, {"prof", "teaches", "course"}, {{0, 0, "name"}, {1, 2, "title"}});
  ASSERT_TRUE(goal.ok());
  query::PathExecutor executor(&engine);
  auto target = executor.EvaluateTarget(*goal, 50);
  ASSERT_TRUE(target.ok());
  ASSERT_FALSE(target->empty());

  auto tpw = core::SampleSearch(engine, graph, target->front());
  ASSERT_TRUE(tpw.ok());
  EXPECT_TRUE(CanonicalSet(tpw->candidates).count(goal->Canonical()));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweepTest,
    ::testing::Values(text::MatchPolicy::Exact(),
                      text::MatchPolicy::Substring(),
                      text::MatchPolicy::TokenSubset(),
                      text::MatchPolicy::Fuzzy(1)),
    [](const ::testing::TestParamInfo<text::MatchPolicy>& info) {
      switch (info.param.mode) {
        case text::MatchMode::kExact:
          return std::string("exact");
        case text::MatchMode::kEqualsIgnoreCase:
          return std::string("nocase");
        case text::MatchMode::kSubstring:
          return std::string("substring");
        case text::MatchMode::kTokenSubset:
          return std::string("tokens");
        case text::MatchMode::kFuzzyTokenSubset:
          return std::string("fuzzy");
      }
      return std::string("unknown");
    });

}  // namespace
}  // namespace mweaver
